//! Budget semantics over the regression corpus: resource governance must
//! be *observably inert* when the budget is generous — same verdicts, no
//! degradation — and fail fast when it is zero.
//!
//! The corpus (`tests/regressions/*.case`) is the same one the replay
//! suite uses, so every schema/transducer pair here once mattered enough
//! to be a shrunk fuzzer reproducer.

use textpres::engine::{
    Budget, CheckOptions, Decider, DtlDecider, Engine, OutputConformanceDecider,
    TextRetentionDecider, TopdownDecider,
};
use textpres::format::parse_case;
use textpres::prelude::{Alphabet, DtlBuilder, NtaBuilder};
use textpres::treeauto::{
    complement_nta, difference_nta, language_equal, try_complement_nta, try_difference_nta, Nta,
};

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/regressions");
    let mut cases = Vec::new();
    for entry in std::fs::read_dir(dir).expect("tests/regressions exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "case") {
            let src = std::fs::read_to_string(&path).expect("readable case file");
            cases.push((path.display().to_string(), src));
        }
    }
    assert!(!cases.is_empty(), "regression corpus must not be empty");
    cases.sort();
    cases
}

/// Runs `decider` ungoverned and under `options` (each on a fresh cache,
/// so fuel is attributed to real builds) and checks the verdicts agree.
fn assert_budget_inert(decider: &dyn Decider, nta: &Nta, options: &CheckOptions, path: &str) {
    let plain = Engine::new().check(decider, nta);
    let governed = Engine::new()
        .check_governed(decider, nta, options)
        .unwrap_or_else(|e| panic!("{path}: generous budget exhausted: {e}"));
    assert_eq!(
        plain.is_preserving(),
        governed.is_preserving(),
        "{path}: the budget changed the verdict"
    );
    assert!(
        governed.degraded.is_none(),
        "{path}: a generous budget must not degrade"
    );
    assert!(
        governed.stats.stages.iter().all(|s| s.fuel.is_some()),
        "{path}: governed stages must account fuel"
    );
    assert!(
        plain.stats.stages.iter().all(|s| s.fuel.is_none()),
        "{path}: ungoverned stages must not report fuel"
    );
}

#[test]
fn generous_budget_changes_no_corpus_verdict() {
    // Top-down cases only: the symbolic DTL decider is EXPTIME and the
    // corpus DTL programs take minutes per check in a debug build, so
    // their parity coverage lives in `generous_budget_is_inert_for_dtl`
    // (small fixed programs) and their exhaustion coverage in
    // `zero_fuel_exhausts_on_every_corpus_case` (fails fast).
    let options = CheckOptions::with_budget(Budget::default().with_fuel(500_000_000));
    for (path, src) in corpus() {
        let rc = parse_case(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        let nta = rc.case.schema_nta();
        if let Some(t) = &rc.case.transducer {
            assert_budget_inert(&TopdownDecider::new(t), &nta, &options, &path);
        }
    }
}

#[test]
fn generous_budget_is_inert_for_retention_and_conformance() {
    // The two new analyses obey the same governance contract as
    // text-preservation, over the same corpus pairs: retention over the
    // full alphabet (the strictest label set) and conformance against the
    // case's own schema.
    let options = CheckOptions::with_budget(Budget::default().with_fuel(500_000_000));
    for (path, src) in corpus() {
        let rc = parse_case(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        let nta = rc.case.schema_nta();
        if let Some(t) = &rc.case.transducer {
            let labels: Vec<_> = rc.case.alpha.symbols().collect();
            assert_budget_inert(&TextRetentionDecider::new(t, labels), &nta, &options, &path);
            assert_budget_inert(
                &OutputConformanceDecider::new(t, &nta),
                &nta,
                &options,
                &path,
            );
        }
    }
}

#[test]
fn zero_fuel_exhausts_retention_and_conformance() {
    let options = CheckOptions::with_budget(Budget::default().with_fuel(0));
    for (path, src) in corpus() {
        let rc = parse_case(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        let nta = rc.case.schema_nta();
        let engine = Engine::new();
        if let Some(t) = &rc.case.transducer {
            let labels: Vec<_> = rc.case.alpha.symbols().collect();
            let err = engine
                .check_governed(&TextRetentionDecider::new(t, labels), &nta, &options)
                .expect_err("zero fuel cannot complete a retention check");
            assert!(err.is_resource_exhausted(), "{path}: {err}");
            let err = engine
                .check_governed(&OutputConformanceDecider::new(t, &nta), &nta, &options)
                .expect_err("zero fuel cannot complete a conformance check");
            assert!(err.is_resource_exhausted(), "{path}: {err}");
        }
    }
}

#[test]
fn generous_budget_is_inert_for_dtl() {
    let alpha = Alphabet::from_labels(["a", "b"]);
    let mut b = NtaBuilder::new(&alpha);
    b.root("u");
    for (_, name) in alpha.entries() {
        b.rule("u", name, "(u | ut)*");
    }
    b.text_rule("ut");
    let uni = b.finish();

    // Identity (preserving) and a text-dropping (still preserving) DTL
    // program — both small enough that the symbolic check runs in seconds.
    let mut b = DtlBuilder::new(&alpha, "q0");
    b.rule_simple("q0", "a", "a", "q0", "child");
    b.rule_simple("q0", "b", "b", "q0", "child");
    b.text_rule("q0");
    let identity = b.finish();
    let mut b = DtlBuilder::new(&alpha, "q0");
    b.rule_simple("q0", "a", "a", "q0", "child[b]");
    b.rule_simple("q0", "b", "b", "qt", "child[text()]");
    b.text_rule("qt");
    let dropping = b.finish();

    let options = CheckOptions::with_budget(Budget::default().with_fuel(500_000_000));
    assert_budget_inert(&DtlDecider::new(&identity), &uni, &options, "dtl/identity");
    assert_budget_inert(&DtlDecider::new(&dropping), &uni, &options, "dtl/dropping");
}

#[test]
fn generous_budget_is_inert_for_treeauto_set_ops() {
    // The governed automata-level ops (complement / difference) must be
    // language-identical to their ungoverned twins under generous fuel,
    // and exhaust immediately under none. Corpus schemas keep the shapes
    // honest — these are the automata the lazy decision layer feeds on.
    let generous = textpres::trees::budget::Budget::default()
        .with_fuel(200_000_000)
        .start();
    let zero = textpres::trees::budget::Budget::default()
        .with_fuel(0)
        .start();
    let mut schemas: Vec<(String, Nta)> = Vec::new();
    for (path, src) in corpus() {
        let rc = parse_case(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        schemas.push((path, rc.case.schema_nta()));
    }
    for (path, nta) in &schemas {
        let plain = complement_nta(nta);
        let governed = try_complement_nta(nta, &generous)
            .unwrap_or_else(|e| panic!("{path}: generous complement exhausted: {e}"));
        assert!(
            language_equal(&plain, &governed),
            "{path}: budget changed the complement language"
        );
        assert!(
            try_complement_nta(nta, &zero).is_err(),
            "{path}: zero fuel must exhaust the complement"
        );
    }
    // Difference over a corpus pair: same inertness contract.
    let (p1, n1) = &schemas[0];
    let (p2, n2) = &schemas[schemas.len() - 1];
    let plain = difference_nta(n1, n2);
    let governed = try_difference_nta(n1, n2, &generous)
        .unwrap_or_else(|e| panic!("{p1} \\ {p2}: generous difference exhausted: {e}"));
    assert!(
        language_equal(&plain, &governed),
        "{p1} \\ {p2}: budget changed the difference language"
    );
    assert!(generous.fuel_spent() > 0, "governed ops must account fuel");
}

#[test]
fn zero_fuel_exhausts_on_every_corpus_case() {
    let options = CheckOptions::with_budget(Budget::default().with_fuel(0));
    for (path, src) in corpus() {
        let rc = parse_case(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        let nta = rc.case.schema_nta();
        let engine = Engine::new();
        if let Some(t) = &rc.case.transducer {
            let err = engine
                .check_governed(&TopdownDecider::new(t), &nta, &options)
                .expect_err("zero fuel cannot complete a top-down check");
            assert!(err.is_resource_exhausted(), "{path}: {err}");
        }
        if let Some(prog) = rc.case.dtl_program() {
            let err = engine
                .check_governed(&DtlDecider::new(&prog), &nta, &options)
                .expect_err("zero fuel cannot complete a DTL check");
            assert!(err.is_resource_exhausted(), "{path}: {err}");
        }
    }
}
