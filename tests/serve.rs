//! End-to-end robustness tests of `textpres serve`: concurrent clients,
//! budget degradation, admission control, fault isolation, and graceful
//! drain — mostly against in-process [`Server`] instances on ephemeral
//! ports, plus one real SIGTERM drain of the spawned binary.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use textpres::obs::{quote, JsonValue};
use textpres::serve::{ServeConfig, ServeHandle, ServeReport, Server};

const SCHEMA: &str = "
start doc
elem doc  = (keep | drop)*
elem keep = text
elem drop = text
";

const GOOD: &str = "
initial q0
rule q0 doc -> doc(q)
rule q  keep -> keep(qt)
text qt
";

const BAD: &str = "
initial q0
rule q0 doc -> doc(q q)
rule q keep -> keep(qt)
text qt
";

/// The universal schema over {a, b}: every tree is valid.
const UNIVERSAL: &str = "
start a
start b
elem a = (a | b | text)*
elem b = (a | b | text)*
";

/// The E5 `k = 2` DTL_XPath instance — EXPTIME territory, usable only
/// under a budget (see `tests/cli.rs`).
const DTL_K2: &str = "
dtl
initial q0
rule q0 : a -> a(q0 / child[a]/child[a]/child)
rule q0 : b -> b(q0 / child)
text q0
";

/// Starts an in-process server on an ephemeral port and runs it on a
/// background thread until drained.
fn start(
    tweak: impl FnOnce(&mut ServeConfig),
) -> (
    SocketAddr,
    ServeHandle,
    std::thread::JoinHandle<std::io::Result<ServeReport>>,
) {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_timeout: Duration::from_secs(5),
        drain_deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    tweak(&mut cfg);
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// A line-framed test client.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
    }

    fn recv(&mut self) -> JsonValue {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection unexpectedly");
        JsonValue::parse(line.trim_end()).expect("response is JSON")
    }

    fn roundtrip(&mut self, line: &str) -> JsonValue {
        self.send(line);
        self.recv()
    }
}

fn check_frame(schema: &str, transducer: &str, extra: &str) -> String {
    format!(
        "{{\"type\":\"check\",\"schema\":{},\"transducer\":{}{extra}}}",
        quote(schema),
        quote(transducer)
    )
}

fn verdict(v: &JsonValue) -> Option<&str> {
    v.get("verdict").and_then(|s| s.as_str())
}

fn error_code(v: &JsonValue) -> Option<&str> {
    v.get("error").and_then(|s| s.as_str())
}

fn shutdown_and_join(
    client: &mut Client,
    join: std::thread::JoinHandle<std::io::Result<ServeReport>>,
) -> ServeReport {
    let ack = client.roundtrip("{\"type\":\"shutdown\"}");
    assert_eq!(ack.get("ok").and_then(|b| b.as_bool()), Some(true));
    join.join().expect("server thread").expect("clean run")
}

#[test]
fn concurrent_clients_get_deterministic_verdicts_matching_the_cli() {
    // The one-shot CLI is the verdict oracle: GOOD passes (exit 0), BAD
    // fails with a copying witness (exit 1).
    let dir = std::env::temp_dir().join(format!("tpx-serve-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("schema.txt"), SCHEMA).unwrap();
    std::fs::write(dir.join("good.txt"), GOOD).unwrap();
    std::fs::write(dir.join("bad.txt"), BAD).unwrap();
    let cli = |t: &str| {
        std::process::Command::new(env!("CARGO_BIN_EXE_textpres"))
            .arg("check")
            .arg(dir.join("schema.txt"))
            .arg(dir.join(t))
            .output()
            .expect("run textpres check")
            .status
            .code()
            .expect("exit code")
    };
    assert_eq!(cli("good.txt"), 0);
    assert_eq!(cli("bad.txt"), 1);

    let (addr, _handle, join) = start(|_| {});
    let workers: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for round in 0..5 {
                    let expect_pass = (i + round) % 2 == 0;
                    let t = if expect_pass { GOOD } else { BAD };
                    let resp = c.roundtrip(&check_frame(SCHEMA, t, ""));
                    assert_eq!(resp.get("ok").and_then(|b| b.as_bool()), Some(true));
                    let expected = if expect_pass { "pass" } else { "fail" };
                    assert_eq!(verdict(&resp), Some(expected), "client {i} round {round}");
                    if !expect_pass {
                        // Same witness the CLI prints for this instance.
                        assert_eq!(
                            resp.get("witness").and_then(|s| s.as_str()),
                            Some("doc/keep/text()")
                        );
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let mut c = Client::connect(addr);
    let stats = c.roundtrip("{\"type\":\"stats\"}");
    let served = stats
        .get("serve")
        .and_then(|s| s.get("served"))
        .and_then(|n| n.as_u64());
    assert_eq!(served, Some(40));
    let report = shutdown_and_join(&mut c, join);
    assert_eq!(report.served, 40);
    assert!(!report.forced_drain);
}

#[test]
fn over_budget_request_degrades_while_neighbors_complete() {
    let (addr, _handle, join) = start(|cfg| cfg.slots = 2);
    let neighbor = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        for _ in 0..10 {
            let resp = c.roundtrip(&check_frame(SCHEMA, GOOD, ""));
            assert_eq!(verdict(&resp), Some("pass"));
        }
    });
    let mut c = Client::connect(addr);
    // Exhausted without degrade: a structured `exhausted` error.
    let resp = c.roundtrip(&check_frame(UNIVERSAL, DTL_K2, ",\"fuel\":1"));
    assert_eq!(resp.get("ok").and_then(|b| b.as_bool()), Some(false));
    assert_eq!(error_code(&resp), Some("exhausted"));
    // Same instance with degrade: the PR 3 contract — a verdict from the
    // bounded oracle, marked degraded.
    let resp = c.roundtrip(&check_frame(
        UNIVERSAL,
        DTL_K2,
        ",\"fuel\":1,\"degrade\":true",
    ));
    assert_eq!(
        resp.get("ok").and_then(|b| b.as_bool()),
        Some(true),
        "{resp:?}"
    );
    assert_eq!(resp.get("degraded").and_then(|b| b.as_bool()), Some(true));
    neighbor.join().expect("neighbor thread");
    let report = shutdown_and_join(&mut c, join);
    assert_eq!(report.served, 12);
}

#[test]
fn malformed_frames_error_without_wedging_the_connection() {
    let (addr, _handle, join) = start(|_| {});
    let mut c = Client::connect(addr);
    let resp = c.roundtrip("this is not json");
    assert_eq!(error_code(&resp), Some("bad-frame"));
    assert!(
        resp.get("message")
            .and_then(|s| s.as_str())
            .is_some_and(|m| m.starts_with("frame 1:")),
        "{resp:?}"
    );
    // Envelope violations are structured errors too.
    let resp = c.roundtrip("{\"type\":\"check\",\"schema\":\"s\"}");
    assert_eq!(error_code(&resp), Some("bad-frame"));
    // An embedded format error carries the format's line number.
    let resp = c.roundtrip(&check_frame("start doc\nelem doc = (", GOOD, ""));
    assert_eq!(error_code(&resp), Some("bad-request"));
    assert!(
        resp.get("message")
            .and_then(|s| s.as_str())
            .is_some_and(|m| m.contains("schema: line 2")),
        "{resp:?}"
    );
    // The connection survived all three: a well-formed check still works.
    let resp = c.roundtrip(&check_frame(SCHEMA, GOOD, ""));
    assert_eq!(verdict(&resp), Some("pass"));
    let report = shutdown_and_join(&mut c, join);
    assert_eq!(report.rejected, 3);
    assert_eq!(report.served, 1);
}

#[test]
fn oversize_frame_answers_then_closes() {
    let (addr, _handle, join) = start(|cfg| cfg.max_frame_bytes = 1024);
    let mut c = Client::connect(addr);
    let huge = "x".repeat(4096);
    c.stream.write_all(huge.as_bytes()).unwrap();
    let resp = c.recv();
    assert_eq!(error_code(&resp), Some("frame-too-large"));
    // EOF follows: the connection cannot resynchronize.
    let mut rest = String::new();
    assert_eq!(c.reader.read_to_string(&mut rest).unwrap(), 0);
    let mut c = Client::connect(addr);
    let report = shutdown_and_join(&mut c, join);
    assert_eq!(report.rejected, 1);
}

#[test]
fn overload_sheds_with_a_structured_response() {
    let (addr, _handle, join) = start(|cfg| {
        cfg.slots = 1;
        cfg.queue = 0;
    });
    // Hold the single slot with an expensive check bounded by a timeout.
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        c.roundtrip(&check_frame(UNIVERSAL, DTL_K2, ",\"timeout_ms\":1500"))
    });
    // Wait until the slot is actually held.
    let mut c = Client::connect(addr);
    let t0 = Instant::now();
    loop {
        let stats = c.roundtrip("{\"type\":\"stats\"}");
        let inflight = stats
            .get("serve")
            .and_then(|s| s.get("inflight"))
            .and_then(|n| n.as_u64());
        if inflight == Some(1) {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(5), "slot never held");
        std::thread::sleep(Duration::from_millis(10));
    }
    let resp = c.roundtrip(&check_frame(SCHEMA, GOOD, ""));
    assert_eq!(error_code(&resp), Some("overloaded"), "{resp:?}");
    let slow_resp = slow.join().expect("slow client");
    // The slow check ends either way (verdict or exhaustion) — the point
    // is it was isolated from the shed request.
    assert!(
        verdict(&slow_resp).is_some() || error_code(&slow_resp) == Some("exhausted"),
        "{slow_resp:?}"
    );
    // The slot is free again afterwards.
    let resp = c.roundtrip(&check_frame(SCHEMA, GOOD, ""));
    assert_eq!(verdict(&resp), Some("pass"));
    let report = shutdown_and_join(&mut c, join);
    assert_eq!(report.shed, 1);
}

#[test]
fn client_check_maps_overloaded_to_retryable_exit_3() {
    // The CLI exit contract: 3 is "retryable resource condition", 2 is
    // "malformed input". A shed (`overloaded`) answer is retryable — the
    // client binary must exit 3, not 2, so wrappers can back off and
    // retry instead of treating the input as bad.
    let dir = std::env::temp_dir().join(format!("tpx-serve-exit3-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("schema.txt"), SCHEMA).unwrap();
    std::fs::write(dir.join("good.txt"), GOOD).unwrap();
    let (addr, _handle, join) = start(|cfg| {
        cfg.slots = 1;
        cfg.queue = 0;
    });
    // Hold the single slot with an expensive check bounded by a timeout.
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        c.roundtrip(&check_frame(UNIVERSAL, DTL_K2, ",\"timeout_ms\":2000"))
    });
    let mut c = Client::connect(addr);
    let t0 = Instant::now();
    loop {
        let stats = c.roundtrip("{\"type\":\"stats\"}");
        let inflight = stats
            .get("serve")
            .and_then(|s| s.get("inflight"))
            .and_then(|n| n.as_u64());
        if inflight == Some(1) {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(5), "slot never held");
        std::thread::sleep(Duration::from_millis(10));
    }
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_textpres"))
        .arg("client")
        .arg(addr.to_string())
        .arg("check")
        .arg(dir.join("schema.txt"))
        .arg(dir.join("good.txt"))
        .output()
        .expect("run textpres client check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"overloaded\""), "{stdout}");
    assert_eq!(
        out.status.code(),
        Some(3),
        "overloaded must be exit 3 (retryable), stdout: {stdout}"
    );
    let _ = slow.join().expect("slow client");
    let report = shutdown_and_join(&mut c, join);
    assert_eq!(report.shed, 1);
}

#[test]
fn client_disconnect_mid_request_frees_the_slot() {
    let (addr, _handle, join) = start(|cfg| {
        cfg.slots = 1;
        cfg.queue = 0;
    });
    {
        // Fire an expensive request and vanish without reading the
        // response.
        let mut c = Client::connect(addr);
        c.send(&check_frame(UNIVERSAL, DTL_K2, ",\"timeout_ms\":700"));
    }
    // The abandoned check still runs to its deadline, after which the
    // slot must come back — a well-formed client succeeds.
    let mut c = Client::connect(addr);
    let t0 = Instant::now();
    let resp = loop {
        let resp = c.roundtrip(&check_frame(SCHEMA, GOOD, ""));
        if error_code(&resp) != Some("overloaded") {
            break resp;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "slot never freed after client disconnect"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(verdict(&resp), Some("pass"));
    let report = shutdown_and_join(&mut c, join);
    assert!(!report.forced_drain);
}

#[test]
fn registered_sources_serve_refs_and_feed_the_memo() {
    let (addr, _handle, join) = start(|_| {});
    let mut c = Client::connect(addr);
    let resp = c.roundtrip(&format!(
        "{{\"type\":\"register\",\"name\":\"s\",\"kind\":\"schema\",\"text\":{}}}",
        quote(SCHEMA)
    ));
    assert_eq!(resp.get("ok").and_then(|b| b.as_bool()), Some(true));
    let resp = c.roundtrip(&format!(
        "{{\"type\":\"register\",\"name\":\"t\",\"kind\":\"transducer\",\"text\":{}}}",
        quote(GOOD)
    ));
    assert_eq!(resp.get("ok").and_then(|b| b.as_bool()), Some(true));
    for _ in 0..3 {
        let resp =
            c.roundtrip("{\"type\":\"check\",\"schema_ref\":\"s\",\"transducer_ref\":\"t\"}");
        assert_eq!(verdict(&resp), Some("pass"));
    }
    // Unknown refs are a structured bad-request, and kind mismatches too.
    let resp = c.roundtrip("{\"type\":\"check\",\"schema_ref\":\"nope\",\"transducer_ref\":\"t\"}");
    assert_eq!(error_code(&resp), Some("bad-request"));
    let resp = c.roundtrip("{\"type\":\"check\",\"schema_ref\":\"t\",\"transducer_ref\":\"t\"}");
    assert_eq!(error_code(&resp), Some("bad-request"));
    let stats = c.roundtrip("{\"type\":\"stats\"}");
    let memo_hits = stats
        .get("serve")
        .and_then(|s| s.get("memo_hits"))
        .and_then(|n| n.as_u64());
    assert_eq!(memo_hits, Some(2), "3 ref checks = 1 compile + 2 memo hits");
    let report = shutdown_and_join(&mut c, join);
    assert_eq!(report.served, 3);
}

#[test]
fn batch_frames_answer_every_item_in_order() {
    let (addr, _handle, join) = start(|_| {});
    let mut c = Client::connect(addr);
    let resp = c.roundtrip(&format!(
        "{{\"type\":\"batch\",\"schema\":{},\"transducers\":[{},{},{}]}}",
        quote(SCHEMA),
        quote(GOOD),
        quote(BAD),
        quote("initial q0\nrule q0 doc -> ("), // malformed: per-item error
    ));
    assert_eq!(resp.get("ok").and_then(|b| b.as_bool()), Some(true));
    let results = resp.get("results").and_then(|r| r.as_array()).unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(verdict(&results[0]), Some("pass"));
    assert_eq!(verdict(&results[1]), Some("fail"));
    assert_eq!(error_code(&results[2]), Some("bad-request"));
    let report = shutdown_and_join(&mut c, join);
    assert_eq!(report.served, 1);
}

#[test]
fn drain_under_load_answers_accepted_requests_and_reports_clean() {
    let (addr, handle, join) = start(|cfg| cfg.slots = 2);
    let load: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let mut answered = 0;
                loop {
                    c.send(&check_frame(SCHEMA, GOOD, ""));
                    let mut line = String::new();
                    match c.reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break answered,
                        Ok(_) => {
                            let v = JsonValue::parse(line.trim_end()).expect("response");
                            match error_code(&v) {
                                None => {
                                    assert_eq!(verdict(&v), Some("pass"));
                                    answered += 1;
                                }
                                // Once draining, the structured refusal is
                                // the only acceptable "no".
                                Some("shutting-down") => break answered,
                                Some(other) => panic!("unexpected error {other}"),
                            }
                        }
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    handle.request_drain();
    let mut total = 0;
    for l in load {
        total += l.join().expect("load thread");
    }
    let report = join.join().expect("server thread").expect("clean run");
    assert!(!report.forced_drain, "drain under this load must be clean");
    assert_eq!(report.served, total, "every accepted request was answered");
    assert!(total > 0, "load ran before the drain");
    // The port is closed after the drain.
    assert!(TcpStream::connect(addr).is_err());
}

#[test]
fn sigterm_drains_the_spawned_daemon_to_exit_0() {
    use std::process::{Command, Stdio};
    let mut child = Command::new(env!("CARGO_BIN_EXE_textpres"))
        .args(["serve", "--addr", "127.0.0.1:0", "--drain-ms", "3000"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn textpres serve");
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut line)
        .expect("listening line");
    let addr: SocketAddr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in listening line")
        .parse()
        .expect("parseable address");
    let mut c = Client::connect(addr);
    let resp = c.roundtrip(&check_frame(SCHEMA, GOOD, ""));
    assert_eq!(verdict(&resp), Some("pass"));

    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());
    let out = child.wait_with_output().expect("daemon exit");
    assert!(
        out.status.success(),
        "SIGTERM must drain to exit 0, got {:?}; stderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("drained cleanly"), "{stderr}");
}
