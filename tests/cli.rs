//! End-to-end tests of the `textpres` CLI: subcommands, flags, exit codes.
//!
//! Exit-code contract: 0 = text-preserving, 1 = not text-preserving,
//! 2 = usage or I/O error, 3 = resource budget exhausted.

use std::path::PathBuf;
use std::process::{Command, Output};

const SCHEMA: &str = "
start doc
elem doc  = (keep | drop)*
elem keep = text
elem drop = text
";

const GOOD: &str = "
initial q0
rule q0 doc -> doc(q)
rule q  keep -> keep(qt)
text qt
";

const BAD: &str = "
initial q0
rule q0 doc -> doc(q q)
rule q keep -> keep(qt)
text qt
";

/// The universal schema over {a, b}: every tree is valid.
const UNIVERSAL: &str = "
start a
start b
elem a = (a | b | text)*
elem b = (a | b | text)*
";

/// The E5 `k = 2` DTL_XPath instance (filter chain of length 2 in the
/// call pattern): EXPTIME-hard territory — the symbolic decision runs for
/// many minutes, so only budgeted runs are testable.
const DTL_K2: &str = "
dtl
initial q0
rule q0 : a -> a(q0 / child[a]/child[a]/child)
rule q0 : b -> b(q0 / child)
text q0
";

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("textpres-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("schema.txt"), SCHEMA).unwrap();
        std::fs::write(dir.join("good.txt"), GOOD).unwrap();
        std::fs::write(dir.join("bad.txt"), BAD).unwrap();
        std::fs::write(dir.join("universal.txt"), UNIVERSAL).unwrap();
        std::fs::write(dir.join("k2.dtl"), DTL_K2).unwrap();
        Fixture { dir }
    }

    fn path(&self, name: &str) -> String {
        self.dir.join(name).to_string_lossy().into_owned()
    }

    fn run(&self, args: &[&str]) -> Output {
        Command::new(env!("CARGO_BIN_EXE_textpres"))
            .args(args)
            .output()
            .expect("spawn textpres")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn version_flag() {
    let f = Fixture::new("version");
    let out = f.run(&["--version"]);
    assert_eq!(code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("textpres "), "{stdout}");
}

#[test]
fn unknown_command_prints_help_and_exits_2() {
    let f = Fixture::new("unknown");
    let out = f.run(&["frobnicate"]);
    assert_eq!(code(&out), 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn no_args_prints_help_and_exits_2() {
    let f = Fixture::new("noargs");
    let out = f.run(&[]);
    assert_eq!(code(&out), 2);
}

#[test]
fn check_preserving_exits_0() {
    let f = Fixture::new("good");
    let out = f.run(&["check", &f.path("schema.txt"), &f.path("good.txt")]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("text-preserving"));
}

#[test]
fn check_violating_exits_1_with_witness_path() {
    let f = Fixture::new("bad");
    let out = f.run(&["check", &f.path("schema.txt"), &f.path("bad.txt")]);
    assert_eq!(code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("COPIES"), "{stdout}");
    assert!(stdout.contains("doc/keep/text()"), "{stdout}");
}

#[test]
fn check_missing_file_exits_2() {
    let f = Fixture::new("missing");
    let out = f.run(&["check", &f.path("schema.txt"), &f.path("nosuch.txt")]);
    assert_eq!(code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn check_stats_flag_reports_stages() {
    let f = Fixture::new("stats");
    let out = f.run(&[
        "check",
        &f.path("schema.txt"),
        &f.path("good.txt"),
        "--stats",
    ]);
    assert_eq!(code(&out), 0);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("topdown/schema"), "{stderr}");
    assert!(stderr.contains("cache:"), "{stderr}");
}

#[test]
fn batch_mixed_exits_1_and_reports_each() {
    let f = Fixture::new("batch");
    let out = f.run(&[
        "batch",
        &f.path("schema.txt"),
        &f.path("good.txt"),
        &f.path("bad.txt"),
        "--jobs",
        "2",
        "--stats",
    ]);
    assert_eq!(code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1/2 text-preserving"), "{stdout}");
    assert!(stdout.contains("(2 workers"), "{stdout}");
    // The schema artifact is shared: compiled once, hit once.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[cache hit]"), "{stderr}");
    // --stats surfaces the scheduler's stage-task/steal counters.
    assert!(stderr.contains("scheduler:"), "{stderr}");
    assert!(stderr.contains("stage tasks"), "{stderr}");
}

#[test]
fn batch_jobs_zero_auto_detects_workers() {
    let f = Fixture::new("batch-auto");
    let auto = f.run(&[
        "batch",
        &f.path("schema.txt"),
        &f.path("good.txt"),
        "--jobs",
        "0",
    ]);
    assert_eq!(code(&auto), 0, "{}", String::from_utf8_lossy(&auto.stderr));
    let expected = std::thread::available_parallelism().map_or(1, |n| n.get());
    let stdout = String::from_utf8_lossy(&auto.stdout);
    assert!(
        stdout.contains(&format!("({expected} workers")),
        "--jobs 0 should auto-detect {expected} workers: {stdout}"
    );
    // Omitting --jobs entirely gives the same auto-detected default.
    let default = f.run(&["batch", &f.path("schema.txt"), &f.path("good.txt")]);
    assert_eq!(code(&default), 0);
    assert!(String::from_utf8_lossy(&default.stdout).contains(&format!("({expected} workers")));
}

#[test]
fn batch_all_preserving_exits_0() {
    let f = Fixture::new("batchok");
    let out = f.run(&[
        "batch",
        &f.path("schema.txt"),
        &f.path("good.txt"),
        &f.path("good.txt"),
    ]);
    assert_eq!(code(&out), 0);
}

#[test]
fn unknown_flag_exits_2() {
    let f = Fixture::new("flag");
    let out = f.run(&[
        "check",
        &f.path("schema.txt"),
        &f.path("good.txt"),
        "--bogus",
    ]);
    assert_eq!(code(&out), 2);
}

#[test]
fn check_fuel_exhaustion_exits_3() {
    // The EXPTIME E5 instance under one unit of fuel must fail fast with
    // the documented resource-exhausted exit code instead of running for
    // minutes.
    let f = Fixture::new("fuel3");
    let start = std::time::Instant::now();
    let out = f.run(&[
        "check",
        &f.path("universal.txt"),
        &f.path("k2.dtl"),
        "--fuel",
        "1",
    ]);
    assert_eq!(code(&out), 3, "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("resource budget exhausted"), "{stderr}");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(1),
        "exhaustion must fail fast, took {:?}",
        start.elapsed()
    );
}

#[test]
fn check_fuel_exhaustion_with_degrade_reports_bounded_verdict() {
    let f = Fixture::new("degrade");
    let out = f.run(&[
        "check",
        &f.path("universal.txt"),
        &f.path("k2.dtl"),
        "--fuel",
        "1",
        "--degrade",
    ]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DEGRADED"), "{stdout}");
}

#[test]
fn check_generous_fuel_reports_per_stage_fuel() {
    let f = Fixture::new("fuelok");
    let out = f.run(&[
        "check",
        &f.path("schema.txt"),
        &f.path("good.txt"),
        "--fuel",
        "1000000",
        "--stats",
    ]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fuel "), "{stderr}");
}

#[test]
fn batch_with_exhausted_task_exits_3_but_reports_the_rest() {
    let f = Fixture::new("batch3");
    let out = f.run(&[
        "batch",
        &f.path("universal.txt"),
        &f.path("k2.dtl"),
        "--fuel",
        "1",
    ]);
    assert_eq!(code(&out), 3, "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 exhausted"), "{stdout}");
}

#[test]
fn bad_dtl_file_exits_2_with_line_number() {
    let f = Fixture::new("baddtl");
    std::fs::write(
        f.dir.join("broken.dtl"),
        "dtl\ninitial q0\nrule q0 : a -> a(q0 / child[[)\n",
    )
    .unwrap();
    let out = f.run(&["check", &f.path("universal.txt"), &f.path("broken.dtl")]);
    assert_eq!(code(&out), 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 3"), "{stderr}");
}

#[test]
fn subschema_runs() {
    let f = Fixture::new("subschema");
    let out = f.run(&["subschema", &f.path("schema.txt"), &f.path("bad.txt")]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("maximal text-preserving sub-schema"));
}

#[test]
fn check_trace_out_writes_jsonl_and_metrics_prints_table() {
    let f = Fixture::new("trace");
    let trace = f.path("trace.jsonl");
    let out = f.run(&[
        "check",
        &f.path("schema.txt"),
        &f.path("good.txt"),
        "--trace-out",
        &trace,
        "--metrics",
    ]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));

    let jsonl = std::fs::read_to_string(&trace).expect("trace file written");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(!lines.is_empty(), "trace is empty");
    for line in &lines {
        assert!(
            line.starts_with("{\"ev\":\"") && line.ends_with('}'),
            "not a JSONL event: {line}"
        );
    }
    // One enter and one exit per span, and the engine-level stages of a
    // top-down check are all present by name.
    let enters = lines
        .iter()
        .filter(|l| l.contains("\"ev\":\"enter\""))
        .count();
    let exits = lines
        .iter()
        .filter(|l| l.contains("\"ev\":\"exit\""))
        .count();
    assert_eq!(enters, exits);
    for stage in ["topdown/schema", "topdown/transducer", "topdown/decide"] {
        assert!(
            jsonl.contains(&format!("\"span\":\"{stage}\"")),
            "stage {stage} missing from trace"
        );
    }

    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("counters:"), "no metrics table:\n{stderr}");
    assert!(stderr.contains("engine/checks"), "{stderr}");
}

#[test]
fn trace_is_flushed_on_budget_exhaustion() {
    let f = Fixture::new("trace-exhaust");
    let trace = f.path("exhausted.jsonl");
    let out = f.run(&[
        "check",
        &f.path("universal.txt"),
        &f.path("k2.dtl"),
        "--fuel",
        "1000",
        "--trace-out",
        &trace,
    ]);
    assert_eq!(code(&out), 3, "{}", String::from_utf8_lossy(&out.stderr));
    // The trace survives the failed run: that is the debugging contract.
    let jsonl = std::fs::read_to_string(&trace).expect("trace file written on exit 3");
    assert!(jsonl.contains("\"span\":\"dtl/"), "no dtl span:\n{jsonl}");
}

#[test]
fn batch_trace_out_covers_all_tasks() {
    let f = Fixture::new("batch-trace");
    let trace = f.path("batch.jsonl");
    let out = f.run(&[
        "batch",
        &f.path("schema.txt"),
        &f.path("good.txt"),
        &f.path("bad.txt"),
        "--jobs",
        "2",
        "--trace-out",
        &trace,
        "--metrics",
    ]);
    assert_eq!(code(&out), 1, "{}", String::from_utf8_lossy(&out.stderr));
    let jsonl = std::fs::read_to_string(&trace).expect("trace file written");
    // Two tasks, one shared schema artifact: the decide stage ran twice.
    let decides = jsonl
        .lines()
        .filter(|l| l.contains("\"ev\":\"exit\"") && l.contains("\"span\":\"topdown/decide\""))
        .count();
    assert_eq!(decides, 2, "{jsonl}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("engine/checks"));
}
