//! Malformed-input panic safety for `textpres::format` and the serve
//! frame parser.
//!
//! Every parser in the format module (`parse_case`, `parse_schema`,
//! `parse_transducer`, `parse_dtl_transducer`) must return a line-numbered
//! `FormatError` on bad input — never panic — because the CLI feeds them
//! raw user files and the fuzzer's `--out` reproducers are hand-edited.
//! The serve protocol's `parse_request_line` faces something harsher
//! still: arbitrary bytes from any TCP client, where a panic would take a
//! connection thread (and a `Permit`) with it — so it is swept with the
//! same mutations plus a JSON-frame corpus.
//!
//! The suite drives each parser with seeded mutations (byte flips,
//! insertions, deletions, line deletion/duplication, truncation) of the
//! checked-in `tests/regressions/` corpus plus representative schema,
//! transducer, and DTL sources. Mutated bytes are lossily re-decoded, so
//! inputs include U+FFFD replacement characters and arbitrary splices.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// One named parser invocation over the current mutated input.
type ParserCheck<'a> = (&'a str, Box<dyn Fn() + 'a>);

use textpres::format::{parse_case, parse_dtl_transducer, parse_schema, parse_transducer};
use textpres::prelude::Alphabet;
use textpres::serve::protocol::{parse_request_line, recover_id};
use textpres::trees::rng::SplitMix64;

const SCHEMA: &str = "\
start doc
elem doc  = (keep | drop)*
elem keep = text
elem drop = text
";

const TRANSDUCER: &str = "\
initial q0
rule q0 doc -> doc(q)
rule q  keep -> keep(qt)
text qt
";

const DTL: &str = "\
dtl
initial q0
rule q0 : doc -> doc(q0 / child[keep]/child)
rule q0 : keep -> (q0 / child)
text q0
";

/// A case file whose trailing `[labels]` section is empty — must be a
/// line-numbered `FormatError`, never a panic in a later sweep (the
/// empty retention label set used to slip through `parse_case`).
const CASE_EMPTY_LABELS: &str = "\
kind retention-disagrees
seed 7
[alphabet]
label doc
[schema]
start doc
elem doc = text
[labels]
";

/// Well-formed serve frames, as a client would send them: mutations of
/// these exercise truncated frames, duplicated fields (via the
/// line-duplication and splice mutations), and unknown/garbled keys.
const FRAMES: &[&str] = &[
    r#"{"id":1,"type":"check","schema":"start doc\nelem doc = text","transducer":"initial q0\nrule q0 doc -> doc(qt)\ntext qt","fuel":1000,"timeout_ms":50,"degrade":true}"#,
    r#"{"id":"b-7","type":"batch","schema":"start a\nelem a = text","transducers":["initial q\nrule q a -> a(qt)\ntext qt",{"ref":"t1"}]}"#,
    r#"{"id":2,"type":"check","schema_ref":"s","transducer_ref":"t","analysis":"retention","labels":["keep"]}"#,
    r#"{"type":"check","schema_ref":"s","transducer_ref":"t","analysis":"conformance","target_ref":"out"}"#,
    r#"{"id":3,"type":"register","name":"s","kind":"schema","text":"start doc\nelem doc = text"}"#,
    r#"{"id":4,"type":"health"}"#,
    r#"{"id":5,"type":"stats"}"#,
    r#"{"id":6,"type":"shutdown"}"#,
];

/// Seeds per (input, parser) pair. Each seed applies 1–3 mutations.
const SEEDS: u64 = 250;

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/regressions");
    let mut inputs = vec![
        ("inline-schema".to_owned(), SCHEMA.to_owned()),
        ("inline-transducer".to_owned(), TRANSDUCER.to_owned()),
        ("inline-dtl".to_owned(), DTL.to_owned()),
        (
            "inline-empty-labels-case".to_owned(),
            CASE_EMPTY_LABELS.to_owned(),
        ),
    ];
    for (i, frame) in FRAMES.iter().enumerate() {
        inputs.push((format!("inline-frame-{i}"), (*frame).to_owned()));
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/regressions exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "regression corpus is empty");
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("readable case file");
        inputs.push((name, src));
    }
    inputs
}

/// Applies one random mutation to `bytes`.
fn mutate(bytes: &mut Vec<u8>, rng: &mut SplitMix64) {
    if bytes.is_empty() {
        bytes.push(rng.below(256) as u8);
        return;
    }
    match rng.below(6) {
        // Flip one byte.
        0 => {
            let i = rng.below(bytes.len());
            bytes[i] ^= 1u8 << rng.below(8);
        }
        // Insert a random byte.
        1 => {
            let i = rng.below(bytes.len() + 1);
            bytes.insert(i, rng.below(256) as u8);
        }
        // Delete one byte.
        2 => {
            let i = rng.below(bytes.len());
            bytes.remove(i);
        }
        // Delete one line.
        3 => {
            let lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
            let i = rng.below(lines.len());
            let kept: Vec<&[u8]> = lines
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, l)| *l)
                .collect();
            *bytes = kept.join(&b'\n');
        }
        // Duplicate one line (how `[section]` and directive repeats arise).
        4 => {
            let lines: Vec<Vec<u8>> = bytes.split(|&b| b == b'\n').map(<[u8]>::to_vec).collect();
            let i = rng.below(lines.len());
            let mut out: Vec<Vec<u8>> = Vec::with_capacity(lines.len() + 1);
            for (j, l) in lines.into_iter().enumerate() {
                if j == i {
                    out.push(l.clone());
                }
                out.push(l);
            }
            *bytes = out.join(&b'\n');
        }
        // Truncate.
        _ => {
            let i = rng.below(bytes.len());
            bytes.truncate(i);
        }
    }
}

#[test]
fn empty_labels_case_is_rejected_with_a_line_number() {
    let e = parse_case(CASE_EMPTY_LABELS).expect_err("empty [labels] must not parse");
    assert_eq!(e.line, 8, "{e}");
    assert!(e.message.contains("[labels]"), "{e}");
}

#[test]
fn mutated_inputs_never_panic_the_parsers() {
    // The parsers use catch_unwind internally for builder errors; silence
    // the default hook so expected unwinds don't spam the test log, and
    // restore it afterwards.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(run_fuzz_sweep);
    std::panic::set_hook(hook);
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

fn run_fuzz_sweep() {
    let alpha = Alphabet::from_labels(["doc", "keep", "drop", "a", "b"]);
    let mut failures: Vec<String> = Vec::new();
    for (name, src) in corpus() {
        for seed in 0..SEEDS {
            let mut rng = SplitMix64::new(seed.wrapping_mul(0x9e37_79b9) ^ src.len() as u64);
            let mut bytes = src.clone().into_bytes();
            for _ in 0..1 + rng.below(3) {
                mutate(&mut bytes, &mut rng);
            }
            let mutated = String::from_utf8_lossy(&bytes).into_owned();
            let checks: [ParserCheck<'_>; 5] = [
                ("parse_case", Box::new(|| drop(parse_case(&mutated)))),
                (
                    "parse_schema",
                    Box::new(|| {
                        let mut a = Alphabet::new();
                        drop(parse_schema(&mutated, &mut a));
                    }),
                ),
                (
                    "parse_transducer",
                    Box::new(|| drop(parse_transducer(&mutated, &alpha))),
                ),
                (
                    "parse_dtl_transducer",
                    Box::new(|| drop(parse_dtl_transducer(&mutated, &alpha))),
                ),
                (
                    // The daemon frames per newline, so feed each mutated
                    // line (as the server would) and the raw splice too.
                    "parse_request_line",
                    Box::new(|| {
                        for line in mutated.lines() {
                            drop(parse_request_line(line));
                            drop(recover_id(line));
                        }
                        drop(parse_request_line(&mutated));
                        drop(recover_id(&mutated));
                    }),
                ),
            ];
            for (parser, check) in checks {
                if catch_unwind(AssertUnwindSafe(check)).is_err() {
                    failures.push(format!(
                        "{parser} panicked on {name} seed {seed}:\n---\n{mutated}\n---"
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} parser panics on mutated inputs; first three:\n{}",
        failures.len(),
        failures
            .iter()
            .take(3)
            .cloned()
            .collect::<Vec<_>>()
            .join("\n")
    );
}
