//! Seeded equivalence suite for the lazy antichain inclusion layer
//! (DESIGN.md §13): over random DTD-shaped schema pairs, the on-the-fly
//! `included_in` / `inclusion_counterexample` route must agree with the
//! eager determinize → complement → intersect route — on the *verdict*
//! and on *witness validity* — and the budgeted wrappers must be inert
//! under generous fuel and fail fast under none.

use textpres::treeauto::{
    language_equal, nta_to_nbta, subset_nta, try_language_equal, try_subset_nta, EncSym, Nbta, Nta,
};
use textpres::trees::budget::Budget;
use tpx_workload::random_dtd;

/// The two schema NTAs of a seeded pair, trimmed and in ranked encoding.
fn ranked_pair(seed: u64, n_labels: usize) -> (Nta, Nta, Nbta<EncSym>, Nbta<EncSym>) {
    let n1 = random_dtd(n_labels, seed).nta();
    let n2 = random_dtd(n_labels, seed + 1000).nta();
    let a = nta_to_nbta(&n1).trim();
    let b = nta_to_nbta(&n2).trim();
    (n1, n2, a, b)
}

/// The eager baseline: L(a) ⊆ L(b) iff L(a) ∩ L(b)ᶜ = ∅, with the
/// complement built by full determinization.
fn eager_included(a: &Nbta<EncSym>, b: &Nbta<EncSym>) -> bool {
    a.intersect(&b.determinize().complement().to_nbta().trim())
        .is_empty()
}

#[test]
fn antichain_inclusion_matches_eager_route_on_random_dtd_pairs() {
    let mut separated = 0usize;
    for n_labels in [2usize, 3] {
        for seed in 0..12u64 {
            let ctx = format!("n_labels {n_labels}, seed {seed}");
            let (n1, n2, a, b) = ranked_pair(seed, n_labels);
            let eager = eager_included(&a, &b);
            assert_eq!(a.included_in(&b), eager, "{ctx}: verdict diverged");
            assert_eq!(subset_nta(&n1, &n2), eager, "{ctx}: Nta-level verdict");
            match a.inclusion_counterexample(&b) {
                Some(cex) => {
                    separated += 1;
                    assert!(!eager, "{ctx}: counterexample despite inclusion");
                    assert!(a.accepts(&cex), "{ctx}: witness not accepted by A");
                    assert!(!b.accepts(&cex), "{ctx}: witness accepted by B");
                }
                None => assert!(eager, "{ctx}: no counterexample despite exclusion"),
            }
        }
    }
    // The suite must exercise the separating branch; random DTD pairs
    // rarely stand in a subset relation, so only demand separations here
    // (the inclusion branch is pinned by the reflexivity test below).
    assert!(separated > 0, "no pair separated — suite is vacuous");
}

#[test]
fn antichain_inclusion_confirms_reflexive_and_union_inclusions() {
    // Pairs that *are* included by construction: A ⊆ A and A ⊆ A ∪ B.
    for seed in 0..8u64 {
        let (n1, _, a, b) = ranked_pair(seed, 3);
        assert!(a.included_in(&a), "seed {seed}: A ⊄ A");
        assert!(
            a.inclusion_counterexample(&a.union(&b)).is_none(),
            "seed {seed}: A ⊄ A ∪ B"
        );
        assert!(language_equal(&n1, &n1), "seed {seed}: A ≠ A");
    }
}

#[test]
fn intersect_witness_matches_product_emptiness() {
    for seed in 0..12u64 {
        let (_, _, a, b) = ranked_pair(seed, 3);
        let product_empty = a.intersect(&b).is_empty();
        match a.intersect_witness(&b) {
            Some(w) => {
                assert!(!product_empty, "seed {seed}: witness from empty product");
                assert!(a.accepts(&w), "seed {seed}: witness not in L(A)");
                assert!(b.accepts(&w), "seed {seed}: witness not in L(B)");
            }
            None => assert!(product_empty, "seed {seed}: no witness, product non-empty"),
        }
    }
}

#[test]
fn budgeted_inclusion_is_inert_when_generous_and_fails_on_zero_fuel() {
    let generous = Budget::default().with_fuel(50_000_000).start();
    let zero = Budget::default().with_fuel(0).start();
    for seed in 0..6u64 {
        let (n1, n2, _, _) = ranked_pair(seed, 3);
        assert_eq!(
            try_subset_nta(&n1, &n2, &generous).expect("generous fuel"),
            subset_nta(&n1, &n2),
            "seed {seed}: budget changed the subset verdict"
        );
        assert_eq!(
            try_language_equal(&n1, &n2, &generous).expect("generous fuel"),
            language_equal(&n1, &n2),
            "seed {seed}: budget changed the equality verdict"
        );
        assert!(
            try_subset_nta(&n1, &n2, &zero).is_err(),
            "seed {seed}: zero fuel must exhaust"
        );
    }
    assert!(generous.fuel_spent() > 0, "governed runs must account fuel");
}
