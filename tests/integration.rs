//! End-to-end integration tests across the whole workspace: the paper's
//! running example through every layer — parsing, validation, both
//! transducer models, both deciders, the maximal sub-schema, and the
//! extension tests.

use textpres::prelude::*;

#[test]
fn figure_1_through_every_layer() {
    // Trees + DTD (Sections 1–2).
    let mut sigma = tpx_trees::samples::recipe_alphabet();
    let input = tpx_trees::samples::recipe_tree(&mut sigma);
    let dtd = tpx_schema::samples::recipe_dtd(&sigma);
    assert!(dtd.validates(&input));
    assert!(dtd.is_reduced());

    // XML serialization round trip.
    let xml = tpx_trees::xml::to_xml(input.as_hedge(), &sigma);
    let back = tpx_trees::xml::parse_document(&xml, &mut sigma).unwrap();
    assert_eq!(*back.as_hedge(), *input.as_hedge());

    // The NTA abstraction accepts the same documents.
    let schema = dtd.to_nta();
    assert!(schema.accepts(&input));

    // Example 4.2 through evaluation + PTIME decision (Section 4).
    let t = tpx_topdown::samples::example_4_2(&sigma);
    let output = t.transform(&input);
    assert!(textpres::is_text_preserving_run(&input, &output));
    assert!(textpres::check_topdown(&t, &schema).is_preserving());

    // The same transducer as DTL (Section 5.1 translation) agrees.
    let dtl = tpx_dtl::from_topdown(&t);
    assert_eq!(dtl.transform(&input).unwrap(), output);

    // Example 5.15 (DTL_XPath) evaluates and is per-tree clean.
    let filter = tpx_dtl::samples::example_5_15(&sigma);
    let filtered = filter.transform(&input).unwrap();
    assert!(textpres::is_text_preserving_run(&input, &filtered));
    assert!(!tpx_dtl::config::copying_lemma_5_4(&filter, &input).unwrap());
    assert!(!tpx_dtl::config::rearranging_lemma_5_5(&filter, &input).unwrap());
}

#[test]
fn violations_are_detected_and_witnessed() {
    let sigma = tpx_trees::samples::recipe_alphabet();
    let schema = tpx_schema::samples::recipe_dtd(&sigma).to_nta();

    let copying = tpx_topdown::samples::copying_example(&sigma);
    let report = textpres::check_topdown(&copying, &schema);
    assert!(matches!(report, CheckReport::Copying { .. }));

    let rearranging = tpx_topdown::samples::rearranging_example(&sigma);
    match textpres::check_topdown(&rearranging, &schema) {
        CheckReport::Rearranging { witness } => {
            assert!(schema.accepts(&witness));
            assert!(tpx_topdown::semantic::rearranging_on(
                &rearranging,
                &witness
            ));
        }
        other => panic!("expected rearranging, got {other:?}"),
    }
}

#[test]
fn maximal_subschema_is_sound_and_maximal_on_samples() {
    // Copying under <footnote> only.
    let sigma = Alphabet::from_labels(["doc", "p", "footnote"]);
    let mut dtd = DtdBuilder::new(&sigma);
    dtd.start("doc");
    dtd.elem("doc", "(p | footnote)*");
    dtd.elem("p", "text");
    dtd.elem("footnote", "text");
    let schema = dtd.finish().to_nta();

    let mut tb = TransducerBuilder::new(&sigma, "q0");
    tb.state("qf");
    tb.rule("q0", "doc", "doc(q0)");
    tb.rule("q0", "p", "p(q0)");
    tb.rule("q0", "footnote", "footnote(qf qf)");
    tb.text_rule("q0");
    tb.text_rule("qf");
    let t = tb.finish();

    let max = textpres::topdown_maximal_subschema(&t, &schema);
    // Soundness: 30 sampled members are all semantically preserved.
    let mut found = 0;
    for seed in 0..60 {
        if let Some(tree) = tpx_workload::random_schema_tree(&max, 12, seed) {
            let unique = Tree::from_hedge(tpx_trees::make_value_unique(tree.as_hedge())).unwrap();
            assert!(tpx_topdown::semantic::text_preserving_on(&t, &unique));
            found += 1;
        }
        if found >= 30 {
            break;
        }
    }
    assert!(found >= 10, "sub-schema should be richly inhabited");
    // Maximality: everything carved out is a genuine counter-example.
    let carved = tpx_treeauto::difference_nta(&schema, &max);
    let cex = carved.witness().expect("the copying region is non-empty");
    let unique = Tree::from_hedge(tpx_trees::make_value_unique(cex.as_hedge())).unwrap();
    assert!(!tpx_topdown::semantic::text_preserving_on(&t, &unique));
}

#[test]
fn dtl_and_topdown_deciders_agree_via_translation() {
    // Tiny alphabet and schema so the symbolic DTL decider stays fast.
    let sigma = Alphabet::from_labels(["a", "b"]);
    let mut nb = NtaBuilder::new(&sigma);
    nb.root("u");
    nb.rule("u", "a", "(u | ut)*");
    nb.rule("u", "b", "(u | ut)*");
    nb.text_rule("ut");
    let schema = nb.finish();

    // Preserving case.
    let mut tb = TransducerBuilder::new(&sigma, "q0");
    tb.rule("q0", "a", "a(q0)");
    tb.rule("q0", "b", "b(q0)");
    tb.text_rule("q0");
    let good = tb.finish();
    assert!(textpres::check_topdown(&good, &schema).is_preserving());
    assert!(textpres::check_dtl(&tpx_dtl::from_topdown(&good), &schema).is_preserving());

    // Copying case.
    let mut tb = TransducerBuilder::new(&sigma, "q0");
    tb.rule("q0", "a", "a(q0 q0)");
    tb.text_rule("q0");
    let bad = tb.finish();
    assert!(!textpres::check_topdown(&bad, &schema).is_preserving());
    assert!(!textpres::check_dtl(&tpx_dtl::from_topdown(&bad), &schema).is_preserving());
}

#[test]
fn extension_tests_work_through_the_facade() {
    let sigma = tpx_trees::samples::recipe_alphabet();
    let schema = tpx_schema::samples::recipe_dtd(&sigma).to_nta();
    let t = tpx_topdown::samples::example_4_2(&sigma);
    assert!(tpx_topdown::extensions::text_preserving_and_keeps(
        &t,
        &schema,
        &[sigma.sym("instructions"), sigma.sym("description")]
    ));
    assert!(!tpx_topdown::extensions::text_preserving_and_keeps(
        &t,
        &schema,
        &[sigma.sym("comments")]
    ));
}

#[test]
fn xml_pipeline_handles_real_document_shapes() {
    let mut sigma = Alphabet::new();
    let doc = tpx_trees::xml::parse_document(
        "<?xml version=\"1.0\"?><book><ch title=\"1\">Once upon a <em>time</em>.</ch>\
         <!-- comment --><ch>The end.</ch></book>",
        &mut sigma,
    )
    .unwrap();
    assert_eq!(
        doc.text_content(),
        vec!["Once upon a", "time", ".", "The end."]
    );
    // Identity over the discovered alphabet preserves everything.
    let t = tpx_workload::identity_transducer(&sigma);
    let out = t.transform(&doc);
    assert_eq!(out, *doc.as_hedge());
}
