//! Replay suite for the differential-fuzzing regression corpus.
//!
//! Every `tests/regressions/*.case` file is a shrunk reproducer of a
//! divergence the fuzzer once observed (or a hand-minimized near-miss that
//! pins the replay machinery). The suite asserts that each case
//!
//! 1. parses, and its rendering is a parse/render fixpoint, and
//! 2. **no longer diverges** under [`textpres::diffcheck::recheck`] — a
//!    case that starts reproducing again is a regression.
//!
//! New entries come from `textpres fuzz --out tests/regressions`: fix the
//! underlying bug, keep the case file, and this suite guards the fix.

use textpres::diffcheck::{recheck, FuzzConfig};
use textpres::engine::Engine;
use textpres::format::{parse_case, render_case};

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/regressions");
    let mut cases = Vec::new();
    for entry in std::fs::read_dir(dir).expect("tests/regressions exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "case") {
            let src = std::fs::read_to_string(&path).expect("readable case file");
            cases.push((path.display().to_string(), src));
        }
    }
    assert!(!cases.is_empty(), "regression corpus must not be empty");
    cases.sort();
    cases
}

#[test]
fn corpus_parses_and_round_trips() {
    for (path, src) in corpus() {
        let rc = parse_case(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        let rendered = render_case(&rc);
        let reparsed = parse_case(&rendered).unwrap_or_else(|e| panic!("{path} re-parse: {e}"));
        assert_eq!(
            rendered,
            render_case(&reparsed),
            "{path}: render/parse is not a fixpoint"
        );
    }
}

#[test]
fn corpus_divergences_stay_fixed() {
    let engine = Engine::new();
    let cfg = FuzzConfig::default();
    for (path, src) in corpus() {
        let rc = parse_case(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        assert!(
            !recheck(&engine, &rc.case, rc.kind, &cfg),
            "{path}: the {} divergence reproduces again (seed {})\n{}",
            rc.kind,
            rc.seed,
            rc.detail
        );
    }
}
