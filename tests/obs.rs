//! Observability contract tests: tracing determinism across worker
//! counts, metrics aggregation, and the disabled-is-silent guarantee.
//!
//! Span *names* are deterministic — the pipelines run the same stages no
//! matter which worker executes them — so a sequential batch and a
//! `jobs = 4` batch over the same tasks must emit the same multiset of
//! span names and identical verdicts. Timings and interleaving may
//! differ, so only names and counters are compared, never durations.

use std::collections::BTreeMap;
use std::sync::Arc;

use textpres::engine::{
    CheckOptions, Decider, Engine, Metrics, Task, TopdownDecider, Tracer, Verdict,
};
use textpres::prelude::*;
use tpx_workload::transducers;

fn universal(alpha: &Alphabet) -> Nta {
    let mut b = NtaBuilder::new(alpha);
    b.root("u");
    for (_, name) in alpha.entries() {
        b.rule("u", name, "(u | ut)*");
    }
    b.text_rule("ut");
    b.finish()
}

/// Multiset of exited span names.
fn span_multiset(tracer: &Tracer) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for name in tracer.exit_span_names() {
        *counts.entry(name).or_insert(0usize) += 1;
    }
    counts
}

/// Runs the workload suite as a traced, metered batch on `jobs` workers.
fn run_batch(jobs: usize) -> (BTreeMap<&'static str, usize>, Vec<Verdict>, Metrics) {
    let alpha = transducers::plain_alphabet(2);
    let schema = universal(&alpha);
    let suite: Vec<_> = transducers::suite(&alpha, 4)
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    let deciders: Vec<TopdownDecider> = suite.iter().map(TopdownDecider::new).collect();
    let tasks: Vec<Task> = deciders
        .iter()
        .map(|d| (d as &dyn Decider, &schema))
        .collect();
    let tracer = Arc::new(Tracer::enabled());
    let metrics = Arc::new(Metrics::enabled());
    let engine = Engine::with_jobs(jobs)
        .with_tracer(tracer.clone())
        .with_metrics(metrics.clone());
    let verdicts: Vec<Verdict> = engine
        .check_many_governed(&tasks, &CheckOptions::unlimited())
        .into_iter()
        .map(|r| r.expect("suite checks succeed"))
        .collect();
    let spans = span_multiset(&tracer);
    drop(engine); // release the engine's clones so the Arc unwraps
    let metrics = Arc::try_unwrap(metrics).unwrap_or_else(|_| panic!("engine dropped"));
    (spans, verdicts, metrics)
}

#[test]
fn batch_tracing_is_deterministic_across_worker_counts() {
    let (spans_seq, verdicts_seq, metrics_seq) = run_batch(1);
    // Every engine-level stage span closed as often as it opened: the
    // Verdict stage reports account for the same stages the tracer saw.
    assert!(!spans_seq.is_empty());
    for v in &verdicts_seq {
        for s in &v.stats.stages {
            assert!(
                spans_seq.contains_key(s.stage),
                "stage {} missing from trace",
                s.stage
            );
        }
    }

    for jobs in [2usize, 4] {
        let (spans_par, verdicts_par, metrics_par) = run_batch(jobs);

        // Same span-name multiset, regardless of scheduling.
        assert_eq!(spans_seq, spans_par, "span multiset differs at jobs={jobs}");

        // Identical verdicts in task order.
        assert_eq!(verdicts_seq.len(), verdicts_par.len());
        for (a, b) in verdicts_seq.iter().zip(&verdicts_par) {
            assert_eq!(a.is_preserving(), b.is_preserving());
            assert_eq!(format!("{:?}", a.outcome), format!("{:?}", b.outcome));
        }

        // Counters are deterministic too: the scheduler prefetches each
        // distinct artifact exactly once before the checks that need it,
        // so hit/miss totals — and every other counter — agree. (Duration
        // and steal histograms are timing/scheduling-dependent and
        // deliberately not compared.)
        assert_eq!(
            metrics_seq.snapshot().counters,
            metrics_par.snapshot().counters,
            "metric counters differ at jobs={jobs}"
        );
    }
}

#[test]
fn disabled_tracer_and_metrics_emit_nothing() {
    let alpha = transducers::plain_alphabet(2);
    let schema = universal(&alpha);
    let t = transducers::identity_transducer(&alpha);
    let engine = Engine::new(); // disabled tracer + metrics by default
    let verdict = engine.check(&TopdownDecider::new(&t), &schema);
    assert!(verdict.is_preserving());
    assert!(!engine.tracer().is_enabled());
    assert!(engine.tracer().events().is_empty());
    assert!(engine.tracer().to_jsonl().is_empty());
    assert!(!engine.metrics().is_enabled());
    assert!(engine.metrics().snapshot().is_empty());
}

#[test]
fn single_check_trace_has_one_span_per_reported_stage() {
    let alpha = transducers::plain_alphabet(2);
    let schema = universal(&alpha);
    let t = transducers::identity_transducer(&alpha);
    let tracer = Arc::new(Tracer::enabled());
    let engine = Engine::new().with_tracer(tracer.clone());
    let verdict = engine.check(&TopdownDecider::new(&t), &schema);
    let spans = span_multiset(&tracer);
    for s in &verdict.stats.stages {
        assert_eq!(
            spans.get(s.stage),
            Some(&1),
            "stage {} should have exactly one span",
            s.stage
        );
    }
    // Enter/exit events pair up.
    let events = tracer.events();
    assert_eq!(events.len() % 2, 0);
    assert_eq!(
        events.iter().filter(|e| e.is_exit()).count() * 2,
        events.len()
    );
}
