//! Property-based tests of the paper's core invariants on random inputs.

use proptest::prelude::*;
use textpres::prelude::*;
use tpx_trees::make_value_unique;

/// A random small term-syntax tree over {a0, a1} with text leaves.
fn arb_tree_src(depth: u32) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a0".to_owned()),
        Just("a1".to_owned()),
        "[a-c]{1,3}".prop_map(|t| format!("\"{t}\"")),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        (
            prop_oneof![Just("a0"), Just("a1")],
            proptest::collection::vec(inner, 0..3),
        )
            .prop_map(|(l, kids)| format!("{l}({})", kids.join(" ")))
    })
}

fn parse(src: &str) -> (Alphabet, Tree) {
    let mut alpha = tpx_workload::transducers::plain_alphabet(2);
    let t = tpx_trees::term::parse_tree(src, &mut alpha).unwrap();
    (alpha, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.3 on random transducers and random trees: text-preserving
    /// on the value-unique version ⟺ neither copying nor rearranging.
    #[test]
    fn theorem_3_3(seed in 0u64..500, src in arb_tree_src(3)) {
        let (alpha, tree) = parse(&src);
        // Element-labelled roots only (text roots are trivially fine too,
        // but transducers start at Σ-labels).
        prop_assume!(matches!(tree.label(tree.root()), NodeLabel::Elem(_)));
        let t = tpx_workload::transducers::random_transducer(&alpha, 2, 0.7, seed);
        prop_assert!(tpx_topdown::semantic::theorem_3_3_holds_on(&t, &tree));
    }

    /// Lemma 4.3: top-down uniform transducers are admissible
    /// (Text-independent and Text-functional).
    #[test]
    fn lemma_4_3_admissibility(seed in 0u64..500, src in arb_tree_src(3)) {
        let (alpha, tree) = parse(&src);
        prop_assume!(matches!(tree.label(tree.root()), NodeLabel::Elem(_)));
        let t = tpx_workload::transducers::random_transducer(&alpha, 2, 0.7, seed);
        prop_assert!(tpx_topdown::semantic::admissible_on(&t, &tree));
    }

    /// The identity transformation is always text-preserving, and deleting
    /// subtrees never breaks preservation.
    #[test]
    fn identity_and_deletion_preserve(src in arb_tree_src(3)) {
        let (alpha, tree) = parse(&src);
        prop_assume!(matches!(tree.label(tree.root()), NodeLabel::Elem(_)));
        let id = tpx_workload::identity_transducer(&alpha);
        prop_assert!(tpx_topdown::semantic::text_preserving_on(&id, &tree));
        // Delete all a1-subtrees.
        let mut tb = TransducerBuilder::new(&alpha, "q0");
        tb.rule("q0", "a0", "a0(q0)");
        tb.text_rule("q0");
        let del = tb.finish();
        prop_assert!(tpx_topdown::semantic::text_preserving_on(&del, &tree));
    }

    /// Transducer reduction (Section 4.1) preserves the transformation.
    #[test]
    fn reduction_preserves_semantics(seed in 0u64..500, src in arb_tree_src(3)) {
        let (alpha, tree) = parse(&src);
        prop_assume!(matches!(tree.label(tree.root()), NodeLabel::Elem(_)));
        let t = tpx_workload::transducers::random_transducer(&alpha, 3, 0.6, seed);
        let r = t.reduce();
        prop_assert!(r.is_reduced());
        prop_assert_eq!(t.transform(&tree), r.transform(&tree));
    }

    /// The top-down → DTL translation (Section 5.1) is semantics-preserving.
    #[test]
    fn dtl_translation_equivalent(seed in 0u64..500, src in arb_tree_src(3)) {
        let (alpha, tree) = parse(&src);
        prop_assume!(matches!(tree.label(tree.root()), NodeLabel::Elem(_)));
        let t = tpx_workload::transducers::random_transducer(&alpha, 2, 0.7, seed);
        let dtl = tpx_dtl::from_topdown(&t);
        prop_assert_eq!(t.transform(&tree), dtl.transform(&tree).unwrap());
    }

    /// The subsequence relation really characterizes per-run preservation:
    /// a value-unique input is preserved iff no duplicate values and no
    /// inversions appear in the output.
    #[test]
    fn definition_2_2_vs_3_1(seed in 0u64..300, src in arb_tree_src(3)) {
        let (alpha, tree) = parse(&src);
        prop_assume!(matches!(tree.label(tree.root()), NodeLabel::Elem(_)));
        let unique = Tree::from_hedge(make_value_unique(tree.as_hedge())).unwrap();
        let t = tpx_workload::transducers::random_transducer(&alpha, 2, 0.7, seed);
        let preserved = tpx_topdown::semantic::text_preserving_on(&t, &unique);
        let copying = tpx_topdown::semantic::copying_on(&t, &unique);
        let rearranging = tpx_topdown::semantic::rearranging_on(&t, &unique);
        prop_assert_eq!(preserved, !copying && !rearranging);
    }

    /// XPath evaluation (Table 1) agrees with the XPath → MSO translation
    /// (evaluated naively) on random trees, for a library of expressions.
    #[test]
    fn xpath_vs_mso_on_random_trees(src in arb_tree_src(2)) {
        let (mut alpha, tree) = parse(&src);
        prop_assume!(tree.node_count() <= 10);
        for expr in ["child", "child[a0]/next", "(child)*[a1]", "parent/child"] {
            let path = tpx_xpath::parse_path(expr, &mut alpha).unwrap();
            let rel = tpx_xpath::all_pairs(&tree, &path);
            let (x, y) = (tpx_mso::Var(0), tpx_mso::Var(1));
            let mut gen = tpx_dtl::xpath_mso::gen_above(&[x, y]);
            let f = tpx_dtl::xpath_mso::path_expr_to_mso(&path, x, y, &mut gen);
            for &v in &tree.dfs() {
                for &u in &tree.dfs() {
                    let asg = tpx_mso::Assignment::new().bind(x, v).bind(y, u);
                    prop_assert_eq!(
                        tpx_mso::naive_eval(&tree, &f, &asg),
                        rel.contains(v, u),
                        "{} at {:?},{:?}", expr, v, u
                    );
                }
            }
        }
    }

    /// Schema validation agrees between the DTD and its NTA compilation on
    /// random trees.
    #[test]
    fn dtd_vs_nta_membership(src in arb_tree_src(3)) {
        let (alpha, tree) = parse(&src);
        let mut db = DtdBuilder::new(&alpha);
        db.start("a0");
        db.elem("a0", "(a0 | a1 | text)*");
        db.elem("a1", "a0* text?");
        let dtd = db.finish();
        let nta = dtd.to_nta();
        prop_assert_eq!(dtd.validates(&tree), nta.accepts(&tree));
    }
}
