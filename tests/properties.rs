//! Randomized tests of the paper's core invariants on seeded random inputs.
//!
//! Formerly proptest-based; rewritten over the in-repo deterministic PRNG
//! (`tpx_trees::rng`) so the suite runs in the offline build environment
//! where `proptest` is not resolvable. Each property runs on a fixed fan of
//! seeds; assertion messages carry the seed for replay.

use textpres::prelude::*;
use tpx_trees::make_value_unique;
use tpx_trees::rng::SplitMix64;

/// A random small term-syntax tree over {a0, a1} with text leaves,
/// mirroring the old proptest strategy: depth-bounded, ≤ 3 children.
fn random_tree_src(rng: &mut SplitMix64, depth: usize) -> String {
    if depth == 0 || rng.chance(0.25) {
        return match rng.below(3) {
            0 => "a0".to_owned(),
            1 => "a1".to_owned(),
            _ => {
                let len = rng.range_inclusive(1, 3);
                let text: String = (0..len)
                    .map(|_| char::from(b'a' + rng.below(3) as u8))
                    .collect();
                format!("\"{text}\"")
            }
        };
    }
    let label = if rng.chance(0.5) { "a0" } else { "a1" };
    let kids: Vec<String> = (0..rng.below(3))
        .map(|_| random_tree_src(rng, depth - 1))
        .collect();
    if kids.is_empty() {
        label.to_owned()
    } else {
        format!("{label}({})", kids.join(" "))
    }
}

fn parse(src: &str) -> (Alphabet, Tree) {
    let mut alpha = tpx_workload::transducers::plain_alphabet(2);
    let t = tpx_trees::term::parse_tree(src, &mut alpha).unwrap();
    (alpha, t)
}

/// A seeded (tree, transducer-seed) fan. Only element-labelled roots are
/// yielded (transducers start at Σ-labels; text roots are trivially fine).
fn cases(n: usize, depth: usize) -> impl Iterator<Item = (u64, Alphabet, Tree)> {
    (0..n as u64 * 4)
        .filter_map(move |seed| {
            let mut rng = SplitMix64::new(seed.wrapping_mul(0x5851_F42D).wrapping_add(7));
            let src = random_tree_src(&mut rng, depth);
            let (alpha, tree) = parse(&src);
            matches!(tree.label(tree.root()), NodeLabel::Elem(_)).then_some((seed, alpha, tree))
        })
        .take(n)
}

/// Theorem 3.3 on random transducers and random trees: text-preserving on
/// the value-unique version ⟺ neither copying nor rearranging.
#[test]
fn theorem_3_3() {
    for (seed, alpha, tree) in cases(64, 3) {
        let t = tpx_workload::transducers::random_transducer(&alpha, 2, 0.7, seed);
        assert!(
            tpx_topdown::semantic::theorem_3_3_holds_on(&t, &tree),
            "seed {seed}"
        );
    }
}

/// Lemma 4.3: top-down uniform transducers are admissible
/// (Text-independent and Text-functional).
#[test]
fn lemma_4_3_admissibility() {
    for (seed, alpha, tree) in cases(64, 3) {
        let t = tpx_workload::transducers::random_transducer(&alpha, 2, 0.7, seed);
        assert!(
            tpx_topdown::semantic::admissible_on(&t, &tree),
            "seed {seed}"
        );
    }
}

/// The identity transformation is always text-preserving, and deleting
/// subtrees never breaks preservation.
#[test]
fn identity_and_deletion_preserve() {
    for (seed, alpha, tree) in cases(64, 3) {
        let id = tpx_workload::identity_transducer(&alpha);
        assert!(
            tpx_topdown::semantic::text_preserving_on(&id, &tree),
            "seed {seed}"
        );
        // Delete all a1-subtrees.
        let mut tb = TransducerBuilder::new(&alpha, "q0");
        tb.rule("q0", "a0", "a0(q0)");
        tb.text_rule("q0");
        let del = tb.finish();
        assert!(
            tpx_topdown::semantic::text_preserving_on(&del, &tree),
            "seed {seed}"
        );
    }
}

/// Transducer reduction (Section 4.1) preserves the transformation.
#[test]
fn reduction_preserves_semantics() {
    for (seed, alpha, tree) in cases(64, 3) {
        let t = tpx_workload::transducers::random_transducer(&alpha, 3, 0.6, seed);
        let r = t.reduce();
        assert!(r.is_reduced(), "seed {seed}");
        assert_eq!(t.transform(&tree), r.transform(&tree), "seed {seed}");
    }
}

/// The top-down → DTL translation (Section 5.1) is semantics-preserving.
#[test]
fn dtl_translation_equivalent() {
    for (seed, alpha, tree) in cases(64, 3) {
        let t = tpx_workload::transducers::random_transducer(&alpha, 2, 0.7, seed);
        let dtl = tpx_dtl::from_topdown(&t);
        assert_eq!(
            t.transform(&tree),
            dtl.transform(&tree).unwrap(),
            "seed {seed}"
        );
    }
}

/// The subsequence relation really characterizes per-run preservation:
/// a value-unique input is preserved iff no duplicate values and no
/// inversions appear in the output.
#[test]
fn definition_2_2_vs_3_1() {
    for (seed, alpha, tree) in cases(64, 3) {
        let unique = Tree::from_hedge(make_value_unique(tree.as_hedge())).unwrap();
        let t = tpx_workload::transducers::random_transducer(&alpha, 2, 0.7, seed);
        let preserved = tpx_topdown::semantic::text_preserving_on(&t, &unique);
        let copying = tpx_topdown::semantic::copying_on(&t, &unique);
        let rearranging = tpx_topdown::semantic::rearranging_on(&t, &unique);
        assert_eq!(preserved, !copying && !rearranging, "seed {seed}");
    }
}

/// XPath evaluation (Table 1) agrees with the XPath → MSO translation
/// (evaluated naively) on random trees, for a library of expressions.
#[test]
fn xpath_vs_mso_on_random_trees() {
    let mut done = 0;
    for (seed, alpha, tree) in cases(64, 2) {
        if tree.node_count() > 10 {
            continue;
        }
        done += 1;
        let mut alpha = alpha;
        for expr in ["child", "child[a0]/next", "(child)*[a1]", "parent/child"] {
            let path = tpx_xpath::parse_path(expr, &mut alpha).unwrap();
            let rel = tpx_xpath::all_pairs(&tree, &path);
            let (x, y) = (tpx_mso::Var(0), tpx_mso::Var(1));
            let mut gen = tpx_dtl::xpath_mso::gen_above(&[x, y]);
            let f = tpx_dtl::xpath_mso::path_expr_to_mso(&path, x, y, &mut gen);
            for &v in &tree.dfs() {
                for &u in &tree.dfs() {
                    let asg = tpx_mso::Assignment::new().bind(x, v).bind(y, u);
                    assert_eq!(
                        tpx_mso::naive_eval(&tree, &f, &asg),
                        rel.contains(v, u),
                        "seed {seed}: {expr} at {v:?},{u:?}"
                    );
                }
            }
        }
        if done >= 24 {
            break;
        }
    }
    assert!(done >= 8, "too few small trees sampled: {done}");
}

/// Schema validation agrees between the DTD and its NTA compilation on
/// random trees.
#[test]
fn dtd_vs_nta_membership() {
    for (seed, alpha, tree) in cases(64, 3) {
        let mut db = DtdBuilder::new(&alpha);
        db.start("a0");
        db.elem("a0", "(a0 | a1 | text)*");
        db.elem("a1", "a0* text?");
        let dtd = db.finish();
        let nta = dtd.to_nta();
        assert_eq!(dtd.validates(&tree), nta.accepts(&tree), "seed {seed}");
    }
}
