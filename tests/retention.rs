//! Seeded equivalence suite for the text-retention analysis: over random
//! DTDs, random top-down transducers and random label subsets, the
//! symbolic [`TextRetentionDecider`] must agree with the bounded
//! enumerate-and-run oracle — a *keeps-everything* verdict is contradicted
//! by no enumerated schema tree, and a *deletes* verdict carries a
//! deleted-path witness that validates exactly (schema path, through a
//! selected label, no transducer path run). The mixed-analysis batch test
//! pins the cache-sharing contract: one schema's shared artifacts compile
//! exactly once across analyses, deterministically on 1/2/4 workers.

use textpres::engine::{
    CheckOptions, Decider, Engine, Outcome, OutputConformanceDecider, Task, TextRetentionDecider,
    TopdownDecider, Verdict, OUTPUT_CONFORMANCE, TEXT_PRESERVATION, TEXT_RETENTION,
};
use textpres::prelude::*;
use textpres::topdown::{path_automaton_nta, path_automaton_transducer, PathSym};
use textpres::trees::make_value_unique;
use tpx_workload::{random_dtd, random_transducer};

/// The value-unique version of `tree` (so output values identify their
/// input occurrences).
fn unique_tree(tree: &Tree) -> Tree {
    Tree::from_hedge(make_value_unique(tree.as_hedge())).expect("uniquifying keeps the shape")
}

/// The enumerate-and-run oracle: does `t` delete some text value of `tree`
/// sitting strictly below a node labeled in `labels`?
fn deleted_under(t: &Transducer, tree: &Tree, labels: &[Symbol]) -> bool {
    let unique = unique_tree(tree);
    let out = t.transform(&unique);
    let kept: std::collections::HashSet<&str> = out.text_content().into_iter().collect();
    let h = unique.as_hedge();
    let mut stack: Vec<(textpres::trees::NodeId, bool)> =
        h.roots().iter().map(|&v| (v, false)).collect();
    while let Some((v, below)) = stack.pop() {
        match h.label(v) {
            NodeLabel::Text(value) => {
                if below && !kept.contains(value.as_str()) {
                    return true;
                }
            }
            NodeLabel::Elem(s) => {
                let below = below || labels.contains(s);
                stack.extend(h.children(v).iter().map(|&c| (c, below)));
            }
        }
    }
    false
}

/// Deterministic label subsets for one seed: every singleton, a
/// seed-derived mixed subset, and the full alphabet.
fn label_subsets(alpha: &Alphabet, seed: u64) -> Vec<Vec<Symbol>> {
    let symbols: Vec<Symbol> = alpha.symbols().collect();
    let mut subsets: Vec<Vec<Symbol>> = symbols.iter().map(|&s| vec![s]).collect();
    let mixed: Vec<Symbol> = symbols
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| (seed >> i) & 1 == 1)
        .map(|(_, s)| s)
        .collect();
    if !mixed.is_empty() && mixed.len() < symbols.len() {
        subsets.push(mixed);
    }
    subsets.push(symbols);
    subsets
}

#[test]
fn retention_decider_matches_bounded_enumerate_and_run_oracle() {
    let engine = Engine::new();
    let mut deletions = 0usize;
    for n_labels in [2usize, 3] {
        for seed in 0..10u64 {
            let schema = random_dtd(n_labels, seed);
            let nta = schema.nta();
            let t = random_transducer(&schema.alpha, 2, 0.8, seed ^ 0xDEAD_BEEF);
            let trees = textpres::dtl::bounded::enumerate_schema_trees(&nta, 5, 200);
            for labels in label_subsets(&schema.alpha, seed) {
                let ctx = format!("n_labels {n_labels}, seed {seed}, labels {labels:?}");
                let verdict = engine.check(&TextRetentionDecider::new(&t, labels.clone()), &nta);
                assert_eq!(verdict.analysis, TEXT_RETENTION, "{ctx}");
                assert_eq!(verdict.decider, "topdown/retention", "{ctx}");
                match &verdict.outcome {
                    Outcome::Preserving => {
                        for tree in &trees {
                            assert!(
                                !deleted_under(&t, tree, &labels),
                                "{ctx}: decider says retains; the oracle found a deletion on {}",
                                tree.display(&schema.alpha)
                            );
                        }
                    }
                    Outcome::DeletesText { path } => {
                        deletions += 1;
                        assert!(
                            path_automaton_nta(&nta).accepts(path),
                            "{ctx}: witness path is not a schema path"
                        );
                        assert!(
                            path.iter()
                                .any(|p| labels.iter().any(|&l| *p == PathSym::Elem(l))),
                            "{ctx}: witness path misses the selected labels"
                        );
                        assert!(
                            !path_automaton_transducer(&t).accepts(path),
                            "{ctx}: transducer keeps the witness path's value"
                        );
                    }
                    other => panic!("{ctx}: foreign outcome {other:?}"),
                }
            }
        }
    }
    // The suite must exercise both verdicts; random transducers with
    // density 0.8 drop rules often enough that deletions are plentiful.
    assert!(deletions > 0, "no deletion detected — suite is vacuous");
}

#[test]
fn retention_shares_the_schema_artifact_with_text_preservation() {
    // The retention decider declares the *same* analysis-free
    // `topdown/schema` stage as the text-preservation decider, so running
    // either one first means the other hits the cache.
    let schema = random_dtd(3, 7);
    let nta = schema.nta();
    let t = random_transducer(&schema.alpha, 2, 0.8, 99);
    let labels: Vec<Symbol> = schema.alpha.symbols().collect();
    let engine = Engine::new();
    let first = engine.check(&TopdownDecider::new(&t), &nta);
    assert_eq!(
        first.stats.stage("topdown/schema").unwrap().cache_hit,
        Some(false)
    );
    let second = engine.check(&TextRetentionDecider::new(&t, labels.clone()), &nta);
    assert_eq!(
        second.stats.stage("topdown/schema").unwrap().cache_hit,
        Some(true),
        "retention must reuse the schema artifact"
    );
    // The retention transducer artifact is label-independent: a different
    // label set against the same transducer hits it.
    let third = engine.check(&TextRetentionDecider::new(&t, labels[..1].to_vec()), &nta);
    assert_eq!(
        third
            .stats
            .stage("topdown/retention/transducer")
            .unwrap()
            .cache_hit,
        Some(true),
        "the retention transducer artifact must be shared across label sets"
    );
}

#[test]
fn mixed_analysis_batch_compiles_shared_artifacts_once_and_is_deterministic() {
    let schema = random_dtd(3, 11);
    let nta = schema.nta();
    let t = random_transducer(&schema.alpha, 2, 0.8, 42);
    let labels: Vec<Symbol> = schema.alpha.symbols().collect();
    let mut verdicts_by_jobs: Vec<Vec<(&'static str, bool)>> = Vec::new();
    for jobs in [1usize, 2, 4] {
        let engine = Engine::with_jobs(jobs);
        let preservation = TopdownDecider::new(&t);
        let retention = TextRetentionDecider::new(&t, labels.clone());
        let conformance = OutputConformanceDecider::new(&t, &nta);
        let tasks: Vec<Task> = vec![
            (&preservation as &dyn Decider, &nta),
            (&retention as &dyn Decider, &nta),
            (&conformance as &dyn Decider, &nta),
        ];
        let results = engine.check_many_governed(&tasks, &CheckOptions::unlimited());
        let verdicts: Vec<Verdict> = results
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("jobs {jobs}: {e}")))
            .collect();
        assert_eq!(verdicts[0].analysis, TEXT_PRESERVATION);
        assert_eq!(verdicts[1].analysis, TEXT_RETENTION);
        assert_eq!(verdicts[2].analysis, OUTPUT_CONFORMANCE);
        // The batch needs exactly four distinct artifacts: the schema
        // bundle (shared by preservation and retention), the two
        // transducer-side bundles, and the conformance inverse. Each
        // compiles exactly once; every per-check stage report is a hit
        // because the prefetch tasks own the misses.
        let stats = engine.cache_stats();
        assert_eq!(
            stats.misses, 4,
            "jobs {jobs}: shared artifacts must compile exactly once"
        );
        assert_eq!(stats.entries, 4, "jobs {jobs}");
        for v in &verdicts {
            for s in v.stats.stages.iter().filter(|s| s.cache_hit.is_some()) {
                assert_eq!(
                    s.cache_hit,
                    Some(true),
                    "jobs {jobs}: check-side stage {} must be prefetched",
                    s.stage
                );
            }
        }
        verdicts_by_jobs.push(
            verdicts
                .iter()
                .map(|v| (v.analysis.name, v.is_preserving()))
                .collect(),
        );
    }
    assert_eq!(verdicts_by_jobs[0], verdicts_by_jobs[1]);
    assert_eq!(verdicts_by_jobs[0], verdicts_by_jobs[2]);
}

#[test]
fn conformance_decider_agrees_with_the_transform_oracle_on_enumerated_trees() {
    // Identity conforms to its own schema; a violating verdict's witness
    // image must really fail target validation.
    for seed in 0..8u64 {
        let schema = random_dtd(2, seed);
        let nta = schema.nta();
        let t = random_transducer(&schema.alpha, 2, 0.8, seed ^ 0x5151);
        let engine = Engine::new();
        let verdict = engine.check(&OutputConformanceDecider::new(&t, &nta), &nta);
        assert_eq!(verdict.analysis, OUTPUT_CONFORMANCE, "seed {seed}");
        match &verdict.outcome {
            Outcome::Preserving => {
                for tree in textpres::dtl::bounded::enumerate_schema_trees(&nta, 5, 200) {
                    assert!(
                        textpres::topdown::conforms_on(&t, &tree, &nta),
                        "seed {seed}: conformance holds symbolically but {} violates",
                        tree.display(&schema.alpha)
                    );
                }
            }
            Outcome::NonConforming { witness } => {
                assert!(nta.accepts(witness), "seed {seed}: witness outside schema");
                assert!(
                    !textpres::topdown::conforms_on(&t, witness, &nta),
                    "seed {seed}: witness image conforms after all"
                );
            }
            other => panic!("seed {seed}: foreign outcome {other:?}"),
        }
    }
}
