//! End-to-end tests of the XSLT frontend: `textpres compile-xslt` on the
//! committed example stylesheets (including the exact diagnostic snapshot
//! for the untranslatable ones), stylesheet sniffing in `check`, and the
//! serve path.
//!
//! Run from the package root (`crates/core`), so the committed examples
//! live at `../../examples/xslt/`.

use std::process::{Command, Output};

fn example(name: &str) -> String {
    format!("{}/../../examples/xslt/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_textpres"))
        .args(args)
        .output()
        .expect("spawn textpres")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn sanitize_bpmn_reports_both_value_of_lines_and_exits_1() {
    let out = run(&[
        "compile-xslt",
        &example("bpmn.schema"),
        &example("sanitize_bpmn.xsl"),
    ]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    // Snapshot of the diagnostics: exactly the two xsl:value-of calls,
    // each once (wildcard templates must not multiply reports per label),
    // with their true source lines.
    let diag_lines: Vec<&str> = err
        .lines()
        .filter(|l| l.trim_start().starts_with("line "))
        .map(str::trim)
        .collect();
    assert_eq!(
        diag_lines,
        vec![
            "line 24: unsupported xsl:value-of: computes a string; \
             transducer rules cannot output Text values",
            "line 26: unsupported xsl:value-of: computes a string; \
             transducer rules cannot output Text values",
        ],
        "full stderr: {err}"
    );
}

#[test]
fn tct_answer_lists_every_unsupported_construct_with_lines() {
    let out = run(&[
        "compile-xslt",
        &example("tct.schema"),
        &example("tct_answer.xsl"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    let constructs: Vec<&str> = err
        .lines()
        .filter_map(|l| l.trim().strip_prefix("line "))
        .filter_map(|l| l.split_once(": unsupported "))
        .map(|(line, rest)| {
            assert!(
                line.parse::<usize>().is_ok(),
                "line number in {l:?}",
                l = line
            );
            // Constructs themselves contain colons (xsl:output), so split
            // at the colon-space that starts the message.
            rest.split_once(": ").expect("construct: message").0
        })
        .collect();
    assert_eq!(
        constructs,
        vec![
            "xsl:output",
            "match pattern \"/\"",
            "xsl:choose",
            "xsl:text",
            "xsl:value-of",
            "xsl:text",
        ],
        "full stderr: {err}"
    );
}

#[test]
fn fragment_variant_compiles_and_round_trips_through_the_text_format() {
    let out = run(&[
        "compile-xslt",
        &example("bpmn.schema"),
        &example("sanitize_bpmn_fragment.xsl"),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let rendered = stdout(&out);
    // The printed transducer must re-parse over the same alphabet
    // (prefixed labels like bpmn:text included).
    let mut alpha = textpres::prelude::Alphabet::new();
    let schema_src = std::fs::read_to_string(example("bpmn.schema")).unwrap();
    textpres::format::parse_schema(&schema_src, &mut alpha).expect("schema parses");
    let t = textpres::format::parse_transducer(&rendered, &alpha)
        .expect("compile-xslt output re-parses");
    assert_eq!(t.symbol_count(), alpha.len());
}

#[test]
fn fragment_variant_is_dtl_expressible_and_the_dtl_re_parses() {
    let out = run(&[
        "compile-xslt",
        "--dtl",
        &example("bpmn.schema"),
        &example("sanitize_bpmn_fragment.xsl"),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let mut alpha = textpres::prelude::Alphabet::new();
    let schema_src = std::fs::read_to_string(example("bpmn.schema")).unwrap();
    textpres::format::parse_schema(&schema_src, &mut alpha).expect("schema parses");
    let rendered = stdout(&out);
    assert!(textpres::format::is_dtl_transducer(&rendered));
    textpres::format::parse_dtl_transducer(&rendered, &alpha).expect("DTL output re-parses");
}

#[test]
fn fredracor_checks_text_preserving_via_stylesheet_sniffing() {
    for extra in [&[][..], &["--fuel", "50000000"][..]] {
        let mut args = vec![
            "check".to_owned(),
            example("tei.schema"),
            example("fredracor_tei.xsl"),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let args: Vec<&str> = args.iter().map(String::as_str).collect();
        let out = run(&args);
        assert_eq!(
            out.status.code(),
            Some(0),
            "stdout: {} stderr: {}",
            stdout(&out),
            stderr(&out)
        );
        assert!(stdout(&out).contains("text-preserving"), "{}", stdout(&out));
    }
}

#[test]
fn check_refuses_untranslatable_stylesheets_as_usage_error() {
    let out = run(&[
        "check",
        &example("bpmn.schema"),
        &example("sanitize_bpmn.xsl"),
    ]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("not fully translatable"));
    assert!(stderr(&out).contains("line 24"));
}

#[test]
fn analyze_retention_accepts_a_stylesheet() {
    // The fragment sanitizer deletes element children of bpmn:text but
    // keeps text — retention on bpmn:b (whose subtree text survives only
    // outside bpmn:text) must find the deletion under bpmn:text.
    let out = run(&[
        "analyze",
        &example("bpmn.schema"),
        &example("sanitize_bpmn_fragment.xsl"),
        "--analysis",
        "text-retention",
        "--label",
        "bpmn:text",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {} stderr: {}",
        stdout(&out),
        stderr(&out)
    );
    assert!(stdout(&out).contains("retains"), "{}", stdout(&out));
}

#[test]
fn batch_mixes_stylesheets_and_text_transducers() {
    let dir = std::env::temp_dir().join(format!("textpres-xslt-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let plain = dir.join("identity.txt");
    std::fs::write(
        &plain,
        "initial q0\n\
         rule q0 tei:TEI -> tei:TEI(q0)\n\
         rule q0 tei:text -> tei:text(q0)\n\
         rule q0 tei:body -> tei:body(q0)\n\
         rule q0 tei:div1 -> tei:div1(q0)\n\
         rule q0 tei:div2 -> tei:div2(q0)\n\
         rule q0 tei:div -> tei:div(q0)\n\
         rule q0 tei:sp -> tei:sp(q0)\n\
         rule q0 tei:speaker -> tei:speaker(q0)\n\
         rule q0 tei:l -> tei:l(q0)\n\
         text q0\n",
    )
    .unwrap();
    let out = run(&[
        "batch",
        &example("tei.schema"),
        &example("fredracor_tei.xsl"),
        plain.to_str().unwrap(),
    ]);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {} stderr: {}",
        stdout(&out),
        stderr(&out)
    );
    assert!(
        stdout(&out).contains("2/2 text-preserving"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn generated_corpus_agrees_with_its_ground_truth() {
    // A slice of the E11 corpus through the real frontend + engine: every
    // generated stylesheet must compile cleanly (they are all inside the
    // fragment by construction) and the text-preservation verdict must
    // match the generator's ground truth.
    use textpres::engine::{Engine, TopdownDecider};
    let cases = tpx_workload::xslt_corpus(48, 11);
    let mut failing = 0usize;
    for case in &cases {
        let artifact = textpres::frontend::compile_stylesheet(&case.schema_src, &case.xslt_src)
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let verdict =
            Engine::new().check(&TopdownDecider::new(&artifact.transducer), &artifact.schema);
        assert_eq!(
            verdict.is_preserving(),
            case.expect_preserving,
            "{}:\n{}",
            case.name,
            case.xslt_src
        );
        failing += usize::from(!case.expect_preserving);
    }
    // The sample must actually exercise both verdicts.
    assert!(failing > 0 && failing < cases.len());
}

#[test]
fn serve_checks_a_registered_stylesheet_and_caches_the_compile() {
    use textpres::serve::{ServeConfig, Server};
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());

    let schema_src = std::fs::read_to_string(example("tei.schema")).unwrap();
    let xslt_src = std::fs::read_to_string(example("fredracor_tei.xsl")).unwrap();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut roundtrip = |frame: &str| -> String {
        use std::io::{BufRead, Write};
        stream.write_all(frame.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    };
    // A stylesheet registers under kind "transducer" — sniffing decides.
    let reg = format!(
        "{{\"type\":\"register\",\"name\":\"x\",\"kind\":\"transducer\",\"text\":{}}}",
        textpres::obs::quote(&xslt_src)
    );
    assert!(roundtrip(&reg).contains("\"ok\":true"));
    let check = format!(
        "{{\"type\":\"check\",\"schema\":{},\"transducer_ref\":\"x\"}}",
        textpres::obs::quote(&schema_src)
    );
    let first = roundtrip(&check);
    assert!(
        first.contains("\"ok\":true") && first.contains("\"verdict\":\"pass\""),
        "{first}"
    );
    let second = roundtrip(&check);
    assert!(second.contains("\"verdict\":\"pass\""), "{second}");
    // An untranslatable stylesheet is a bad request, not a crash.
    let bad_src = std::fs::read_to_string(example("tct_answer.xsl")).unwrap();
    let bad = format!(
        "{{\"type\":\"check\",\"schema\":{},\"transducer\":{}}}",
        textpres::obs::quote(&std::fs::read_to_string(example("tct.schema")).unwrap()),
        textpres::obs::quote(&bad_src)
    );
    let resp = roundtrip(&bad);
    assert!(
        resp.contains("bad-request") && resp.contains("not fully translatable"),
        "{resp}"
    );
    assert!(roundtrip("{\"type\":\"shutdown\"}").contains("\"ok\":true"));
    daemon.join().unwrap().expect("clean drain");
}
