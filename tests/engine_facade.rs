//! The facade ↔ engine contract: `textpres::check_*` delegate to the
//! engine with identical verdicts, and engine witnesses round-trip through
//! `textpres::format`.

use textpres::engine::{DtlDecider, Engine, Outcome, TopdownDecider};
use textpres::format::{parse_witness, render_path, render_witness};
use textpres::prelude::*;
use tpx_workload::transducers;

fn universal(alpha: &Alphabet) -> Nta {
    let mut b = NtaBuilder::new(alpha);
    b.root("u");
    for (_, name) in alpha.entries() {
        b.rule("u", name, "(u | ut)*");
    }
    b.text_rule("ut");
    b.finish()
}

#[test]
fn facade_check_topdown_equals_engine_verdict() {
    let alpha = transducers::plain_alphabet(2);
    let schema = universal(&alpha);
    for (_, t) in transducers::suite(&alpha, 3) {
        let facade = textpres::check_topdown(&t, &schema);
        let verdict = Engine::new().check(&TopdownDecider::new(&t), &schema);
        assert_eq!(facade.is_preserving(), verdict.is_preserving());
        match (&facade, &verdict.outcome) {
            (CheckReport::TextPreserving, Outcome::Preserving) => {}
            (CheckReport::Copying { path: a }, Outcome::Copying { path: b }) => {
                assert_eq!(a, b)
            }
            (CheckReport::Rearranging { witness: a }, Outcome::Rearranging { witness: b }) => {
                assert_eq!(render_witness(a, &alpha), render_witness(b, &alpha))
            }
            (f, e) => panic!("facade {f:?} vs engine {e:?}"),
        }
    }
}

#[test]
fn facade_check_dtl_equals_engine_verdict() {
    let alpha = Alphabet::from_labels(["a", "b"]);
    let schema = universal(&alpha);
    let mut b = DtlBuilder::new(&alpha, "q0");
    b.rule_simple("q0", "a", "a", "q0", "child");
    b.rule_simple("q0", "b", "b", "q0", "child");
    b.text_rule("q0");
    let t = b.finish();
    let facade = textpres::check_dtl(&t, &schema);
    let verdict = Engine::new().check(&DtlDecider::new(&t), &schema);
    assert!(facade.is_preserving());
    assert!(verdict.is_preserving());
}

#[test]
fn rearranging_witness_round_trips_through_format() {
    let alpha = textpres::trees::samples::recipe_alphabet();
    let schema = textpres::schema::samples::recipe_dtd(&alpha).to_nta();
    let t = textpres::topdown::samples::rearranging_example(&alpha);
    let verdict = Engine::new().check(&TopdownDecider::new(&t), &schema);
    let Outcome::Rearranging { witness } = &verdict.outcome else {
        panic!("sample must rearrange over the recipe schema, got {verdict:?}");
    };
    // Render → parse → render is the identity, and the reparsed tree is
    // still a schema tree (so the witness survives serialization intact).
    let rendered = render_witness(witness, &alpha);
    let mut scratch = alpha.clone();
    let reparsed = parse_witness(&rendered, &mut scratch).expect("rendered witness parses");
    assert_eq!(rendered, render_witness(&reparsed, &scratch));
    assert!(schema.accepts(&reparsed));
}

#[test]
fn dtl_witness_round_trips_through_format() {
    let alpha = Alphabet::from_labels(["a", "b"]);
    let schema = universal(&alpha);
    use textpres::xpath::{Axis, PathExpr};
    let mut t = DtlTransducer::new(XPathPatterns, 1, textpres::dtl::DtlState(0));
    let c1 = t.add_binary_pattern(PathExpr::Axis(Axis::Child));
    let c2 = t.add_binary_pattern(PathExpr::Axis(Axis::Child));
    t.add_rule(
        textpres::dtl::DtlState(0),
        textpres::xpath::NodeExpr::Label(alpha.sym("a")),
        vec![textpres::dtl::Rhs::Elem(
            alpha.sym("a"),
            vec![
                textpres::dtl::Rhs::Call(textpres::dtl::DtlState(0), c1),
                textpres::dtl::Rhs::Call(textpres::dtl::DtlState(0), c2),
            ],
        )],
    );
    t.set_text_rule(textpres::dtl::DtlState(0), true);
    let verdict = Engine::new().check(&DtlDecider::new(&t), &schema);
    let Outcome::NotPreserving { witness } = &verdict.outcome else {
        panic!("doubling must be detected");
    };
    let rendered = render_witness(witness, &alpha);
    let mut scratch = alpha.clone();
    let reparsed = parse_witness(&rendered, &mut scratch).unwrap();
    assert_eq!(rendered, render_witness(&reparsed, &scratch));
    assert!(schema.accepts(&reparsed));
}

#[test]
fn copying_path_renders_readably() {
    let alpha = transducers::plain_alphabet(2);
    let schema = universal(&alpha);
    let t = transducers::copier_at_depth(&alpha, 3, 1);
    let verdict = Engine::new().check(&TopdownDecider::new(&t), &schema);
    let Outcome::Copying { path } = &verdict.outcome else {
        panic!("copier must copy over the universal schema");
    };
    let rendered = render_path(path, &alpha);
    assert!(rendered.ends_with("text()"), "{rendered}");
    assert!(!rendered.starts_with('/'), "{rendered}");
}
