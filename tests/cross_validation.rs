//! Cross-validation of the symbolic deciders against ground truth:
//!
//! * the PTIME decider (Theorem 4.11) against semantic evaluation on
//!   sampled schema trees and against its own witnesses,
//! * the copying NFA route (Lemma 4.9) against the copying NTA route
//!   (tree-level Lemma 4.5) on random transducers,
//! * the DTL operational checks (Lemmas 5.4/5.5) against semantic
//!   evaluation on random inputs.

use textpres::prelude::*;
use tpx_trees::make_value_unique;

fn universal(alpha: &Alphabet) -> Nta {
    let mut b = NtaBuilder::new(alpha);
    b.root("u");
    for (_, name) in alpha.entries() {
        b.rule("u", name, "(u | ut)*");
    }
    b.text_rule("ut");
    b.finish()
}

/// The decider's verdict must match exhaustive semantic checking on many
/// sampled schema trees; its witnesses must be genuine.
#[test]
fn topdown_decider_vs_semantics_on_random_transducers() {
    let alpha = tpx_workload::transducers::plain_alphabet(2);
    let schema = universal(&alpha);
    let mut preserving_count = 0;
    let mut violating_count = 0;
    for seed in 0..40 {
        let t = tpx_workload::transducers::random_transducer(&alpha, 2, 0.8, seed);
        let report = textpres::check_topdown(&t, &schema);
        match &report {
            CheckReport::TextPreserving => {
                preserving_count += 1;
                // No sampled tree may violate.
                for tree_seed in 0..30 {
                    if let Some(tree) = tpx_workload::random_schema_tree(&schema, 10, tree_seed) {
                        let unique = Tree::from_hedge(make_value_unique(tree.as_hedge())).unwrap();
                        assert!(
                            tpx_topdown::semantic::text_preserving_on(&t, &unique),
                            "decider said preserving but seed {seed}/{tree_seed} violates"
                        );
                    }
                }
            }
            CheckReport::Rearranging { witness } => {
                violating_count += 1;
                assert!(
                    schema.accepts(witness),
                    "seed {seed}: witness outside schema"
                );
                assert!(
                    tpx_topdown::semantic::rearranging_on(&t, witness),
                    "seed {seed}: rearranging witness not semantically rearranging"
                );
            }
            CheckReport::Copying { path } => {
                violating_count += 1;
                // The path must be a schema path with a transducer run.
                let a_n = tpx_topdown::path_automaton_nta(&schema);
                let a_t = tpx_topdown::path_automaton_transducer(&t);
                assert!(
                    a_n.accepts(path),
                    "seed {seed}: witness path outside schema"
                );
                assert!(a_t.accepts(path), "seed {seed}: no run on witness path");
            }
        }
    }
    // The random family must exercise both outcomes.
    assert!(preserving_count > 0, "random suite never preserving");
    assert!(violating_count > 0, "random suite never violating");
}

/// Lemma 4.9's NFA construction and the tree-level copying NTA accept the
/// same verdicts.
#[test]
fn copying_nfa_route_agrees_with_nta_route() {
    let alpha = tpx_workload::transducers::plain_alphabet(2);
    let schema = universal(&alpha);
    for seed in 0..60 {
        let t = tpx_workload::transducers::random_transducer(&alpha, 2, 0.7, seed);
        let via_nfa = tpx_topdown::decide::copying_witness(&t, &schema).is_some();
        let via_nta = !tpx_topdown::subschema::copying_nta(&t)
            .intersect(&schema)
            .trim()
            .is_empty();
        assert_eq!(via_nfa, via_nta, "seed {seed}");
    }
}

/// The ground-truth transducer families get the right verdict at several
/// scales (E1's workload sanity).
#[test]
fn workload_suite_ground_truth() {
    let alpha = tpx_workload::transducers::plain_alphabet(3);
    let schema = universal(&alpha);
    for n in [2, 4, 8] {
        for (kind, t) in tpx_workload::transducers::suite(&alpha, n) {
            let verdict = textpres::check_topdown(&t, &schema).is_preserving();
            assert_eq!(
                verdict,
                kind == tpx_workload::TransducerKind::Preserving,
                "kind {kind:?} at n={n}"
            );
        }
    }
}

/// DTL per-tree operational checks (Lemmas 5.4/5.5) agree with semantic
/// evaluation on random trees, through the top-down → DTL translation.
#[test]
fn dtl_lemma_checks_vs_semantics_on_random_inputs() {
    let alpha = tpx_workload::transducers::plain_alphabet(2);
    let cfg = tpx_workload::TreeGenConfig {
        n_symbols: 2,
        max_depth: 3,
        max_children: 3,
        text_prob: 0.5,
    };
    for seed in 0..25 {
        let td = tpx_workload::transducers::random_transducer(&alpha, 2, 0.8, seed);
        let dtl = tpx_dtl::from_topdown(&td);
        for tree_seed in 0..8 {
            let tree = tpx_workload::random_tree(&cfg, 1000 + tree_seed);
            let sem_copy = tpx_dtl::config::copying_on(&dtl, &tree).unwrap();
            let lem_copy = tpx_dtl::config::copying_lemma_5_4(&dtl, &tree).unwrap();
            assert_eq!(sem_copy, lem_copy, "copying seed {seed}/{tree_seed}");
            let sem_re = tpx_dtl::config::rearranging_on(&dtl, &tree).unwrap();
            let lem_re = tpx_dtl::config::rearranging_lemma_5_5(&dtl, &tree).unwrap();
            assert_eq!(sem_re, lem_re, "rearranging seed {seed}/{tree_seed}");
            // And the DTL translation agrees with the original transducer.
            assert_eq!(
                td.transform(&tree),
                dtl.transform(&tree).unwrap(),
                "translation seed {seed}/{tree_seed}"
            );
        }
    }
}

/// The bounded-enumeration baseline never contradicts the PTIME decider
/// (it is sound, and complete up to its bound).
#[test]
fn bounded_baseline_consistent_with_decider() {
    let alpha = tpx_workload::transducers::plain_alphabet(2);
    let schema = universal(&alpha);
    for seed in 0..15 {
        let td = tpx_workload::transducers::random_transducer(&alpha, 2, 0.8, seed);
        let dtl = tpx_dtl::from_topdown(&td);
        let decider_preserving = textpres::check_topdown(&td, &schema).is_preserving();
        let bounded = tpx_dtl::bounded::bounded_counterexample(&dtl, &schema, 5, 2000).unwrap();
        if let Some(w) = bounded {
            assert!(
                !decider_preserving,
                "seed {seed}: bounded found {w:?} but decider says preserving"
            );
        }
        // (If the bounded search finds nothing, either verdict is possible:
        // the counter-example may simply be larger than the bound.)
    }
}
