//! # `tpx-schema`: schema languages (DTDs)
//!
//! The paper abstracts DTDs as extended context-free grammars (Section 2): a
//! DTD is `(Σ ⊎ {text}, C, d, S_d)` where `d` maps element labels to regular
//! *content models* over `Σ ⊎ {text}` and `S_d` is a set of start symbols.
//! The `text` symbol is a placeholder for text nodes.
//!
//! Provided here:
//!
//! * [`Dtd`] with validation against text trees,
//! * the *reduction* normal form the paper assumes (every label with a
//!   defined content model occurs in some valid tree) — [`Dtd::reduce`],
//! * compilation to an [`Nta`] (Relax-NG-level
//!   abstraction) — [`Dtd::to_nta`],
//! * the recipe DTD of Example 2.3 — [`samples`].

pub mod dtd_syntax;
pub mod samples;

use std::collections::HashMap;

use tpx_automata::{Nfa, Regex};
use tpx_treeauto::{Nta, State};
use tpx_trees::{Alphabet, Hedge, NodeLabel, Symbol, Tree};

/// A symbol of a DTD content model: an element label or the `text`
/// placeholder.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DtdSym {
    /// An element label from `Σ`.
    Elem(Symbol),
    /// The placeholder for text nodes.
    Text,
}

/// A Document Type Definition over an alphabet of `n_symbols` labels.
#[derive(Clone, Debug)]
pub struct Dtd {
    n_symbols: usize,
    /// `d(σ)`, if defined.
    content: Vec<Option<Regex<DtdSym>>>,
    /// Compiled NFAs (cached at construction).
    compiled: Vec<Option<Nfa<DtdSym>>>,
    /// Start symbols `S_d`.
    starts: Vec<Symbol>,
}

impl Dtd {
    /// An empty DTD over `n_symbols` labels.
    pub fn new(n_symbols: usize) -> Self {
        Dtd {
            n_symbols,
            content: vec![None; n_symbols],
            compiled: vec![None; n_symbols],
            starts: Vec::new(),
        }
    }

    /// Number of element labels.
    pub fn symbol_count(&self) -> usize {
        self.n_symbols
    }

    /// Adds a start symbol.
    pub fn add_start(&mut self, s: Symbol) {
        if !self.starts.contains(&s) {
            self.starts.push(s);
        }
    }

    /// The start symbols.
    pub fn starts(&self) -> &[Symbol] {
        &self.starts
    }

    /// Defines `d(σ) = content`.
    pub fn set_content(&mut self, s: Symbol, content: Regex<DtdSym>) {
        self.compiled[s.index()] = Some(content.to_nfa());
        self.content[s.index()] = Some(content);
    }

    /// The content model `d(σ)`, if defined.
    pub fn content(&self, s: Symbol) -> Option<&Regex<DtdSym>> {
        self.content[s.index()].as_ref()
    }

    /// Size: labels with rules plus total content-model size.
    pub fn size(&self) -> usize {
        self.content
            .iter()
            .flatten()
            .map(|r| 1 + r.size())
            .sum::<usize>()
    }

    /// Whether `t` is valid: the root is labelled with a start symbol and
    /// every element node's child word is in its content model.
    pub fn validates(&self, t: &Tree) -> bool {
        let NodeLabel::Elem(root) = t.label(t.root()) else {
            return false;
        };
        if !self.starts.contains(root) {
            return false;
        }
        self.validates_hedge(t.as_hedge())
    }

    fn validates_hedge(&self, h: &Hedge) -> bool {
        h.dfs().into_iter().all(|v| match h.label(v) {
            NodeLabel::Text(_) => h.children(v).is_empty(),
            NodeLabel::Elem(s) => {
                let Some(nfa) = self.compiled[s.index()].as_ref() else {
                    return false;
                };
                let word: Vec<DtdSym> = h
                    .children(v)
                    .iter()
                    .map(|&c| match h.label(c) {
                        NodeLabel::Elem(cs) => DtdSym::Elem(*cs),
                        NodeLabel::Text(_) => DtdSym::Text,
                    })
                    .collect();
                nfa.accepts(&word)
            }
        })
    }

    /// The symbols that can derive a finite valid subtree (`text` counts as
    /// always realizable).
    fn realizable(&self) -> Vec<bool> {
        let mut ok = vec![false; self.n_symbols];
        loop {
            let mut changed = false;
            for s in 0..self.n_symbols {
                if ok[s] {
                    continue;
                }
                let Some(nfa) = self.compiled[s].as_ref() else {
                    continue;
                };
                // Does the content model accept a word over realizable symbols?
                let allowed = |sym: &DtdSym| match sym {
                    DtdSym::Text => true,
                    DtdSym::Elem(e) => ok[e.index()],
                };
                if nfa_accepts_filtered(nfa, allowed) {
                    ok[s] = true;
                    changed = true;
                }
            }
            if !changed {
                return ok;
            }
        }
    }

    /// Whether the DTD is reduced: every label with a defined content model
    /// occurs in some valid tree.
    pub fn is_reduced(&self) -> bool {
        let useful = self.useful_symbols();
        (0..self.n_symbols).all(|s| self.content[s].is_none() || useful[s])
    }

    /// Symbols occurring in some valid tree (reachable from a start symbol
    /// through realizable content).
    fn useful_symbols(&self) -> Vec<bool> {
        let realizable = self.realizable();
        let mut reach = vec![false; self.n_symbols];
        let mut stack: Vec<usize> = Vec::new();
        for &s in &self.starts {
            if realizable[s.index()] && !reach[s.index()] {
                reach[s.index()] = true;
                stack.push(s.index());
            }
        }
        while let Some(s) = stack.pop() {
            let Some(nfa) = self.compiled[s].as_ref() else {
                continue;
            };
            // A child symbol is useful if it appears on some accepting path
            // over realizable symbols.
            for e in nfa_useful_symbols(nfa, &realizable) {
                if let DtdSym::Elem(c) = e {
                    if !reach[c.index()] {
                        reach[c.index()] = true;
                        stack.push(c.index());
                    }
                }
            }
        }
        reach
    }

    /// The reduction normal form: drops content models of labels that occur
    /// in no valid tree. `L(reduce(D)) = L(D)`; the paper assumes all DTDs
    /// are reduced (the transformation is PTIME, Section 2).
    pub fn reduce(&self) -> Dtd {
        let useful = self.useful_symbols();
        let mut out = Dtd::new(self.n_symbols);
        for (s, _) in useful.iter().enumerate().filter(|(_, &u)| u) {
            if let Some(re) = &self.content[s] {
                out.set_content(Symbol(s as u32), re.clone());
            }
        }
        for &s in &self.starts {
            if useful[s.index()] {
                out.add_start(s);
            }
        }
        out
    }

    /// Compiles to an equivalent NTA: one state per element label plus one
    /// text state.
    pub fn to_nta(&self) -> Nta {
        let mut nta = Nta::new(self.n_symbols);
        // State i = label i; state n = text.
        for _ in 0..=self.n_symbols {
            nta.add_state();
        }
        let text_state = State(self.n_symbols as u32);
        nta.set_text_ok(text_state, true);
        for s in 0..self.n_symbols {
            if let Some(re) = &self.content[s] {
                let mapped = map_regex(re, text_state);
                nta.set_content(State(s as u32), Symbol(s as u32), mapped.to_nfa());
            }
        }
        for &s in &self.starts {
            nta.add_root(State(s.0));
        }
        nta
    }
}

fn map_regex(re: &Regex<DtdSym>, text_state: State) -> Regex<State> {
    match re {
        Regex::Empty => Regex::Empty,
        Regex::Epsilon => Regex::Epsilon,
        Regex::Sym(DtdSym::Elem(s)) => Regex::Sym(State(s.0)),
        Regex::Sym(DtdSym::Text) => Regex::Sym(text_state),
        Regex::Concat(a, b) => map_regex(a, text_state).then(map_regex(b, text_state)),
        Regex::Alt(a, b) => map_regex(a, text_state).or(map_regex(b, text_state)),
        Regex::Star(a) => map_regex(a, text_state).star(),
    }
}

/// Whether `nfa` accepts some word whose symbols all satisfy `allowed`.
fn nfa_accepts_filtered(nfa: &Nfa<DtdSym>, allowed: impl Fn(&DtdSym) -> bool) -> bool {
    let mut visited = vec![false; nfa.state_count()];
    let mut stack: Vec<tpx_automata::StateId> = nfa.initial_states().to_vec();
    for &q in &stack {
        visited[q.index()] = true;
    }
    while let Some(q) = stack.pop() {
        if nfa.is_final(q) {
            return true;
        }
        for (a, r) in nfa.transitions_from(q) {
            if allowed(a) && !visited[r.index()] {
                visited[r.index()] = true;
                stack.push(*r);
            }
        }
    }
    false
}

/// Symbols on accepting paths of `nfa` over realizable element symbols.
fn nfa_useful_symbols(nfa: &Nfa<DtdSym>, realizable: &[bool]) -> Vec<DtdSym> {
    let allowed = |a: &DtdSym| match a {
        DtdSym::Text => true,
        DtdSym::Elem(e) => realizable[e.index()],
    };
    // Forward pass.
    let mut fwd = vec![false; nfa.state_count()];
    let mut stack: Vec<tpx_automata::StateId> = nfa.initial_states().to_vec();
    for &q in &stack {
        fwd[q.index()] = true;
    }
    while let Some(q) = stack.pop() {
        for (a, r) in nfa.transitions_from(q) {
            if allowed(a) && !fwd[r.index()] {
                fwd[r.index()] = true;
                stack.push(*r);
            }
        }
    }
    // Backward pass.
    let mut rev: Vec<Vec<(DtdSym, tpx_automata::StateId)>> = vec![Vec::new(); nfa.state_count()];
    for (p, a, r) in nfa.transitions() {
        rev[r.index()].push((*a, p));
    }
    let mut bwd = vec![false; nfa.state_count()];
    let mut stack: Vec<tpx_automata::StateId> = nfa.states().filter(|&q| nfa.is_final(q)).collect();
    for &q in &stack {
        bwd[q.index()] = true;
    }
    while let Some(q) = stack.pop() {
        for &(a, r) in &rev[q.index()] {
            if allowed(&a) && !bwd[r.index()] {
                bwd[r.index()] = true;
                stack.push(r);
            }
        }
    }
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (p, a, r) in nfa.transitions() {
        if fwd[p.index()] && bwd[r.index()] && allowed(a) && seen.insert(*a) {
            out.push(*a);
        }
    }
    out
}

/// Convenience builder with named labels and textual content models.
///
/// Content-model syntax is that of [`tpx_automata::parse_regex`], with the
/// reserved identifier `text` denoting the text placeholder:
///
/// ```
/// use tpx_trees::Alphabet;
/// use tpx_schema::DtdBuilder;
/// let mut sigma = Alphabet::from_labels(["doc", "p"]);
/// let mut b = DtdBuilder::new(&sigma);
/// b.start("doc");
/// b.elem("doc", "p*");
/// b.elem("p", "text");
/// let dtd = b.finish();
/// assert!(dtd.is_reduced());
/// ```
pub struct DtdBuilder {
    dtd: Dtd,
    sym_by_name: HashMap<String, Symbol>,
}

impl DtdBuilder {
    /// Starts building over the given alphabet.
    pub fn new(alpha: &Alphabet) -> Self {
        DtdBuilder {
            dtd: Dtd::new(alpha.len()),
            sym_by_name: alpha.entries().map(|(s, n)| (n.to_owned(), s)).collect(),
        }
    }

    fn sym(&self, name: &str) -> Symbol {
        *self
            .sym_by_name
            .get(name)
            .unwrap_or_else(|| panic!("label {name:?} not in alphabet"))
    }

    /// Declares `name` a start symbol.
    pub fn start(&mut self, name: &str) -> &mut Self {
        let s = self.sym(name);
        self.dtd.add_start(s);
        self
    }

    /// Defines `d(name) = content` (regex over labels and `text`).
    pub fn elem(&mut self, name: &str, content: &str) -> &mut Self {
        let s = self.sym(name);
        let by_name = &self.sym_by_name;
        let re = tpx_automata::parse_regex(content, &mut |n: &str| {
            if n == "text" {
                DtdSym::Text
            } else {
                DtdSym::Elem(*by_name.get(n).unwrap_or_else(|| {
                    panic!("label {n:?} not in alphabet (content model of {name:?})")
                }))
            }
        })
        .unwrap_or_else(|e| panic!("bad content model for {name:?}: {e}"));
        self.dtd.set_content(s, re);
        self
    }

    /// Finishes building.
    pub fn finish(self) -> Dtd {
        self.dtd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpx_trees::term::parse_tree;

    fn alpha() -> Alphabet {
        Alphabet::from_labels(["doc", "sec", "p", "note"])
    }

    fn dtd(al: &Alphabet) -> Dtd {
        let mut b = DtdBuilder::new(al);
        b.start("doc");
        b.elem("doc", "sec+");
        b.elem("sec", "(p | note)*");
        b.elem("p", "text");
        b.elem("note", "text?");
        b.finish()
    }

    #[test]
    fn validation() {
        let mut al = alpha();
        let d = dtd(&al);
        for (src, ok) in [
            (r#"doc(sec(p("x") note))"#, true),
            (r#"doc(sec)"#, true),
            (r#"doc"#, false),                  // sec+ requires one
            (r#"sec(p("x"))"#, false),          // wrong root
            (r#"doc(sec(p))"#, false),          // p needs text
            (r#"doc(sec(p("x" "y")))"#, false), // exactly one text
            (r#"doc(sec(note("n")))"#, true),
        ] {
            let t = parse_tree(src, &mut al).unwrap();
            assert_eq!(d.validates(&t), ok, "{src}");
        }
    }

    #[test]
    fn example_2_3_recipe_dtd_validates_figure_1() {
        let mut al = tpx_trees::samples::recipe_alphabet();
        let d = samples::recipe_dtd(&al);
        let t = tpx_trees::samples::recipe_tree(&mut al);
        assert!(d.validates(&t));
        assert!(d.is_reduced());
    }

    #[test]
    fn reduction_removes_useless_labels() {
        let al = alpha();
        let mut b = DtdBuilder::new(&al);
        b.start("doc");
        b.elem("doc", "sec*");
        b.elem("sec", "text");
        // `p` requires itself: never realizable.
        b.elem("p", "p");
        // `note` realizable but unreachable from doc.
        b.elem("note", "text");
        let d = b.finish();
        assert!(!d.is_reduced());
        let r = d.reduce();
        assert!(r.is_reduced());
        assert!(r.content(al.sym("p")).is_none());
        assert!(r.content(al.sym("note")).is_none());
        assert!(r.content(al.sym("doc")).is_some());
        // Language unchanged.
        let mut al2 = alpha();
        for src in [r#"doc(sec("x"))"#, r#"doc"#, r#"note("x")"#] {
            let t = parse_tree(src, &mut al2).unwrap();
            assert_eq!(d.validates(&t), r.validates(&t), "{src}");
        }
    }

    #[test]
    fn to_nta_preserves_language() {
        let mut al = alpha();
        let d = dtd(&al);
        let nta = d.to_nta();
        for src in [
            r#"doc(sec(p("x") note))"#,
            r#"doc(sec)"#,
            r#"doc"#,
            r#"sec(p("x"))"#,
            r#"doc(sec(p))"#,
            r#"doc(sec(note("n")) sec)"#,
        ] {
            let t = parse_tree(src, &mut al).unwrap();
            assert_eq!(nta.accepts(&t), d.validates(&t), "{src}");
        }
    }

    #[test]
    fn nta_of_recipe_dtd_accepts_figure_1() {
        let mut al = tpx_trees::samples::recipe_alphabet();
        let d = samples::recipe_dtd(&al);
        let nta = d.to_nta();
        let t = tpx_trees::samples::recipe_tree(&mut al);
        assert!(nta.accepts(&t));
        assert!(!nta.is_empty());
        let w = nta.witness().unwrap();
        assert!(d.validates(&w));
    }

    #[test]
    fn start_symbol_enforced() {
        let mut al = alpha();
        let mut b = DtdBuilder::new(&al);
        b.start("doc");
        b.start("sec");
        b.elem("doc", "%eps");
        b.elem("sec", "%eps");
        let d = b.finish();
        assert!(d.validates(&parse_tree("doc", &mut al).unwrap()));
        assert!(d.validates(&parse_tree("sec", &mut al).unwrap()));
        assert!(!d.validates(&parse_tree("p", &mut al).unwrap()));
    }

    #[test]
    fn text_nodes_with_children_rejected() {
        // Not constructible via the builder, but the validator guards it.
        let mut al = alpha();
        let d = dtd(&al);
        let t = parse_tree(r#"doc(sec(p("x")))"#, &mut al).unwrap();
        assert!(d.validates(&t));
    }
}
