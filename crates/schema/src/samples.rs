//! The recipe DTD of Example 2.3.

use crate::{Dtd, DtdBuilder};
use tpx_trees::Alphabet;

/// Builds the DTD of Example 2.3 over the recipe alphabet
/// ([`tpx_trees::samples::recipe_alphabet`]).
///
/// ```text
/// recipes      ↦ recipe*
/// recipe       ↦ description · ingredients · instructions · comments
/// ingredients  ↦ item*
/// instructions ↦ (br + text)*
/// br           ↦ ε
/// comments     ↦ negative · positive
/// positive     ↦ comment*
/// negative     ↦ comment*
/// description  ↦ text
/// item         ↦ text
/// comment      ↦ text            (the paper's "d(σ) = text" default)
/// ```
pub fn recipe_dtd(alpha: &Alphabet) -> Dtd {
    let mut b = DtdBuilder::new(alpha);
    b.start("recipes");
    b.elem("recipes", "recipe*");
    b.elem("recipe", "description ingredients instructions comments");
    b.elem("ingredients", "item*");
    b.elem("instructions", "(br | text)*");
    b.elem("br", "%eps");
    b.elem("comments", "negative positive");
    b.elem("positive", "comment*");
    b.elem("negative", "comment*");
    b.elem("description", "text");
    b.elem("item", "text");
    b.elem("comment", "text");
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipe_dtd_is_reduced_and_nonempty() {
        let al = tpx_trees::samples::recipe_alphabet();
        let d = recipe_dtd(&al);
        assert!(d.is_reduced());
        let nta = d.to_nta();
        assert!(!nta.is_empty());
    }

    #[test]
    fn instructions_mix_br_and_text() {
        let mut al = tpx_trees::samples::recipe_alphabet();
        let d = recipe_dtd(&al);
        let t = tpx_trees::term::parse_tree(
            r#"recipes(recipe(description("d") ingredients
                 instructions("step1" br "step2")
                 comments(negative positive)))"#,
            &mut al,
        )
        .unwrap();
        assert!(d.validates(&t));
    }
}
