//! A parser for (the element-declaration fragment of) real DTD syntax, so
//! schemas can be loaded from actual `.dtd` files:
//!
//! ```text
//! <!ELEMENT recipes (recipe*)>
//! <!ELEMENT recipe (description, ingredients, instructions, comments)>
//! <!ELEMENT instructions (#PCDATA | br)*>
//! <!ELEMENT br EMPTY>
//! <!ELEMENT description (#PCDATA)>
//! ```
//!
//! Supported content models: `EMPTY`, `(#PCDATA)`, mixed content
//! `(#PCDATA | a | b)*`, and full element content with `,` (sequence),
//! `|` (choice), `?`, `*`, `+` and nesting. `ANY` and attribute-list
//! declarations (`<!ATTLIST …>`, skipped), comments and processing
//! instructions are tolerated.
//!
//! The start symbol is the first declared element, matching common
//! practice for standalone DTDs.

use crate::{Dtd, DtdSym};
use std::fmt;
use tpx_automata::Regex;
use tpx_trees::Alphabet;

/// Error from [`parse_dtd`].
#[derive(Clone, Debug)]
pub struct DtdParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for DtdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DTD parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for DtdParseError {}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, m: impl Into<String>) -> Result<T, DtdParseError> {
        Err(DtdParseError {
            offset: self.pos,
            message: m.into(),
        })
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.bump();
            }
            if self.src[self.pos..].starts_with("<!--") {
                match self.src[self.pos..].find("-->") {
                    Some(i) => self.pos += i + 3,
                    None => {
                        self.pos = self.src.len();
                    }
                }
            } else {
                return;
            }
        }
    }

    fn name(&mut self) -> Result<&'a str, DtdParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || "_-.:".contains(c)) {
            self.bump();
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(&self.src[start..self.pos])
    }

    fn expect(&mut self, c: char) -> Result<(), DtdParseError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {c:?}"))
        }
    }

    /// Parses a content-particle expression after `<!ELEMENT name`.
    fn content(&mut self, alpha: &mut Alphabet) -> Result<Regex<DtdSym>, DtdParseError> {
        self.skip_ws();
        if self.src[self.pos..].starts_with("EMPTY") {
            self.pos += 5;
            return Ok(Regex::Epsilon);
        }
        if self.src[self.pos..].starts_with("ANY") {
            return self.err("ANY content is not supported (list the children explicitly)");
        }
        self.particle(alpha)
    }

    fn particle(&mut self, alpha: &mut Alphabet) -> Result<Regex<DtdSym>, DtdParseError> {
        self.skip_ws();
        let base = if self.peek() == Some('(') {
            self.bump();
            self.skip_ws();
            if self.src[self.pos..].starts_with("#PCDATA") {
                self.pos += 7;
                // Mixed content: (#PCDATA) or (#PCDATA | a | b)*.
                let mut alts = vec![Regex::Sym(DtdSym::Text)];
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some('|') => {
                            self.bump();
                            self.skip_ws();
                            let n = self.name()?;
                            alts.push(Regex::Sym(DtdSym::Elem(alpha.intern(n))));
                        }
                        Some(')') => {
                            self.bump();
                            break;
                        }
                        _ => return self.err("expected '|' or ')' in mixed content"),
                    }
                }
                // XML requires the trailing '*' when elements are mixed in.
                self.skip_ws();
                if self.peek() == Some('*') {
                    self.bump();
                    return Ok(Regex::any(alts).star());
                }
                if alts.len() > 1 {
                    return self.err("mixed content with elements requires a trailing '*'");
                }
                // Plain (#PCDATA): any amount of text.
                return Ok(Regex::Sym(DtdSym::Text).star());
            }
            // Grouped element content: seq/choice of particles.
            let first = self.particle(alpha)?;
            self.skip_ws();
            let group = match self.peek() {
                Some(',') => {
                    let mut items = vec![first];
                    while self.peek() == Some(',') {
                        self.bump();
                        items.push(self.particle(alpha)?);
                        self.skip_ws();
                    }
                    Regex::seq(items)
                }
                Some('|') => {
                    let mut items = vec![first];
                    while self.peek() == Some('|') {
                        self.bump();
                        items.push(self.particle(alpha)?);
                        self.skip_ws();
                    }
                    Regex::any(items)
                }
                _ => first,
            };
            self.expect(')')?;
            group
        } else {
            let n = self.name()?;
            Regex::Sym(DtdSym::Elem(alpha.intern(n)))
        };
        // Occurrence indicator.
        Ok(match self.peek() {
            Some('?') => {
                self.bump();
                base.opt()
            }
            Some('*') => {
                self.bump();
                base.star()
            }
            Some('+') => {
                self.bump();
                base.plus()
            }
            _ => base,
        })
    }
}

/// Parses a DTD document into a [`Dtd`], interning element names into
/// `alpha`. The first declared element becomes the start symbol.
pub fn parse_dtd(src: &str, alpha: &mut Alphabet) -> Result<Dtd, DtdParseError> {
    let mut p = P { src, pos: 0 };
    let mut decls: Vec<(tpx_trees::Symbol, Regex<DtdSym>)> = Vec::new();
    let mut start: Option<tpx_trees::Symbol> = None;
    loop {
        p.skip_ws();
        if p.pos >= src.len() {
            break;
        }
        if p.src[p.pos..].starts_with("<!ELEMENT") {
            p.pos += "<!ELEMENT".len();
            p.skip_ws();
            let name = p.name()?.to_owned();
            let sym = alpha.intern(&name);
            let content = p.content(alpha)?;
            p.expect('>')?;
            if start.is_none() {
                start = Some(sym);
            }
            decls.push((sym, content));
        } else if p.src[p.pos..].starts_with("<!ATTLIST")
            || p.src[p.pos..].starts_with("<!ENTITY")
            || p.src[p.pos..].starts_with("<?")
        {
            // Skip to the closing '>'.
            match p.src[p.pos..].find('>') {
                Some(i) => p.pos += i + 1,
                None => return p.err("unterminated declaration"),
            }
        } else {
            return p.err("expected a declaration");
        }
    }
    let Some(start) = start else {
        return Err(DtdParseError {
            offset: 0,
            message: "no <!ELEMENT> declarations found".into(),
        });
    };
    let mut dtd = Dtd::new(alpha.len());
    dtd.add_start(start);
    for (sym, content) in decls {
        dtd.set_content(sym, content);
    }
    Ok(dtd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpx_trees::term::parse_tree;

    const RECIPE_DTD: &str = r#"
<!-- the DTD of Example 2.3, in real DTD syntax -->
<!ELEMENT recipes (recipe*)>
<!ELEMENT recipe (description, ingredients, instructions, comments)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT ingredients (item*)>
<!ELEMENT item (#PCDATA)>
<!ELEMENT instructions (#PCDATA | br)*>
<!ELEMENT br EMPTY>
<!ELEMENT comments (negative, positive)>
<!ELEMENT negative (comment*)>
<!ELEMENT positive (comment*)>
<!ELEMENT comment (#PCDATA)>
"#;

    #[test]
    fn parses_the_recipe_dtd_and_matches_the_builder_version() {
        let mut alpha = tpx_trees::samples::recipe_alphabet();
        let parsed = parse_dtd(RECIPE_DTD, &mut alpha).unwrap();
        let mut fig1_alpha = alpha.clone();
        let fig1 = tpx_trees::samples::recipe_tree(&mut fig1_alpha);
        assert!(parsed.validates(&fig1));
        // The hand-built Example 2.3 DTD uses `text` (exactly one text
        // node) where XML's `(#PCDATA)` means "any character data" (we
        // model it as `text*`), so the parsed language is a superset.
        let built = crate::samples::recipe_dtd(&alpha);
        assert!(tpx_treeauto::subset_nta(&built.to_nta(), &parsed.to_nta()));
        // And the difference is exactly about text multiplicity: an empty
        // description is fine for (#PCDATA) but not for `text`.
        let mut a2 = alpha.clone();
        let empty_desc = tpx_trees::term::parse_tree(
            r#"recipes(recipe(description ingredients instructions
               comments(negative positive)))"#,
            &mut a2,
        )
        .unwrap();
        assert!(parsed.validates(&empty_desc));
        assert!(!built.validates(&empty_desc));
    }

    #[test]
    fn mixed_and_empty_content() {
        let mut alpha = tpx_trees::Alphabet::new();
        let dtd = parse_dtd("<!ELEMENT a (#PCDATA | b)*><!ELEMENT b EMPTY>", &mut alpha).unwrap();
        for (src, ok) in [
            (r#"a("x" b "y")"#, true),
            ("a", true),
            ("a(b(b))", false),
            ("b", false), // not the start symbol
        ] {
            let t = parse_tree(src, &mut alpha.clone()).unwrap();
            assert_eq!(dtd.validates(&t), ok, "{src}");
        }
    }

    #[test]
    fn pcdata_only_allows_any_amount_of_text() {
        let mut alpha = tpx_trees::Alphabet::new();
        let dtd = parse_dtd("<!ELEMENT p (#PCDATA)>", &mut alpha).unwrap();
        for (src, ok) in [("p", true), (r#"p("x")"#, true), (r#"p("x" "y")"#, true)] {
            let t = parse_tree(src, &mut alpha.clone()).unwrap();
            assert_eq!(dtd.validates(&t), ok, "{src}");
        }
    }

    #[test]
    fn occurrence_indicators() {
        let mut alpha = tpx_trees::Alphabet::new();
        let dtd = parse_dtd(
            "<!ELEMENT r (a?, b+, (c | d)*)>\
             <!ELEMENT a EMPTY><!ELEMENT b EMPTY>\
             <!ELEMENT c EMPTY><!ELEMENT d EMPTY>",
            &mut alpha,
        )
        .unwrap();
        for (src, ok) in [
            ("r(b)", true),
            ("r(a b b c d c)", true),
            ("r(a)", false),     // b+ missing
            ("r(a a b)", false), // a?
            ("r(b a)", false),   // order
        ] {
            let t = parse_tree(src, &mut alpha.clone()).unwrap();
            assert_eq!(dtd.validates(&t), ok, "{src}");
        }
    }

    #[test]
    fn attlist_and_comments_are_skipped() {
        let mut alpha = tpx_trees::Alphabet::new();
        let dtd = parse_dtd(
            "<!-- hi --><!ELEMENT a (b)><!ATTLIST a id ID #REQUIRED>\
             <!ELEMENT b EMPTY>",
            &mut alpha,
        )
        .unwrap();
        let t = parse_tree("a(b)", &mut alpha.clone()).unwrap();
        assert!(dtd.validates(&t));
    }

    #[test]
    fn errors() {
        let mut alpha = tpx_trees::Alphabet::new();
        assert!(parse_dtd("", &mut alpha).is_err());
        assert!(parse_dtd("<!ELEMENT a ANY>", &mut alpha).is_err());
        assert!(parse_dtd("<!ELEMENT a (#PCDATA | b)>", &mut alpha).is_err());
        assert!(parse_dtd("<!ELEMENT a (b", &mut alpha).is_err());
        assert!(parse_dtd("junk", &mut alpha).is_err());
    }
}
