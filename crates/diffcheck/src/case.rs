//! Replayable divergence cases.
//!
//! A [`Case`] is a self-contained, serializable description of one
//! differential check: a schema (as its DTD declaration sources, so it can
//! be shrunk declaration-by-declaration), at most one transducer (top-down
//! or DTL), and optionally one input tree. Together with a
//! [`DivergenceKind`] it replays through [`crate::recheck`] — the fuzzer
//! records cases that reproduce, the shrinker minimizes them, and the
//! regression suite asserts they *no longer* reproduce once fixed.

use tpx_dtl::{DtlTransducer, XPathPatterns};
use tpx_schema::{Dtd, DtdBuilder};
use tpx_topdown::Transducer;
use tpx_treeauto::Nta;
use tpx_trees::{Alphabet, Tree};

/// A replayable description of a random DTL program: the generator seed,
/// the state count, and the suppressed rule-addition indices. Regenerating
/// through [`tpx_workload::random_dtl_with_drops`] with these parameters
/// reproduces the exact program, so a case file never has to serialize DTL
/// rule bodies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DtlSpec {
    /// Generator seed.
    pub seed: u64,
    /// Number of DTL states.
    pub n_states: usize,
    /// Generation-order indices of suppressed rule additions (the
    /// shrinker's unit of deletion).
    pub drops: Vec<usize>,
}

impl DtlSpec {
    /// Regenerates the program over `alpha`.
    pub fn program(&self, alpha: &Alphabet) -> DtlTransducer<XPathPatterns> {
        tpx_workload::random_dtl_with_drops(alpha, self.n_states, self.seed, &self.drops).0
    }

    /// The total number of rule additions the generator attempts (the
    /// valid index range for `drops`).
    pub fn total_ops(&self, alpha: &Alphabet) -> usize {
        tpx_workload::random_dtl_with_drops(alpha, self.n_states, self.seed, &[]).1
    }
}

/// A replayable description of a random fragment stylesheet: just the
/// generator seed. Regenerating through
/// [`tpx_workload::fragment_stylesheet`] over the case's alphabet
/// reproduces both the stylesheet source and the ground-truth transducer
/// the XSLT frontend is checked against, so a case file never has to
/// serialize stylesheet text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XsltSpec {
    /// Generator seed.
    pub seed: u64,
}

impl XsltSpec {
    /// Regenerates the stylesheet source over `alpha`.
    pub fn stylesheet(&self, alpha: &Alphabet) -> String {
        tpx_workload::fragment_stylesheet(alpha, self.seed).0
    }

    /// Regenerates the ground-truth direct translation over `alpha`.
    pub fn expected(&self, alpha: &Alphabet) -> Transducer {
        tpx_workload::fragment_stylesheet(alpha, self.seed).1
    }
}

/// One differential check, fully materialized for replay.
///
/// Exactly one of `transducer` / `dtl` / `xslt` is expected to be set (a
/// case pins one decision pipeline); `tree` is present for the per-tree
/// divergence kinds and absent for purely symbolic ones.
#[derive(Clone, Debug)]
pub struct Case {
    /// The label alphabet shared by the schema, transducer, and tree.
    pub alpha: Alphabet,
    /// DTD start symbols.
    pub starts: Vec<String>,
    /// DTD `(element, content model)` declarations, in source order.
    pub decls: Vec<(String, String)>,
    /// The top-down transducer under test, if this is a top-down case.
    pub transducer: Option<Transducer>,
    /// The DTL program under test, if this is a DTL case.
    pub dtl: Option<DtlSpec>,
    /// The fragment stylesheet under test, if this is an XSLT-frontend
    /// case (the transducer under test is the *compiled* stylesheet,
    /// cross-checked against [`XsltSpec::expected`]).
    pub xslt: Option<XsltSpec>,
    /// The input tree the divergence was observed on, if per-tree.
    pub tree: Option<Tree>,
    /// The selected labels of a text-retention case (label names, resolved
    /// against `alpha` at replay time). Empty for every other analysis.
    pub labels: Vec<String>,
}

impl Case {
    /// Builds the schema DTD from the current declarations.
    pub fn schema_dtd(&self) -> Dtd {
        let mut b = DtdBuilder::new(&self.alpha);
        for s in &self.starts {
            b.start(s);
        }
        for (name, content) in &self.decls {
            b.elem(name, content);
        }
        b.finish()
    }

    /// The schema as an NTA.
    pub fn schema_nta(&self) -> Nta {
        self.schema_dtd().to_nta()
    }

    /// Regenerates the DTL program, if this is a DTL case.
    pub fn dtl_program(&self) -> Option<DtlTransducer<XPathPatterns>> {
        self.dtl.as_ref().map(|spec| spec.program(&self.alpha))
    }
}

/// The class of disagreement a differential check can surface. Every kind
/// names two independent computations of the same fact; a case of that kind
/// is a concrete input on which they differ.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DivergenceKind {
    /// The symbolic decider says *preserving*, but the per-tree semantic
    /// oracle found a schema tree on which text-preservation fails.
    PreservingButViolates,
    /// The symbolic decider's witness is outside the schema language or is
    /// not re-confirmed by the per-tree oracles.
    WitnessInvalid,
    /// The bounded-enumeration baseline and the symbolic decider disagree
    /// (in either direction, where the enumeration is conclusive).
    BoundedContradictsSymbolic,
    /// The Section 5.1 top-down→DTL translation produces a different output
    /// than the top-down transducer itself on some tree.
    TranslationDisagrees,
    /// The Lemma 5.4/5.5 configuration-graph checks disagree with the
    /// direct semantic oracles (transform + inspect output) on some tree.
    DtlLemmaVsOperational,
    /// A generated DTL program (deterministic and terminating by
    /// construction) raised a [`tpx_dtl::DtlError`].
    DtlTransformError,
    /// A symbolic decider failed on a generated instance for a reason other
    /// than budget exhaustion (a panic, or an internal error) — a bug in
    /// the decider itself, isolated by the engine's `catch_unwind`.
    DeciderError,
    /// The symbolic text-retention decider disagrees with the bounded
    /// per-tree semantic oracle: it says *retains* while some schema tree
    /// has a deleted text value below a selected label, or its deleted-path
    /// witness does not validate.
    RetentionDisagrees,
    /// The XSLT frontend disagrees with the ground-truth direct translation
    /// of a generated fragment stylesheet: the compile fails (or reports
    /// diagnostics, or widens the alphabet) on a stylesheet that is inside
    /// the fragment by construction, the compiled transducer transforms a
    /// schema tree differently than the expected one, or the two
    /// transducers get different symbolic text-preservation verdicts.
    XsltCompileDisagrees,
}

impl DivergenceKind {
    /// Stable name used in case files and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            DivergenceKind::PreservingButViolates => "preserving-but-violates",
            DivergenceKind::WitnessInvalid => "witness-invalid",
            DivergenceKind::BoundedContradictsSymbolic => "bounded-contradicts-symbolic",
            DivergenceKind::TranslationDisagrees => "translation-disagrees",
            DivergenceKind::DtlLemmaVsOperational => "dtl-lemma-vs-operational",
            DivergenceKind::DtlTransformError => "dtl-transform-error",
            DivergenceKind::DeciderError => "decider-error",
            DivergenceKind::RetentionDisagrees => "retention-disagrees",
            DivergenceKind::XsltCompileDisagrees => "xslt-compile-disagrees",
        }
    }

    /// Every kind, for iteration and parsing.
    pub const ALL: [DivergenceKind; 9] = [
        DivergenceKind::PreservingButViolates,
        DivergenceKind::WitnessInvalid,
        DivergenceKind::BoundedContradictsSymbolic,
        DivergenceKind::TranslationDisagrees,
        DivergenceKind::DtlLemmaVsOperational,
        DivergenceKind::DtlTransformError,
        DivergenceKind::DeciderError,
        DivergenceKind::RetentionDisagrees,
        DivergenceKind::XsltCompileDisagrees,
    ];
}

impl std::str::FromStr for DivergenceKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::ALL
            .into_iter()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| format!("unknown divergence kind {s:?}"))
    }
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in DivergenceKind::ALL {
            assert_eq!(kind.as_str().parse::<DivergenceKind>().unwrap(), kind);
        }
        assert!("bogus".parse::<DivergenceKind>().is_err());
    }

    #[test]
    fn dtl_spec_regenerates_the_same_program() {
        let alpha = tpx_trees::Alphabet::from_labels(["a0", "a1"]);
        let spec = DtlSpec {
            seed: 9,
            n_states: 2,
            drops: vec![],
        };
        let a = spec.program(&alpha);
        let b = spec.program(&alpha);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(spec.total_ops(&alpha) > 0);
    }

    #[test]
    fn case_builds_its_schema() {
        let case = Case {
            alpha: tpx_trees::Alphabet::from_labels(["a0", "a1"]),
            starts: vec!["a0".to_owned()],
            decls: vec![
                ("a0".to_owned(), "a1*".to_owned()),
                ("a1".to_owned(), "text".to_owned()),
            ],
            transducer: None,
            dtl: None,
            xslt: None,
            tree: None,
            labels: Vec::new(),
        };
        assert!(!case.schema_nta().is_empty());
    }
}
