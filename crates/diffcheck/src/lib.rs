//! # `tpx-diffcheck`: differential oracle-vs-symbolic checking
//!
//! The repository's deciders compute the *same* facts along independent
//! routes: the symbolic pipelines (Theorem 4.11, Theorems 5.12/5.18), the
//! per-tree semantic oracles (Definitions 2.2/3.1, Lemmas 5.4/5.5), the
//! top-down→DTL translation (Section 5.1), and the bounded-enumeration
//! baseline. This crate cross-checks them against each other on seeded
//! random `(schema, transducer)` pairs:
//!
//! * [`run_fuzz`] — the fuzz loop: generate, sample trees from `L(N)`,
//!   compare every route against every other (all symbolic checks share
//!   the [`tpx_engine::Engine`]'s artifact cache);
//! * [`Case`] / [`DivergenceKind`] — a replayable, serializable reproducer
//!   and the taxonomy of disagreements;
//! * [`recheck`] — the single replay oracle shared by the fuzzer, the
//!   shrinker, and the `tests/regressions` suite;
//! * [`shrink_case`] — greedy 1-minimal shrinking (drop subtrees, delete
//!   rules, suppress DTL additions, drop schema declarations).
//!
//! Every divergence in a [`FuzzReport`] is confirmed through [`recheck`]
//! before it is reported, so a recorded case is replayable by construction.

pub mod case;
pub mod runner;
pub mod shrink;

pub use case::{Case, DivergenceKind, DtlSpec, XsltSpec};
pub use runner::{recheck, run_fuzz, Divergence, FuzzConfig, FuzzReport};
pub use shrink::shrink_case;
