//! The differential fuzz loop and the single-case replayer.
//!
//! Per seed, [`run_fuzz`] generates a random `(schema, transducer)` pair
//! through `tpx-workload`, samples trees from the schema language, and
//! cross-checks every independent computation of the text-preservation
//! facts against every other (see [`DivergenceKind`] for the pairs).
//! Whenever two disagree, the failing inputs are packaged as a [`Case`],
//! re-confirmed through [`recheck`] (so every recorded divergence is
//! replayable by construction), shrunk to a 1-minimal reproducer, and
//! returned in the [`FuzzReport`].
//!
//! [`recheck`] is the single source of truth for "does this case still
//! diverge?": the fuzzer, the shrinker, and the `tests/regressions`
//! replay suite all go through it.

use tpx_dtl::pattern::PatternLanguage;
use tpx_dtl::{DtlTransducer, XPathPatterns};
use tpx_engine::{
    Budget, CheckOptions, DtlDecider, Engine, Outcome, TextRetentionDecider, TopdownDecider,
    Verdict,
};
use tpx_topdown::{PathSym, Transducer};
use tpx_treeauto::Nta;
use tpx_trees::{make_value_unique, NodeLabel, Symbol, Tree};
use tpx_workload::{random_dtd, random_schema_tree, random_transducer, RandomSchema};

use crate::case::{Case, DivergenceKind, DtlSpec, XsltSpec};
use crate::shrink::shrink_case;

/// Knobs of one fuzz run. The bounded-enumeration bounds are part of the
/// configuration (not just tuning) because [`recheck`] must reproduce the
/// exact bounded check that flagged a divergence.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of seeds to run.
    pub seeds: u64,
    /// First seed (seed `i` of the run is `base_seed + i`).
    pub base_seed: u64,
    /// Node budget for sampled schema trees.
    pub budget: usize,
    /// Trees sampled from the schema language per seed.
    pub trees_per_seed: u64,
    /// Labels in the random schemas.
    pub n_labels: usize,
    /// States in the random transducers / DTL programs.
    pub n_states: usize,
    /// Whether to run the symbolic DTL decider on generated DTL programs.
    /// On by default since the lazy antichain layer landed: negation
    /// pushing plus the early-exit product keep typical programs cheap,
    /// and the default [`FuzzConfig::fuel`] budget degrades the
    /// heavy-tailed stragglers instead of stalling the run. Opt out with
    /// `--no-dtl-symbolic`.
    pub dtl_symbolic: bool,
    /// Size cap above which the symbolic DTL decider is skipped even when
    /// [`FuzzConfig::dtl_symbolic`] is set.
    pub max_dtl_size: usize,
    /// Max nodes for the bounded-enumeration baseline.
    pub bounded_max_nodes: usize,
    /// Tree-count cap for the bounded-enumeration baseline; the reverse
    /// direction of the bounded check only applies when the enumeration
    /// stayed under this cap (i.e. was exhaustive up to `bounded_max_nodes`).
    pub bounded_limit: usize,
    /// Whether to shrink divergences before reporting them.
    pub shrink: bool,
    /// Fuel budget for each symbolic engine check (`None` = unlimited).
    /// Distinct from [`FuzzConfig::budget`], which caps sampled tree sizes.
    pub fuel: Option<u64>,
    /// Wall-clock budget per symbolic engine check, in milliseconds
    /// (`None` = unlimited). Unlike `fuel`, a deadline makes exhaustion
    /// machine-dependent, so it is off by default.
    pub timeout_ms: Option<u64>,
    /// Whether the top-down seeds additionally sweep the text-retention
    /// analysis (one symbolic [`TextRetentionDecider`] run per schema
    /// label, cross-checked against the per-tree deleted-text oracle and
    /// the bounded enumeration). Off by default; `textpres fuzz
    /// --analysis text-retention` turns it on.
    pub retention: bool,
    /// Whether each seed additionally sweeps the XSLT frontend: a seeded
    /// fragment stylesheet over the seed's schema alphabet is compiled
    /// through `tpx-xslt` and cross-checked — transform-for-transform on
    /// the sampled trees and verdict-for-verdict through the engine —
    /// against its ground-truth direct translation from
    /// [`tpx_workload::fragment_stylesheet`]. Off by default; `textpres
    /// fuzz --xslt` turns it on.
    pub xslt: bool,
}

impl FuzzConfig {
    /// The per-check governance derived from `fuel` / `timeout_ms`.
    pub fn check_options(&self) -> CheckOptions {
        let mut budget = Budget::default();
        if let Some(fuel) = self.fuel {
            budget = budget.with_fuel(fuel);
        }
        if let Some(ms) = self.timeout_ms {
            budget = budget.with_timeout(std::time::Duration::from_millis(ms));
        }
        CheckOptions::with_budget(budget)
    }
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seeds: 64,
            base_seed: 0,
            budget: 12,
            trees_per_seed: 5,
            n_labels: 3,
            n_states: 2,
            dtl_symbolic: true,
            max_dtl_size: 60,
            bounded_max_nodes: 5,
            bounded_limit: 150,
            shrink: true,
            // Every instance runs under a default fuel budget so one
            // heavy-tailed compilation cannot stall a whole fuzz run; fuel
            // (unlike a deadline) keeps runs deterministic. Sized for the
            // default-on symbolic DTL route: every symbolic check that
            // finishes at all on the default workload does so well under
            // 250k fuel, while the stragglers sit orders of magnitude
            // higher (2M fuel buys zero extra cross-checks but ~10x the
            // wall time at ~0.4µs/unit) — so a straggler costs ~0.2s
            // before it is counted as exhausted and skipped.
            fuel: Some(500_000),
            timeout_ms: None,
            retention: false,
            xslt: false,
        }
    }
}

/// One replayable disagreement found by a fuzz run.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The seed it was found under.
    pub seed: u64,
    /// Which pair of computations disagreed.
    pub kind: DivergenceKind,
    /// Human-readable account of the disagreement.
    pub detail: String,
    /// The (shrunk) reproducer.
    pub case: Case,
    /// JSONL span trace of replaying the shrunk reproducer through a fresh
    /// engine — which pipeline stages the diverging instance exercised,
    /// with fuel and artifact sizes. `None` when the replay ran no engine
    /// check (purely per-tree oracle kinds).
    pub trace_jsonl: Option<String>,
}

/// The outcome of a fuzz run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Seeds executed.
    pub seeds_run: u64,
    /// Individual cross-checks performed.
    pub checks: u64,
    /// Symbolic checks skipped because they exhausted the per-check
    /// fuel/deadline budget (not divergences: the instance was simply too
    /// expensive under [`FuzzConfig::fuel`] / [`FuzzConfig::timeout_ms`]).
    pub exhausted: u64,
    /// Symbolic DTL checks skipped because the generated program exceeded
    /// [`FuzzConfig::max_dtl_size`] — a coverage gap, not a verdict. Each
    /// skip also emits a `diffcheck/dtl-skip` span (carrying the program
    /// size) on the engine's tracer so traced runs make the gap visible.
    pub dtl_skipped: u64,
    /// Divergences found (after confirmation and shrinking).
    pub divergences: Vec<Divergence>,
}

impl FuzzReport {
    /// Whether every cross-check agreed.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Runs the differential fuzz loop: two thirds of the seeds exercise the
/// top-down pipeline, one third the DTL pipeline. All symbolic checks go
/// through `engine`, sharing its artifact cache across seeds.
pub fn run_fuzz(engine: &Engine, cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..cfg.seeds {
        let seed = cfg.base_seed.wrapping_add(i);
        if i % 3 < 2 {
            fuzz_topdown_seed(engine, cfg, seed, &mut report);
        } else {
            fuzz_dtl_seed(engine, cfg, seed, &mut report);
        }
        if cfg.xslt {
            fuzz_xslt_seed(engine, cfg, seed, &mut report);
        }
        report.seeds_run += 1;
    }
    report
}

/// Derives the transducer seed from the schema seed (distinct streams).
fn transducer_seed(seed: u64) -> u64 {
    seed ^ 0xA5A5_5A5A_0F0F_F0F0
}

/// Samples up to `trees_per_seed` schema trees under derived seeds.
fn sample_trees(nta: &Nta, cfg: &FuzzConfig, seed: u64) -> Vec<Tree> {
    (0..cfg.trees_per_seed)
        .filter_map(|j| {
            random_schema_tree(
                nta,
                cfg.budget,
                seed.wrapping_add(j.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        })
        .collect()
}

/// Records `case` under `kind` if [`recheck`] confirms it, shrinking first
/// when configured. An unconfirmed divergence is a bug in the runner itself
/// (the observation and the replay disagree), reported as such.
fn record(
    engine: &Engine,
    cfg: &FuzzConfig,
    seed: u64,
    kind: DivergenceKind,
    detail: String,
    case: Case,
    report: &mut FuzzReport,
) {
    let mut case = case;
    let mut detail = detail;
    if !recheck(engine, &case, kind, cfg) {
        detail = format!("UNREPLAYABLE (runner bug): {detail}");
    } else if cfg.shrink {
        case = shrink_case(&case, |c| recheck(engine, c, kind, cfg));
    }
    // Replay the final reproducer once more through a fresh traced engine:
    // the span trace of the diverging instance rides along with the case.
    let trace_jsonl = {
        let tracer = std::sync::Arc::new(tpx_engine::Tracer::enabled());
        let replay = Engine::new().with_tracer(tracer.clone());
        let _ = recheck(&replay, &case, kind, cfg);
        let jsonl = tracer.to_jsonl();
        (!jsonl.is_empty()).then_some(jsonl)
    };
    report.divergences.push(Divergence {
        seed,
        kind,
        detail,
        case,
        trace_jsonl,
    });
}

/// Runs one symbolic check under the configured per-check budget. Budget
/// exhaustion is counted and the check skipped (`None`); any other failure
/// (a panic or internal error, isolated by the engine) is itself a
/// divergence in the decider, recorded under
/// [`DivergenceKind::DeciderError`].
fn governed_check(
    engine: &Engine,
    cfg: &FuzzConfig,
    seed: u64,
    decider: &dyn tpx_engine::Decider,
    nta: &Nta,
    case: Case,
    report: &mut FuzzReport,
) -> Option<Verdict> {
    report.checks += 1;
    match engine.check_governed(decider, nta, &cfg.check_options()) {
        Ok(verdict) => Some(verdict),
        Err(e) if e.is_resource_exhausted() => {
            report.exhausted += 1;
            None
        }
        Err(e) => {
            record(
                engine,
                cfg,
                seed,
                DivergenceKind::DeciderError,
                format!("{e}"),
                case,
                report,
            );
            None
        }
    }
}

/// One top-down seed: random DTD + random top-down transducer.
fn fuzz_topdown_seed(engine: &Engine, cfg: &FuzzConfig, seed: u64, report: &mut FuzzReport) {
    let schema = random_dtd(cfg.n_labels, seed);
    let nta = schema.nta();
    let t = random_transducer(&schema.alpha, cfg.n_states, 0.8, transducer_seed(seed));
    let case = |tree: Option<Tree>| topdown_case(&schema, &t, tree);

    let verdict = governed_check(
        engine,
        cfg,
        seed,
        &TopdownDecider::new(&t),
        &nta,
        case(None),
        report,
    );

    // Witness validation (mirrors the engine's debug-only assertions, but
    // as a reportable check in release builds too).
    if let Some(verdict) = &verdict {
        if let Some(detail) = invalid_topdown_witness(&t, &nta, &verdict.outcome) {
            record(
                engine,
                cfg,
                seed,
                DivergenceKind::WitnessInvalid,
                detail,
                case(None),
                report,
            );
        }
        report.checks += 1;
    }

    let trees = sample_trees(&nta, cfg, seed);
    let dtl = tpx_dtl::from_topdown(&t);
    for tree in &trees {
        // Symbolic "preserving" vs the per-tree oracle on the value-unique
        // version of a sampled schema tree.
        if let Some(verdict) = &verdict {
            let unique = unique_tree(tree);
            if verdict.is_preserving() && !tpx_topdown::semantic::text_preserving_on(&t, &unique) {
                record(
                    engine,
                    cfg,
                    seed,
                    DivergenceKind::PreservingButViolates,
                    "topdown decider says preserving; sampled tree violates".to_owned(),
                    case(Some(tree.clone())),
                    report,
                );
            }
            report.checks += 1;
        }

        // The top-down→DTL translation must transform identically.
        match dtl.transform(tree) {
            Ok(out) if out == t.transform(tree) => {}
            Ok(_) => record(
                engine,
                cfg,
                seed,
                DivergenceKind::TranslationDisagrees,
                "from_topdown(T) and T transform a tree differently".to_owned(),
                case(Some(tree.clone())),
                report,
            ),
            Err(e) => record(
                engine,
                cfg,
                seed,
                DivergenceKind::DtlTransformError,
                format!("from_topdown(T) raised {e:?}"),
                case(Some(tree.clone())),
                report,
            ),
        }
        report.checks += 1;
    }

    // Bounded enumeration vs the symbolic verdict (via the DTL translation,
    // whose per-tree lemmas drive the bounded baseline).
    if let Some(verdict) = &verdict {
        if let Some(detail) = bounded_disagreement(&dtl, &nta, verdict.outcome.is_preserving(), cfg)
        {
            record(
                engine,
                cfg,
                seed,
                DivergenceKind::BoundedContradictsSymbolic,
                detail,
                case(None),
                report,
            );
        }
        report.checks += 1;
    }

    if cfg.retention {
        fuzz_retention(engine, cfg, seed, &schema, &t, &nta, &trees, report);
    }
}

/// The text-retention sweep of one top-down seed: for each schema label,
/// the symbolic [`TextRetentionDecider`] verdict is cross-checked against
/// the per-tree semantic oracle — on the sampled trees and on the bounded
/// enumeration — and a deleted-path witness is re-validated through the
/// path automata.
#[allow(clippy::too_many_arguments)]
fn fuzz_retention(
    engine: &Engine,
    cfg: &FuzzConfig,
    seed: u64,
    schema: &RandomSchema,
    t: &Transducer,
    nta: &Nta,
    trees: &[Tree],
    report: &mut FuzzReport,
) {
    let enumerated =
        tpx_dtl::bounded::enumerate_schema_trees(nta, cfg.bounded_max_nodes, cfg.bounded_limit);
    for label in schema.alpha.symbols() {
        let labels = [label];
        let decider = TextRetentionDecider::new(t, labels.to_vec());
        let Some(verdict) = governed_check(
            engine,
            cfg,
            seed,
            &decider,
            nta,
            retention_case(schema, t, label, None),
            report,
        ) else {
            continue;
        };
        match &verdict.outcome {
            Outcome::Preserving => {
                // "Retains everything" must hold on every tree we can lay
                // hands on: the sampled trees and the bounded enumeration.
                for tree in trees.iter().chain(&enumerated) {
                    if semantically_deleted_under(t, tree, &labels) {
                        record(
                            engine,
                            cfg,
                            seed,
                            DivergenceKind::RetentionDisagrees,
                            format!(
                                "retention decider says retains under {:?}; a schema tree \
                                 loses a text value there",
                                schema.alpha.name(label)
                            ),
                            retention_case(schema, t, label, Some(tree.clone())),
                            report,
                        );
                        break;
                    }
                }
            }
            Outcome::DeletesText { path } => {
                if let Some(detail) = invalid_retention_witness(t, nta, &labels, path) {
                    record(
                        engine,
                        cfg,
                        seed,
                        DivergenceKind::RetentionDisagrees,
                        detail,
                        retention_case(schema, t, label, None),
                        report,
                    );
                }
            }
            other => {
                record(
                    engine,
                    cfg,
                    seed,
                    DivergenceKind::RetentionDisagrees,
                    format!("retention decider produced a foreign outcome: {other:?}"),
                    retention_case(schema, t, label, None),
                    report,
                );
            }
        }
        report.checks += 1;
    }
}

/// One DTL seed: random DTD + random DTL program.
fn fuzz_dtl_seed(engine: &Engine, cfg: &FuzzConfig, seed: u64, report: &mut FuzzReport) {
    let schema = random_dtd(cfg.n_labels.min(2), seed);
    let nta = schema.nta();
    let spec = DtlSpec {
        seed: transducer_seed(seed),
        n_states: cfg.n_states,
        drops: Vec::new(),
    };
    let prog = spec.program(&schema.alpha);
    let case = |tree: Option<Tree>| dtl_case(&schema, &spec, tree);

    let trees = sample_trees(&nta, cfg, seed);
    for tree in &trees {
        if let Some(detail) = lemma_vs_operational(&prog, tree) {
            record(
                engine,
                cfg,
                seed,
                DivergenceKind::DtlLemmaVsOperational,
                detail,
                case(Some(tree.clone())),
                report,
            );
        }
        report.checks += 1;
        if prog.transform(tree).is_err() {
            record(
                engine,
                cfg,
                seed,
                DivergenceKind::DtlTransformError,
                "generated DTL program raised an error".to_owned(),
                case(Some(tree.clone())),
                report,
            );
        }
        report.checks += 1;
    }

    if !cfg.dtl_symbolic {
        return;
    }
    // Oversized programs skip the symbolic cross-check; count the gap and
    // leave a trace event rather than dropping the instance silently.
    if prog.size() > cfg.max_dtl_size {
        report.dtl_skipped += 1;
        engine
            .tracer()
            .span("diffcheck/dtl-skip")
            .exit_with(tpx_engine::SpanFields::new().size(prog.size()));
        return;
    }
    let Some(verdict) = governed_check(
        engine,
        cfg,
        seed,
        &DtlDecider::new(&prog),
        &nta,
        case(None),
        report,
    ) else {
        return;
    };

    if let Some(detail) = invalid_dtl_witness(&prog, &nta, &verdict.outcome) {
        record(
            engine,
            cfg,
            seed,
            DivergenceKind::WitnessInvalid,
            detail,
            case(None),
            report,
        );
    }
    report.checks += 1;

    if verdict.is_preserving() {
        for tree in &trees {
            if dtl_violates_on(&prog, tree) {
                record(
                    engine,
                    cfg,
                    seed,
                    DivergenceKind::PreservingButViolates,
                    "dtl decider says preserving; sampled tree violates".to_owned(),
                    case(Some(tree.clone())),
                    report,
                );
            }
            report.checks += 1;
        }
    }

    if let Some(detail) = bounded_disagreement(&prog, &nta, verdict.outcome.is_preserving(), cfg) {
        record(
            engine,
            cfg,
            seed,
            DivergenceKind::BoundedContradictsSymbolic,
            detail,
            case(None),
            report,
        );
    }
    report.checks += 1;
}

/// The XSLT-frontend sweep of one seed: a seeded fragment stylesheet over
/// the seed's schema alphabet is compiled through `tpx-xslt` and
/// cross-checked against its ground-truth direct translation — a clean
/// compile (no diagnostics, no alphabet growth), identical transforms on
/// every sampled tree, and agreeing symbolic verdicts through the engine.
fn fuzz_xslt_seed(engine: &Engine, cfg: &FuzzConfig, seed: u64, report: &mut FuzzReport) {
    let schema = random_dtd(cfg.n_labels, seed);
    let nta = schema.nta();
    let spec = XsltSpec {
        seed: transducer_seed(seed),
    };
    let case = |tree: Option<Tree>| xslt_case(&schema, &spec, tree);

    report.checks += 1;
    let Some((compiled, expected)) = compile_against_expected(&schema.alpha, &spec) else {
        record(
            engine,
            cfg,
            seed,
            DivergenceKind::XsltCompileDisagrees,
            compile_failure_detail(&schema.alpha, &spec),
            case(None),
            report,
        );
        return;
    };

    for tree in sample_trees(&nta, cfg, seed) {
        if compiled.transform(&tree) != expected.transform(&tree) {
            record(
                engine,
                cfg,
                seed,
                DivergenceKind::XsltCompileDisagrees,
                "compiled stylesheet and expected transducer transform a tree differently"
                    .to_owned(),
                case(Some(tree.clone())),
                report,
            );
        }
        report.checks += 1;
    }

    let got = governed_check(
        engine,
        cfg,
        seed,
        &TopdownDecider::new(&compiled),
        &nta,
        case(None),
        report,
    );
    let want = governed_check(
        engine,
        cfg,
        seed,
        &TopdownDecider::new(&expected),
        &nta,
        case(None),
        report,
    );
    if let (Some(got), Some(want)) = (got, want) {
        if got.is_preserving() != want.is_preserving() {
            record(
                engine,
                cfg,
                seed,
                DivergenceKind::XsltCompileDisagrees,
                format!(
                    "verdicts disagree: compiled stylesheet preserving = {}, \
                     expected transducer preserving = {}",
                    got.is_preserving(),
                    want.is_preserving()
                ),
                case(None),
                report,
            );
        }
        report.checks += 1;
    }
}

/// Compiles the spec's stylesheet and returns `(compiled, expected)` when
/// the compile is *clean*: no parse error, no diagnostics, and no new
/// labels interned (the generator only uses schema labels, so growth
/// means the frontend misread one). `None` otherwise.
fn compile_against_expected(
    alpha: &tpx_trees::Alphabet,
    spec: &XsltSpec,
) -> Option<(Transducer, Transducer)> {
    let src = spec.stylesheet(alpha);
    let mut compile_alpha = alpha.clone();
    let compiled = tpx_xslt::compile(&src, &mut compile_alpha).ok()?;
    (compiled.diagnostics.is_empty() && compile_alpha.len() == alpha.len())
        .then(|| (compiled.transducer, spec.expected(alpha)))
}

/// The account of why [`compile_against_expected`] rejected the compile.
fn compile_failure_detail(alpha: &tpx_trees::Alphabet, spec: &XsltSpec) -> String {
    let src = spec.stylesheet(alpha);
    let mut compile_alpha = alpha.clone();
    match tpx_xslt::compile(&src, &mut compile_alpha) {
        Err(e) => format!("generated fragment stylesheet fails to compile: {e}"),
        Ok(c) if !c.diagnostics.is_empty() => format!(
            "generated fragment stylesheet reported {} diagnostic(s), first: line {}: \
             unsupported {}",
            c.diagnostics.len(),
            c.diagnostics[0].line,
            c.diagnostics[0].construct
        ),
        Ok(_) => format!(
            "compiling widened the alphabet from {} to {} labels",
            alpha.len(),
            compile_alpha.len()
        ),
    }
}

fn topdown_case(schema: &RandomSchema, t: &Transducer, tree: Option<Tree>) -> Case {
    Case {
        alpha: schema.alpha.clone(),
        starts: schema.starts.clone(),
        decls: schema.decls.clone(),
        transducer: Some(t.clone()),
        dtl: None,
        xslt: None,
        tree,
        labels: Vec::new(),
    }
}

fn retention_case(
    schema: &RandomSchema,
    t: &Transducer,
    label: Symbol,
    tree: Option<Tree>,
) -> Case {
    Case {
        labels: vec![schema.alpha.name(label).to_owned()],
        ..topdown_case(schema, t, tree)
    }
}

fn dtl_case(schema: &RandomSchema, spec: &DtlSpec, tree: Option<Tree>) -> Case {
    Case {
        alpha: schema.alpha.clone(),
        starts: schema.starts.clone(),
        decls: schema.decls.clone(),
        transducer: None,
        dtl: Some(spec.clone()),
        xslt: None,
        tree,
        labels: Vec::new(),
    }
}

fn xslt_case(schema: &RandomSchema, spec: &XsltSpec, tree: Option<Tree>) -> Case {
    Case {
        alpha: schema.alpha.clone(),
        starts: schema.starts.clone(),
        decls: schema.decls.clone(),
        transducer: None,
        dtl: None,
        xslt: Some(spec.clone()),
        tree,
        labels: Vec::new(),
    }
}

/// The value-unique version of `tree` (text-preservation is defined over
/// value-unique trees; `semantic::text_preserving_on` does not uniquify).
fn unique_tree(tree: &Tree) -> Tree {
    Tree::from_hedge(make_value_unique(tree.as_hedge())).expect("uniquifying keeps the shape")
}

/// Why the top-down verdict's witness fails validation, if it does.
fn invalid_topdown_witness(t: &Transducer, nta: &Nta, outcome: &Outcome) -> Option<String> {
    match outcome {
        Outcome::Preserving => None,
        Outcome::Copying { path } => {
            if !tpx_topdown::path_automaton_nta(nta).accepts(path) {
                Some("copying witness path is not a schema path".to_owned())
            } else if !tpx_topdown::path_automaton_transducer(t).accepts(path) {
                Some("transducer has no run on the copying witness path".to_owned())
            } else {
                None
            }
        }
        Outcome::Rearranging { witness } => {
            if !nta.accepts(witness) {
                Some("rearranging witness outside the schema".to_owned())
            } else if !tpx_topdown::semantic::rearranging_on(t, witness) {
                Some("rearranging witness not semantically rearranging".to_owned())
            } else {
                None
            }
        }
        Outcome::NotPreserving { witness } => {
            (!nta.accepts(witness)).then(|| "witness outside the schema".to_owned())
        }
        // The text-preservation pipelines never produce these; seeing one
        // here means a decider mixed up its analysis.
        Outcome::DeletesText { .. } | Outcome::NonConforming { .. } => {
            Some("text-preservation check produced a foreign-analysis outcome".to_owned())
        }
    }
}

/// The per-tree semantic oracle for text-retention: does `t` delete some
/// text value of `tree` that sits strictly below a node carrying one of
/// the selected labels? Decided by uniquifying the values, transforming,
/// and checking which unique values survive into the output.
fn semantically_deleted_under(t: &Transducer, tree: &Tree, labels: &[Symbol]) -> bool {
    let unique = unique_tree(tree);
    let out = t.transform(&unique);
    let kept: std::collections::HashSet<&str> = out.text_content().into_iter().collect();
    let h = unique.as_hedge();
    let mut stack: Vec<(tpx_trees::NodeId, bool)> = h
        .roots()
        .iter()
        .map(|&v| (v, false)) // `below` a selected label, so roots start outside
        .collect();
    while let Some((v, below)) = stack.pop() {
        match h.label(v) {
            NodeLabel::Text(value) => {
                if below && !kept.contains(value.as_str()) {
                    return true;
                }
            }
            NodeLabel::Elem(s) => {
                let below = below || labels.contains(s);
                stack.extend(h.children(v).iter().map(|&c| (c, below)));
            }
        }
    }
    false
}

/// Why a deleted-path witness fails validation, if it does (mirrors the
/// engine's debug-only assertions as a reportable release-build check).
fn invalid_retention_witness(
    t: &Transducer,
    nta: &Nta,
    labels: &[Symbol],
    path: &[PathSym],
) -> Option<String> {
    if !tpx_topdown::path_automaton_nta(nta).accepts(path) {
        Some("retention witness path is not a schema path".to_owned())
    } else if !path
        .iter()
        .any(|p| labels.iter().any(|&l| *p == PathSym::Elem(l)))
    {
        Some("retention witness path misses the selected labels".to_owned())
    } else if tpx_topdown::path_automaton_transducer(t).accepts(path) {
        Some("transducer keeps the retention witness path's value".to_owned())
    } else {
        None
    }
}

/// Why the DTL verdict's witness fails validation, if it does.
fn invalid_dtl_witness<P: PatternLanguage>(
    t: &DtlTransducer<P>,
    nta: &Nta,
    outcome: &Outcome,
) -> Option<String> {
    let Outcome::NotPreserving { witness } = outcome else {
        return None;
    };
    if !nta.accepts(witness) {
        return Some("dtl witness outside the schema".to_owned());
    }
    let copying = tpx_dtl::config::copying_lemma_5_4(t, witness);
    let rearranging = tpx_dtl::config::rearranging_lemma_5_5(t, witness);
    if matches!(copying, Ok(true)) || matches!(rearranging, Ok(true)) {
        None
    } else {
        Some(format!(
            "dtl witness not re-confirmed (copying: {copying:?}, rearranging: {rearranging:?})"
        ))
    }
}

/// Whether the Lemma 5.4/5.5 checks disagree with the direct semantic
/// oracles on `tree`; returns the account of the first mismatch.
fn lemma_vs_operational<P: PatternLanguage>(t: &DtlTransducer<P>, tree: &Tree) -> Option<String> {
    let lemma_copy = tpx_dtl::config::copying_lemma_5_4(t, tree);
    let oper_copy = tpx_dtl::config::copying_on(t, tree);
    match (&lemma_copy, &oper_copy) {
        (Ok(a), Ok(b)) if a == b => {}
        _ => {
            return Some(format!(
                "copying: lemma 5.4 = {lemma_copy:?}, operational = {oper_copy:?}"
            ))
        }
    }
    let lemma_re = tpx_dtl::config::rearranging_lemma_5_5(t, tree);
    let oper_re = tpx_dtl::config::rearranging_on(t, tree);
    match (&lemma_re, &oper_re) {
        (Ok(a), Ok(b)) if a == b => None,
        _ => Some(format!(
            "rearranging: lemma 5.5 = {lemma_re:?}, operational = {oper_re:?}"
        )),
    }
}

/// Whether the per-tree oracles convict `t` on `tree` (copying or
/// rearranging on the value-unique version).
fn dtl_violates_on<P: PatternLanguage>(t: &DtlTransducer<P>, tree: &Tree) -> bool {
    matches!(tpx_dtl::config::copying_on(t, tree), Ok(true))
        || matches!(tpx_dtl::config::rearranging_on(t, tree), Ok(true))
}

/// Cross-checks the bounded-enumeration baseline against a symbolic
/// verdict, in both directions where the enumeration is conclusive.
fn bounded_disagreement<P: PatternLanguage>(
    t: &DtlTransducer<P>,
    nta: &Nta,
    symbolic_preserving: bool,
    cfg: &FuzzConfig,
) -> Option<String> {
    let enumerated =
        tpx_dtl::bounded::enumerate_schema_trees(nta, cfg.bounded_max_nodes, cfg.bounded_limit);
    let exhaustive = enumerated.len() < cfg.bounded_limit;
    match tpx_dtl::bounded::bounded_counterexample(t, nta, cfg.bounded_max_nodes, cfg.bounded_limit)
    {
        Err(e) => Some(format!("bounded baseline raised {e:?}")),
        Ok(Some(ce)) if symbolic_preserving => Some(format!(
            "bounded baseline found a counterexample of {} nodes; symbolic says preserving",
            ce.node_count()
        )),
        // The reverse direction needs the enumeration to be exhaustive up
        // to the bound AND a small symbolic witness to contradict; without
        // a witness size to compare we stay conservative and only flag the
        // forward direction.
        Ok(_) => {
            let _ = exhaustive;
            None
        }
    }
}

/// Replays one case: does the divergence of `kind` still reproduce?
///
/// This is the shared oracle of the fuzzer, the shrinker, and the
/// regression suite. For [`DivergenceKind::WitnessInvalid`] the symbolic
/// verdict is recomputed through the raw pipelines (not the engine) so
/// that debug builds report the invalid witness instead of tripping the
/// engine's internal `debug_assert`s.
pub fn recheck(engine: &Engine, case: &Case, kind: DivergenceKind, cfg: &FuzzConfig) -> bool {
    let nta = case.schema_nta();
    if let Some(t) = &case.transducer {
        recheck_topdown(engine, case, t, &nta, kind, cfg)
    } else if let Some(prog) = case.dtl_program() {
        recheck_dtl(engine, case, &prog, &nta, kind, cfg)
    } else if let Some(spec) = &case.xslt {
        recheck_xslt(engine, case, spec, &nta, kind, cfg)
    } else {
        false
    }
}

/// The governed symbolic verdict for replays: `None` when the budget ran
/// out, in which case the divergence counts as not reproduced.
fn governed_preserving(
    engine: &Engine,
    decider: &dyn tpx_engine::Decider,
    nta: &Nta,
    cfg: &FuzzConfig,
) -> Option<bool> {
    engine
        .check_governed(decider, nta, &cfg.check_options())
        .ok()
        .map(|v| v.is_preserving())
}

fn recheck_topdown(
    engine: &Engine,
    case: &Case,
    t: &Transducer,
    nta: &Nta,
    kind: DivergenceKind,
    cfg: &FuzzConfig,
) -> bool {
    // A tree-bearing kind only reproduces on a tree of the schema language.
    let valid_tree = |tree: &Tree| nta.accepts(tree);
    match kind {
        DivergenceKind::PreservingButViolates => case.tree.as_ref().is_some_and(|tree| {
            valid_tree(tree)
                && governed_preserving(engine, &TopdownDecider::new(t), nta, cfg) == Some(true)
                && !tpx_topdown::semantic::text_preserving_on(t, &unique_tree(tree))
        }),
        DivergenceKind::WitnessInvalid => {
            let outcome: Outcome = tpx_topdown::is_text_preserving(t, nta).into();
            invalid_topdown_witness(t, nta, &outcome).is_some()
        }
        DivergenceKind::TranslationDisagrees => case.tree.as_ref().is_some_and(|tree| {
            valid_tree(tree)
                && match tpx_dtl::from_topdown(t).transform(tree) {
                    Ok(out) => out != t.transform(tree),
                    Err(_) => false,
                }
        }),
        DivergenceKind::DtlTransformError => case.tree.as_ref().is_some_and(|tree| {
            valid_tree(tree) && tpx_dtl::from_topdown(t).transform(tree).is_err()
        }),
        DivergenceKind::BoundedContradictsSymbolic => {
            let Some(preserving) = governed_preserving(engine, &TopdownDecider::new(t), nta, cfg)
            else {
                return false;
            };
            bounded_disagreement(&tpx_dtl::from_topdown(t), nta, preserving, cfg).is_some()
        }
        DivergenceKind::DeciderError => matches!(
            engine.check_governed(&TopdownDecider::new(t), nta, &cfg.check_options()),
            Err(e) if !e.is_resource_exhausted()
        ),
        DivergenceKind::RetentionDisagrees => {
            let labels: Vec<Symbol> = case
                .labels
                .iter()
                .filter_map(|l| case.alpha.get(l))
                .collect();
            if labels.is_empty() {
                return false;
            }
            let decider = TextRetentionDecider::new(t, labels.clone());
            match engine.check_governed(&decider, nta, &cfg.check_options()) {
                Ok(v) => match &v.outcome {
                    Outcome::Preserving => {
                        let deleted = |tree: &Tree| {
                            valid_tree(tree) && semantically_deleted_under(t, tree, &labels)
                        };
                        case.tree.as_ref().is_some_and(&deleted)
                            || tpx_dtl::bounded::enumerate_schema_trees(
                                nta,
                                cfg.bounded_max_nodes,
                                cfg.bounded_limit,
                            )
                            .iter()
                            .any(deleted)
                    }
                    Outcome::DeletesText { path } => {
                        invalid_retention_witness(t, nta, &labels, path).is_some()
                    }
                    // A foreign outcome from the retention decider is
                    // itself the divergence.
                    _ => true,
                },
                Err(_) => false,
            }
        }
        // These kinds pin the other pipelines; a top-down case cannot
        // carry them.
        DivergenceKind::DtlLemmaVsOperational | DivergenceKind::XsltCompileDisagrees => false,
    }
}

/// Replays an XSLT-frontend case: regenerate the stylesheet and its
/// ground truth from the spec, recompile, and re-run the exact
/// cross-check that flagged the divergence (tree-bearing → transform
/// mismatch on that tree; symbolic → compile failure or verdict
/// disagreement).
fn recheck_xslt(
    engine: &Engine,
    case: &Case,
    spec: &XsltSpec,
    nta: &Nta,
    kind: DivergenceKind,
    cfg: &FuzzConfig,
) -> bool {
    if kind != DivergenceKind::XsltCompileDisagrees {
        return false;
    }
    let Some((compiled, expected)) = compile_against_expected(&case.alpha, spec) else {
        // An unclean compile reproduces regardless of the tree.
        return true;
    };
    if let Some(tree) = &case.tree {
        return nta.accepts(tree) && compiled.transform(tree) != expected.transform(tree);
    }
    match (
        governed_preserving(engine, &TopdownDecider::new(&compiled), nta, cfg),
        governed_preserving(engine, &TopdownDecider::new(&expected), nta, cfg),
    ) {
        (Some(got), Some(want)) => got != want,
        _ => false,
    }
}

fn recheck_dtl(
    engine: &Engine,
    case: &Case,
    prog: &DtlTransducer<XPathPatterns>,
    nta: &Nta,
    kind: DivergenceKind,
    cfg: &FuzzConfig,
) -> bool {
    let valid_tree = |tree: &Tree| nta.accepts(tree);
    match kind {
        DivergenceKind::DtlLemmaVsOperational => case
            .tree
            .as_ref()
            .is_some_and(|tree| valid_tree(tree) && lemma_vs_operational(prog, tree).is_some()),
        DivergenceKind::DtlTransformError => case
            .tree
            .as_ref()
            .is_some_and(|tree| valid_tree(tree) && prog.transform(tree).is_err()),
        DivergenceKind::PreservingButViolates => case.tree.as_ref().is_some_and(|tree| {
            valid_tree(tree)
                && governed_preserving(engine, &DtlDecider::new(prog), nta, cfg) == Some(true)
                && dtl_violates_on(prog, tree)
        }),
        DivergenceKind::WitnessInvalid => {
            let outcome = match tpx_dtl::dtl_text_preserving(prog, nta) {
                tpx_dtl::DtlCheckReport::Preserving => Outcome::Preserving,
                tpx_dtl::DtlCheckReport::NotPreserving { witness } => {
                    Outcome::NotPreserving { witness }
                }
            };
            invalid_dtl_witness(prog, nta, &outcome).is_some()
        }
        DivergenceKind::BoundedContradictsSymbolic => {
            let Some(preserving) = governed_preserving(engine, &DtlDecider::new(prog), nta, cfg)
            else {
                return false;
            };
            bounded_disagreement(prog, nta, preserving, cfg).is_some()
        }
        DivergenceKind::DeciderError => matches!(
            engine.check_governed(&DtlDecider::new(prog), nta, &cfg.check_options()),
            Err(e) if !e.is_resource_exhausted()
        ),
        // The retention analysis and the XSLT frontend only run on
        // top-down / stylesheet cases.
        DivergenceKind::TranslationDisagrees
        | DivergenceKind::RetentionDisagrees
        | DivergenceKind::XsltCompileDisagrees => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpx_topdown::{RhsNode, TdState};

    fn quick_cfg() -> FuzzConfig {
        FuzzConfig {
            seeds: 3,
            trees_per_seed: 2,
            budget: 6,
            dtl_symbolic: true,
            max_dtl_size: 25,
            bounded_max_nodes: 4,
            bounded_limit: 60,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn small_fuzz_run_is_clean_and_deterministic() {
        let engine = Engine::new();
        let cfg = quick_cfg();
        let a = run_fuzz(&engine, &cfg);
        assert_eq!(a.seeds_run, cfg.seeds);
        assert!(a.checks > 0);
        let b = run_fuzz(&engine, &cfg);
        assert_eq!(a.checks, b.checks, "fuzz runs must be deterministic");
        assert_eq!(a.divergences.len(), b.divergences.len());
        if let Some(d) = a.divergences.first() {
            panic!(
                "unexpected divergence at seed {}: {} ({})",
                d.seed, d.kind, d.detail
            );
        }
    }

    #[test]
    fn retention_fuzz_run_is_clean_and_deterministic() {
        let engine = Engine::new();
        let cfg = FuzzConfig {
            retention: true,
            ..quick_cfg()
        };
        let a = run_fuzz(&engine, &cfg);
        let base = run_fuzz(&engine, &quick_cfg());
        assert!(
            a.checks > base.checks,
            "the retention sweep must add per-label checks"
        );
        let b = run_fuzz(&engine, &cfg);
        assert_eq!(
            a.checks, b.checks,
            "retention fuzzing must be deterministic"
        );
        assert_eq!(a.divergences.len(), b.divergences.len());
        if let Some(d) = a.divergences.first() {
            panic!(
                "unexpected divergence at seed {}: {} ({})",
                d.seed, d.kind, d.detail
            );
        }
    }

    #[test]
    fn xslt_fuzz_run_is_clean_and_deterministic() {
        let engine = Engine::new();
        let cfg = FuzzConfig {
            xslt: true,
            ..quick_cfg()
        };
        let a = run_fuzz(&engine, &cfg);
        let base = run_fuzz(&engine, &quick_cfg());
        assert!(
            a.checks > base.checks,
            "the xslt sweep must add frontend cross-checks"
        );
        let b = run_fuzz(&engine, &cfg);
        assert_eq!(a.checks, b.checks, "xslt fuzzing must be deterministic");
        assert_eq!(a.divergences.len(), b.divergences.len());
        if let Some(d) = a.divergences.first() {
            panic!(
                "unexpected divergence at seed {}: {} ({})",
                d.seed, d.kind, d.detail
            );
        }
    }

    #[test]
    fn recheck_reproduces_a_planted_xslt_transform_mismatch() {
        // A forged xslt case whose tree is outside the schema must not
        // reproduce; with a schema tree and an honest spec the compile is
        // clean and the transforms agree, so the kind must not reproduce
        // either — recheck answers false both ways.
        let schema = random_dtd(2, 5);
        let nta = schema.nta();
        let spec = XsltSpec { seed: 17 };
        let engine = Engine::new();
        let cfg = quick_cfg();
        let honest = xslt_case(&schema, &spec, nta.witness());
        assert!(!recheck(
            &engine,
            &honest,
            DivergenceKind::XsltCompileDisagrees,
            &cfg
        ));
        let stray = xslt_case(&schema, &spec, Some(Tree::text("stray")));
        assert!(!recheck(
            &engine,
            &stray,
            DivergenceKind::XsltCompileDisagrees,
            &cfg
        ));
        // And no other kind fires on an xslt case.
        for kind in DivergenceKind::ALL {
            if kind != DivergenceKind::XsltCompileDisagrees {
                assert!(!recheck(&engine, &honest, kind, &cfg), "{kind}");
            }
        }
    }

    #[test]
    fn recheck_rejects_a_forged_preserving_but_violates_case() {
        // A transducer that copies its children (`a0 → a0(q0 q0)`) is not a
        // translation divergence — from_topdown matches it. Plant a real
        // per-tree divergence instead: preserving-but-violates with a
        // decider we *claim* said preserving cannot be forged, so use the
        // oracle side: a copying transducer plus a text-bearing tree makes
        // `text_preserving_on` false, while the decider correctly says
        // copying — recheck must therefore reject the forged case.
        let schema = random_dtd(2, 3);
        let nta = schema.nta();
        let mut t = random_transducer(&schema.alpha, 1, 0.0, 0);
        for s in schema.alpha.symbols() {
            t.set_rule(
                TdState(0),
                s,
                vec![RhsNode::Elem(
                    s,
                    vec![RhsNode::State(TdState(0)), RhsNode::State(TdState(0))],
                )],
            );
        }
        t.set_text_rule(TdState(0), true);
        let tree = nta.witness().expect("non-empty");
        let case = Case {
            alpha: schema.alpha.clone(),
            starts: schema.starts.clone(),
            decls: schema.decls.clone(),
            transducer: Some(t),
            dtl: None,
            xslt: None,
            tree: Some(tree),
            labels: Vec::new(),
        };
        let engine = Engine::new();
        // The decider is *not* fooled: it reports copying, so the
        // "preserving but violates" divergence must not reproduce.
        assert!(!recheck(
            &engine,
            &case,
            DivergenceKind::PreservingButViolates,
            &quick_cfg()
        ));
    }

    #[test]
    fn recheck_rejects_trees_outside_the_schema() {
        let schema = random_dtd(2, 1);
        let t = random_transducer(&schema.alpha, 1, 0.5, 1);
        // A tree over a foreign label set is not in L(N); every tree-bearing
        // kind must reject it.
        let case = Case {
            alpha: schema.alpha.clone(),
            starts: schema.starts.clone(),
            decls: schema.decls.clone(),
            transducer: Some(t),
            dtl: None,
            xslt: None,
            tree: Some(Tree::text("stray")),
            labels: Vec::new(),
        };
        let engine = Engine::new();
        let cfg = quick_cfg();
        for kind in [
            DivergenceKind::PreservingButViolates,
            DivergenceKind::TranslationDisagrees,
            DivergenceKind::DtlTransformError,
        ] {
            assert!(!recheck(&engine, &case, kind, &cfg), "{kind}");
        }
    }
}
