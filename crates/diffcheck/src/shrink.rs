//! Greedy counterexample shrinking.
//!
//! [`shrink_case`] minimizes a failing [`Case`] against an arbitrary
//! predicate (`still_fails`) by repeated deletion passes until a fixpoint:
//!
//! 1. delete subtrees of the input tree (and promote single children),
//! 2. delete top-down transducer rules and text rules,
//! 3. suppress DTL rule additions (growing [`DtlSpec::drops`]),
//! 4. delete schema declarations (never a start symbol's).
//!
//! The result is *1-minimal with respect to these operations*: no single
//! further deletion keeps the predicate true. The predicate is injected
//! rather than fixed to [`crate::recheck`] so the shrinker is testable in
//! isolation and usable for other reduction tasks.

use tpx_topdown::Transducer;
use tpx_trees::{Hedge, Tree};

use crate::case::Case;

/// Shrinks `case` while `still_fails` holds, returning the 1-minimal case.
/// `case` itself must satisfy the predicate (otherwise it is returned
/// unchanged).
pub fn shrink_case<F: Fn(&Case) -> bool>(case: &Case, still_fails: F) -> Case {
    let mut best = case.clone();
    if !still_fails(&best) {
        return best;
    }
    loop {
        let mut progressed = false;
        progressed |= shrink_tree_pass(&mut best, &still_fails);
        progressed |= shrink_rules_pass(&mut best, &still_fails);
        progressed |= shrink_dtl_pass(&mut best, &still_fails);
        progressed |= shrink_decls_pass(&mut best, &still_fails);
        if !progressed {
            return best;
        }
    }
}

/// Applies one accepted candidate change, preferring the earliest.
fn try_candidates<F: Fn(&Case) -> bool>(
    best: &mut Case,
    still_fails: &F,
    candidates: impl IntoIterator<Item = Case>,
) -> bool {
    for cand in candidates {
        if still_fails(&cand) {
            *best = cand;
            return true;
        }
    }
    false
}

/// Tree pass: try deleting every non-root subtree, then try replacing the
/// whole tree by each of its root's subtrees (hoisting). Runs until no
/// single deletion is accepted.
fn shrink_tree_pass<F: Fn(&Case) -> bool>(best: &mut Case, still_fails: &F) -> bool {
    let mut progressed = false;
    loop {
        let Some(tree) = &best.tree else {
            return progressed;
        };
        let hedge = tree.as_hedge();
        let mut candidates = Vec::new();
        // Hoist: the subtree rooted at any non-root node becomes the tree.
        for v in hedge.dfs() {
            if v != tree.root() && !hedge.is_text(v) {
                candidates.push(with_tree(best, hedge.subtree(v)));
            }
        }
        // Delete: drop any non-root subtree in place.
        for v in hedge.dfs() {
            if v != tree.root() {
                let reduced = hedge.replace(v, &Hedge::new());
                if let Some(t) = Tree::from_hedge(reduced) {
                    candidates.push(with_tree(best, t));
                }
            }
        }
        if !try_candidates(best, still_fails, candidates) {
            return progressed;
        }
        progressed = true;
    }
}

fn with_tree(case: &Case, tree: Tree) -> Case {
    let mut c = case.clone();
    c.tree = Some(tree);
    c
}

/// Rule pass: try dropping each `(q, a)` rule and each text rule of the
/// top-down transducer.
fn shrink_rules_pass<F: Fn(&Case) -> bool>(best: &mut Case, still_fails: &F) -> bool {
    let mut progressed = false;
    loop {
        let Some(t) = &best.transducer else {
            return progressed;
        };
        let mut candidates = Vec::new();
        for q in t.states() {
            for a in (0..t.symbol_count()).map(|i| tpx_trees::Symbol(i as u32)) {
                if t.rhs(q, a).is_some() {
                    candidates.push(with_transducer(best, without_rule(t, q, a)));
                }
            }
            if t.text_rule(q) {
                let mut smaller = t.clone();
                smaller.set_text_rule(q, false);
                candidates.push(with_transducer(best, smaller));
            }
        }
        if !try_candidates(best, still_fails, candidates) {
            return progressed;
        }
        progressed = true;
    }
}

fn with_transducer(case: &Case, t: Transducer) -> Case {
    let mut c = case.clone();
    c.transducer = Some(t);
    c
}

/// Rebuilds `t` without the rule `(q, a)` ([`Transducer::set_rule`] rejects
/// empty rhs, so removal means reconstruction).
fn without_rule(
    t: &Transducer,
    drop_q: tpx_topdown::TdState,
    drop_a: tpx_trees::Symbol,
) -> Transducer {
    let mut out = Transducer::new(t.symbol_count(), t.state_count(), t.initial());
    for q in t.states() {
        for a in (0..t.symbol_count()).map(|i| tpx_trees::Symbol(i as u32)) {
            if (q, a) == (drop_q, drop_a) {
                continue;
            }
            if let Some(rhs) = t.rhs(q, a) {
                out.set_rule(q, a, rhs.to_vec());
            }
        }
        out.set_text_rule(q, t.text_rule(q));
    }
    out
}

/// DTL pass: try suppressing each not-yet-dropped rule addition.
fn shrink_dtl_pass<F: Fn(&Case) -> bool>(best: &mut Case, still_fails: &F) -> bool {
    let mut progressed = false;
    loop {
        let Some(spec) = &best.dtl else {
            return progressed;
        };
        let total = spec.total_ops(&best.alpha);
        let candidates: Vec<Case> = (0..total)
            .filter(|i| !spec.drops.contains(i))
            .map(|i| {
                let mut c = best.clone();
                let s = c.dtl.as_mut().expect("checked above");
                s.drops.push(i);
                s.drops.sort_unstable();
                c
            })
            .collect();
        if !try_candidates(best, still_fails, candidates) {
            return progressed;
        }
        progressed = true;
    }
}

/// Declaration pass: try dropping each non-start element declaration.
fn shrink_decls_pass<F: Fn(&Case) -> bool>(best: &mut Case, still_fails: &F) -> bool {
    let mut progressed = false;
    loop {
        let candidates: Vec<Case> = (0..best.decls.len())
            .filter(|&i| !best.starts.contains(&best.decls[i].0))
            .map(|i| {
                let mut c = best.clone();
                c.decls.remove(i);
                c
            })
            .collect();
        if !try_candidates(best, still_fails, candidates) {
            return progressed;
        }
        progressed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::DtlSpec;
    use tpx_topdown::{RhsNode, TdState};
    use tpx_trees::{Alphabet, HedgeBuilder, Symbol};

    fn base_case(alpha: &Alphabet) -> Case {
        Case {
            alpha: alpha.clone(),
            starts: vec!["a0".to_owned()],
            decls: vec![
                ("a0".to_owned(), "(a0 | a1 | text)*".to_owned()),
                ("a1".to_owned(), "text".to_owned()),
            ],
            transducer: None,
            dtl: None,
            xslt: None,
            tree: None,
            labels: Vec::new(),
        }
    }

    /// A chain `a0(a0(a0(a0("x"))))` of `depth` elements over one text leaf.
    fn chain_tree(alpha: &Alphabet, depth: usize) -> Tree {
        let s = alpha.sym("a0");
        let mut b = HedgeBuilder::new();
        for _ in 0..depth {
            b.open(s);
        }
        b.text("x");
        for _ in 0..depth {
            b.close();
        }
        b.finish_tree().unwrap()
    }

    #[test]
    fn tree_shrinks_to_the_predicate_boundary() {
        let alpha = Alphabet::from_labels(["a0", "a1"]);
        let mut case = base_case(&alpha);
        case.tree = Some(chain_tree(&alpha, 6));
        // Predicate: at least 3 nodes. 1-minimality means exactly 3 —
        // deleting any single further subtree drops below the boundary.
        let shrunk = shrink_case(&case, |c| {
            c.tree.as_ref().is_some_and(|t| t.node_count() >= 3)
        });
        assert_eq!(shrunk.tree.unwrap().node_count(), 3);
    }

    #[test]
    fn rules_shrink_to_the_single_needed_one() {
        let alpha = Alphabet::from_labels(["a0", "a1"]);
        let mut t = Transducer::new(2, 2, TdState(0));
        for s in [Symbol(0), Symbol(1)] {
            for q in [TdState(0), TdState(1)] {
                t.set_rule(q, s, vec![RhsNode::Elem(s, vec![RhsNode::State(q)])]);
            }
        }
        t.set_text_rule(TdState(0), true);
        t.set_text_rule(TdState(1), true);
        let mut case = base_case(&alpha);
        case.transducer = Some(t);
        // Predicate: the rule (q0, a0) still exists.
        let shrunk = shrink_case(&case, |c| {
            c.transducer
                .as_ref()
                .is_some_and(|t| t.rhs(TdState(0), Symbol(0)).is_some())
        });
        let t = shrunk.transducer.unwrap();
        let n_rules: usize = t
            .states()
            .map(|q| {
                (0..2)
                    .filter(|&i| t.rhs(q, Symbol(i as u32)).is_some())
                    .count()
            })
            .sum();
        assert_eq!(n_rules, 1, "only the needed rule survives");
        assert!(!t.text_rule(TdState(0)) && !t.text_rule(TdState(1)));
    }

    #[test]
    fn dtl_shrinks_by_growing_drops() {
        let alpha = Alphabet::from_labels(["a0", "a1"]);
        let mut case = base_case(&alpha);
        let spec = DtlSpec {
            seed: 7,
            n_states: 2,
            drops: vec![],
        };
        let total = spec.total_ops(&alpha);
        assert!(total > 1, "seed 7 must generate several additions");
        case.dtl = Some(spec);
        // Predicate: the program still has at least one rule.
        let shrunk = shrink_case(&case, |c| {
            c.dtl_program().is_some_and(|p| !p.rules().is_empty())
        });
        let spec = shrunk.dtl.unwrap();
        let program = spec.program(&alpha);
        assert_eq!(program.rules().len(), 1, "exactly one rule survives");
    }

    #[test]
    fn decls_shrink_but_starts_are_kept() {
        let alpha = Alphabet::from_labels(["a0", "a1"]);
        let case = base_case(&alpha);
        let shrunk = shrink_case(&case, |c| !c.schema_nta().is_empty());
        assert_eq!(shrunk.decls.len(), 1);
        assert_eq!(shrunk.decls[0].0, "a0");
    }

    #[test]
    fn a_passing_case_is_returned_unchanged() {
        let alpha = Alphabet::from_labels(["a0", "a1"]);
        let mut case = base_case(&alpha);
        case.tree = Some(chain_tree(&alpha, 2));
        let shrunk = shrink_case(&case, |_| false);
        assert_eq!(shrunk.tree.unwrap().node_count(), 3);
        assert_eq!(shrunk.decls.len(), 2);
    }
}
