//! Admission control for `textpres serve`: a counting gate with a
//! bounded wait queue and load shedding.
//!
//! The server bounds work in two layers: at most `slots` checks execute
//! concurrently (one [`Permit`] each), and at most `queue` further
//! requests may *wait* for a slot. A request arriving beyond both bounds
//! is shed immediately with [`AdmitError::Overloaded`] — the 429-style
//! response — so memory stays bounded no matter how fast clients push
//! frames. Connection threads execute their own admitted requests (no
//! cross-thread handoff on the hot path; the warm-latency budget in
//! `validate_bench` is why), so "in-flight" equals "connection threads
//! holding a permit".
//!
//! Drain interacts with the gate in two phases: a *soft* drain simply
//! stops new acquisitions upstream (the server answers `shutting-down`
//! before ever touching the gate), while [`Gate::begin_hard_drain`] is
//! the deadline backstop that wakes every parked waiter and fails its
//! acquisition with [`AdmitError::Draining`], so a drain can always
//! terminate even if in-flight work refuses to finish.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Why an acquisition was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// All slots busy and the wait queue full: shed.
    Overloaded,
    /// The hard-drain backstop fired while waiting.
    Draining,
}

#[derive(Debug)]
struct GateState {
    available: usize,
    waiting: usize,
    hard_drain: bool,
}

/// The counting gate (see the module docs).
#[derive(Debug)]
pub struct Gate {
    state: Mutex<GateState>,
    freed: Condvar,
    slots: usize,
    queue: usize,
    shed: AtomicU64,
}

impl Gate {
    /// A gate with `slots` concurrent permits and a wait queue of
    /// `queue` (both clamped to be at least one slot, zero queue ok).
    pub fn new(slots: usize, queue: usize) -> Gate {
        Gate {
            state: Mutex::new(GateState {
                available: slots.max(1),
                waiting: 0,
                hard_drain: false,
            }),
            freed: Condvar::new(),
            slots: slots.max(1),
            queue,
            shed: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        // A poisoned gate would deadlock every connection; the state is
        // three plain integers, always consistent, so recover.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an execution slot, parking in the bounded wait queue if
    /// none is free. Sheds with [`AdmitError::Overloaded`] when the
    /// queue is full, fails with [`AdmitError::Draining`] if the
    /// hard-drain backstop fires while parked.
    pub fn acquire(&self) -> Result<Permit<'_>, AdmitError> {
        let mut state = self.lock();
        if state.hard_drain {
            return Err(AdmitError::Draining);
        }
        if state.available == 0 {
            if state.waiting >= self.queue {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(AdmitError::Overloaded);
            }
            state.waiting += 1;
            loop {
                state = self.freed.wait(state).unwrap_or_else(|e| e.into_inner());
                if state.hard_drain {
                    state.waiting -= 1;
                    return Err(AdmitError::Draining);
                }
                if state.available > 0 {
                    state.waiting -= 1;
                    break;
                }
            }
        }
        state.available -= 1;
        Ok(Permit { gate: self })
    }

    /// Wakes every parked waiter and fails its acquisition; new
    /// acquisitions fail immediately. In-flight permits are unaffected
    /// (their checks finish under their own clamped budgets).
    pub fn begin_hard_drain(&self) {
        self.lock().hard_drain = true;
        self.freed.notify_all();
    }

    /// Whether no permit is out and nobody waits — the drain-complete
    /// condition.
    pub fn idle(&self) -> bool {
        let state = self.lock();
        state.available == self.slots && state.waiting == 0
    }

    /// Checks currently executing (permits out).
    pub fn inflight(&self) -> u64 {
        (self.slots - self.lock().available) as u64
    }

    /// Requests currently parked waiting for a slot.
    pub fn depth(&self) -> u64 {
        self.lock().waiting as u64
    }

    /// Requests shed since startup.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// An execution slot; dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
pub struct Permit<'g> {
    gate: &'g Gate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.lock();
        state.available += 1;
        drop(state);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_beyond_slots_plus_queue() {
        let gate = Gate::new(1, 0);
        let permit = gate.acquire().expect("first acquisition");
        assert_eq!(gate.acquire().unwrap_err(), AdmitError::Overloaded);
        assert_eq!(gate.shed_total(), 1);
        drop(permit);
        let reacquired = gate.acquire().expect("slot freed by drop");
        assert!(!gate.idle());
        drop(reacquired);
        assert!(gate.idle());
    }

    #[test]
    fn waiter_is_woken_by_release() {
        let gate = Arc::new(Gate::new(1, 1));
        let permit = gate.acquire().unwrap();
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.acquire().map(|_| ()).is_ok());
        // Wait until the thread has actually parked, then release.
        while gate.depth() == 0 {
            std::thread::yield_now();
        }
        assert_eq!(gate.inflight(), 1);
        drop(permit);
        assert!(waiter.join().unwrap());
        assert!(gate.idle());
    }

    #[test]
    fn hard_drain_fails_waiters_and_new_arrivals() {
        let gate = Arc::new(Gate::new(1, 4));
        let permit = gate.acquire().unwrap();
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.acquire().map(|_| ()).unwrap_err());
        while gate.depth() == 0 {
            std::thread::yield_now();
        }
        gate.begin_hard_drain();
        assert_eq!(waiter.join().unwrap(), AdmitError::Draining);
        assert_eq!(gate.acquire().unwrap_err(), AdmitError::Draining);
        drop(permit);
        assert!(gate.idle());
    }
}
