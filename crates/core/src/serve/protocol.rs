//! Wire protocol for `textpres serve`: newline-delimited JSON frames.
//!
//! Every frame is one JSON object on one LF-terminated line. Requests
//! carry an optional `id` (non-negative integer or string) that is echoed
//! verbatim on the response, a `type` selecting the operation, and
//! type-specific fields; schema/transducer payloads are the existing
//! `textpres::format` text formats embedded as JSON strings (a DTL
//! program is sniffed by its `dtl` header line, exactly as the CLI
//! does). The envelope is strict in the same spirit as
//! [`crate::format::parse_case`]: duplicate fields, unknown fields, and
//! wrong value types are rejected with a structured error frame — never
//! a panic, and never a silently-ignored field.
//!
//! Responses are `{"id":…, "ok":true, …}` on success or
//! `{"id":…, "ok":false, "error":"<code>", "message":…}` on failure,
//! with `error` drawn from the closed vocabulary in [`codes`]. The
//! transport layer (see [`crate::serve`]) prefixes `message` with the
//! frame's line number on the connection, mirroring the line-numbered
//! [`crate::format::FormatError`] contract of the file formats.

use std::collections::BTreeMap;

use tpx_obs::{quote, JsonValue};

/// Response error codes. A closed vocabulary so clients can switch on
/// `error` without string-matching free-form messages.
pub mod codes {
    /// The line was not a JSON object, or violated the envelope (bad
    /// `id`, missing/unknown `type`, duplicate or unknown fields, wrong
    /// value types). The connection stays open; parsing resynchronizes
    /// at the next newline.
    pub const BAD_FRAME: &str = "bad-frame";
    /// The envelope was well-formed but the request is not servable:
    /// an embedded schema/transducer failed to parse (the message
    /// carries the format's line-numbered error), a named source ref is
    /// unknown, or a field combination is invalid.
    pub const BAD_REQUEST: &str = "bad-request";
    /// No newline within the configured frame-size cap. The server
    /// answers once and closes the connection (the rest of the oversize
    /// line cannot be resynchronized).
    pub const FRAME_TOO_LARGE: &str = "frame-too-large";
    /// Admission control shed the request: all execution slots were busy
    /// and the bounded wait queue was full. Retryable (429-style).
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining (SIGTERM or a `shutdown` frame) and no
    /// longer admits new work. Retryable against a replacement instance.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The check exhausted its fuel or deadline budget and degradation
    /// was not requested (or not applicable). Retry with a larger budget
    /// or `"degrade": true`.
    pub const EXHAUSTED: &str = "exhausted";
    /// The decider panicked; `catch_unwind` isolation turned it into
    /// this structured response instead of killing the daemon.
    pub const PANICKED: &str = "panicked";
    /// An internal engine error (e.g. a poisoned cache build).
    pub const INTERNAL: &str = "internal";
    /// The named-source registry is at capacity; unregister by
    /// re-registering over existing names or restart with a larger cap.
    pub const REGISTRY_FULL: &str = "registry-full";
}

/// The client-chosen request id echoed on the response.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameId {
    /// No `id` field; responses carry `"id":null`.
    None,
    /// A non-negative integer id.
    Num(u64),
    /// A string id.
    Str(String),
}

impl FrameId {
    fn render(&self) -> String {
        match self {
            FrameId::None => "null".to_owned(),
            FrameId::Num(n) => n.to_string(),
            FrameId::Str(s) => quote(s),
        }
    }
}

/// A schema/transducer source: inline text or a reference to a source
/// previously stored with a `register` frame (amortizing upload + parse
/// across many checks — the fixed-schema usage pattern).
#[derive(Clone, Debug, PartialEq)]
pub enum SourceRef {
    /// The source text itself, embedded in the frame.
    Inline(String),
    /// The name of a registered source.
    Named(String),
}

/// What a `register` frame stores.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SourceKind {
    /// A schema document (also usable as a conformance target).
    Schema,
    /// A transducer program (top-down or DTL, sniffed on use).
    Transducer,
}

impl SourceKind {
    /// The wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            SourceKind::Schema => "schema",
            SourceKind::Transducer => "transducer",
        }
    }
}

/// Which analysis a `check` frame runs (defaults to text-preservation).
#[derive(Clone, Debug, PartialEq)]
pub enum AnalysisRequest {
    /// The paper's headline question (Definition 2.2).
    TextPreservation,
    /// Deletes-text-under-selected-labels (Lemma 4.8 route).
    TextRetention {
        /// The selected label names (must be non-empty).
        labels: Vec<String>,
    },
    /// Inverse type inference against a target schema.
    Conformance {
        /// The target schema source.
        target: SourceRef,
    },
}

/// Per-request resource budget; the server clamps these against its own
/// caps before running the check.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BudgetRequest {
    /// Fuel cap, if any.
    pub fuel: Option<u64>,
    /// Wall-clock cap in milliseconds, if any.
    pub timeout_ms: Option<u64>,
    /// Degrade to the bounded oracle on exhaustion instead of erroring.
    pub degrade: bool,
}

/// A single check/analyze request.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckRequest {
    /// The schema source.
    pub schema: SourceRef,
    /// The transducer source.
    pub transducer: SourceRef,
    /// The analysis to run.
    pub analysis: AnalysisRequest,
    /// The requested budget.
    pub budget: BudgetRequest,
}

/// A batch of text-preservation checks of many transducers against one
/// schema, run on the engine's work-stealing pool.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchRequest {
    /// The shared schema source.
    pub schema: SourceRef,
    /// The transducer sources, answered in order.
    pub transducers: Vec<SourceRef>,
    /// The per-task budget.
    pub budget: BudgetRequest,
}

/// A `register` frame: store a named source for later `*_ref` use.
#[derive(Clone, Debug, PartialEq)]
pub struct RegisterRequest {
    /// The name later frames refer to; re-registering overwrites.
    pub name: String,
    /// Whether this is a schema or a transducer.
    pub kind: SourceKind,
    /// The source text.
    pub text: String,
}

/// A parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestFrame {
    /// The echoed id.
    pub id: FrameId,
    /// The operation.
    pub body: RequestBody,
}

/// The operation a request frame selects.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Run one analysis of one transducer against one schema.
    Check(CheckRequest),
    /// Run many text-preservation checks against one schema.
    Batch(BatchRequest),
    /// Store a named source.
    Register(RegisterRequest),
    /// Liveness probe; also reports draining state.
    Health,
    /// Server statistics (cache hit rates, queue depth, shed counts,
    /// per-analysis verdict counters).
    Stats,
    /// Begin a graceful drain, then answer.
    Shutdown,
}

/// A structured error: a [`codes`] code plus a human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorInfo {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Free-form detail (carries embedded-format line numbers).
    pub message: String,
}

impl ErrorInfo {
    /// Builds an error with an owned message.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ErrorInfo {
            code,
            message: message.into(),
        }
    }
}

/// One verdict, flattened for the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct VerdictSummary {
    /// Whether the analysis passed (no violation found).
    pub pass: bool,
    /// The analysis name (`text-preservation` / …).
    pub analysis: &'static str,
    /// Which decider ran (`topdown`, `dtl`, …).
    pub decider: &'static str,
    /// The outcome tag: `preserving`, `copying`, `rearranging`,
    /// `not-preserving`, `deletes-text`, or `non-conforming`.
    pub outcome: &'static str,
    /// Whether the verdict came from the degraded bounded oracle.
    pub degraded: bool,
    /// The rendered witness (tree or path format), when violating.
    pub witness: Option<String>,
    /// Artifact-cache hits attributed to this check.
    pub cache_hits: usize,
    /// Artifact-cache misses attributed to this check.
    pub cache_misses: usize,
    /// Total fuel spent across stages.
    pub fuel: u64,
    /// Server-side wall-clock for the check, microseconds.
    pub elapsed_us: u64,
}

/// The `health` response payload.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthSummary {
    /// `"ok"` or `"draining"`.
    pub status: &'static str,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
}

/// The `stats` response payload.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSummary {
    /// Requests answered with a verdict or batch.
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Frames rejected before reaching the engine (bad frame/request).
    pub rejected: u64,
    /// Checks currently executing.
    pub inflight: u64,
    /// Requests waiting for an execution slot.
    pub queue_depth: u64,
    /// Open client connections.
    pub connections: u64,
    /// Named sources currently registered.
    pub registry_entries: u64,
    /// Entries in the parse memo (compiled schema/transducer sources).
    pub memo_entries: u64,
    /// Requests that skipped re-parsing via the memo.
    pub memo_hits: u64,
    /// Artifact-cache hits / misses / entries / evictions.
    pub cache: (u64, u64, u64, u64),
    /// Engine counters (verdicts per analysis, errors, stage builds…),
    /// name → count.
    pub counters: BTreeMap<String, u64>,
}

/// The payload of a response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// A completed check.
    Verdict(VerdictSummary),
    /// A completed batch: one verdict or error per transducer, in order.
    Batch(Vec<Result<VerdictSummary, ErrorInfo>>),
    /// A successful `register`.
    Registered {
        /// The stored name.
        name: String,
        /// The stored kind.
        kind: SourceKind,
    },
    /// A `health` answer.
    Health(HealthSummary),
    /// A `stats` answer.
    Stats(Box<StatsSummary>),
    /// A `shutdown` acknowledgement (the drain has begun).
    ShutdownAck,
    /// A structured failure.
    Error(ErrorInfo),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type ParseResult<T> = Result<T, ErrorInfo>;

fn bad_frame(msg: impl Into<String>) -> ErrorInfo {
    ErrorInfo::new(codes::BAD_FRAME, msg)
}

/// The strict field cursor over one frame object: every field must be
/// known, unique, and of the right type; [`Fields::finish`] rejects
/// leftovers.
struct Fields<'a> {
    fields: &'a [(String, JsonValue)],
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(v: &'a JsonValue) -> ParseResult<Self> {
        match v {
            JsonValue::Obj(fields) => {
                for (i, (k, _)) in fields.iter().enumerate() {
                    if fields[..i].iter().any(|(other, _)| other == k) {
                        return Err(bad_frame(format!("duplicate field {k:?}")));
                    }
                }
                Ok(Fields {
                    fields,
                    used: vec![false; fields.len()],
                })
            }
            _ => Err(bad_frame("frame is not a JSON object")),
        }
    }

    fn take(&mut self, key: &str) -> Option<&'a JsonValue> {
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn take_str(&mut self, key: &str) -> ParseResult<Option<String>> {
        match self.take(key) {
            None => Ok(None),
            Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
            Some(_) => Err(bad_frame(format!("field {key:?} must be a string"))),
        }
    }

    fn take_u64(&mut self, key: &str) -> ParseResult<Option<u64>> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => match v.as_u64() {
                Some(n) => Ok(Some(n)),
                None => Err(bad_frame(format!(
                    "field {key:?} must be a non-negative integer"
                ))),
            },
        }
    }

    fn take_bool(&mut self, key: &str) -> ParseResult<bool> {
        match self.take(key) {
            None => Ok(false),
            Some(JsonValue::Bool(b)) => Ok(*b),
            Some(_) => Err(bad_frame(format!("field {key:?} must be a boolean"))),
        }
    }

    /// Rejects any field no `take*` consumed.
    fn finish(self) -> ParseResult<()> {
        for (i, (k, _)) in self.fields.iter().enumerate() {
            if !self.used[i] {
                return Err(bad_frame(format!("unknown field {k:?}")));
            }
        }
        Ok(())
    }
}

/// Pulls an inline-or-ref source pair (`key` / `key_ref`) out of the
/// frame; exactly one of the two must be present when `required`.
fn take_source(f: &mut Fields<'_>, key: &str, required: bool) -> ParseResult<Option<SourceRef>> {
    let ref_key = format!("{key}_ref");
    let inline = f.take_str(key)?;
    let named = f.take_str(&ref_key)?;
    match (inline, named) {
        (Some(_), Some(_)) => Err(bad_frame(format!(
            "fields {key:?} and {ref_key:?} are mutually exclusive"
        ))),
        (Some(text), None) => Ok(Some(SourceRef::Inline(text))),
        (None, Some(name)) => Ok(Some(SourceRef::Named(name))),
        (None, None) if required => {
            Err(bad_frame(format!("missing field {key:?} (or {ref_key:?})")))
        }
        (None, None) => Ok(None),
    }
}

fn take_budget(f: &mut Fields<'_>) -> ParseResult<BudgetRequest> {
    Ok(BudgetRequest {
        fuel: f.take_u64("fuel")?,
        timeout_ms: f.take_u64("timeout_ms")?,
        degrade: f.take_bool("degrade")?,
    })
}

fn take_id(f: &mut Fields<'_>) -> ParseResult<FrameId> {
    match f.take("id") {
        None | Some(JsonValue::Null) => Ok(FrameId::None),
        Some(JsonValue::Str(s)) => Ok(FrameId::Str(s.clone())),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(FrameId::Num(n)),
            None => Err(bad_frame(
                "field \"id\" must be a non-negative integer or string",
            )),
        },
    }
}

fn take_analysis(f: &mut Fields<'_>) -> ParseResult<AnalysisRequest> {
    let name = f.take_str("analysis")?;
    let labels = match f.take("labels") {
        None => Vec::new(),
        Some(JsonValue::Arr(items)) => {
            let mut labels = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    JsonValue::Str(s) => labels.push(s.clone()),
                    _ => return Err(bad_frame("field \"labels\" must be an array of strings")),
                }
            }
            labels
        }
        Some(_) => return Err(bad_frame("field \"labels\" must be an array of strings")),
    };
    let target = take_source(f, "target", false)?;
    match name.as_deref() {
        None | Some("text-preservation") => {
            if !labels.is_empty() {
                return Err(bad_frame(
                    "field \"labels\" only applies to \"analysis\":\"text-retention\"",
                ));
            }
            if target.is_some() {
                return Err(bad_frame(
                    "field \"target\" only applies to \"analysis\":\"conformance\"",
                ));
            }
            Ok(AnalysisRequest::TextPreservation)
        }
        Some("text-retention") => {
            if target.is_some() {
                return Err(bad_frame(
                    "field \"target\" only applies to \"analysis\":\"conformance\"",
                ));
            }
            if labels.is_empty() {
                return Err(bad_frame(
                    "\"analysis\":\"text-retention\" needs a non-empty \"labels\" array",
                ));
            }
            Ok(AnalysisRequest::TextRetention { labels })
        }
        Some("conformance") => {
            if !labels.is_empty() {
                return Err(bad_frame(
                    "field \"labels\" only applies to \"analysis\":\"text-retention\"",
                ));
            }
            match target {
                Some(target) => Ok(AnalysisRequest::Conformance { target }),
                None => Err(bad_frame(
                    "\"analysis\":\"conformance\" needs \"target\" or \"target_ref\"",
                )),
            }
        }
        Some(other) => Err(bad_frame(format!(
            "unknown analysis {other:?} (expected one of text-preservation, \
             text-retention, conformance)"
        ))),
    }
}

/// Parses one frame line into a [`RequestFrame`].
///
/// Errors are [`codes::BAD_FRAME`] — the caller maps them onto an error
/// response carrying whatever `id` could still be recovered (a frame
/// whose envelope is broken gets `"id":null`). This function never
/// panics on any input; `tests/format_fuzz.rs` sweeps it with seeded
/// mutations alongside the file-format parsers.
pub fn parse_request_line(line: &str) -> Result<RequestFrame, ErrorInfo> {
    let value = JsonValue::parse(line).map_err(|e| bad_frame(format!("invalid JSON: {e}")))?;
    let mut f = Fields::new(&value)?;
    let id = take_id(&mut f)?;
    let Some(kind) = f.take_str("type")? else {
        return Err(bad_frame("missing field \"type\""));
    };
    let body = match kind.as_str() {
        "check" => {
            let schema = take_source(&mut f, "schema", true)?.expect("required");
            let transducer = take_source(&mut f, "transducer", true)?.expect("required");
            let analysis = take_analysis(&mut f)?;
            let budget = take_budget(&mut f)?;
            RequestBody::Check(CheckRequest {
                schema,
                transducer,
                analysis,
                budget,
            })
        }
        "batch" => {
            let schema = take_source(&mut f, "schema", true)?.expect("required");
            let transducers = match f.take("transducers") {
                Some(JsonValue::Arr(items)) if !items.is_empty() => {
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        match item {
                            JsonValue::Str(text) => out.push(SourceRef::Inline(text.clone())),
                            JsonValue::Obj(_) => {
                                let mut g = Fields::new(item)?;
                                let name = g.take_str("ref")?.ok_or_else(|| {
                                    bad_frame("a \"transducers\" object item needs \"ref\"")
                                })?;
                                g.finish()?;
                                out.push(SourceRef::Named(name));
                            }
                            _ => {
                                return Err(bad_frame(
                                    "\"transducers\" items must be source strings or \
                                     {\"ref\": name} objects",
                                ))
                            }
                        }
                    }
                    out
                }
                Some(JsonValue::Arr(_)) => {
                    return Err(bad_frame("field \"transducers\" must not be empty"))
                }
                Some(_) => return Err(bad_frame("field \"transducers\" must be an array")),
                None => return Err(bad_frame("missing field \"transducers\"")),
            };
            let budget = take_budget(&mut f)?;
            RequestBody::Batch(BatchRequest {
                schema,
                transducers,
                budget,
            })
        }
        "register" => {
            let Some(name) = f.take_str("name")? else {
                return Err(bad_frame("missing field \"name\""));
            };
            if name.is_empty() {
                return Err(bad_frame("field \"name\" must not be empty"));
            }
            let kind = match f.take_str("kind")?.as_deref() {
                Some("schema") => SourceKind::Schema,
                Some("transducer") => SourceKind::Transducer,
                Some(other) => {
                    return Err(bad_frame(format!(
                        "unknown kind {other:?} (expected \"schema\" or \"transducer\")"
                    )))
                }
                None => return Err(bad_frame("missing field \"kind\"")),
            };
            let Some(text) = f.take_str("text")? else {
                return Err(bad_frame("missing field \"text\""));
            };
            RequestBody::Register(RegisterRequest { name, kind, text })
        }
        "health" => RequestBody::Health,
        "stats" => RequestBody::Stats,
        "shutdown" => RequestBody::Shutdown,
        other => return Err(bad_frame(format!("unknown request type {other:?}"))),
    };
    f.finish()?;
    Ok(RequestFrame { id, body })
}

/// Best-effort id recovery from a line whose full envelope parse failed,
/// so even a `bad-frame` response can be correlated by the client.
pub fn recover_id(line: &str) -> FrameId {
    let Ok(value) = JsonValue::parse(line) else {
        return FrameId::None;
    };
    match value.get("id") {
        Some(JsonValue::Str(s)) => FrameId::Str(s.clone()),
        Some(v) => v.as_u64().map_or(FrameId::None, FrameId::Num),
        None => FrameId::None,
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn push_verdict_fields(out: &mut String, v: &VerdictSummary) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "\"verdict\":{},\"analysis\":{},\"decider\":{},\"outcome\":{},\"degraded\":{}",
        if v.pass { "\"pass\"" } else { "\"fail\"" },
        quote(v.analysis),
        quote(v.decider),
        quote(v.outcome),
        v.degraded,
    );
    if let Some(w) = &v.witness {
        let _ = write!(out, ",\"witness\":{}", quote(w));
    }
    let _ = write!(
        out,
        ",\"cache_hits\":{},\"cache_misses\":{},\"fuel\":{},\"elapsed_us\":{}",
        v.cache_hits, v.cache_misses, v.fuel, v.elapsed_us
    );
}

/// Renders one response frame as a single JSON line (no trailing
/// newline).
pub fn render_response(id: &FrameId, body: &ResponseBody) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(128);
    let _ = write!(out, "{{\"id\":{}", id.render());
    match body {
        ResponseBody::Verdict(v) => {
            out.push_str(",\"ok\":true,");
            push_verdict_fields(&mut out, v);
        }
        ResponseBody::Batch(items) => {
            out.push_str(",\"ok\":true,\"results\":[");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match item {
                    Ok(v) => {
                        out.push_str("{\"ok\":true,");
                        push_verdict_fields(&mut out, v);
                        out.push('}');
                    }
                    Err(e) => {
                        let _ = write!(
                            out,
                            "{{\"ok\":false,\"error\":{},\"message\":{}}}",
                            quote(e.code),
                            quote(&e.message)
                        );
                    }
                }
            }
            out.push(']');
        }
        ResponseBody::Registered { name, kind } => {
            let _ = write!(
                out,
                ",\"ok\":true,\"registered\":{},\"kind\":{}",
                quote(name),
                quote(kind.as_str())
            );
        }
        ResponseBody::Health(h) => {
            let _ = write!(
                out,
                ",\"ok\":true,\"status\":{},\"uptime_ms\":{}",
                quote(h.status),
                h.uptime_ms
            );
        }
        ResponseBody::Stats(s) => {
            let _ = write!(
                out,
                ",\"ok\":true,\"serve\":{{\"served\":{},\"shed\":{},\"rejected\":{},\
                 \"inflight\":{},\"queue_depth\":{},\"connections\":{},\
                 \"registry_entries\":{},\"memo_entries\":{},\"memo_hits\":{}}}",
                s.served,
                s.shed,
                s.rejected,
                s.inflight,
                s.queue_depth,
                s.connections,
                s.registry_entries,
                s.memo_entries,
                s.memo_hits
            );
            let (hits, misses, entries, evictions) = s.cache;
            let _ = write!(
                out,
                ",\"cache\":{{\"hits\":{hits},\"misses\":{misses},\
                 \"entries\":{entries},\"evictions\":{evictions}}}"
            );
            out.push_str(",\"counters\":{");
            for (i, (name, count)) in s.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", quote(name), count);
            }
            out.push('}');
        }
        ResponseBody::ShutdownAck => {
            out.push_str(",\"ok\":true,\"draining\":true");
        }
        ResponseBody::Error(e) => {
            let _ = write!(
                out,
                ",\"ok\":false,\"error\":{},\"message\":{}",
                quote(e.code),
                quote(&e.message)
            );
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_frame_round_trips() {
        let frame = parse_request_line(
            r#"{"id":7,"type":"check","schema":"start a\nelem a = text","transducer":"initial q\nrule q a -> a(qt)\ntext qt","fuel":100,"degrade":true}"#,
        )
        .unwrap();
        assert_eq!(frame.id, FrameId::Num(7));
        let RequestBody::Check(req) = frame.body else {
            panic!("expected check");
        };
        assert_eq!(req.budget.fuel, Some(100));
        assert!(req.budget.degrade);
        assert_eq!(req.analysis, AnalysisRequest::TextPreservation);
        assert!(matches!(req.schema, SourceRef::Inline(_)));
    }

    #[test]
    fn refs_and_inline_are_mutually_exclusive() {
        let err = parse_request_line(
            r#"{"type":"check","schema":"s","schema_ref":"n","transducer":"t"}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, codes::BAD_FRAME);
        assert!(
            err.message.contains("mutually exclusive"),
            "{}",
            err.message
        );
    }

    #[test]
    fn duplicate_and_unknown_fields_are_rejected() {
        let dup = parse_request_line(r#"{"type":"health","type":"stats"}"#).unwrap_err();
        assert!(dup.message.contains("duplicate field"), "{}", dup.message);
        let unk = parse_request_line(r#"{"type":"health","bogus":1}"#).unwrap_err();
        assert!(unk.message.contains("unknown field"), "{}", unk.message);
    }

    #[test]
    fn analysis_field_combinations_are_validated() {
        let err =
            parse_request_line(r#"{"type":"check","schema":"s","transducer":"t","labels":["a"]}"#)
                .unwrap_err();
        assert!(err.message.contains("labels"), "{}", err.message);
        let err = parse_request_line(
            r#"{"type":"check","schema":"s","transducer":"t","analysis":"text-retention"}"#,
        )
        .unwrap_err();
        assert!(err.message.contains("non-empty"), "{}", err.message);
        let ok = parse_request_line(
            r#"{"type":"check","schema":"s","transducer":"t","analysis":"conformance","target_ref":"tgt"}"#,
        )
        .unwrap();
        let RequestBody::Check(req) = ok.body else {
            panic!("expected check");
        };
        assert_eq!(
            req.analysis,
            AnalysisRequest::Conformance {
                target: SourceRef::Named("tgt".to_owned())
            }
        );
    }

    #[test]
    fn batch_items_take_strings_or_refs() {
        let frame = parse_request_line(
            r#"{"type":"batch","schema_ref":"s","transducers":["inline text",{"ref":"t1"}]}"#,
        )
        .unwrap();
        let RequestBody::Batch(req) = frame.body else {
            panic!("expected batch");
        };
        assert_eq!(req.transducers.len(), 2);
        assert_eq!(req.transducers[1], SourceRef::Named("t1".to_owned()));
    }

    #[test]
    fn recover_id_survives_broken_envelopes() {
        assert_eq!(recover_id("not json at all"), FrameId::None);
        assert_eq!(
            recover_id(r#"{"id":"abc","type":"nope"}"#),
            FrameId::Str("abc".to_owned())
        );
        assert_eq!(recover_id(r#"{"id":3,"type":5}"#), FrameId::Num(3));
    }

    #[test]
    fn responses_render_as_single_lines() {
        let line = render_response(
            &FrameId::Str("x\"y".to_owned()),
            &ResponseBody::Error(ErrorInfo::new(codes::OVERLOADED, "queue full\nretry")),
        );
        assert!(!line.contains('\n'), "{line}");
        let parsed = JsonValue::parse(&line).unwrap();
        assert_eq!(parsed.get("ok").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(
            parsed.get("error").and_then(|v| v.as_str()),
            Some(codes::OVERLOADED)
        );
        assert_eq!(parsed.get("id").and_then(|v| v.as_str()), Some("x\"y"));
    }
}
