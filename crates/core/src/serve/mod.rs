//! `textpres serve` — a long-running daemon owning one persistent warm
//! [`Engine`].
//!
//! Every one-shot CLI invocation pays process startup plus a cold
//! [`ArtifactCache`](tpx_engine::ArtifactCache); the `engine_warm` bench
//! shows the warm path is ~1000× cheaper. This module keeps that cache
//! (and a parse memo over schema/transducer *sources*) hot across
//! requests, behind a zero-external-dep TCP protocol of
//! newline-delimited JSON frames (see [`protocol`]).
//!
//! The design priority is fault isolation — one bad client must never
//! wedge, crash, or starve the daemon:
//!
//! - every check runs under a per-request [`Budget`] (fuel + deadline),
//!   clamped by server-wide caps, through
//!   [`Engine::check_governed`] — whose `catch_unwind` turns a
//!   panicking decider into a structured [`protocol::codes::PANICKED`]
//!   response;
//! - admission control (see [`admission`]) bounds concurrent checks and
//!   the wait queue, shedding excess load with
//!   [`protocol::codes::OVERLOADED`] instead of growing memory;
//! - connections have read/write timeouts, an idle timeout, and a
//!   max-frame-size cap, so a slow or hostile client cannot pin a slot;
//! - a malformed frame earns a [`protocol::codes::BAD_FRAME`] response
//!   and parsing resynchronizes at the next newline — the connection
//!   survives;
//! - SIGTERM/SIGINT (see [`Server::install_signal_handlers`]) or a
//!   `shutdown` frame begins a graceful drain: stop accepting, answer
//!   everything already admitted (new-work budgets are clamped to the
//!   remaining drain window), hard-fail parked waiters at the drain
//!   deadline, flush traces/metrics once on the single exit path, and
//!   return so the process can exit 0.
//!
//! Connection threads execute their own admitted requests — there is no
//! cross-thread handoff on the hot path, which is what keeps the warm
//! served-request latency within the `validate_bench` bound of 2× the
//! in-process `engine_warm` figure.

pub mod protocol;

mod admission;

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tpx_dtl::{DtlTransducer, XPathPatterns};
use tpx_engine::{
    Budget, CheckOptions, Decider, DecisionError, DegradeBound, DtlDecider, Engine, Metrics,
    Outcome, OutputConformanceDecider, Task, TextRetentionDecider, TopdownDecider, Tracer, Verdict,
};
use tpx_topdown::Transducer;
use tpx_treeauto::Nta;
use tpx_trees::{Alphabet, Symbol};

use crate::format::{
    is_dtl_transducer, parse_dtl_transducer, parse_schema, parse_transducer, render_path,
    render_witness,
};
use admission::{AdmitError, Gate};
use protocol::{
    codes, AnalysisRequest, BatchRequest, BudgetRequest, CheckRequest, ErrorInfo, FrameId,
    HealthSummary, RegisterRequest, RequestBody, ResponseBody, SourceKind, SourceRef, StatsSummary,
    VerdictSummary,
};

/// How often blocked reads and the accept loop wake up to poll the
/// drain/stop flags.
const POLL: Duration = Duration::from_millis(25);

/// Server tuning knobs. [`ServeConfig::default`] is sized for tests and
/// small deployments; the CLI maps `textpres serve` flags onto it.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Concurrent checks (admission slots); 0 = host parallelism.
    pub slots: usize,
    /// Requests that may wait for a slot before shedding starts.
    pub queue: usize,
    /// Maximum simultaneously open client connections.
    pub max_connections: usize,
    /// Maximum bytes in one frame line (larger frames close the
    /// connection with `frame-too-large`).
    pub max_frame_bytes: usize,
    /// Close a connection after this long without a complete frame.
    pub idle_timeout: Duration,
    /// Socket write timeout (a client not draining its responses is
    /// disconnected rather than pinning the thread).
    pub write_timeout: Duration,
    /// Server-wide cap on per-request fuel (`None` = requests may run
    /// unmetered fuel-wise).
    pub max_fuel: Option<u64>,
    /// Server-wide cap on per-request wall-clock. Every check runs with
    /// a deadline of at most this, which is also what bounds the drain.
    pub max_timeout: Duration,
    /// How long a drain may take before parked waiters are hard-failed.
    pub drain_deadline: Duration,
    /// Named-source registry capacity (`register` frames).
    pub registry_cap: usize,
    /// Parse-memo capacity (compiled schema/transducer sources).
    pub memo_cap: usize,
    /// Write a JSONL span trace here on exit.
    pub trace_out: Option<std::path::PathBuf>,
    /// Print the metrics table to stderr on exit.
    pub metrics_dump: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7345".to_owned(),
            slots: 0,
            queue: 64,
            max_connections: 64,
            max_frame_bytes: 1 << 20,
            idle_timeout: Duration::from_secs(120),
            write_timeout: Duration::from_secs(10),
            max_fuel: None,
            max_timeout: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
            registry_cap: 256,
            memo_cap: 128,
            trace_out: None,
            metrics_dump: false,
        }
    }
}

/// What the server did over its lifetime; returned by [`Server::run`]
/// after the drain completes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Check/batch requests answered with an engine result.
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Frames rejected before reaching the engine.
    pub rejected: u64,
    /// Whether the drain deadline fired (parked waiters were answered
    /// with `shutting-down` instead of a verdict).
    pub forced_drain: bool,
}

/// A parsed-and-compiled (schema, transducer, analysis) triple, memoized
/// by source content so warm requests skip the text formats entirely.
struct Prepared {
    alpha: Alphabet,
    schema: Nta,
    kind: PreparedKind,
}

enum PreparedKind {
    Topdown(Transducer),
    Dtl(DtlTransducer<XPathPatterns>),
    Retention { t: Transducer, labels: Vec<Symbol> },
    Conformance { t: Transducer, target: Nta },
}

struct Shared {
    cfg: ServeConfig,
    engine: Engine,
    tracer: Arc<Tracer>,
    metrics: Arc<Metrics>,
    gate: Gate,
    registry: Mutex<HashMap<String, (SourceKind, Arc<String>)>>,
    memo: Mutex<HashMap<u64, Arc<Prepared>>>,
    memo_hits: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    connections: AtomicU64,
    draining: AtomicBool,
    stopping: AtomicBool,
    drain_deadline_at: Mutex<Option<Instant>>,
    started: Instant,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn stopping(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    /// Begins the drain: no new work is admitted, budgets of anything
    /// still racing in are clamped to the drain window.
    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            *lock(&self.drain_deadline_at) = Some(Instant::now() + self.cfg.drain_deadline);
        }
    }

    fn bad_request(&self, message: impl Into<String>) -> ErrorInfo {
        ErrorInfo::new(codes::BAD_REQUEST, message)
    }

    fn resolve(&self, source: &SourceRef, expect: SourceKind) -> Result<Arc<String>, ErrorInfo> {
        match source {
            SourceRef::Inline(text) => Ok(Arc::new(text.clone())),
            SourceRef::Named(name) => match lock(&self.registry).get(name) {
                Some((kind, text)) if *kind == expect => Ok(Arc::clone(text)),
                Some((kind, _)) => Err(self.bad_request(format!(
                    "ref {name:?} is a registered {}, not a {}",
                    kind.as_str(),
                    expect.as_str()
                ))),
                None => Err(self.bad_request(format!(
                    "unknown {} ref {name:?} (register it first)",
                    expect.as_str()
                ))),
            },
        }
    }

    /// Resolves, parses and compiles a check request's sources, through
    /// the bounded parse memo.
    fn prepare(&self, req: &CheckRequest) -> Result<Arc<Prepared>, ErrorInfo> {
        let schema_src = self.resolve(&req.schema, SourceKind::Schema)?;
        let t_src = self.resolve(&req.transducer, SourceKind::Transducer)?;
        let target_src = match &req.analysis {
            AnalysisRequest::Conformance { target } => {
                Some(self.resolve(target, SourceKind::Schema)?)
            }
            _ => None,
        };
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        schema_src.hash(&mut hasher);
        t_src.hash(&mut hasher);
        match &req.analysis {
            AnalysisRequest::TextPreservation => 0u8.hash(&mut hasher),
            AnalysisRequest::TextRetention { labels } => {
                1u8.hash(&mut hasher);
                labels.hash(&mut hasher);
            }
            AnalysisRequest::Conformance { .. } => {
                2u8.hash(&mut hasher);
                target_src
                    .as_ref()
                    .expect("resolved above")
                    .hash(&mut hasher);
            }
        }
        let key = hasher.finish();
        if let Some(p) = lock(&self.memo).get(&key) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(p));
        }

        // Parse outside the memo lock; two racing requests for the same
        // sources may both compile, the second insert wins — the same
        // "duplicate work beats a held lock" tradeoff the ArtifactCache
        // shards make.
        //
        // A transducer source that sniffs as XSLT goes through the
        // frontend instead of the text-format parsers, compiled once per
        // (schema, stylesheet) pair into the engine's artifact cache
        // under the shared `xslt/compile` stage — the memo above only
        // shortcuts re-requests of the identical (analysis, sources)
        // triple, the artifact survives memo resets and is shared across
        // analyses.
        if tpx_xslt::is_stylesheet(&t_src) {
            let artifact =
                crate::frontend::compile_stylesheet_cached(&self.engine, &schema_src, &t_src)
                    .map_err(|e| self.bad_request(format!("transducer: {e}")))?;
            let mut alpha = artifact.alpha.clone();
            let kind = match &req.analysis {
                AnalysisRequest::TextPreservation => {
                    PreparedKind::Topdown(artifact.transducer.clone())
                }
                AnalysisRequest::TextRetention { labels } => {
                    let labels = labels
                        .iter()
                        .map(|l| {
                            alpha.get(l).ok_or_else(|| {
                                self.bad_request(format!(
                                    "label {l:?} is not in the schema alphabet"
                                ))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    PreparedKind::Retention {
                        t: artifact.transducer.clone(),
                        labels,
                    }
                }
                AnalysisRequest::Conformance { .. } => {
                    let target =
                        parse_schema(target_src.as_ref().expect("resolved above"), &mut alpha)
                            .map_err(|e| self.bad_request(format!("target: {e}")))?
                            .to_nta();
                    PreparedKind::Conformance {
                        t: artifact.transducer.clone(),
                        target,
                    }
                }
            };
            let prepared = Arc::new(Prepared {
                alpha,
                schema: artifact.schema.clone(),
                kind,
            });
            let mut memo = lock(&self.memo);
            if memo.len() >= self.cfg.memo_cap && !memo.contains_key(&key) {
                memo.clear();
            }
            memo.insert(key, Arc::clone(&prepared));
            return Ok(prepared);
        }
        let mut alpha = Alphabet::new();
        let dtd = parse_schema(&schema_src, &mut alpha)
            .map_err(|e| self.bad_request(format!("schema: {e}")))?;
        let schema = dtd.to_nta();
        let parse_topdown = |analysis: &str, alpha: &Alphabet| -> Result<Transducer, ErrorInfo> {
            if is_dtl_transducer(&t_src) {
                return Err(self.bad_request(format!(
                    "analysis {analysis} needs a top-down transducer, got a dtl program"
                )));
            }
            parse_transducer(&t_src, alpha)
                .map_err(|e| self.bad_request(format!("transducer: {e}")))
        };
        let kind = match &req.analysis {
            AnalysisRequest::TextPreservation => {
                if is_dtl_transducer(&t_src) {
                    PreparedKind::Dtl(
                        parse_dtl_transducer(&t_src, &alpha)
                            .map_err(|e| self.bad_request(format!("transducer: {e}")))?,
                    )
                } else {
                    PreparedKind::Topdown(
                        parse_transducer(&t_src, &alpha)
                            .map_err(|e| self.bad_request(format!("transducer: {e}")))?,
                    )
                }
            }
            AnalysisRequest::TextRetention { labels } => {
                let t = parse_topdown("text-retention", &alpha)?;
                let labels = labels
                    .iter()
                    .map(|l| {
                        alpha.get(l).ok_or_else(|| {
                            self.bad_request(format!("label {l:?} is not in the schema alphabet"))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                PreparedKind::Retention { t, labels }
            }
            AnalysisRequest::Conformance { .. } => {
                let t = parse_topdown("conformance", &alpha)?;
                // The target is parsed into the *same* alphabet so its
                // symbols line up with the transducer's output labels.
                let target = parse_schema(target_src.as_ref().expect("resolved above"), &mut alpha)
                    .map_err(|e| self.bad_request(format!("target: {e}")))?
                    .to_nta();
                PreparedKind::Conformance { t, target }
            }
        };
        let prepared = Arc::new(Prepared {
            alpha,
            schema,
            kind,
        });
        let mut memo = lock(&self.memo);
        if memo.len() >= self.cfg.memo_cap && !memo.contains_key(&key) {
            // Same wholesale-reset policy as the ArtifactCache entry cap:
            // dead simple, bounded, and a reset only costs re-parses.
            memo.clear();
        }
        memo.insert(key, Arc::clone(&prepared));
        Ok(prepared)
    }

    /// Clamps a request's budget against the server caps (and, during a
    /// drain, against the remaining drain window, so in-flight work can
    /// never outlive the drain by more than one `max_timeout`).
    fn effective_options(&self, req: &BudgetRequest) -> CheckOptions {
        let mut budget = Budget::default();
        let fuel = match (req.fuel, self.cfg.max_fuel) {
            (Some(f), Some(cap)) => Some(f.min(cap)),
            (Some(f), None) => Some(f),
            (None, cap) => cap,
        };
        if let Some(f) = fuel {
            budget = budget.with_fuel(f);
        }
        let mut timeout = req
            .timeout_ms
            .map_or(self.cfg.max_timeout, Duration::from_millis)
            .min(self.cfg.max_timeout);
        if let Some(deadline) = *lock(&self.drain_deadline_at) {
            let remaining = deadline.saturating_duration_since(Instant::now());
            timeout = timeout.min(remaining.max(Duration::from_millis(1)));
        }
        budget = budget.with_timeout(timeout);
        let mut options = CheckOptions::with_budget(budget);
        if req.degrade {
            options = options.degrade_with(DegradeBound::default());
        }
        options
    }

    fn run_prepared(&self, p: &Prepared, options: &CheckOptions) -> Result<Verdict, DecisionError> {
        match &p.kind {
            PreparedKind::Topdown(t) => {
                self.engine
                    .check_governed(&TopdownDecider::new(t), &p.schema, options)
            }
            PreparedKind::Dtl(t) => {
                self.engine
                    .check_governed(&DtlDecider::new(t), &p.schema, options)
            }
            PreparedKind::Retention { t, labels } => self.engine.check_governed(
                &TextRetentionDecider::new(t, labels.clone()),
                &p.schema,
                options,
            ),
            PreparedKind::Conformance { t, target } => self.engine.check_governed(
                &OutputConformanceDecider::new(t, target),
                &p.schema,
                options,
            ),
        }
    }

    fn handle_check(&self, req: &CheckRequest) -> ResponseBody {
        let prepared = match self.prepare(req) {
            Ok(p) => p,
            Err(e) => return self.reject(e),
        };
        let options = self.effective_options(&req.budget);
        let start = Instant::now();
        let result = self.run_prepared(&prepared, &options);
        let elapsed_us = start.elapsed().as_micros() as u64;
        self.served.fetch_add(1, Ordering::Relaxed);
        self.metrics.observe("serve/request_us", elapsed_us);
        match result {
            Ok(v) => ResponseBody::Verdict(summarize(&v, &prepared.alpha, elapsed_us)),
            Err(e) => {
                let info = decision_error_info(&e);
                self.metrics.incr(&format!("serve/errors/{}", info.code));
                ResponseBody::Error(info)
            }
        }
    }

    fn handle_batch(&self, req: &BatchRequest) -> ResponseBody {
        let options = self.effective_options(&req.budget);
        let prepared: Vec<Result<Arc<Prepared>, ErrorInfo>> = req
            .transducers
            .iter()
            .map(|t| {
                self.prepare(&CheckRequest {
                    schema: req.schema.clone(),
                    transducer: t.clone(),
                    analysis: AnalysisRequest::TextPreservation,
                    budget: req.budget.clone(),
                })
            })
            .collect();
        let ok: Vec<&Prepared> = prepared
            .iter()
            .filter_map(|p| p.as_ref().ok().map(Arc::as_ref))
            .collect();
        let deciders: Vec<Box<dyn Decider + '_>> = ok
            .iter()
            .map(|p| -> Box<dyn Decider + '_> {
                match &p.kind {
                    PreparedKind::Topdown(t) => Box::new(TopdownDecider::new(t)),
                    PreparedKind::Dtl(t) => Box::new(DtlDecider::new(t)),
                    // `prepare` was called with TextPreservation above.
                    _ => unreachable!("batch prepares text-preservation only"),
                }
            })
            .collect();
        let tasks: Vec<Task<'_>> = deciders
            .iter()
            .zip(&ok)
            .map(|(d, p)| (&**d, &p.schema))
            .collect();
        let start = Instant::now();
        let mut verdicts = self
            .engine
            .check_many_governed(&tasks, &options)
            .into_iter();
        let elapsed_us = start.elapsed().as_micros() as u64;
        self.served.fetch_add(1, Ordering::Relaxed);
        self.metrics.observe("serve/request_us", elapsed_us);
        let mut ok_iter = ok.iter();
        let results = prepared
            .iter()
            .map(|p| match p {
                Ok(_) => {
                    let prepared = ok_iter.next().expect("one per Ok");
                    match verdicts.next().expect("one verdict per task") {
                        Ok(v) => Ok(summarize(&v, &prepared.alpha, elapsed_us)),
                        Err(e) => {
                            let info = decision_error_info(&e);
                            self.metrics.incr(&format!("serve/errors/{}", info.code));
                            Err(info)
                        }
                    }
                }
                Err(e) => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    self.metrics.incr(&format!("serve/errors/{}", e.code));
                    Err(e.clone())
                }
            })
            .collect();
        ResponseBody::Batch(results)
    }

    fn handle_register(&self, req: &RegisterRequest) -> ResponseBody {
        let mut registry = lock(&self.registry);
        if registry.len() >= self.cfg.registry_cap && !registry.contains_key(&req.name) {
            return self.reject(ErrorInfo::new(
                codes::REGISTRY_FULL,
                format!("registry holds {} sources already", registry.len()),
            ));
        }
        registry.insert(req.name.clone(), (req.kind, Arc::new(req.text.clone())));
        ResponseBody::Registered {
            name: req.name.clone(),
            kind: req.kind,
        }
    }

    fn stats(&self) -> StatsSummary {
        let cache = self.engine.cache_stats();
        StatsSummary {
            served: self.served.load(Ordering::Relaxed),
            shed: self.gate.shed_total(),
            rejected: self.rejected.load(Ordering::Relaxed),
            inflight: self.gate.inflight(),
            queue_depth: self.gate.depth(),
            connections: self.connections.load(Ordering::Relaxed),
            registry_entries: lock(&self.registry).len() as u64,
            memo_entries: lock(&self.memo).len() as u64,
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            cache: (
                cache.hits,
                cache.misses,
                cache.entries as u64,
                cache.evictions,
            ),
            counters: self.metrics.snapshot().counters,
        }
    }

    /// Counts and returns a pre-engine rejection.
    fn reject(&self, e: ErrorInfo) -> ResponseBody {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.metrics.incr(&format!("serve/errors/{}", e.code));
        ResponseBody::Error(e)
    }

    /// Handles one parsed frame, producing the response body. Admission
    /// control and the draining gate live here.
    fn dispatch(&self, body: &RequestBody) -> ResponseBody {
        match body {
            RequestBody::Health => ResponseBody::Health(HealthSummary {
                status: if self.draining() { "draining" } else { "ok" },
                uptime_ms: self.started.elapsed().as_millis() as u64,
            }),
            RequestBody::Stats => ResponseBody::Stats(Box::new(self.stats())),
            RequestBody::Shutdown => {
                self.begin_drain();
                ResponseBody::ShutdownAck
            }
            RequestBody::Register(req) => {
                if self.draining() {
                    return self.reject(ErrorInfo::new(codes::SHUTTING_DOWN, "server is draining"));
                }
                self.handle_register(req)
            }
            RequestBody::Check(_) | RequestBody::Batch(_) => {
                if self.draining() {
                    return self.reject(ErrorInfo::new(codes::SHUTTING_DOWN, "server is draining"));
                }
                self.metrics.incr("serve/requests");
                let _permit = match self.gate.acquire() {
                    Ok(p) => p,
                    Err(AdmitError::Overloaded) => {
                        self.metrics.incr("serve/shed");
                        return ResponseBody::Error(ErrorInfo::new(
                            codes::OVERLOADED,
                            "all execution slots busy and the wait queue is full; retry",
                        ));
                    }
                    Err(AdmitError::Draining) => {
                        return self
                            .reject(ErrorInfo::new(codes::SHUTTING_DOWN, "server is draining"))
                    }
                };
                let span = self.tracer.span("serve/request");
                let body = match body {
                    RequestBody::Check(req) => self.handle_check(req),
                    RequestBody::Batch(req) => self.handle_batch(req),
                    _ => unreachable!("outer match"),
                };
                span.exit();
                body
            }
        }
    }
}

fn summarize(v: &Verdict, alpha: &Alphabet, elapsed_us: u64) -> VerdictSummary {
    let (outcome, witness) = match &v.outcome {
        Outcome::Preserving => ("preserving", None),
        Outcome::Copying { path } => ("copying", Some(render_path(path, alpha))),
        Outcome::Rearranging { witness } => ("rearranging", Some(render_witness(witness, alpha))),
        Outcome::NotPreserving { witness } => {
            ("not-preserving", Some(render_witness(witness, alpha)))
        }
        Outcome::DeletesText { path } => ("deletes-text", Some(render_path(path, alpha))),
        Outcome::NonConforming { witness } => {
            ("non-conforming", Some(render_witness(witness, alpha)))
        }
    };
    VerdictSummary {
        pass: matches!(v.outcome, Outcome::Preserving),
        analysis: v.analysis.name,
        decider: v.decider,
        outcome,
        degraded: v.degraded.is_some(),
        witness,
        cache_hits: v.stats.cache_hits(),
        cache_misses: v.stats.cache_misses(),
        fuel: v.stats.total_fuel(),
        elapsed_us,
    }
}

fn decision_error_info(e: &DecisionError) -> ErrorInfo {
    let code = match e {
        DecisionError::ResourceExhausted { .. } => codes::EXHAUSTED,
        DecisionError::Panicked { .. } => codes::PANICKED,
        DecisionError::Internal(_) => codes::INTERNAL,
    };
    ErrorInfo::new(code, e.to_string())
}

// ---------------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        // Only an atomic store: the full drain runs on the accept loop's
        // next poll tick, never in signal context.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // libc `signal(2)`, declared directly so the daemon stays
        // zero-external-dep. `signal` semantics (SA_RESTART implied on
        // glibc) are fine here because the accept loop is nonblocking
        // and every socket read has a timeout — nothing relies on EINTR.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod signals {
    use std::sync::atomic::AtomicBool;

    pub(super) static REQUESTED: AtomicBool = AtomicBool::new(false);

    pub(super) fn install() {}
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A bound-but-not-yet-running server. [`Server::run`] consumes it and
/// blocks until the drain completes.
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
    local_addr: SocketAddr,
}

/// A cloneable handle for requesting a drain from another thread (tests
/// use this where a real deployment would send SIGTERM or a `shutdown`
/// frame).
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Begins the graceful drain, exactly like a `shutdown` frame.
    pub fn request_drain(&self) {
        self.shared.begin_drain();
    }
}

impl Server {
    /// Binds the listener and builds the warm engine. The engine's
    /// metrics are always enabled (the `stats` frame serves them); span
    /// tracing is enabled only when `cfg.trace_out` is set, since an
    /// unbounded daemon trace would grow without limit.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let tracer = if cfg.trace_out.is_some() {
            Arc::new(Tracer::enabled())
        } else {
            Arc::new(Tracer::default())
        };
        let metrics = Arc::new(Metrics::enabled());
        let engine = Engine::new()
            .with_tracer(Arc::clone(&tracer))
            .with_metrics(Arc::clone(&metrics));
        let slots = if cfg.slots == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            cfg.slots
        };
        let gate = Gate::new(slots, cfg.queue);
        let shared = Arc::new(Shared {
            engine,
            tracer,
            metrics,
            gate,
            registry: Mutex::new(HashMap::new()),
            memo: Mutex::new(HashMap::new()),
            memo_hits: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            drain_deadline_at: Mutex::new(None),
            started: Instant::now(),
            cfg,
        });
        Ok(Server {
            shared,
            listener,
            local_addr,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A drain handle usable from other threads.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Installs SIGTERM/SIGINT handlers that begin a graceful drain on
    /// the running server (no-op off Unix). Call once, from the daemon
    /// binary only — in-process test servers drain via [`ServeHandle`]
    /// or `shutdown` frames instead.
    pub fn install_signal_handlers() {
        signals::install();
    }

    /// Accepts and serves connections until a drain completes. This is
    /// the single exit path: traces and metrics are flushed here whether
    /// the drain came from a signal, a `shutdown` frame, a
    /// [`ServeHandle`], an accept-loop error, or the drain-deadline
    /// backstop.
    pub fn run(self) -> io::Result<ServeReport> {
        let Server {
            shared, listener, ..
        } = self;
        listener.set_nonblocking(true)?;
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut accept_error = None;
        while !shared.draining() {
            if signals::REQUESTED.swap(false, Ordering::SeqCst) {
                shared.begin_drain();
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    handles.retain(|h| !h.is_finished());
                    if handles.len() >= shared.cfg.max_connections {
                        // Answer before closing so the client sees a
                        // structured shed, not a bare RST.
                        let line = protocol::render_response(
                            &FrameId::None,
                            &ResponseBody::Error(ErrorInfo::new(
                                codes::OVERLOADED,
                                "connection limit reached; retry",
                            )),
                        );
                        let mut stream = stream;
                        let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
                        let _ = stream.write_all(line.as_bytes());
                        let _ = stream.write_all(b"\n");
                        continue;
                    }
                    let shared = Arc::clone(&shared);
                    handles.push(std::thread::spawn(move || {
                        handle_connection(&shared, stream);
                    }));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    std::thread::sleep(POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // A dead listener is fatal for new work but must not
                    // lose in-flight answers: drain, flush, then report.
                    accept_error = Some(e);
                    shared.begin_drain();
                }
            }
        }
        drop(listener);

        // Drain: wait for every admitted request to finish, then fire
        // the backstop that sheds anything still parked at the gate.
        let deadline = lock(&shared.drain_deadline_at).unwrap_or_else(Instant::now);
        while !shared.gate.idle() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let forced_drain = !shared.gate.idle();
        if forced_drain {
            shared.gate.begin_hard_drain();
        }
        shared.stopping.store(true, Ordering::SeqCst);
        for h in handles {
            // Bounded: connection loops poll `stopping` every `POLL`,
            // writes time out, and in-flight budgets are clamped to
            // `max_timeout` (to the drain window, once draining).
            let _ = h.join();
        }

        flush_observability(&shared);
        let report = ServeReport {
            served: shared.served.load(Ordering::Relaxed),
            shed: shared.gate.shed_total(),
            rejected: shared.rejected.load(Ordering::Relaxed),
            forced_drain,
        };
        match accept_error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }
}

/// The PR 4 flush-on-exit guarantee, serve edition: one flush point on
/// the only exit path of [`Server::run`].
fn flush_observability(shared: &Shared) {
    if let Some(path) = &shared.cfg.trace_out {
        match std::fs::File::create(path) {
            Ok(mut f) => {
                if let Err(e) = shared.tracer.write_jsonl(&mut f) {
                    eprintln!("textpres serve: cannot write trace {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("textpres serve: cannot create {}: {e}", path.display()),
        }
    }
    if shared.cfg.metrics_dump {
        let snapshot = shared.metrics.snapshot();
        if !snapshot.is_empty() {
            eprint!("{}", snapshot.render_table());
        }
    }
}

struct ConnGuard<'a>(&'a Shared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    shared.connections.fetch_add(1, Ordering::Relaxed);
    let _guard = ConnGuard(shared);
    // Nagle + delayed-ACK would add ~40ms to every request/response
    // exchange; a one-line protocol wants the write on the wire now.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));

    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut line_no = 0u64;
    let mut last_activity = Instant::now();
    loop {
        // Answer every complete line already buffered before reading
        // more, so frames that arrived before a drain still get served.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            line_no += 1;
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim_end_matches(['\n', '\r']);
            if line.trim().is_empty() {
                continue;
            }
            let (id, body) = match protocol::parse_request_line(line) {
                Ok(frame) => (frame.id, shared.dispatch(&frame.body)),
                Err(mut e) => {
                    e.message = format!("frame {line_no}: {}", e.message);
                    (protocol::recover_id(line), shared.reject(e))
                }
            };
            let response = protocol::render_response(&id, &body);
            if stream.write_all(response.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
                return;
            }
            last_activity = Instant::now();
        }
        if buf.len() > shared.cfg.max_frame_bytes {
            // No newline within the cap: the line cannot be
            // resynchronized, so answer once and close.
            let body = shared.reject(ErrorInfo::new(
                codes::FRAME_TOO_LARGE,
                format!(
                    "frame {} exceeds the {}-byte cap",
                    line_no + 1,
                    shared.cfg.max_frame_bytes
                ),
            ));
            let response = protocol::render_response(&FrameId::None, &body);
            let _ = stream.write_all(response.as_bytes());
            let _ = stream.write_all(b"\n");
            return;
        }
        if shared.stopping() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.draining() && buf.is_empty() {
                    // Idle connection during a drain: close so the
                    // server can finish. Anything mid-frame keeps its
                    // chance until the stop flag.
                    return;
                }
                if last_activity.elapsed() > shared.cfg.idle_timeout {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
