//! Plain-text formats for schemas and transducers, so the checker works as
//! a standalone tool (see `src/bin/textpres.rs`).
//!
//! ## Schema files
//!
//! ```text
//! # comments start with '#'
//! start doc
//! elem doc  = (keep | drop)*
//! elem keep = text
//! elem drop = text
//! ```
//!
//! `start` declares a start symbol (repeatable); `elem σ = regex` defines a
//! content model in the syntax of [`tpx_automata::parse_regex`] with the
//! reserved word `text` for text nodes.
//!
//! ## Transducer files
//!
//! ```text
//! initial q0
//! rule q0 doc -> doc(q)
//! rule q  keep -> keep(qt)
//! text qt
//! ```
//!
//! `rule q σ -> rhs` uses the term syntax of [`tpx_trees::term`], where
//! identifiers naming declared states are state leaves (states are declared
//! by appearing as a rule source, in `initial`, or in `state` lines).
//!
//! ## DTL transducer files
//!
//! A transducer file whose first meaningful line is the word `dtl` is a
//! `DTL_XPath` program (Section 5 of the paper), checked with the EXPTIME
//! DTL decider instead of the PTIME top-down one:
//!
//! ```text
//! dtl
//! initial q0
//! rule q0 : a -> a(q0 / child[a]/child)   # (q0, a) → a((q0, pattern))
//! rule q0 : b -> (q0 / child)             # bare call: drops the markup
//! text q0
//! ```
//!
//! `rule q : guard -> rhs` guards are XPath node expressions and call
//! patterns are XPath path expressions, both in the concrete syntax of
//! [`tpx_xpath`]; the rhs is either `label(state / pattern)` (one output
//! element wrapping one call) or `(state / pattern)` (a bare call).

use std::fmt;
use tpx_diffcheck::{Case, DivergenceKind, DtlSpec, XsltSpec};
use tpx_dtl::{DtlBuilder, DtlTransducer, XPathPatterns};
use tpx_schema::{Dtd, DtdBuilder};
use tpx_topdown::{PathSym, RhsNode, Transducer, TransducerBuilder};
use tpx_trees::{Alphabet, Symbol, Tree};

/// Error from the file parsers, with a line number.
#[derive(Clone, Debug)]
pub struct FormatError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FormatError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError {
        line,
        message: message.into(),
    })
}

fn meaningful(src: &str) -> impl Iterator<Item = (usize, &str)> {
    src.lines().enumerate().filter_map(|(i, raw)| {
        let line = raw.split('#').next().unwrap_or("").trim();
        (!line.is_empty()).then_some((i + 1, line))
    })
}

/// Parses a schema file, interning labels into `alpha`.
pub fn parse_schema(src: &str, alpha: &mut Alphabet) -> Result<Dtd, FormatError> {
    // First pass: intern all element names so the builder sees a complete
    // alphabet.
    let mut decls: Vec<(usize, String, String)> = Vec::new();
    let mut starts: Vec<(usize, String)> = Vec::new();
    for (line, text) in meaningful(src) {
        if let Some(rest) = text.strip_prefix("start ") {
            let name = rest.trim();
            alpha.intern(name);
            starts.push((line, name.to_owned()));
        } else if let Some(rest) = text.strip_prefix("elem ") {
            let Some((name, content)) = rest.split_once('=') else {
                return err(line, "expected `elem name = content-model`");
            };
            let name = name.trim();
            if name == "text" {
                return err(line, "`text` is reserved for text nodes");
            }
            alpha.intern(name);
            decls.push((line, name.to_owned(), content.trim().to_owned()));
        } else {
            return err(line, format!("unrecognized directive {text:?}"));
        }
    }
    // Intern labels mentioned only inside content models. `:` is a name
    // character so namespace-prefixed labels (`bpmn:task`) stay whole.
    for (_, _, content) in &decls {
        for token in
            content.split(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-' || c == ':'))
        {
            if !token.is_empty() && token != "text" && !token.starts_with('%') {
                alpha.intern(token);
            }
        }
    }
    let mut b = DtdBuilder::new(alpha);
    if starts.is_empty() {
        return err(1, "schema needs at least one `start` symbol");
    }
    for (_, name) in &starts {
        b.start(name);
    }
    for (line, name, content) in &decls {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.elem(name, content);
        }));
        if result.is_err() {
            return err(*line, format!("bad content model for {name:?}: {content}"));
        }
    }
    Ok(b.finish())
}

/// Parses a transducer file against a (complete) alphabet.
pub fn parse_transducer(src: &str, alpha: &Alphabet) -> Result<Transducer, FormatError> {
    let mut initial: Option<(usize, String)> = None;
    let mut states: Vec<String> = Vec::new();
    let mut rules: Vec<(usize, String, String, String)> = Vec::new();
    let mut text_rules: Vec<(usize, String)> = Vec::new();
    for (line, text) in meaningful(src) {
        if let Some(rest) = text.strip_prefix("initial ") {
            if initial.is_some() {
                return err(line, "duplicate `initial`");
            }
            initial = Some((line, rest.trim().to_owned()));
        } else if let Some(rest) = text.strip_prefix("state ") {
            states.push(rest.trim().to_owned());
        } else if let Some(rest) = text.strip_prefix("rule ") {
            let Some((head, rhs)) = rest.split_once("->") else {
                return err(line, "expected `rule state label -> rhs`");
            };
            let parts: Vec<&str> = head.split_whitespace().collect();
            let [state, label] = parts.as_slice() else {
                return err(line, "expected `rule state label -> rhs`");
            };
            rules.push((
                line,
                (*state).to_owned(),
                (*label).to_owned(),
                rhs.trim().to_owned(),
            ));
        } else if let Some(rest) = text.strip_prefix("text ") {
            text_rules.push((line, rest.trim().to_owned()));
        } else {
            return err(line, format!("unrecognized directive {text:?}"));
        }
    }
    let Some((_, initial)) = initial else {
        return err(1, "transducer needs an `initial` state");
    };
    let mut b = TransducerBuilder::new(alpha, &initial);
    for s in &states {
        b.state(s);
    }
    // Declare all rule-source and text states before parsing right-hand
    // sides (state names shadow labels in rhs terms).
    for (_, state, _, _) in &rules {
        b.state(state);
    }
    for (_, state) in &text_rules {
        b.state(state);
    }
    for (line, state, label, rhs) in &rules {
        if alpha.get(label).is_none() {
            return err(*line, format!("label {label:?} not in the schema alphabet"));
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.rule(state, label, rhs);
        }));
        if result.is_err() {
            return err(*line, format!("bad rule rhs: {rhs}"));
        }
    }
    for (_, state) in &text_rules {
        b.text_rule(state);
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.finish()));
    result.map_err(|_| FormatError {
        line: 1,
        message: "transducer construction failed (see rule errors above)".into(),
    })
}

/// Whether `src` is a DTL transducer file (first meaningful line `dtl`),
/// as opposed to a top-down transducer file.
pub fn is_dtl_transducer(src: &str) -> bool {
    meaningful(src)
        .next()
        .is_some_and(|(_, text)| text == "dtl")
}

/// Parses a DTL transducer file (see the module docs) against a (complete)
/// alphabet.
pub fn parse_dtl_transducer(
    src: &str,
    alpha: &Alphabet,
) -> Result<DtlTransducer<XPathPatterns>, FormatError> {
    let mut lines = meaningful(src);
    match lines.next() {
        Some((_, "dtl")) => {}
        _ => return err(1, "DTL transducer files start with a `dtl` line"),
    }
    let mut initial: Option<String> = None;
    // (line, state, guard, out label, call state, call pattern); a `None`
    // label is a bare call.
    type DtlRuleLine = (usize, String, String, Option<String>, String, String);
    let mut rules: Vec<DtlRuleLine> = Vec::new();
    let mut states: Vec<String> = Vec::new();
    let mut text_rules: Vec<String> = Vec::new();
    for (line, text) in lines {
        if let Some(rest) = text.strip_prefix("initial ") {
            if initial.is_some() {
                return err(line, "duplicate `initial`");
            }
            initial = Some(rest.trim().to_owned());
        } else if let Some(rest) = text.strip_prefix("state ") {
            states.push(rest.trim().to_owned());
        } else if let Some(rest) = text.strip_prefix("text ") {
            text_rules.push(rest.trim().to_owned());
        } else if let Some(rest) = text.strip_prefix("rule ") {
            const SHAPE: &str = "expected `rule state : guard -> label(state / pattern)`";
            let Some((state, rest)) = rest.split_once(':') else {
                return err(line, SHAPE);
            };
            let Some((guard, rhs)) = rest.split_once("->") else {
                return err(line, SHAPE);
            };
            let rhs = rhs.trim();
            let (label, call) = if let Some(inner) = rhs.strip_prefix('(') {
                (None, inner)
            } else if let Some((label, inner)) = rhs.split_once('(') {
                (Some(label.trim().to_owned()), inner)
            } else {
                return err(line, SHAPE);
            };
            let Some(call) = call.strip_suffix(')') else {
                return err(line, SHAPE);
            };
            // The call state never contains '/', so the first one starts
            // the pattern.
            let Some((call_state, pattern)) = call.split_once('/') else {
                return err(line, "expected `state / pattern` inside the call");
            };
            rules.push((
                line,
                state.trim().to_owned(),
                guard.trim().to_owned(),
                label,
                call_state.trim().to_owned(),
                pattern.trim().to_owned(),
            ));
        } else {
            return err(line, format!("unrecognized directive {text:?}"));
        }
    }
    let Some(initial) = initial else {
        return err(1, "DTL transducer needs an `initial` state");
    };
    // Validate guards, patterns, and labels up front so errors carry line
    // numbers (`DtlBuilder::finish` would only panic later).
    let mut scratch = alpha.clone();
    for (line, _, guard, label, _, pattern) in &rules {
        if let Err(e) = tpx_xpath::parse_node_expr(guard, &mut scratch) {
            return err(*line, format!("bad guard {guard:?}: {e}"));
        }
        if let Err(e) = tpx_xpath::parse_path(pattern, &mut scratch) {
            return err(*line, format!("bad call pattern {pattern:?}: {e}"));
        }
        if let Some(label) = label {
            if alpha.get(label).is_none() {
                return err(*line, format!("label {label:?} not in the schema alphabet"));
            }
        }
    }
    let mut b = DtlBuilder::new(alpha, &initial);
    for s in &states {
        b.state(s);
    }
    for (_, state, guard, label, call_state, pattern) in &rules {
        match label {
            Some(out) => b.rule_simple(state, guard, out, call_state, pattern),
            None => b.rule_bare(state, guard, call_state, pattern),
        };
    }
    for state in &text_rules {
        b.text_rule(state);
    }
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.finish())).map_err(|_| FormatError {
        line: 1,
        message: "DTL transducer construction failed (see rule errors above)".into(),
    })
}

/// Renders a witness tree (from a [`tpx_engine::Verdict`] or a
/// [`tpx_topdown::CheckReport`]) in the term syntax of
/// [`tpx_trees::term`] — re-readable by [`parse_witness`].
pub fn render_witness(witness: &Tree, alpha: &Alphabet) -> String {
    witness.display(alpha).to_string()
}

/// Parses a witness tree rendered by [`render_witness`].
pub fn parse_witness(src: &str, alpha: &mut Alphabet) -> Result<Tree, FormatError> {
    tpx_trees::term::parse_tree(src, alpha).map_err(|e| FormatError {
        line: 1,
        message: format!("bad witness term: {e:?}"),
    })
}

/// Renders a copying-witness text path as `label/label/text()`.
pub fn render_path(path: &[PathSym], alpha: &Alphabet) -> String {
    path.iter()
        .map(|p| match p {
            PathSym::Elem(s) => alpha.name(*s).to_owned(),
            PathSym::Text => "text()".to_owned(),
        })
        .collect::<Vec<_>>()
        .join("/")
}

/// Renders schema declarations in the schema file format (re-readable by
/// [`parse_schema`]).
pub fn render_schema(starts: &[String], decls: &[(String, String)]) -> String {
    let mut out = String::new();
    for s in starts {
        out.push_str(&format!("start {s}\n"));
    }
    for (name, content) in decls {
        out.push_str(&format!("elem {name} = {content}\n"));
    }
    out
}

/// Renders a transducer in the transducer file format (re-readable by
/// [`parse_transducer`] against the same alphabet). State `i` is named
/// `q{i}` — with a longer prefix when that would collide with a label — so
/// parsing reproduces the exact state numbering.
pub fn render_transducer(t: &Transducer, alpha: &Alphabet) -> String {
    // Pick a state-name prefix no label uses (state names shadow labels in
    // rhs terms, so a collision would capture a label).
    let mut prefix = "q".to_owned();
    let collides = |p: &str| {
        (0..t.state_count()).any(|i| alpha.entries().any(|(_, name)| name == format!("{p}{i}")))
    };
    while collides(&prefix) {
        prefix.push('q');
    }
    let state_name = |q: tpx_topdown::TdState| format!("{prefix}{}", q.index());
    let mut out = String::new();
    out.push_str(&format!("initial {}\n", state_name(t.initial())));
    for q in t.states() {
        out.push_str(&format!("state {}\n", state_name(q)));
    }
    for q in t.states() {
        for a in (0..t.symbol_count()).map(|i| Symbol(i as u32)) {
            if let Some(rhs) = t.rhs(q, a) {
                out.push_str(&format!(
                    "rule {} {} -> {}\n",
                    state_name(q),
                    alpha.name(a),
                    render_rhs_hedge(rhs, alpha, &state_name)
                ));
            }
        }
        if t.text_rule(q) {
            out.push_str(&format!("text {}\n", state_name(q)));
        }
    }
    out
}

fn render_rhs_hedge(
    rhs: &[RhsNode],
    alpha: &Alphabet,
    state_name: &impl Fn(tpx_topdown::TdState) -> String,
) -> String {
    rhs.iter()
        .map(|n| render_rhs_node(n, alpha, state_name))
        .collect::<Vec<_>>()
        .join(" ")
}

fn render_rhs_node(
    node: &RhsNode,
    alpha: &Alphabet,
    state_name: &impl Fn(tpx_topdown::TdState) -> String,
) -> String {
    match node {
        RhsNode::State(q) => state_name(*q),
        RhsNode::Elem(s, kids) if kids.is_empty() => alpha.name(*s).to_owned(),
        RhsNode::Elem(s, kids) => format!(
            "{}({})",
            alpha.name(*s),
            render_rhs_hedge(kids, alpha, state_name)
        ),
    }
}

/// A divergence reproducer as stored under `tests/regressions/`: the
/// [`Case`] plus the metadata needed to replay it through
/// [`tpx_diffcheck::recheck`].
#[derive(Clone, Debug)]
pub struct RegressionCase {
    /// Which differential check diverged.
    pub kind: DivergenceKind,
    /// The fuzzer seed that produced the case.
    pub seed: u64,
    /// Human-readable account of the divergence.
    pub detail: String,
    /// The reproducer.
    pub case: Case,
}

/// Renders a regression case file (re-readable by [`parse_case`]).
///
/// The `[alphabet]` section pins the label *interning order*: symbols are
/// identified by dense index everywhere (transducer rules, DTL generator
/// streams), so a case only replays faithfully if parsing reconstructs the
/// exact same `Symbol` numbering.
pub fn render_case(rc: &RegressionCase) -> String {
    let case = &rc.case;
    let mut out = String::new();
    out.push_str("# textpres regression case (tpx-diffcheck)\n");
    out.push_str(&format!("kind {}\n", rc.kind));
    out.push_str(&format!("seed {}\n", rc.seed));
    if !rc.detail.is_empty() {
        out.push_str(&format!("detail {}\n", rc.detail));
    }
    out.push_str("[alphabet]\n");
    for (_, name) in case.alpha.entries() {
        out.push_str(&format!("label {name}\n"));
    }
    if !case.labels.is_empty() {
        out.push_str("[labels]\n");
        for name in &case.labels {
            out.push_str(&format!("label {name}\n"));
        }
    }
    out.push_str("[schema]\n");
    out.push_str(&render_schema(&case.starts, &case.decls));
    if let Some(t) = &case.transducer {
        out.push_str("[transducer]\n");
        out.push_str(&render_transducer(t, &case.alpha));
    }
    if let Some(spec) = &case.dtl {
        out.push_str("[dtl]\n");
        out.push_str(&format!("dtlseed {}\n", spec.seed));
        out.push_str(&format!("states {}\n", spec.n_states));
        if !spec.drops.is_empty() {
            let drops: Vec<String> = spec.drops.iter().map(|d| d.to_string()).collect();
            out.push_str(&format!("drops {}\n", drops.join(",")));
        }
    }
    if let Some(spec) = &case.xslt {
        out.push_str("[xslt]\n");
        out.push_str(&format!("xsltseed {}\n", spec.seed));
    }
    if let Some(tree) = &case.tree {
        out.push_str("[tree]\n");
        out.push_str(&render_witness(tree, &case.alpha));
        out.push('\n');
    }
    out
}

/// Parses a regression case file rendered by [`render_case`].
///
/// Strict on the envelope: each `[section]` may appear at most once, each
/// header directive (`kind`, `seed`, `detail`) at most once, and `kind`
/// and `seed` are required — a case whose seed is missing would silently
/// replay a different instance if it defaulted, so it is an error instead.
pub fn parse_case(src: &str) -> Result<RegressionCase, FormatError> {
    let mut kind: Option<DivergenceKind> = None;
    let mut seed: Option<u64> = None;
    let mut detail: Option<String> = None;
    let mut section: Option<&str> = None;
    let mut bodies: Vec<(&str, usize, String)> = Vec::new();
    for (line, text) in meaningful(src) {
        if let Some(name) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
            section = match name {
                "alphabet" => Some("alphabet"),
                "labels" => Some("labels"),
                "schema" => Some("schema"),
                "transducer" => Some("transducer"),
                "dtl" => Some("dtl"),
                "xslt" => Some("xslt"),
                "tree" => Some("tree"),
                _ => return err(line, format!("unknown section [{name}]")),
            };
            if bodies.iter().any(|(n, _, _)| Some(*n) == section) {
                return err(line, format!("duplicate section [{name}]"));
            }
            bodies.push((section.unwrap(), line, String::new()));
            continue;
        }
        match section {
            None => {
                if let Some(rest) = text.strip_prefix("kind ") {
                    if kind.is_some() {
                        return err(line, "duplicate `kind` directive");
                    }
                    kind = Some(
                        rest.trim()
                            .parse()
                            .map_err(|e: String| FormatError { line, message: e })?,
                    );
                } else if let Some(rest) = text.strip_prefix("seed ") {
                    if seed.is_some() {
                        return err(line, "duplicate `seed` directive");
                    }
                    seed = Some(rest.trim().parse().map_err(|_| FormatError {
                        line,
                        message: format!("bad seed {rest:?}"),
                    })?);
                } else if let Some(rest) = text.strip_prefix("detail ") {
                    if detail.is_some() {
                        return err(line, "duplicate `detail` directive");
                    }
                    detail = Some(rest.trim().to_owned());
                } else {
                    return err(line, format!("unrecognized header directive {text:?}"));
                }
            }
            Some(_) => {
                let body = &mut bodies.last_mut().expect("section pushed").2;
                body.push_str(text);
                body.push('\n');
            }
        }
    }
    let Some(kind) = kind else {
        return err(1, "case needs a `kind` line");
    };
    let Some(seed) = seed else {
        return err(1, "case needs a `seed` line");
    };
    let detail = detail.unwrap_or_default();
    let body = |name: &str| {
        bodies
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, _, b)| b.as_str())
    };
    // An empty [labels] section is a trap, not a no-op: `render_case`
    // omits the section when no label is selected, so an empty one means
    // the file was hand-truncated — and a retention recheck over zero
    // labels would panic downstream. Reject it at its header line.
    if let Some((_, header_line, body)) = bodies.iter().find(|(n, _, _)| *n == "labels") {
        if body.trim().is_empty() {
            return err(
                *header_line,
                "[labels] section has no entries (delete the section or add `label <name>` lines)",
            );
        }
    }
    // The alphabet section pins interning order; schema parsing then
    // re-interns the same labels idempotently.
    let mut alpha = Alphabet::new();
    for line in body("alphabet").unwrap_or("").lines() {
        let Some(name) = line.strip_prefix("label ") else {
            return err(1, format!("bad alphabet line {line:?}"));
        };
        alpha.intern(name.trim());
    }
    // The selected labels of a text-retention case (absent otherwise).
    let mut labels = Vec::new();
    for line in body("labels").unwrap_or("").lines() {
        let Some(name) = line.strip_prefix("label ") else {
            return err(1, format!("bad labels line {line:?}"));
        };
        labels.push(name.trim().to_owned());
    }
    let Some(schema_src) = body("schema") else {
        return err(1, "case needs a [schema] section");
    };
    let dtd_probe = parse_schema(schema_src, &mut alpha)?;
    let _ = dtd_probe; // validated; the Case keeps declaration sources
    let (starts, decls) = schema_sources(schema_src);
    let transducer = body("transducer")
        .map(|src| parse_transducer(src, &alpha))
        .transpose()?;
    let dtl = body("dtl").map(parse_dtl_spec).transpose()?;
    let xslt = body("xslt").map(parse_xslt_spec).transpose()?;
    let tree = body("tree")
        .map(|src| parse_witness(src.trim(), &mut alpha))
        .transpose()?;
    Ok(RegressionCase {
        kind,
        seed,
        detail,
        case: Case {
            alpha,
            starts,
            decls,
            transducer,
            dtl,
            xslt,
            tree,
            labels,
        },
    })
}

/// Extracts the `(starts, decls)` sources back out of a schema body that
/// [`parse_schema`] accepted.
fn schema_sources(src: &str) -> (Vec<String>, Vec<(String, String)>) {
    let mut starts = Vec::new();
    let mut decls = Vec::new();
    for (_, text) in meaningful(src) {
        if let Some(rest) = text.strip_prefix("start ") {
            starts.push(rest.trim().to_owned());
        } else if let Some(rest) = text.strip_prefix("elem ") {
            if let Some((name, content)) = rest.split_once('=') {
                decls.push((name.trim().to_owned(), content.trim().to_owned()));
            }
        }
    }
    (starts, decls)
}

fn parse_dtl_spec(src: &str) -> Result<DtlSpec, FormatError> {
    let mut spec = DtlSpec {
        seed: 0,
        n_states: 0,
        drops: Vec::new(),
    };
    for (line, text) in meaningful(src) {
        if let Some(rest) = text.strip_prefix("dtlseed ") {
            spec.seed = rest.trim().parse().map_err(|_| FormatError {
                line,
                message: format!("bad dtlseed {rest:?}"),
            })?;
        } else if let Some(rest) = text.strip_prefix("states ") {
            spec.n_states = rest.trim().parse().map_err(|_| FormatError {
                line,
                message: format!("bad states {rest:?}"),
            })?;
        } else if let Some(rest) = text.strip_prefix("drops ") {
            for part in rest.split(',') {
                spec.drops
                    .push(part.trim().parse().map_err(|_| FormatError {
                        line,
                        message: format!("bad drop index {part:?}"),
                    })?);
            }
        } else {
            return err(line, format!("unrecognized dtl directive {text:?}"));
        }
    }
    if spec.n_states == 0 {
        return err(1, "[dtl] section needs `states`");
    }
    Ok(spec)
}

fn parse_xslt_spec(src: &str) -> Result<XsltSpec, FormatError> {
    let mut seed: Option<u64> = None;
    for (line, text) in meaningful(src) {
        if let Some(rest) = text.strip_prefix("xsltseed ") {
            if seed.is_some() {
                return err(line, "duplicate `xsltseed` directive");
            }
            seed = Some(rest.trim().parse().map_err(|_| FormatError {
                line,
                message: format!("bad xsltseed {rest:?}"),
            })?);
        } else {
            return err(line, format!("unrecognized xslt directive {text:?}"));
        }
    }
    match seed {
        Some(seed) => Ok(XsltSpec { seed }),
        None => err(1, "[xslt] section needs `xsltseed`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = "
# a tiny document schema
start doc
elem doc  = (keep | drop)*
elem keep = text
elem drop = text
";

    #[test]
    fn dtl_transducer_file_parses() {
        let alpha = Alphabet::from_labels(["a", "b"]);
        let src = "
# the E5 k=2 instance
dtl
initial q0
rule q0 : a -> a(q0 / child[a]/child[a]/child)
rule q0 : b -> (q0 / child)   # bare call
text q0
";
        assert!(is_dtl_transducer(src));
        assert!(!is_dtl_transducer("initial q0\n"));
        let t = parse_dtl_transducer(src, &alpha).expect("parses");
        assert_eq!(t.state_count(), 1);
        assert!(t.text_rule(t.initial()));
        assert_eq!(t.rules().len(), 2);
    }

    #[test]
    fn dtl_transducer_errors_carry_line_numbers() {
        let alpha = Alphabet::from_labels(["a", "b"]);
        let bad_pattern = "dtl\ninitial q0\nrule q0 : a -> a(q0 / child[[)\n";
        let e = parse_dtl_transducer(bad_pattern, &alpha).unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        let bad_label = "dtl\ninitial q0\nrule q0 : a -> nope(q0 / child)\n";
        let e = parse_dtl_transducer(bad_label, &alpha).unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        assert!(e.message.contains("nope"), "{e}");
        let not_dtl = "initial q0\n";
        assert!(parse_dtl_transducer(not_dtl, &alpha).is_err());
    }

    const TRANSDUCER: &str = "
initial q0
rule q0 doc -> doc(q)
rule q  keep -> keep(qt)
text qt
";

    #[test]
    fn schema_round_trip() {
        let mut alpha = Alphabet::new();
        let dtd = parse_schema(SCHEMA, &mut alpha).unwrap();
        assert!(dtd.is_reduced());
        let mut scratch = alpha.clone();
        let t = tpx_trees::term::parse_tree(r#"doc(keep("x") drop("y"))"#, &mut scratch).unwrap();
        assert!(dtd.validates(&t));
    }

    #[test]
    fn transducer_round_trip_and_check() {
        let mut alpha = Alphabet::new();
        let dtd = parse_schema(SCHEMA, &mut alpha).unwrap();
        let t = parse_transducer(TRANSDUCER, &alpha).unwrap();
        assert!(crate::check_topdown(&t, &dtd.to_nta()).is_preserving());
    }

    #[test]
    fn copying_transducer_file_detected() {
        let mut alpha = Alphabet::new();
        let dtd = parse_schema(SCHEMA, &mut alpha).unwrap();
        let t = parse_transducer(
            "initial q0\nrule q0 doc -> doc(q q)\nrule q keep -> keep(qt)\ntext qt\n",
            &alpha,
        )
        .unwrap();
        assert!(!crate::check_topdown(&t, &dtd.to_nta()).is_preserving());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut alpha = Alphabet::new();
        let e = parse_schema("start doc\nbogus line", &mut alpha).unwrap_err();
        assert_eq!(e.line, 2);
        let e2 = parse_schema("elem doc = keep*", &mut alpha).unwrap_err();
        assert_eq!(e2.line, 1); // no start symbol
        let dtd_alpha = {
            let mut a = Alphabet::new();
            parse_schema(SCHEMA, &mut a).unwrap();
            a
        };
        let e3 = parse_transducer("rule q0 doc -> doc(q)", &dtd_alpha).unwrap_err();
        assert!(e3.message.contains("initial"));
        let e4 = parse_transducer("initial q0\nrule q0 nosuch -> doc(q)", &dtd_alpha).unwrap_err();
        assert_eq!(e4.line, 2);
    }

    #[test]
    fn reserved_text_label_rejected() {
        let mut alpha = Alphabet::new();
        let e = parse_schema("start text\nelem text = %eps", &mut alpha);
        assert!(e.is_err());
    }

    #[test]
    fn transducer_render_parse_round_trips() {
        let mut alpha = Alphabet::new();
        parse_schema(SCHEMA, &mut alpha).unwrap();
        let t = parse_transducer(TRANSDUCER, &alpha).unwrap();
        let rendered = render_transducer(&t, &alpha);
        let t2 = parse_transducer(&rendered, &alpha).unwrap();
        assert_eq!(format!("{t:?}"), format!("{t2:?}"));
        // Rendering is a fixpoint.
        assert_eq!(rendered, render_transducer(&t2, &alpha));
    }

    #[test]
    fn schema_render_parse_round_trips() {
        let starts = vec!["doc".to_owned()];
        let decls = vec![
            ("doc".to_owned(), "(keep | drop)*".to_owned()),
            ("keep".to_owned(), "text".to_owned()),
            ("drop".to_owned(), "text".to_owned()),
        ];
        let rendered = render_schema(&starts, &decls);
        let mut alpha = Alphabet::new();
        let dtd = parse_schema(&rendered, &mut alpha).unwrap();
        assert!(dtd.is_reduced());
        let (starts2, decls2) = schema_sources(&rendered);
        assert_eq!(starts, starts2);
        assert_eq!(decls, decls2);
    }

    #[test]
    fn case_render_parse_round_trips() {
        let mut alpha = Alphabet::new();
        parse_schema(SCHEMA, &mut alpha).unwrap();
        let t = parse_transducer(TRANSDUCER, &alpha).unwrap();
        let tree = {
            let mut scratch = alpha.clone();
            tpx_trees::term::parse_tree(r#"doc(keep("x") drop("y"))"#, &mut scratch).unwrap()
        };
        let rc = RegressionCase {
            kind: DivergenceKind::TranslationDisagrees,
            seed: 42,
            detail: "hand-built round-trip fixture".to_owned(),
            case: Case {
                alpha: alpha.clone(),
                starts: vec!["doc".to_owned()],
                decls: vec![
                    ("doc".to_owned(), "(keep | drop)*".to_owned()),
                    ("keep".to_owned(), "text".to_owned()),
                    ("drop".to_owned(), "text".to_owned()),
                ],
                transducer: Some(t),
                dtl: None,
                xslt: None,
                tree: Some(tree),
                labels: vec!["keep".to_owned()],
            },
        };
        let rendered = render_case(&rc);
        let parsed = parse_case(&rendered).unwrap();
        assert_eq!(parsed.kind, rc.kind);
        assert_eq!(parsed.seed, rc.seed);
        assert_eq!(parsed.detail, rc.detail);
        // Interning order is pinned by the [alphabet] section.
        let names: Vec<&str> = parsed.case.alpha.entries().map(|(_, n)| n).collect();
        let orig: Vec<&str> = rc.case.alpha.entries().map(|(_, n)| n).collect();
        assert_eq!(names, orig);
        // Retention labels survive the round trip.
        assert_eq!(parsed.case.labels, rc.case.labels);
        // Re-rendering the parse is a fixpoint.
        assert_eq!(rendered, render_case(&parsed));
        // The schema language survives: the embedded tree still validates.
        assert!(parsed
            .case
            .schema_nta()
            .accepts(parsed.case.tree.as_ref().unwrap()));
    }

    #[test]
    fn case_envelope_is_strict() {
        let base = "kind translation-disagrees\nseed 7\n[alphabet]\nlabel doc\n\
                    [schema]\nstart doc\nelem doc = text\n";
        assert!(parse_case(base).is_ok());
        // Missing seed must not silently default to 0.
        let no_seed = "kind translation-disagrees\n[schema]\nstart doc\nelem doc = text\n";
        let e = parse_case(no_seed).unwrap_err();
        assert!(e.message.contains("seed"), "{e}");
        // Duplicate header directives and sections carry line numbers.
        let dup_seed = "kind translation-disagrees\nseed 7\nseed 8\n";
        let e = parse_case(dup_seed).unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        assert!(e.message.contains("duplicate `seed`"), "{e}");
        let dup_kind = "kind translation-disagrees\nkind translation-disagrees\nseed 7\n";
        assert_eq!(parse_case(dup_kind).unwrap_err().line, 2);
        let dup_detail = "kind translation-disagrees\nseed 7\ndetail a\ndetail b\n";
        assert_eq!(parse_case(dup_detail).unwrap_err().line, 4);
        let dup_section = format!("{base}[schema]\nstart doc\nelem doc = text\n");
        let e = parse_case(&dup_section).unwrap_err();
        assert!(e.message.contains("duplicate section [schema]"), "{e}");
        assert_eq!(e.line, 8, "{e}");
    }

    #[test]
    fn empty_labels_section_is_a_line_numbered_error() {
        // A trailing `[labels]` with no entries used to parse as "no
        // selected labels" and then panic the retention recheck; it is now
        // rejected at the section header's line.
        let src = "kind retention-disagrees\nseed 7\n[alphabet]\nlabel doc\n\
                   [schema]\nstart doc\nelem doc = text\n[labels]\n";
        let e = parse_case(src).unwrap_err();
        assert_eq!(e.line, 8, "{e}");
        assert!(e.message.contains("[labels]"), "{e}");
        // Comment-only bodies count as empty too.
        let commented = format!("{src}# nothing selected\n");
        assert_eq!(parse_case(&commented).unwrap_err().line, 8);
        // A populated section still parses.
        let ok = format!("{src}label doc\n");
        assert_eq!(parse_case(&ok).unwrap().case.labels, vec!["doc"]);
    }

    #[test]
    fn dtl_case_round_trips_to_the_same_program() {
        let schema = tpx_workload::random_dtd(2, 5);
        let spec = DtlSpec {
            seed: 17,
            n_states: 2,
            drops: vec![1, 3],
        };
        let rc = RegressionCase {
            kind: DivergenceKind::DtlLemmaVsOperational,
            seed: 5,
            detail: String::new(),
            case: Case {
                alpha: schema.alpha.clone(),
                starts: schema.starts.clone(),
                decls: schema.decls.clone(),
                transducer: None,
                dtl: Some(spec.clone()),
                xslt: None,
                tree: None,
                labels: Vec::new(),
            },
        };
        let parsed = parse_case(&render_case(&rc)).unwrap();
        assert_eq!(parsed.case.dtl, Some(spec));
        let a = rc.case.dtl_program().unwrap();
        let b = parsed.case.dtl_program().unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn xslt_case_round_trips_to_the_same_stylesheet() {
        let schema = tpx_workload::random_dtd(2, 5);
        let spec = XsltSpec { seed: 23 };
        let rc = RegressionCase {
            kind: DivergenceKind::XsltCompileDisagrees,
            seed: 5,
            detail: String::new(),
            case: Case {
                alpha: schema.alpha.clone(),
                starts: schema.starts.clone(),
                decls: schema.decls.clone(),
                transducer: None,
                dtl: None,
                xslt: Some(spec.clone()),
                tree: None,
                labels: Vec::new(),
            },
        };
        let rendered = render_case(&rc);
        assert!(rendered.contains("[xslt]\nxsltseed 23\n"), "{rendered}");
        let parsed = parse_case(&rendered).unwrap();
        assert_eq!(parsed.case.xslt, Some(spec.clone()));
        assert_eq!(
            parsed.case.xslt.unwrap().stylesheet(&parsed.case.alpha),
            spec.stylesheet(&rc.case.alpha)
        );
        // Malformed / missing / duplicate seeds are errors (line numbers
        // are body-relative, matching the [dtl] section's parser).
        let base = "kind xslt-compile-disagrees\nseed 7\n[alphabet]\nlabel doc\n\
                    [schema]\nstart doc\nelem doc = text\n[xslt]\n";
        let e = parse_case(base).unwrap_err();
        assert!(e.message.contains("xsltseed"), "{e}");
        let bad = format!("{base}xsltseed nope\n");
        assert!(parse_case(&bad)
            .unwrap_err()
            .message
            .contains("bad xsltseed"));
        let dup = format!("{base}xsltseed 1\nxsltseed 2\n");
        let e = parse_case(&dup).unwrap_err();
        assert_eq!(e.line, 2, "{e}");
        assert!(e.message.contains("duplicate"), "{e}");
    }
}
