//! Plain-text formats for schemas and transducers, so the checker works as
//! a standalone tool (see `src/bin/textpres.rs`).
//!
//! ## Schema files
//!
//! ```text
//! # comments start with '#'
//! start doc
//! elem doc  = (keep | drop)*
//! elem keep = text
//! elem drop = text
//! ```
//!
//! `start` declares a start symbol (repeatable); `elem σ = regex` defines a
//! content model in the syntax of [`tpx_automata::parse_regex`] with the
//! reserved word `text` for text nodes.
//!
//! ## Transducer files
//!
//! ```text
//! initial q0
//! rule q0 doc -> doc(q)
//! rule q  keep -> keep(qt)
//! text qt
//! ```
//!
//! `rule q σ -> rhs` uses the term syntax of [`tpx_trees::term`], where
//! identifiers naming declared states are state leaves (states are declared
//! by appearing as a rule source, in `initial`, or in `state` lines).

use std::fmt;
use tpx_schema::{Dtd, DtdBuilder};
use tpx_topdown::{PathSym, Transducer, TransducerBuilder};
use tpx_trees::{Alphabet, Tree};

/// Error from the file parsers, with a line number.
#[derive(Clone, Debug)]
pub struct FormatError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FormatError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError {
        line,
        message: message.into(),
    })
}

fn meaningful(src: &str) -> impl Iterator<Item = (usize, &str)> {
    src.lines().enumerate().filter_map(|(i, raw)| {
        let line = raw.split('#').next().unwrap_or("").trim();
        (!line.is_empty()).then_some((i + 1, line))
    })
}

/// Parses a schema file, interning labels into `alpha`.
pub fn parse_schema(src: &str, alpha: &mut Alphabet) -> Result<Dtd, FormatError> {
    // First pass: intern all element names so the builder sees a complete
    // alphabet.
    let mut decls: Vec<(usize, String, String)> = Vec::new();
    let mut starts: Vec<(usize, String)> = Vec::new();
    for (line, text) in meaningful(src) {
        if let Some(rest) = text.strip_prefix("start ") {
            let name = rest.trim();
            alpha.intern(name);
            starts.push((line, name.to_owned()));
        } else if let Some(rest) = text.strip_prefix("elem ") {
            let Some((name, content)) = rest.split_once('=') else {
                return err(line, "expected `elem name = content-model`");
            };
            let name = name.trim();
            if name == "text" {
                return err(line, "`text` is reserved for text nodes");
            }
            alpha.intern(name);
            decls.push((line, name.to_owned(), content.trim().to_owned()));
        } else {
            return err(line, format!("unrecognized directive {text:?}"));
        }
    }
    // Intern labels mentioned only inside content models.
    for (_, _, content) in &decls {
        for token in content.split(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-')) {
            if !token.is_empty() && token != "text" && !token.starts_with('%') {
                alpha.intern(token);
            }
        }
    }
    let mut b = DtdBuilder::new(alpha);
    if starts.is_empty() {
        return err(1, "schema needs at least one `start` symbol");
    }
    for (_, name) in &starts {
        b.start(name);
    }
    for (line, name, content) in &decls {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.elem(name, content);
        }));
        if result.is_err() {
            return err(*line, format!("bad content model for {name:?}: {content}"));
        }
    }
    Ok(b.finish())
}

/// Parses a transducer file against a (complete) alphabet.
pub fn parse_transducer(src: &str, alpha: &Alphabet) -> Result<Transducer, FormatError> {
    let mut initial: Option<(usize, String)> = None;
    let mut states: Vec<String> = Vec::new();
    let mut rules: Vec<(usize, String, String, String)> = Vec::new();
    let mut text_rules: Vec<(usize, String)> = Vec::new();
    for (line, text) in meaningful(src) {
        if let Some(rest) = text.strip_prefix("initial ") {
            if initial.is_some() {
                return err(line, "duplicate `initial`");
            }
            initial = Some((line, rest.trim().to_owned()));
        } else if let Some(rest) = text.strip_prefix("state ") {
            states.push(rest.trim().to_owned());
        } else if let Some(rest) = text.strip_prefix("rule ") {
            let Some((head, rhs)) = rest.split_once("->") else {
                return err(line, "expected `rule state label -> rhs`");
            };
            let parts: Vec<&str> = head.split_whitespace().collect();
            let [state, label] = parts.as_slice() else {
                return err(line, "expected `rule state label -> rhs`");
            };
            rules.push((
                line,
                (*state).to_owned(),
                (*label).to_owned(),
                rhs.trim().to_owned(),
            ));
        } else if let Some(rest) = text.strip_prefix("text ") {
            text_rules.push((line, rest.trim().to_owned()));
        } else {
            return err(line, format!("unrecognized directive {text:?}"));
        }
    }
    let Some((_, initial)) = initial else {
        return err(1, "transducer needs an `initial` state");
    };
    let mut b = TransducerBuilder::new(alpha, &initial);
    for s in &states {
        b.state(s);
    }
    // Declare all rule-source and text states before parsing right-hand
    // sides (state names shadow labels in rhs terms).
    for (_, state, _, _) in &rules {
        b.state(state);
    }
    for (_, state) in &text_rules {
        b.state(state);
    }
    for (line, state, label, rhs) in &rules {
        if alpha.get(label).is_none() {
            return err(*line, format!("label {label:?} not in the schema alphabet"));
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.rule(state, label, rhs);
        }));
        if result.is_err() {
            return err(*line, format!("bad rule rhs: {rhs}"));
        }
    }
    for (_, state) in &text_rules {
        b.text_rule(state);
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.finish()));
    result.map_err(|_| FormatError {
        line: 1,
        message: "transducer construction failed (see rule errors above)".into(),
    })
}

/// Renders a witness tree (from a [`tpx_engine::Verdict`] or a
/// [`tpx_topdown::CheckReport`]) in the term syntax of
/// [`tpx_trees::term`] — re-readable by [`parse_witness`].
pub fn render_witness(witness: &Tree, alpha: &Alphabet) -> String {
    witness.display(alpha).to_string()
}

/// Parses a witness tree rendered by [`render_witness`].
pub fn parse_witness(src: &str, alpha: &mut Alphabet) -> Result<Tree, FormatError> {
    tpx_trees::term::parse_tree(src, alpha).map_err(|e| FormatError {
        line: 1,
        message: format!("bad witness term: {e:?}"),
    })
}

/// Renders a copying-witness text path as `label/label/text()`.
pub fn render_path(path: &[PathSym], alpha: &Alphabet) -> String {
    path.iter()
        .map(|p| match p {
            PathSym::Elem(s) => alpha.name(*s).to_owned(),
            PathSym::Text => "text()".to_owned(),
        })
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = "
# a tiny document schema
start doc
elem doc  = (keep | drop)*
elem keep = text
elem drop = text
";

    const TRANSDUCER: &str = "
initial q0
rule q0 doc -> doc(q)
rule q  keep -> keep(qt)
text qt
";

    #[test]
    fn schema_round_trip() {
        let mut alpha = Alphabet::new();
        let dtd = parse_schema(SCHEMA, &mut alpha).unwrap();
        assert!(dtd.is_reduced());
        let mut scratch = alpha.clone();
        let t = tpx_trees::term::parse_tree(r#"doc(keep("x") drop("y"))"#, &mut scratch).unwrap();
        assert!(dtd.validates(&t));
    }

    #[test]
    fn transducer_round_trip_and_check() {
        let mut alpha = Alphabet::new();
        let dtd = parse_schema(SCHEMA, &mut alpha).unwrap();
        let t = parse_transducer(TRANSDUCER, &alpha).unwrap();
        assert!(crate::check_topdown(&t, &dtd.to_nta()).is_preserving());
    }

    #[test]
    fn copying_transducer_file_detected() {
        let mut alpha = Alphabet::new();
        let dtd = parse_schema(SCHEMA, &mut alpha).unwrap();
        let t = parse_transducer(
            "initial q0\nrule q0 doc -> doc(q q)\nrule q keep -> keep(qt)\ntext qt\n",
            &alpha,
        )
        .unwrap();
        assert!(!crate::check_topdown(&t, &dtd.to_nta()).is_preserving());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut alpha = Alphabet::new();
        let e = parse_schema("start doc\nbogus line", &mut alpha).unwrap_err();
        assert_eq!(e.line, 2);
        let e2 = parse_schema("elem doc = keep*", &mut alpha).unwrap_err();
        assert_eq!(e2.line, 1); // no start symbol
        let dtd_alpha = {
            let mut a = Alphabet::new();
            parse_schema(SCHEMA, &mut a).unwrap();
            a
        };
        let e3 = parse_transducer("rule q0 doc -> doc(q)", &dtd_alpha).unwrap_err();
        assert!(e3.message.contains("initial"));
        let e4 = parse_transducer("initial q0\nrule q0 nosuch -> doc(q)", &dtd_alpha).unwrap_err();
        assert_eq!(e4.line, 2);
    }

    #[test]
    fn reserved_text_label_rejected() {
        let mut alpha = Alphabet::new();
        let e = parse_schema("start text\nelem text = %eps", &mut alpha);
        assert!(e.is_err());
    }
}
