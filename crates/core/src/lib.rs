//! # `textpres`: text-preserving XML transformations
//!
//! A full implementation of *"The Complexity of Text-Preserving XML
//! Transformations"* (Antonopoulos, Martens, Neven; PODS 2011).
//!
//! An XML transformation is **text-preserving** over a set of documents
//! when, for every document, the text content of the output is a
//! *subsequence* of the text content of the input — the markup may change
//! and text may be dropped, but nothing is copied or reordered
//! (Definition 2.2 / Theorem 3.3). This crate decides that property:
//!
//! * in PTIME for top-down uniform tree transducers against
//!   Relax-NG-strength schemas ([`check_topdown`], Theorem 4.11),
//! * for DTL (the XSLT abstraction) with Core XPath patterns
//!   ([`check_dtl`], Theorem 5.18) and MSO patterns (Theorem 5.12),
//! * and computes the *maximal sub-schema* on which a transformation is
//!   text-preserving ([`topdown_maximal_subschema`],
//!   [`dtl_maximal_subschema`]; paper conclusion).
//!
//! ## Quick start
//!
//! ```
//! use textpres::prelude::*;
//!
//! // Σ, a schema (as a DTD), and a transformation.
//! let mut sigma = Alphabet::from_labels(["doc", "keep", "drop"]);
//! let mut dtd = DtdBuilder::new(&sigma);
//! dtd.start("doc");
//! dtd.elem("doc", "(keep | drop)*");
//! dtd.elem("keep", "text");
//! dtd.elem("drop", "text");
//! let dtd = dtd.finish();
//!
//! // Keep `keep` elements (with text), delete `drop` subtrees.
//! let mut t = TransducerBuilder::new(&sigma, "q0");
//! t.rule("q0", "doc", "doc(q)");
//! t.rule("q", "keep", "keep(qt)");
//! t.text_rule("qt");
//! let t = t.finish();
//!
//! // Decide text-preservation over the schema (PTIME, Theorem 4.11).
//! let report = textpres::check_topdown(&t, &dtd.to_nta());
//! assert!(report.is_preserving());
//!
//! // And it really is: run it.
//! let mut doc = sigma.clone();
//! let input = tpx_trees::term::parse_tree(
//!     r#"doc(keep("hello") drop("secret") keep("world"))"#, &mut doc).unwrap();
//! let output = t.transform(&input);
//! assert_eq!(output.text_content(), vec!["hello", "world"]);
//! ```

pub use tpx_automata as automata;
pub use tpx_diffcheck as diffcheck;
pub use tpx_dtl as dtl;
pub use tpx_engine as engine;
pub use tpx_mso as mso;
pub use tpx_obs as obs;
pub use tpx_schema as schema;
pub use tpx_topdown as topdown;
pub use tpx_treeauto as treeauto;
pub use tpx_trees as trees;
pub use tpx_xpath as xpath;
pub use tpx_xslt as xslt;

use tpx_treeauto::Nta;

pub mod format;
pub mod frontend;
pub mod serve;

/// Frequently used types, re-exported for `use textpres::prelude::*`.
pub mod prelude {
    pub use tpx_dtl::{DtlBuilder, DtlTransducer, MsoPatterns, XPathPatterns};
    pub use tpx_schema::{Dtd, DtdBuilder};
    pub use tpx_topdown::{CheckReport, Transducer, TransducerBuilder};
    pub use tpx_treeauto::{Nta, NtaBuilder};
    pub use tpx_trees::{Alphabet, Hedge, HedgeBuilder, NodeLabel, Symbol, Tree};
    pub use tpx_xpath::{NodeExpr, PathExpr};
}

/// Decides in PTIME whether the top-down uniform transducer `t` is
/// text-preserving over `L(schema)` (Theorem 4.11), with a diagnostic
/// witness otherwise.
///
/// Delegates to the decision engine ([`engine::Engine`]); batch callers
/// that want artifact reuse and parallelism should hold an `Engine` and
/// use [`engine::Engine::check_many`] directly.
pub fn check_topdown(t: &tpx_topdown::Transducer, schema: &Nta) -> tpx_topdown::CheckReport {
    let verdict = tpx_engine::Engine::new().check(&tpx_engine::TopdownDecider::new(t), schema);
    match verdict.outcome {
        tpx_engine::Outcome::Preserving => tpx_topdown::CheckReport::TextPreserving,
        tpx_engine::Outcome::Copying { path } => tpx_topdown::CheckReport::Copying { path },
        tpx_engine::Outcome::Rearranging { witness } => {
            tpx_topdown::CheckReport::Rearranging { witness }
        }
        tpx_engine::Outcome::NotPreserving { .. }
        | tpx_engine::Outcome::DeletesText { .. }
        | tpx_engine::Outcome::NonConforming { .. } => {
            unreachable!("the topdown decider attributes every witness")
        }
    }
}

/// Decides whether a DTL transducer (XPath or MSO patterns) is
/// text-preserving over `L(schema)` (Theorems 5.12 / 5.18).
///
/// Delegates to the decision engine ([`engine::Engine`]).
pub fn check_dtl<P>(t: &tpx_dtl::DtlTransducer<P>, schema: &Nta) -> tpx_dtl::DtlCheckReport
where
    P: tpx_dtl::pattern::MsoDefinable,
    tpx_dtl::DtlTransducer<P>: std::fmt::Debug + Sync,
{
    let verdict = tpx_engine::Engine::new().check(&tpx_engine::DtlDecider::new(t), schema);
    match verdict.outcome {
        tpx_engine::Outcome::NotPreserving { witness }
        | tpx_engine::Outcome::Rearranging { witness } => {
            tpx_dtl::DtlCheckReport::NotPreserving { witness }
        }
        _ => tpx_dtl::DtlCheckReport::Preserving,
    }
}

/// The maximal subset of `L(schema)` on which `t` is text-preserving, as an
/// NTA (paper conclusion; for top-down transducers).
pub fn topdown_maximal_subschema(t: &tpx_topdown::Transducer, schema: &Nta) -> Nta {
    tpx_topdown::maximal_subschema(t, schema)
}

/// The maximal subset of `L(schema)` on which the DTL transducer `t` is
/// text-preserving, as an NTA.
pub fn dtl_maximal_subschema<P: tpx_dtl::pattern::MsoDefinable>(
    t: &tpx_dtl::DtlTransducer<P>,
    schema: &Nta,
) -> Nta {
    tpx_dtl::decide::dtl_maximal_subschema(t, schema)
}

/// The conclusion's stronger test (for top-down transducers): `t` never
/// deletes text below nodes with the given labels, over `L(schema)`.
/// Returns a witness text path otherwise.
pub fn topdown_deleted_text_under(
    t: &tpx_topdown::Transducer,
    schema: &Nta,
    labels: &[tpx_trees::Symbol],
) -> Option<Vec<tpx_topdown::PathSym>> {
    tpx_topdown::extensions::deleted_text_under(t, schema, labels)
}

/// The conclusion's stronger test for DTL transducers; returns a witness
/// tree when some text below the given labels is deleted.
pub fn dtl_deleted_text_under<P: tpx_dtl::pattern::MsoDefinable>(
    t: &tpx_dtl::DtlTransducer<P>,
    schema: &Nta,
    labels: &[tpx_trees::Symbol],
) -> Option<tpx_trees::Tree> {
    tpx_dtl::decide::dtl_deleted_text_under(t, schema, labels)
}

/// Checks text-preservation of a single concrete transformation run
/// (Definition 2.2): output text is a subsequence of input text.
pub fn is_text_preserving_run(input: &tpx_trees::Tree, output: &tpx_trees::Hedge) -> bool {
    tpx_trees::is_subsequence(&output.text_content(), &input.text_content())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_end_to_end_on_the_paper_example() {
        let mut sigma = tpx_trees::samples::recipe_alphabet();
        let schema = tpx_schema::samples::recipe_dtd(&sigma).to_nta();
        let t = tpx_topdown::samples::example_4_2(&sigma);
        assert!(super::check_topdown(&t, &schema).is_preserving());
        let input = tpx_trees::samples::recipe_tree(&mut sigma);
        let output = t.transform(&input);
        assert!(super::is_text_preserving_run(&input, &output));
    }

    #[test]
    fn facade_detects_violations() {
        let sigma = tpx_trees::samples::recipe_alphabet();
        let schema = tpx_schema::samples::recipe_dtd(&sigma).to_nta();
        let copying = tpx_topdown::samples::copying_example(&sigma);
        assert!(!super::check_topdown(&copying, &schema).is_preserving());
        let max = super::topdown_maximal_subschema(&copying, &schema);
        // The copying transducer duplicates description text, which every
        // recipe has — so no recipe with a recipe child survives, but the
        // empty recipes document does.
        let mut al = sigma.clone();
        let empty = tpx_trees::term::parse_tree("recipes", &mut al).unwrap();
        assert!(max.accepts(&empty));
        let _ = CheckReport::TextPreserving; // prelude smoke-use
    }
}
