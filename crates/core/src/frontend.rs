//! Engine-integrated stylesheet compilation.
//!
//! [`tpx_xslt::compile`] is a pure source-to-transducer translation; this
//! module is the glue that runs it against a *schema* (so stylesheet and
//! schema agree on one alphabet) and memoizes the result in the engine's
//! [`ArtifactCache`](tpx_engine::ArtifactCache) under the shared
//! [`XSLT_COMPILE_STAGE`] stage, so a registered stylesheet in `textpres
//! serve` — or a repeated corpus entry in a bench — compiles once per
//! (schema, stylesheet) source pair. The compile is traced as a span named
//! like the stage, next to `topdown/schema` and friends.
//!
//! The alphabet dance matters: a stylesheet's literal result elements may
//! introduce labels the schema never mentions. [`compile_stylesheet`]
//! parses the schema first (interning its labels), compiles the stylesheet
//! (interning the literals), then re-parses the schema so the NTA is built
//! at the final alphabet width — the width the transducer was built at.

use std::sync::Arc;

use tpx_engine::{CacheError, Engine, SpanFields, StageKey};
use tpx_topdown::Transducer;
use tpx_treeauto::Nta;
use tpx_trees::{Alphabet, StableHasher};
use tpx_xslt::Diagnostic;

use crate::format::parse_schema;

/// The shared pipeline-stage name a compiled stylesheet caches under.
pub const XSLT_COMPILE_STAGE: &str = "xslt/compile";

/// A stylesheet compiled against a schema: the common alphabet, the schema
/// NTA re-built at the final alphabet width, and the transducer (plus the
/// DTL rendering when the stylesheet is `DTL_XPath`-expressible).
#[derive(Clone, Debug)]
pub struct XsltArtifact {
    /// Schema labels plus the stylesheet's literal result labels.
    pub alpha: Alphabet,
    /// The schema NTA, built over the full `alpha`.
    pub schema: Nta,
    /// The translated transducer.
    pub transducer: Transducer,
    /// The equivalent DTL program source, when expressible.
    pub dtl: Option<String>,
}

/// Renders untranslatable-construct diagnostics as one multi-line error.
pub fn untranslatable(diags: &[Diagnostic]) -> String {
    let mut msg = String::from("stylesheet is not fully translatable:");
    for d in diags {
        msg.push_str("\n  ");
        msg.push_str(&d.to_string());
    }
    msg
}

/// Compiles `xslt_src` against `schema_src` into an exact transducer.
/// Any [`Diagnostic`] is an error here: a check must not silently run a
/// transducer that only approximates the stylesheet.
pub fn compile_stylesheet(schema_src: &str, xslt_src: &str) -> Result<XsltArtifact, String> {
    let mut alpha = Alphabet::new();
    parse_schema(schema_src, &mut alpha).map_err(|e| format!("schema: {e}"))?;
    let compiled =
        tpx_xslt::compile(xslt_src, &mut alpha).map_err(|e| format!("stylesheet: {e}"))?;
    if !compiled.diagnostics.is_empty() {
        return Err(untranslatable(&compiled.diagnostics));
    }
    // Literal result elements may have extended the alphabet; re-parse the
    // schema (interning is idempotent) so the NTA matches the transducer's
    // symbol width.
    let schema = parse_schema(schema_src, &mut alpha)
        .expect("schema parsed once already")
        .to_nta();
    Ok(XsltArtifact {
        alpha,
        schema,
        transducer: compiled.transducer,
        dtl: compiled.dtl,
    })
}

/// [`compile_stylesheet`] through the engine's artifact cache, keyed by
/// the content of both sources, with one `xslt/compile` span on the
/// engine's tracer covering the lookup (and the build, on a miss).
pub fn compile_stylesheet_cached(
    engine: &Engine,
    schema_src: &str,
    xslt_src: &str,
) -> Result<Arc<XsltArtifact>, String> {
    let mut h = StableHasher::new();
    h.write(schema_src.as_bytes());
    h.write_usize(schema_src.len());
    h.write(xslt_src.as_bytes());
    let stage = StageKey::shared(XSLT_COMPILE_STAGE, h.finish());
    let span = engine.tracer().span(XSLT_COMPILE_STAGE);
    match engine
        .cache()
        .try_get_or_build(XSLT_COMPILE_STAGE, stage.cache_key(), || {
            compile_stylesheet(schema_src, xslt_src)
        }) {
        Ok((artifact, hit)) => {
            span.exit_with(SpanFields::new().size(artifact.transducer.size()).hit(hit));
            Ok(artifact)
        }
        Err(CacheError::Build(e)) => Err(e),
        Err(e) => Err(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = "start doc\nelem doc = (keep | text)*\nelem keep = text*\n";
    const IDENTITY: &str = r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="@*|node()">
    <xsl:copy><xsl:apply-templates select="@*|node()"/></xsl:copy>
  </xsl:template>
</xsl:stylesheet>"#;

    #[test]
    fn compiles_against_the_schema_alphabet() {
        let a = compile_stylesheet(SCHEMA, IDENTITY).expect("identity compiles");
        assert_eq!(a.transducer.symbol_count(), a.alpha.len());
        assert_eq!(a.schema.symbol_count(), a.alpha.len());
        assert!(a.dtl.is_some());
    }

    #[test]
    fn literal_labels_extend_alphabet_and_schema_is_rebuilt_to_match() {
        let wrap = r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="doc"><wrapper><xsl:apply-templates/></wrapper></xsl:template>
</xsl:stylesheet>"#;
        let a = compile_stylesheet(SCHEMA, wrap).expect("wrapper compiles");
        assert!(a.alpha.get("wrapper").is_some());
        assert_eq!(a.schema.symbol_count(), a.alpha.len());
        assert_eq!(a.transducer.symbol_count(), a.alpha.len());
    }

    #[test]
    fn diagnostics_are_a_hard_error_with_lines() {
        let bad = "<xsl:stylesheet version=\"1.0\">\n\
                   <xsl:template match=\"doc\">\n\
                   <xsl:value-of select=\".\"/>\n\
                   </xsl:template>\n\
                   </xsl:stylesheet>";
        let err = compile_stylesheet(SCHEMA, bad).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("xsl:value-of"), "{err}");
    }

    #[test]
    fn cached_compile_hits_on_the_second_call_and_traces_the_stage() {
        let engine = Engine::new().with_tracer(Arc::new(tpx_engine::Tracer::enabled()));
        let first = compile_stylesheet_cached(&engine, SCHEMA, IDENTITY).expect("compiles");
        let again = compile_stylesheet_cached(&engine, SCHEMA, IDENTITY).expect("compiles");
        assert!(
            Arc::ptr_eq(&first, &again),
            "second call must hit the cache"
        );
        assert!(engine.cache_stats().hits >= 1);
        assert!(engine
            .tracer()
            .exit_span_names()
            .contains(&XSLT_COMPILE_STAGE));
    }
}
