//! `textpres` — verify that XML transformations are text-preserving.
//!
//! ```text
//! textpres check <schema> <transducer> [document.xml] [--stats]
//! textpres subschema <schema> <transducer>
//! textpres batch <schema> <transducer>... [--jobs N] [--stats]
//! textpres fuzz [--seeds N] [--budget B] [--base-seed S] [--dtl-symbolic]
//!               [--out DIR] [--stats]
//! textpres --version
//! ```
//!
//! `check` decides (in PTIME, Theorem 4.11 of the paper) whether the
//! transformation never copies or reorders text on ANY document valid
//! under the schema; with a document argument it also runs the
//! transformation. `subschema` prints a witness from the maximal
//! sub-schema on which the transformation IS text-preserving. `batch`
//! checks many transducer files against one schema on a worker pool,
//! sharing compiled schema artifacts across all of them. `fuzz` runs the
//! differential checker (`tpx-diffcheck`): random schema/transducer pairs,
//! symbolic verdicts cross-checked against per-tree semantic oracles and
//! the bounded-enumeration baseline, with shrunk reproducers written to
//! `--out` as regression case files. `--dtl-symbolic` additionally runs
//! the symbolic DTL decider on generated DTL programs (off by default:
//! its MSO→NBTA compilation can take minutes on unlucky seeds).
//!
//! Exit codes: 0 = text-preserving (all of them, for `batch`; no
//! divergence, for `fuzz`); 1 = some transformation is not text-preserving
//! (a divergence was found, for `fuzz`); 2 = usage or I/O error.
//!
//! File formats are documented in `textpres::format`.

use std::process::ExitCode;
use textpres::diffcheck::{run_fuzz, FuzzConfig};
use textpres::engine::{Decider, Engine, Outcome, Task, TopdownDecider, Verdict};
use textpres::format::{
    parse_schema, parse_transducer, render_case, render_path, render_witness, RegressionCase,
};
use textpres::prelude::*;

const USAGE: &str = "\
usage: textpres check <schema> <transducer> [document.xml] [--stats]
       textpres subschema <schema> <transducer>
       textpres batch <schema> <transducer>... [--jobs N] [--stats]
       textpres fuzz [--seeds N] [--budget B] [--base-seed S] [--dtl-symbolic]
                     [--out DIR] [--stats]
       textpres --version

exit codes: 0 = text-preserving, 1 = not text-preserving, 2 = usage/IO error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Global flags first: --version / --help work anywhere.
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("textpres {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    if args.is_empty()
        || args
            .iter()
            .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{USAGE}");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    let (cmd, rest) = (args[0].as_str(), &args[1..]);
    match cmd {
        "check" => cmd_check(rest),
        "subschema" => cmd_subschema(rest),
        "batch" => cmd_batch(rest),
        "fuzz" => cmd_fuzz(rest),
        unknown => {
            eprintln!("error: unknown command {unknown:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Splits `--stats` / `--jobs N` flags from positional arguments.
fn parse_flags(args: &[String]) -> Result<(Vec<&str>, bool, Option<usize>), String> {
    let mut positional = Vec::new();
    let mut stats = false;
    let mut jobs = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stats" => stats = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--jobs: not a number: {v:?}"))?,
                );
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            pos => positional.push(pos),
        }
    }
    Ok((positional, stats, jobs))
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_schema(path: &str) -> Result<(Alphabet, Nta), String> {
    let src = read(path)?;
    let mut alpha = Alphabet::new();
    let dtd = parse_schema(&src, &mut alpha).map_err(|e| format!("{path}: {e}"))?;
    Ok((alpha, dtd.to_nta()))
}

fn load_transducer(path: &str, alpha: &Alphabet) -> Result<Transducer, String> {
    let src = read(path)?;
    parse_transducer(&src, alpha).map_err(|e| format!("{path}: {e}"))
}

fn print_stats(engine: &Engine, verdicts: &[&Verdict]) {
    for v in verdicts {
        for s in &v.stats.stages {
            let attribution = match s.cache_hit {
                Some(true) => " [cache hit]",
                Some(false) => " [compiled]",
                None => "",
            };
            let size = s
                .artifact_size
                .map_or(String::new(), |n| format!(", size {n}"));
            eprintln!("  {}: {:?}{size}{attribution}", s.stage, s.duration);
        }
    }
    let c = engine.cache_stats();
    eprintln!(
        "  cache: {} hits, {} misses, {} artifacts",
        c.hits, c.misses, c.entries
    );
}

fn report_verdict(label: &str, verdict: &Verdict, alpha: &Alphabet) -> bool {
    match &verdict.outcome {
        Outcome::Preserving => {
            println!("✓ {label}: text-preserving over every valid document");
            true
        }
        Outcome::Copying { path } => {
            println!(
                "✗ {label}: COPIES text reached via: {}",
                render_path(path, alpha)
            );
            false
        }
        Outcome::Rearranging { witness } => {
            println!("✗ {label}: REORDERS text, e.g. on this valid document:");
            println!("  {}", render_witness(witness, alpha));
            false
        }
        Outcome::NotPreserving { witness } => {
            println!("✗ {label}: not text-preserving, e.g. on:");
            println!("  {}", render_witness(witness, alpha));
            false
        }
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let (pos, stats, jobs) = match parse_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if jobs.is_some() {
        eprintln!("error: --jobs only applies to `batch`\n{USAGE}");
        return ExitCode::from(2);
    }
    let (schema_path, transducer_path, doc) = match pos.as_slice() {
        [s, t] => (*s, *t, None),
        [s, t, d] => (*s, *t, Some(*d)),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (mut alpha, schema) = match load_schema(schema_path) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let t = match load_transducer(transducer_path, &alpha) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(doc_path) = doc {
        let xml = match read(doc_path) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        match textpres::trees::xml::parse_document(&xml, &mut alpha) {
            Ok(tree) => {
                let out = t.transform(&tree);
                println!("transformed {doc_path}:");
                println!("{}", textpres::trees::xml::to_xml(&out, &alpha));
                let ok = textpres::is_text_preserving_run(&tree, &out);
                println!("this run is text-preserving: {ok}\n");
            }
            Err(e) => {
                eprintln!("error: {doc_path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let engine = Engine::new();
    let verdict = engine.check(&TopdownDecider::new(&t), &schema);
    let ok = report_verdict(transducer_path, &verdict, &alpha);
    if stats {
        print_stats(&engine, &[&verdict]);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_batch(args: &[String]) -> ExitCode {
    let (pos, stats, jobs) = match parse_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let [schema_path, transducer_paths @ ..] = pos.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if transducer_paths.is_empty() {
        eprintln!("error: batch needs at least one transducer file\n{USAGE}");
        return ExitCode::from(2);
    }
    let (alpha, schema) = match load_schema(schema_path) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut transducers = Vec::new();
    for path in transducer_paths {
        match load_transducer(path, &alpha) {
            Ok(t) => transducers.push(t),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let jobs = jobs.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let engine = Engine::with_jobs(jobs);
    let deciders: Vec<TopdownDecider> = transducers.iter().map(TopdownDecider::new).collect();
    let tasks: Vec<Task> = deciders
        .iter()
        .map(|d| (d as &dyn Decider, &schema))
        .collect();
    let verdicts = engine.check_many(&tasks);
    let mut all_ok = true;
    for (path, verdict) in transducer_paths.iter().zip(&verdicts) {
        all_ok &= report_verdict(path, verdict, &alpha);
    }
    println!(
        "{}/{} text-preserving ({} workers)",
        verdicts.iter().filter(|v| v.is_preserving()).count(),
        verdicts.len(),
        engine.jobs()
    );
    if stats {
        print_stats(&engine, &verdicts.iter().collect::<Vec<_>>());
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let mut cfg = FuzzConfig::default();
    let mut out_dir: Option<String> = None;
    let mut stats = false;
    let mut it = args.iter();
    let parse_err = |flag: &str, v: &str| format!("{flag}: not a number: {v:?}");
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> Result<u64, String> {
            let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            v.parse::<u64>().map_err(|_| parse_err(flag, v))
        };
        match a.as_str() {
            "--seeds" => match num("--seeds") {
                Ok(n) => cfg.seeds = n,
                Err(e) => {
                    eprintln!("error: {e}\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--budget" => match num("--budget") {
                Ok(n) => cfg.budget = n as usize,
                Err(e) => {
                    eprintln!("error: {e}\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--base-seed" => match num("--base-seed") {
                Ok(n) => cfg.base_seed = n,
                Err(e) => {
                    eprintln!("error: {e}\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = Some(dir.clone()),
                None => {
                    eprintln!("error: --out needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--dtl-symbolic" => cfg.dtl_symbolic = true,
            "--stats" => stats = true,
            other => {
                eprintln!("error: unknown fuzz argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let engine = Engine::new();
    let report = run_fuzz(&engine, &cfg);
    println!(
        "fuzz: {} seeds, {} cross-checks, {} divergence(s)",
        report.seeds_run,
        report.checks,
        report.divergences.len()
    );
    for d in &report.divergences {
        println!("✗ seed {}: {} — {}", d.seed, d.kind, d.detail);
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {dir}: {e}");
            return ExitCode::from(2);
        }
        for d in &report.divergences {
            let rc = RegressionCase {
                kind: d.kind,
                seed: d.seed,
                detail: d.detail.clone(),
                case: d.case.clone(),
            };
            let path = format!("{dir}/seed{}-{}.case", d.seed, d.kind);
            if let Err(e) = std::fs::write(&path, render_case(&rc)) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            println!("  wrote {path}");
        }
    }
    if stats {
        let c = engine.cache_stats();
        eprintln!(
            "  cache: {} hits, {} misses, {} artifacts, {} evicted",
            c.hits, c.misses, c.entries, c.evictions
        );
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_subschema(args: &[String]) -> ExitCode {
    let (pos, _, _) = match parse_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let [schema_path, transducer_path] = pos.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let (alpha, schema) = match load_schema(schema_path) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let t = match load_transducer(transducer_path, &alpha) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let max = textpres::topdown_maximal_subschema(&t, &schema);
    if max.is_empty() {
        println!("the transformation is text-preserving on NO document of the schema");
        return ExitCode::FAILURE;
    }
    println!(
        "maximal text-preserving sub-schema: NTA with {} states (size {})",
        max.state_count(),
        max.size()
    );
    println!("{}", max.display(&alpha));
    if let Some(w) = max.witness() {
        println!("sample document inside:  {}", w.display(&alpha));
    }
    let carved = textpres::treeauto::difference_nta(&schema, &max);
    match carved.witness() {
        Some(w) => println!("sample document outside: {}", w.display(&alpha)),
        None => println!("(the transformation is text-preserving on the whole schema)"),
    }
    ExitCode::SUCCESS
}
