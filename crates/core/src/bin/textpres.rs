//! `textpres` — verify that XML transformations are text-preserving.
//!
//! ```text
//! textpres check <schema> <transducer> [document.xml] [--stats]
//! textpres analyze <schema> <transducer> [--analysis NAME]
//!                  [--label L]... [--target SCHEMA] [--stats]
//! textpres subschema <schema> <transducer>
//! textpres batch <schema> <transducer>... [--jobs N] [--stats]
//! textpres fuzz [--seeds N] [--budget B] [--base-seed S] [--no-dtl-symbolic]
//!               [--xslt] [--analysis NAME] [--out DIR] [--stats]
//! textpres --version
//! ```
//!
//! `check` decides (in PTIME, Theorem 4.11 of the paper) whether the
//! transformation never copies or reorders text on ANY document valid
//! under the schema; with a document argument it also runs the
//! transformation. A transducer file whose first meaningful line is `dtl`
//! is a `DTL_XPath` program, checked with the EXPTIME DTL decider
//! (Theorem 5.18) instead.
//!
//! `analyze` runs one of the engine's preservation analyses under the
//! same governed contract as `check` (`check` is `analyze --analysis
//! text-preservation`):
//!
//! * `--analysis text-preservation` (default) — the Theorem 4.11 / 5.18
//!   check;
//! * `--analysis text-retention` — does the transducer ever delete a text
//!   value below a node carrying one of the `--label` labels, on some
//!   schema document? (the conclusion's stronger test); needs one or more
//!   `--label` flags and a top-down transducer;
//! * `--analysis conformance` — does every output `T(d)`, for `d` valid
//!   under the schema, validate against the `--target` schema? (inverse
//!   type inference); needs `--target` and a top-down transducer.
//!
//! `subschema` prints a witness from the maximal
//! sub-schema on which the transformation IS text-preserving. `batch`
//! checks many transducer files against one schema on a work-stealing
//! worker pool, sharing compiled schema artifacts across all of them;
//! `--jobs 0` (the default) auto-detects the worker count from
//! `std::thread::available_parallelism`. `fuzz` runs the
//! differential checker (`tpx-diffcheck`): random schema/transducer pairs,
//! symbolic verdicts cross-checked against per-tree semantic oracles and
//! the bounded-enumeration baseline, with shrunk reproducers written to
//! `--out` as regression case files. The symbolic DTL decider runs on
//! generated DTL programs by default (the lazy antichain layer of
//! DESIGN.md §13 keeps it cheap, and the default fuel budget degrades
//! unlucky seeds); `--no-dtl-symbolic` opts out, and programs larger
//! than the configured size cap are counted as `dtl-size-skipped` in the
//! run summary.
//!
//! `--fuel N` and `--timeout-ms N` put a resource budget on each check:
//! fuel is charged at automaton state/transition construction sites (a
//! deterministic cost measure), the timeout is wall-clock. A check that
//! exhausts its budget exits with code 3 — unless `--degrade` is given,
//! in which case a DTL check falls back to the bounded-enumeration
//! oracle and reports a verdict marked `degraded` (sound only up to the
//! bound). `fuzz` runs every random instance under a default fuel budget;
//! exhausted instances are counted and skipped, not divergences.
//!
//! `--trace-out PATH` writes a JSONL span trace of every pipeline stage
//! the run executed (one `enter` and one `exit` line per stage, with fuel
//! charged, artifact sizes and cache attribution on the exits); `--metrics`
//! prints an aggregated counter/histogram table to stderr. Both are
//! documented in DESIGN.md §11. With `fuzz --out DIR`, each shrunk
//! reproducer additionally gets a `seedN-kind.trace.jsonl` span trace of
//! its replay written next to the `.case` file.
//!
//! Exit codes: 0 = text-preserving (all of them, for `batch`; no
//! divergence, for `fuzz`); 1 = some transformation is not text-preserving
//! (a divergence was found, for `fuzz`); 2 = usage or I/O error; 3 = a
//! resource budget was exhausted (and `--degrade` did not apply).
//!
//! File formats are documented in `textpres::format`.

use std::process::ExitCode;
use textpres::diffcheck::{run_fuzz, FuzzConfig};
use textpres::engine::{
    analysis_by_name, Budget, CheckOptions, Decider, DegradeBound, DtlDecider, Engine, Metrics,
    Outcome, OutputConformanceDecider, Task, TextRetentionDecider, TopdownDecider, Tracer, Verdict,
    ANALYSIS_NAMES, OUTPUT_CONFORMANCE, TEXT_PRESERVATION, TEXT_RETENTION,
};
use textpres::format::{
    is_dtl_transducer, parse_dtl_transducer, parse_schema, parse_transducer, render_case,
    render_path, render_transducer, render_witness, RegressionCase,
};
use textpres::prelude::*;

const USAGE: &str = "\
usage: textpres check <schema> <transducer> [document.xml] [--stats]
                [--fuel N] [--timeout-ms N] [--degrade]
                [--trace-out PATH] [--metrics]
       textpres analyze <schema> <transducer> [--analysis NAME]
                [--label L]... [--target SCHEMA] [--stats]
                [--fuel N] [--timeout-ms N] [--degrade]
                [--trace-out PATH] [--metrics]
                (analyses: text-preservation (default),
                 text-retention (needs --label, repeatable),
                 conformance (needs --target, a schema file))
       textpres subschema <schema> <transducer>
       textpres compile-xslt <schema> <stylesheet> [--dtl] [--out PATH]
                (compile a restricted XSLT 1.0 stylesheet to the top-down
                transducer format; --dtl emits the equivalent DTL_XPath
                program instead when the stylesheet is expressible; exits 1
                listing every unsupported construct with its source line)
       textpres batch <schema> <transducer>... [--jobs N] [--stats]
                [--fuel N] [--timeout-ms N] [--degrade]
                [--trace-out PATH] [--metrics]
                (--jobs 0, the default, auto-detects the worker count)
       textpres serve [--addr HOST:PORT] [--slots N] [--queue N]
                [--max-connections N] [--max-frame-bytes N]
                [--max-fuel N] [--max-timeout-ms N] [--drain-ms N]
                [--idle-timeout-ms N] [--trace-out PATH] [--metrics]
                (long-running daemon with a persistent warm engine;
                newline-delimited JSON frames over TCP, graceful drain
                on SIGTERM/SIGINT or a shutdown frame; --slots 0, the
                default, admits one concurrent check per host core)
       textpres client <addr> check <schema> <transducer>
                [--analysis NAME] [--label L]... [--target SCHEMA]
                [--fuel N] [--timeout-ms N] [--degrade]
       textpres client <addr> (health | stats | shutdown)
       textpres client <addr> raw '<json-frame>'
                (one-shot client for the serve protocol; prints the
                response frame and maps it onto the exit codes below)
       textpres fuzz [--seeds N] [--budget B] [--base-seed S]
                     [--no-dtl-symbolic] [--xslt] [--analysis NAME]
                     [--fuel N] [--timeout-ms N]
                     [--out DIR] [--stats] [--trace-out PATH] [--metrics]
                     (symbolic DTL cross-checks run by default;
                     --no-dtl-symbolic opts out; --analysis text-retention
                     adds the retention cross-checks to the sweep; --xslt
                     adds the stylesheet-frontend cross-checks: a seeded
                     fragment stylesheet per seed, compiled and diffed
                     against its ground-truth direct translation)
       textpres --version

transducer files starting with a `dtl` line are DTL_XPath programs,
checked with the EXPTIME DTL decider instead of the PTIME top-down one;
transducer files starting with `<` are XSLT stylesheets, compiled with
the restricted-fragment frontend before checking (check/analyze/batch
refuse stylesheets with untranslatable constructs)

--trace-out writes a JSONL span trace (one enter/exit pair per pipeline
stage) and --metrics prints aggregated counters/histograms to stderr

exit codes: 0 = analysis passed, 1 = analysis failed (a witness was
            found), 2 = usage/IO error, 3 = resource budget exhausted";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Global flags first: --version / --help work anywhere.
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("textpres {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    if args.is_empty()
        || args
            .iter()
            .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{USAGE}");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    let (cmd, rest) = (args[0].as_str(), &args[1..]);
    match cmd {
        "check" => cmd_check(rest),
        "analyze" => cmd_analyze(rest),
        "subschema" => cmd_subschema(rest),
        "compile-xslt" => cmd_compile_xslt(rest),
        "batch" => cmd_batch(rest),
        "fuzz" => cmd_fuzz(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        unknown => {
            eprintln!("error: unknown command {unknown:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Flags shared by `check` / `analyze` / `batch` / `subschema`.
#[derive(Default)]
struct Flags<'a> {
    positional: Vec<&'a str>,
    stats: bool,
    jobs: Option<usize>,
    fuel: Option<u64>,
    timeout_ms: Option<u64>,
    degrade: bool,
    trace_out: Option<&'a str>,
    metrics: bool,
    analysis: Option<&'a str>,
    labels: Vec<&'a str>,
    target: Option<&'a str>,
    dtl: bool,
    out: Option<&'a str>,
}

impl Flags<'_> {
    /// Whether any resource-governance flag was given.
    fn governed(&self) -> bool {
        self.fuel.is_some() || self.timeout_ms.is_some() || self.degrade
    }

    /// The [`CheckOptions`] the flags describe.
    fn check_options(&self) -> CheckOptions {
        let mut budget = Budget::default();
        if let Some(fuel) = self.fuel {
            budget = budget.with_fuel(fuel);
        }
        if let Some(ms) = self.timeout_ms {
            budget = budget.with_timeout(std::time::Duration::from_millis(ms));
        }
        let options = CheckOptions::with_budget(budget);
        if self.degrade {
            options.degrade_with(DegradeBound::default())
        } else {
            options
        }
    }
}

/// Splits flags from positional arguments.
fn parse_flags(args: &[String]) -> Result<Flags<'_>, String> {
    let mut flags = Flags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> Result<u64, String> {
            let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            v.parse::<u64>()
                .map_err(|_| format!("{flag}: not a number: {v:?}"))
        };
        match a.as_str() {
            "--stats" => flags.stats = true,
            "--jobs" => flags.jobs = Some(num("--jobs")? as usize),
            "--fuel" => flags.fuel = Some(num("--fuel")?),
            "--timeout-ms" => flags.timeout_ms = Some(num("--timeout-ms")?),
            "--degrade" => flags.degrade = true,
            "--trace-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--trace-out needs a path".to_string())?;
                flags.trace_out = Some(v.as_str());
            }
            "--metrics" => flags.metrics = true,
            "--analysis" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--analysis needs a name".to_string())?;
                flags.analysis = Some(v.as_str());
            }
            "--label" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--label needs a label".to_string())?;
                flags.labels.push(v.as_str());
            }
            "--target" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--target needs a schema file".to_string())?;
                flags.target = Some(v.as_str());
            }
            "--dtl" => flags.dtl = true,
            "--out" => {
                let v = it.next().ok_or_else(|| "--out needs a path".to_string())?;
                flags.out = Some(v.as_str());
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            pos => flags.positional.push(pos),
        }
    }
    Ok(flags)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Attaches an enabled tracer and/or metrics registry to `engine` when the
/// observability flags ask for them (both stay disabled — and free —
/// otherwise).
fn instrument(engine: Engine, trace_out: Option<&str>, metrics: bool) -> Engine {
    let engine = if trace_out.is_some() {
        engine.with_tracer(std::sync::Arc::new(Tracer::enabled()))
    } else {
        engine
    };
    if metrics {
        engine.with_metrics(std::sync::Arc::new(Metrics::enabled()))
    } else {
        engine
    }
}

/// Flushes observability output: the JSONL span trace to `trace_out` and
/// the metrics table to stderr. Runs on every exit path (including budget
/// exhaustion) so a failed run still leaves its trace behind.
fn flush_obs(engine: &Engine, trace_out: Option<&str>, metrics: bool) -> Result<(), String> {
    if let Some(path) = trace_out {
        std::fs::write(path, engine.tracer().to_jsonl())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if metrics {
        eprint!("{}", engine.metrics().snapshot().render_table());
    }
    Ok(())
}

fn load_schema(path: &str) -> Result<(Alphabet, Nta), String> {
    let src = read(path)?;
    let mut alpha = Alphabet::new();
    let dtd = parse_schema(&src, &mut alpha).map_err(|e| format!("{path}: {e}"))?;
    Ok((alpha, dtd.to_nta()))
}

fn load_transducer(path: &str, alpha: &Alphabet) -> Result<Transducer, String> {
    let src = read(path)?;
    parse_transducer(&src, alpha).map_err(|e| format!("{path}: {e}"))
}

fn print_stats(engine: &Engine, verdicts: &[&Verdict]) {
    for v in verdicts {
        for s in &v.stats.stages {
            let attribution = match s.cache_hit {
                Some(true) => " [cache hit]",
                Some(false) => " [compiled]",
                None => "",
            };
            let size = s
                .artifact_size
                .map_or(String::new(), |n| format!(", size {n}"));
            let fuel = s.fuel.map_or(String::new(), |n| format!(", fuel {n}"));
            eprintln!("  {}: {:?}{size}{fuel}{attribution}", s.stage, s.duration);
        }
    }
    let c = engine.cache_stats();
    eprintln!(
        "  cache: {} hits, {} misses, {} artifacts",
        c.hits, c.misses, c.entries
    );
}

fn report_verdict(label: &str, verdict: &Verdict, alpha: &Alphabet) -> bool {
    if let Some(bound) = &verdict.degraded {
        println!(
            "! {label}: budget exhausted; verdict DEGRADED to the bounded oracle \
             (exhaustive only up to {} nodes, {} trees)",
            bound.max_nodes, bound.limit
        );
    }
    match &verdict.outcome {
        Outcome::Preserving => {
            if verdict.analysis == TEXT_RETENTION {
                println!("✓ {label}: [text-retention] retains all text under the selected labels");
            } else if verdict.analysis == OUTPUT_CONFORMANCE {
                println!("✓ {label}: [conformance] every output conforms to the target schema");
            } else {
                println!("✓ {label}: text-preserving over every valid document");
            }
            true
        }
        Outcome::Copying { path } => {
            println!(
                "✗ {label}: COPIES text reached via: {}",
                render_path(path, alpha)
            );
            false
        }
        Outcome::Rearranging { witness } => {
            println!("✗ {label}: REORDERS text, e.g. on this valid document:");
            println!("  {}", render_witness(witness, alpha));
            false
        }
        Outcome::NotPreserving { witness } => {
            println!("✗ {label}: not text-preserving, e.g. on:");
            println!("  {}", render_witness(witness, alpha));
            false
        }
        Outcome::DeletesText { path } => {
            println!(
                "✗ {label}: [text-retention] DELETES text under a selected label, \
                 reached via: {}",
                render_path(path, alpha)
            );
            false
        }
        Outcome::NonConforming { witness } => {
            println!(
                "✗ {label}: [conformance] output does NOT conform to the target, \
                 e.g. on this valid document:"
            );
            println!("  {}", render_witness(witness, alpha));
            false
        }
    }
}

/// A loaded transducer of either kind, dispatching to the right decider.
enum AnyTransducer {
    Topdown(Transducer),
    Dtl(DtlTransducer<XPathPatterns>),
}

impl AnyTransducer {
    /// A decider for this transducer, borrowing it.
    fn decider(&self) -> Box<dyn Decider + '_> {
        match self {
            AnyTransducer::Topdown(t) => Box::new(TopdownDecider::new(t)),
            AnyTransducer::Dtl(t) => Box::new(DtlDecider::new(t)),
        }
    }
}

/// Loads the schema and every transducer file together. Stylesheet files
/// (sniffed by a leading `<`) compile through the XSLT frontend, which may
/// extend the alphabet with literal result labels — so stylesheets compile
/// in a first pass that interns every label, everything is built in a
/// second pass at the final alphabet width, and the schema NTA is parsed
/// last so its width matches.
fn load_inputs(
    schema_path: &str,
    transducer_paths: &[&str],
) -> Result<(Alphabet, Nta, Vec<AnyTransducer>), String> {
    let schema_src = read(schema_path)?;
    let mut alpha = Alphabet::new();
    parse_schema(&schema_src, &mut alpha).map_err(|e| format!("{schema_path}: {e}"))?;
    let mut sources = Vec::new();
    for path in transducer_paths {
        sources.push((*path, read(path)?));
    }
    for (path, src) in &sources {
        if textpres::xslt::is_stylesheet(src) {
            textpres::xslt::compile(src, &mut alpha).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    let mut transducers = Vec::new();
    for (path, src) in &sources {
        let t = if textpres::xslt::is_stylesheet(src) {
            let c = textpres::xslt::compile(src, &mut alpha).map_err(|e| format!("{path}: {e}"))?;
            if !c.diagnostics.is_empty() {
                return Err(format!(
                    "{path}: {}",
                    textpres::frontend::untranslatable(&c.diagnostics)
                ));
            }
            AnyTransducer::Topdown(c.transducer)
        } else if is_dtl_transducer(src) {
            AnyTransducer::Dtl(
                parse_dtl_transducer(src, &alpha).map_err(|e| format!("{path}: {e}"))?,
            )
        } else {
            AnyTransducer::Topdown(
                parse_transducer(src, &alpha).map_err(|e| format!("{path}: {e}"))?,
            )
        };
        transducers.push(t);
    }
    let schema = parse_schema(&schema_src, &mut alpha)
        .expect("schema parsed once already")
        .to_nta();
    Ok((alpha, schema, transducers))
}

/// Runs one (possibly governed) check, reporting any failure. The `Err`
/// payload is the process exit code: 3 for budget exhaustion, 2 for an
/// isolated panic or internal error.
fn run_check(
    engine: &Engine,
    decider: &dyn Decider,
    schema: &Nta,
    flags: &Flags<'_>,
    label: &str,
) -> Result<Verdict, u8> {
    if !flags.governed() {
        return Ok(engine.check(decider, schema));
    }
    engine
        .check_governed(decider, schema, &flags.check_options())
        .map_err(|e| {
            eprintln!("error: {label}: {e}");
            if e.is_resource_exhausted() {
                3
            } else {
                2
            }
        })
}

fn cmd_check(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if flags.jobs.is_some() {
        eprintln!("error: --jobs only applies to `batch`\n{USAGE}");
        return ExitCode::from(2);
    }
    if flags.dtl || flags.out.is_some() {
        eprintln!("error: --dtl/--out only apply to `compile-xslt`\n{USAGE}");
        return ExitCode::from(2);
    }
    let (schema_path, transducer_path, doc) = match flags.positional.as_slice() {
        [s, t] => (*s, *t, None),
        [s, t, d] => (*s, *t, Some(*d)),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (mut alpha, schema, mut loaded) = match load_inputs(schema_path, &[transducer_path]) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let t = loaded.pop().expect("one transducer loaded");
    if let Some(doc_path) = doc {
        let AnyTransducer::Topdown(t) = &t else {
            eprintln!("error: transforming a document is only supported for top-down transducers");
            return ExitCode::from(2);
        };
        let xml = match read(doc_path) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        match textpres::trees::xml::parse_document(&xml, &mut alpha) {
            Ok(tree) => {
                let out = t.transform(&tree);
                println!("transformed {doc_path}:");
                println!("{}", textpres::trees::xml::to_xml(&out, &alpha));
                let ok = textpres::is_text_preserving_run(&tree, &out);
                println!("this run is text-preserving: {ok}\n");
            }
            Err(e) => {
                eprintln!("error: {doc_path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let engine = instrument(Engine::new(), flags.trace_out, flags.metrics);
    let decider = t.decider();
    let result = run_check(&engine, decider.as_ref(), &schema, &flags, transducer_path);
    if let Err(e) = flush_obs(&engine, flags.trace_out, flags.metrics) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    let verdict = match result {
        Ok(v) => v,
        Err(code) => return ExitCode::from(code),
    };
    let ok = report_verdict(transducer_path, &verdict, &alpha);
    if flags.stats {
        print_stats(&engine, &[&verdict]);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Unwraps a loaded transducer for an analysis that only supports
/// top-down transducers, with a clear error for DTL files.
fn topdown_for(analysis: &str, path: &str, t: AnyTransducer) -> Result<Transducer, String> {
    match t {
        AnyTransducer::Topdown(t) => Ok(t),
        AnyTransducer::Dtl(_) => Err(format!(
            "{path}: --analysis {analysis} is only supported for top-down transducers"
        )),
    }
}

/// Runs the analysis check, flushes observability, and reports the
/// verdict — the shared tail of every `analyze` branch.
fn finish_analyze(
    engine: &Engine,
    decider: &dyn Decider,
    schema: &Nta,
    flags: &Flags<'_>,
    label: &str,
    alpha: &Alphabet,
) -> ExitCode {
    let result = run_check(engine, decider, schema, flags, label);
    if let Err(e) = flush_obs(engine, flags.trace_out, flags.metrics) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    let verdict = match result {
        Ok(v) => v,
        Err(code) => return ExitCode::from(code),
    };
    let ok = report_verdict(label, &verdict, alpha);
    if flags.stats {
        print_stats(engine, &[&verdict]);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if flags.jobs.is_some() {
        eprintln!("error: --jobs only applies to `batch`\n{USAGE}");
        return ExitCode::from(2);
    }
    if flags.dtl || flags.out.is_some() {
        eprintln!("error: --dtl/--out only apply to `compile-xslt`\n{USAGE}");
        return ExitCode::from(2);
    }
    let name = flags.analysis.unwrap_or(TEXT_PRESERVATION.name);
    let Some(analysis) = analysis_by_name(name) else {
        eprintln!(
            "error: unknown analysis {name:?} (expected one of: {})\n{USAGE}",
            ANALYSIS_NAMES.join(", ")
        );
        return ExitCode::from(2);
    };
    if analysis != TEXT_RETENTION && !flags.labels.is_empty() {
        eprintln!("error: --label only applies to --analysis text-retention\n{USAGE}");
        return ExitCode::from(2);
    }
    if analysis != OUTPUT_CONFORMANCE && flags.target.is_some() {
        eprintln!("error: --target only applies to --analysis conformance\n{USAGE}");
        return ExitCode::from(2);
    }
    let [schema_path, transducer_path] = flags.positional.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let (mut alpha, schema, mut loaded) = match load_inputs(schema_path, &[transducer_path]) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let any = loaded.pop().expect("one transducer loaded");
    let engine = instrument(Engine::new(), flags.trace_out, flags.metrics);
    if analysis == TEXT_RETENTION {
        if flags.labels.is_empty() {
            eprintln!("error: --analysis text-retention needs at least one --label\n{USAGE}");
            return ExitCode::from(2);
        }
        let mut labels = Vec::new();
        for l in &flags.labels {
            match alpha.get(l) {
                Some(s) => labels.push(s),
                None => {
                    eprintln!("error: --label {l:?} is not in the schema alphabet");
                    return ExitCode::from(2);
                }
            }
        }
        let t = match topdown_for(name, transducer_path, any) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        let decider = TextRetentionDecider::new(&t, labels);
        finish_analyze(&engine, &decider, &schema, &flags, transducer_path, &alpha)
    } else if analysis == OUTPUT_CONFORMANCE {
        let Some(target_path) = flags.target else {
            eprintln!("error: --analysis conformance needs --target <schema>\n{USAGE}");
            return ExitCode::from(2);
        };
        let t = match topdown_for(name, transducer_path, any) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        // The target schema is parsed into the *same* alphabet so its
        // symbols line up with the input schema's; new labels extend the
        // alphabet, and the conformance pipeline pads the narrower
        // automata up to the common width.
        let target = match read(target_path).and_then(|src| {
            parse_schema(&src, &mut alpha).map_err(|e| format!("{target_path}: {e}"))
        }) {
            Ok(dtd) => dtd.to_nta(),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        let decider = OutputConformanceDecider::new(&t, &target);
        finish_analyze(&engine, &decider, &schema, &flags, transducer_path, &alpha)
    } else {
        let decider = any.decider();
        finish_analyze(
            &engine,
            decider.as_ref(),
            &schema,
            &flags,
            transducer_path,
            &alpha,
        )
    }
}

fn cmd_batch(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let [schema_path, transducer_paths @ ..] = flags.positional.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if transducer_paths.is_empty() {
        eprintln!("error: batch needs at least one transducer file\n{USAGE}");
        return ExitCode::from(2);
    }
    let (alpha, schema, transducers) = match load_inputs(schema_path, transducer_paths) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // `--jobs 0` (and the default) auto-detects the worker count from the
    // host's available parallelism.
    let jobs = match flags.jobs {
        Some(0) | None => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Some(n) => n,
    };
    let engine = instrument(Engine::with_jobs(jobs), flags.trace_out, flags.metrics);
    let deciders: Vec<Box<dyn Decider + '_>> = transducers.iter().map(|t| t.decider()).collect();
    let tasks: Vec<Task> = deciders
        .iter()
        .map(|d| (d.as_ref() as &dyn Decider, &schema))
        .collect();
    // Each task fails independently: one exhausted or panicking check still
    // lets every other transducer get its verdict.
    let results = engine.check_many_governed(&tasks, &flags.check_options());
    if let Err(e) = flush_obs(&engine, flags.trace_out, flags.metrics) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    let mut all_ok = true;
    let mut exhausted = 0usize;
    let mut errored = 0usize;
    let mut preserving = 0usize;
    for (path, result) in transducer_paths.iter().zip(&results) {
        match result {
            Ok(verdict) => {
                all_ok &= report_verdict(path, verdict, &alpha);
                preserving += verdict.is_preserving() as usize;
            }
            Err(e) if e.is_resource_exhausted() => {
                println!("? {path}: {e}");
                exhausted += 1;
            }
            Err(e) => {
                println!("? {path}: {e}");
                errored += 1;
            }
        }
    }
    println!(
        "{preserving}/{} text-preserving ({} workers{})",
        results.len(),
        engine.jobs(),
        if exhausted + errored > 0 {
            format!(", {exhausted} exhausted, {errored} failed")
        } else {
            String::new()
        }
    );
    if flags.stats {
        let verdicts: Vec<&Verdict> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
        print_stats(&engine, &verdicts);
        let b = engine.batch_stats();
        eprintln!(
            "  scheduler: {} stage tasks + {} checks, {} steals",
            b.stage_tasks, b.checks, b.steals
        );
    }
    if !all_ok {
        ExitCode::FAILURE
    } else if exhausted > 0 {
        ExitCode::from(3)
    } else if errored > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let mut cfg = FuzzConfig::default();
    let mut out_dir: Option<String> = None;
    let mut stats = false;
    let mut trace_out: Option<String> = None;
    let mut metrics = false;
    let mut it = args.iter();
    let parse_err = |flag: &str, v: &str| format!("{flag}: not a number: {v:?}");
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> Result<u64, String> {
            let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            v.parse::<u64>().map_err(|_| parse_err(flag, v))
        };
        match a.as_str() {
            "--seeds" => match num("--seeds") {
                Ok(n) => cfg.seeds = n,
                Err(e) => {
                    eprintln!("error: {e}\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--budget" => match num("--budget") {
                Ok(n) => cfg.budget = n as usize,
                Err(e) => {
                    eprintln!("error: {e}\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--base-seed" => match num("--base-seed") {
                Ok(n) => cfg.base_seed = n,
                Err(e) => {
                    eprintln!("error: {e}\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--fuel" => match num("--fuel") {
                Ok(n) => cfg.fuel = Some(n),
                Err(e) => {
                    eprintln!("error: {e}\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--timeout-ms" => match num("--timeout-ms") {
                Ok(n) => cfg.timeout_ms = Some(n),
                Err(e) => {
                    eprintln!("error: {e}\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = Some(dir.clone()),
                None => {
                    eprintln!("error: --out needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--trace-out" => match it.next() {
                Some(path) => trace_out = Some(path.clone()),
                None => {
                    eprintln!("error: --trace-out needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--metrics" => metrics = true,
            "--dtl-symbolic" => cfg.dtl_symbolic = true,
            "--no-dtl-symbolic" => cfg.dtl_symbolic = false,
            "--xslt" => cfg.xslt = true,
            "--analysis" => match it.next().map(|s| s.as_str()) {
                // The text-preservation cross-checks always run; the
                // retention sweep rides along when asked for.
                Some("text-preservation") => {}
                Some("text-retention") => cfg.retention = true,
                Some(other) => {
                    eprintln!(
                        "error: unknown fuzz analysis {other:?} \
                         (expected text-preservation or text-retention)\n{USAGE}"
                    );
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: --analysis needs a name\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--stats" => stats = true,
            other => {
                eprintln!("error: unknown fuzz argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let engine = instrument(Engine::new(), trace_out.as_deref(), metrics);
    let report = run_fuzz(&engine, &cfg);
    if let Err(e) = flush_obs(&engine, trace_out.as_deref(), metrics) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    println!(
        "fuzz: {} seeds, {} cross-checks, {} budget-exhausted, {} dtl-size-skipped, \
         {} divergence(s)",
        report.seeds_run,
        report.checks,
        report.exhausted,
        report.dtl_skipped,
        report.divergences.len()
    );
    for d in &report.divergences {
        println!("✗ seed {}: {} — {}", d.seed, d.kind, d.detail);
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {dir}: {e}");
            return ExitCode::from(2);
        }
        for d in &report.divergences {
            let rc = RegressionCase {
                kind: d.kind,
                seed: d.seed,
                detail: d.detail.clone(),
                case: d.case.clone(),
            };
            let path = format!("{dir}/seed{}-{}.case", d.seed, d.kind);
            if let Err(e) = std::fs::write(&path, render_case(&rc)) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            println!("  wrote {path}");
            if let Some(trace) = &d.trace_jsonl {
                let tpath = format!("{dir}/seed{}-{}.trace.jsonl", d.seed, d.kind);
                if let Err(e) = std::fs::write(&tpath, trace) {
                    eprintln!("error: cannot write {tpath}: {e}");
                    return ExitCode::from(2);
                }
                println!("  wrote {tpath}");
            }
        }
    }
    if stats {
        let c = engine.cache_stats();
        eprintln!(
            "  cache: {} hits, {} misses, {} artifacts, {} evicted",
            c.hits, c.misses, c.entries, c.evictions
        );
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `textpres compile-xslt`: translate a stylesheet against a schema and
/// print the transducer (or, with `--dtl`, the equivalent `DTL_XPath`
/// program). Untranslatable constructs are listed with their source lines
/// and exit 1; a file that is not a stylesheet at all exits 2.
fn cmd_compile_xslt(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let [schema_path, xslt_path] = flags.positional.as_slice() else {
        eprintln!("error: compile-xslt needs <schema> <stylesheet>\n{USAGE}");
        return ExitCode::from(2);
    };
    let sources = read(schema_path).and_then(|s| read(xslt_path).map(|x| (s, x)));
    let (schema_src, xslt_src) = match sources {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut alpha = Alphabet::new();
    if let Err(e) = parse_schema(&schema_src, &mut alpha) {
        eprintln!("error: {schema_path}: {e}");
        return ExitCode::from(2);
    }
    let compiled = match textpres::xslt::compile(&xslt_src, &mut alpha) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {xslt_path}: {e}");
            return ExitCode::from(2);
        }
    };
    if !compiled.diagnostics.is_empty() {
        eprintln!(
            "error: {xslt_path}: {}",
            textpres::frontend::untranslatable(&compiled.diagnostics)
        );
        return ExitCode::FAILURE;
    }
    let output = if flags.dtl {
        match compiled.dtl {
            Some(d) => d,
            None => {
                eprintln!(
                    "error: {xslt_path}: stylesheet is not DTL_XPath-expressible \
                     (it uses element-only or text-only selections, constant output, \
                     or rules emitting more than one element)"
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut s = String::new();
        for state in &compiled.states {
            s.push_str(&format!("# {state}\n"));
        }
        s.push_str(&render_transducer(&compiled.transducer, &alpha));
        s
    };
    match flags.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &output) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            println!("wrote {path}");
        }
        None => print!("{output}"),
    }
    ExitCode::SUCCESS
}

fn cmd_subschema(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let [schema_path, transducer_path] = flags.positional.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let (alpha, schema) = match load_schema(schema_path) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let t = match load_transducer(transducer_path, &alpha) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let max = textpres::topdown_maximal_subschema(&t, &schema);
    if max.is_empty() {
        println!("the transformation is text-preserving on NO document of the schema");
        return ExitCode::FAILURE;
    }
    println!(
        "maximal text-preserving sub-schema: NTA with {} states (size {})",
        max.state_count(),
        max.size()
    );
    println!("{}", max.display(&alpha));
    if let Some(w) = max.witness() {
        println!("sample document inside:  {}", w.display(&alpha));
    }
    let carved = textpres::treeauto::difference_nta(&schema, &max);
    match carved.witness() {
        Some(w) => println!("sample document outside: {}", w.display(&alpha)),
        None => println!("(the transformation is text-preserving on the whole schema)"),
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// serve / client
// ---------------------------------------------------------------------------

/// `textpres serve`: bind, announce, install signal handlers, run until
/// drained. Exit 0 after a clean drain (signal or shutdown frame);
/// exit 2 when the listener cannot bind or dies (the drain + flush
/// still ran).
fn cmd_serve(args: &[String]) -> ExitCode {
    use textpres::serve::{ServeConfig, Server};

    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    let next_val = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .map(|s| s.to_owned())
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let parse_num = |flag: &str, v: String| {
        v.parse::<u64>()
            .map_err(|_| format!("{flag} needs a non-negative integer, got {v:?}"))
    };
    while let Some(a) = it.next() {
        let r: Result<(), String> = (|| {
            match a.as_str() {
                "--addr" => cfg.addr = next_val("--addr", &mut it)?,
                "--slots" => {
                    cfg.slots = parse_num("--slots", next_val("--slots", &mut it)?)? as usize
                }
                "--queue" => {
                    cfg.queue = parse_num("--queue", next_val("--queue", &mut it)?)? as usize
                }
                "--max-connections" => {
                    cfg.max_connections =
                        parse_num("--max-connections", next_val("--max-connections", &mut it)?)?
                            as usize
                }
                "--max-frame-bytes" => {
                    cfg.max_frame_bytes =
                        parse_num("--max-frame-bytes", next_val("--max-frame-bytes", &mut it)?)?
                            as usize
                }
                "--max-fuel" => {
                    cfg.max_fuel = Some(parse_num("--max-fuel", next_val("--max-fuel", &mut it)?)?)
                }
                "--max-timeout-ms" => {
                    cfg.max_timeout = std::time::Duration::from_millis(parse_num(
                        "--max-timeout-ms",
                        next_val("--max-timeout-ms", &mut it)?,
                    )?)
                }
                "--drain-ms" => {
                    cfg.drain_deadline = std::time::Duration::from_millis(parse_num(
                        "--drain-ms",
                        next_val("--drain-ms", &mut it)?,
                    )?)
                }
                "--idle-timeout-ms" => {
                    cfg.idle_timeout = std::time::Duration::from_millis(parse_num(
                        "--idle-timeout-ms",
                        next_val("--idle-timeout-ms", &mut it)?,
                    )?)
                }
                "--trace-out" => cfg.trace_out = Some(next_val("--trace-out", &mut it)?.into()),
                "--metrics" => cfg.metrics_dump = true,
                other => return Err(format!("unknown serve flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: serve: cannot bind: {e}");
            return ExitCode::from(2);
        }
    };
    // Announced on stdout (and flushed) so wrappers can scrape the
    // resolved port when binding with port 0.
    println!("textpres serve: listening on {}", server.local_addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    Server::install_signal_handlers();
    match server.run() {
        Ok(r) => {
            eprintln!(
                "textpres serve: drained cleanly (served {}, shed {}, rejected {}{})",
                r.served,
                r.shed,
                r.rejected,
                if r.forced_drain {
                    ", drain deadline forced"
                } else {
                    ""
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: serve: {e}");
            ExitCode::from(2)
        }
    }
}

/// Maps a response frame onto the CLI exit-code contract: 0 = verdict
/// pass (or a non-verdict success like health/stats), 1 = verdict fail,
/// 3 = retryable resource condition (exhausted / overloaded /
/// shutting-down), 2 = anything else.
fn client_exit(line: &str) -> ExitCode {
    use textpres::obs::JsonValue;
    let Ok(v) = JsonValue::parse(line) else {
        return ExitCode::from(2);
    };
    if v.get("ok").and_then(|b| b.as_bool()) == Some(true) {
        return match v.get("verdict").and_then(|s| s.as_str()) {
            Some("pass") | None => ExitCode::SUCCESS,
            Some(_) => ExitCode::FAILURE,
        };
    }
    match v.get("error").and_then(|s| s.as_str()) {
        Some("exhausted") | Some("overloaded") | Some("shutting-down") => ExitCode::from(3),
        _ => ExitCode::from(2),
    }
}

/// `textpres client`: one request frame, one response line on stdout.
fn cmd_client(args: &[String]) -> ExitCode {
    use std::io::{BufRead, BufReader, Write};
    use textpres::obs::quote;

    let (addr, sub, rest) = match args {
        [addr, sub, rest @ ..] => (addr.as_str(), sub.as_str(), rest),
        _ => {
            eprintln!("error: client needs <addr> and a subcommand\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let frame: String = match sub {
        "health" | "stats" | "shutdown" => {
            if !rest.is_empty() {
                eprintln!("error: client {sub} takes no further arguments\n{USAGE}");
                return ExitCode::from(2);
            }
            format!("{{\"id\":1,\"type\":{}}}", quote(sub))
        }
        "raw" => match rest {
            [line] => line.clone(),
            _ => {
                eprintln!("error: client raw needs exactly one frame argument\n{USAGE}");
                return ExitCode::from(2);
            }
        },
        "check" => {
            let flags = match parse_flags(rest) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: {e}\n{USAGE}");
                    return ExitCode::from(2);
                }
            };
            let [schema_path, transducer_path] = flags.positional.as_slice() else {
                eprintln!("error: client check needs <schema> <transducer>\n{USAGE}");
                return ExitCode::from(2);
            };
            let sources = read(schema_path)
                .and_then(|schema| read(transducer_path).map(|transducer| (schema, transducer)));
            let (schema_src, t_src) = match sources {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let mut frame = format!(
                "{{\"id\":1,\"type\":\"check\",\"schema\":{},\"transducer\":{}",
                quote(&schema_src),
                quote(&t_src)
            );
            if let Some(name) = flags.analysis {
                frame.push_str(&format!(",\"analysis\":{}", quote(name)));
            }
            if !flags.labels.is_empty() {
                frame.push_str(",\"labels\":[");
                for (i, l) in flags.labels.iter().enumerate() {
                    if i > 0 {
                        frame.push(',');
                    }
                    frame.push_str(&quote(l));
                }
                frame.push(']');
            }
            if let Some(target_path) = flags.target {
                match read(target_path) {
                    Ok(target) => frame.push_str(&format!(",\"target\":{}", quote(&target))),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Some(fuel) = flags.fuel {
                frame.push_str(&format!(",\"fuel\":{fuel}"));
            }
            if let Some(ms) = flags.timeout_ms {
                frame.push_str(&format!(",\"timeout_ms\":{ms}"));
            }
            if flags.degrade {
                frame.push_str(",\"degrade\":true");
            }
            frame.push('}');
            frame
        }
        other => {
            eprintln!("error: unknown client subcommand {other:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let stream = std::net::TcpStream::connect(addr);
    let mut stream = match stream {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: client: cannot connect to {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(60)));
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(10)));
    if let Err(e) = stream
        .write_all(frame.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
    {
        eprintln!("error: client: cannot send to {addr}: {e}");
        return ExitCode::from(2);
    }
    let mut line = String::new();
    match BufReader::new(stream).read_line(&mut line) {
        Ok(0) => {
            eprintln!("error: client: {addr} closed the connection without answering");
            ExitCode::from(2)
        }
        Ok(_) => {
            let line = line.trim_end();
            println!("{line}");
            client_exit(line)
        }
        Err(e) => {
            eprintln!("error: client: cannot read from {addr}: {e}");
            ExitCode::from(2)
        }
    }
}
