//! `textpres` — verify that an XML transformation is text-preserving.
//!
//! ```text
//! textpres check <schema-file> <transducer-file> [document.xml]
//! textpres subschema <schema-file> <transducer-file>
//! ```
//!
//! `check` decides (in PTIME, Theorem 4.11 of the paper) whether the
//! transformation never copies or reorders text on ANY document valid
//! under the schema; with a document argument it also runs the
//! transformation. `subschema` prints a witness from the maximal
//! sub-schema on which the transformation IS text-preserving.
//!
//! File formats are documented in `textpres::format`.

use std::process::ExitCode;
use textpres::format::{parse_schema, parse_transducer};
use textpres::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, schema, transducer] if cmd == "check" => check(schema, transducer, None),
        [cmd, schema, transducer, doc] if cmd == "check" => {
            check(schema, transducer, Some(doc))
        }
        [cmd, schema, transducer] if cmd == "subschema" => subschema(schema, transducer),
        _ => {
            eprintln!("usage: textpres check <schema> <transducer> [document.xml]");
            eprintln!("       textpres subschema <schema> <transducer>");
            ExitCode::from(2)
        }
    }
}

fn load(schema_path: &str, transducer_path: &str) -> Result<(Alphabet, Nta, Transducer), String> {
    let schema_src = std::fs::read_to_string(schema_path)
        .map_err(|e| format!("cannot read {schema_path}: {e}"))?;
    let transducer_src = std::fs::read_to_string(transducer_path)
        .map_err(|e| format!("cannot read {transducer_path}: {e}"))?;
    let mut alpha = Alphabet::new();
    let dtd = parse_schema(&schema_src, &mut alpha)
        .map_err(|e| format!("{schema_path}: {e}"))?;
    let t = parse_transducer(&transducer_src, &alpha)
        .map_err(|e| format!("{transducer_path}: {e}"))?;
    Ok((alpha, dtd.to_nta(), t))
}

fn check(schema_path: &str, transducer_path: &str, doc: Option<&str>) -> ExitCode {
    let (mut alpha, schema, t) = match load(schema_path, transducer_path) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(doc_path) = doc {
        match std::fs::read_to_string(doc_path) {
            Ok(xml) => match textpres::trees::xml::parse_document(&xml, &mut alpha) {
                Ok(tree) => {
                    let out = t.transform(&tree);
                    println!("transformed {doc_path}:");
                    println!("{}", textpres::trees::xml::to_xml(&out, &alpha));
                    let ok = textpres::is_text_preserving_run(&tree, &out);
                    println!("this run is text-preserving: {ok}\n");
                }
                Err(e) => {
                    eprintln!("error: {doc_path}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("error: cannot read {doc_path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    match textpres::check_topdown(&t, &schema) {
        CheckReport::TextPreserving => {
            println!("✓ text-preserving over every document valid under {schema_path}");
            ExitCode::SUCCESS
        }
        CheckReport::Copying { path } => {
            let rendered: Vec<String> = path
                .iter()
                .map(|p| match p {
                    textpres::topdown::PathSym::Elem(s) => alpha.name(*s).to_owned(),
                    textpres::topdown::PathSym::Text => "text()".to_owned(),
                })
                .collect();
            println!("✗ COPIES text reached via: {}", rendered.join("/"));
            ExitCode::FAILURE
        }
        CheckReport::Rearranging { witness } => {
            println!("✗ REORDERS text, e.g. on this valid document:");
            println!("  {}", witness.display(&alpha));
            ExitCode::FAILURE
        }
    }
}

fn subschema(schema_path: &str, transducer_path: &str) -> ExitCode {
    let (alpha, schema, t) = match load(schema_path, transducer_path) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let max = textpres::topdown_maximal_subschema(&t, &schema);
    if max.is_empty() {
        println!("the transformation is text-preserving on NO document of the schema");
        return ExitCode::FAILURE;
    }
    println!(
        "maximal text-preserving sub-schema: NTA with {} states (size {})",
        max.state_count(),
        max.size()
    );
    println!("{}", max.display(&alpha));
    if let Some(w) = max.witness() {
        println!("sample document inside:  {}", w.display(&alpha));
    }
    let carved = textpres::treeauto::difference_nta(&schema, &max);
    match carved.witness() {
        Some(w) => println!("sample document outside: {}", w.display(&alpha)),
        None => println!("(the transformation is text-preserving on the whole schema)"),
    }
    ExitCode::SUCCESS
}
