//! Parser for the concrete Core XPath syntax (see crate docs).

use crate::ast::{Axis, NodeExpr, PathExpr};
use std::fmt;
use tpx_trees::Alphabet;

/// Error from [`parse_path`] / [`parse_node_expr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XPathParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XPathParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XPath parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XPathParseError {}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, m: impl Into<String>) -> Result<T, XPathParseError> {
        Err(XPathParseError {
            offset: self.pos,
            message: m.into(),
        })
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn ident(&mut self) -> Result<&'a str, XPathParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-' || c == ':')
        {
            self.bump();
        }
        if self.pos == start {
            return self.err("expected an identifier");
        }
        Ok(&self.src[start..self.pos])
    }

    // ---- path expressions ----

    fn path_union(&mut self, al: &mut Alphabet) -> Result<PathExpr, XPathParseError> {
        let mut lhs = self.path_seq(al)?;
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.bump();
                let rhs = self.path_seq(al)?;
                lhs = lhs.or(rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn path_seq(&mut self, al: &mut Alphabet) -> Result<PathExpr, XPathParseError> {
        let mut lhs = self.path_postfix(al)?;
        loop {
            self.skip_ws();
            if self.peek() == Some('/') {
                self.bump();
                let rhs = self.path_postfix(al)?;
                lhs = lhs.then(rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn path_postfix(&mut self, al: &mut Alphabet) -> Result<PathExpr, XPathParseError> {
        let mut base = self.path_atom(al)?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.bump();
                    base = base.star();
                }
                Some('[') => {
                    self.bump();
                    let phi = self.node_and(al)?;
                    self.skip_ws();
                    if self.peek() != Some(']') {
                        return self.err("expected ']'");
                    }
                    self.bump();
                    base = base.filter(phi);
                }
                _ => return Ok(base),
            }
        }
    }

    fn path_atom(&mut self, al: &mut Alphabet) -> Result<PathExpr, XPathParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.path_union(al)?;
                self.skip_ws();
                if self.peek() != Some(')') {
                    return self.err("expected ')'");
                }
                self.bump();
                Ok(inner)
            }
            Some('.') => {
                self.bump();
                Ok(PathExpr::Dot)
            }
            Some(c) if c.is_alphabetic() => {
                let name = self.ident()?;
                match name {
                    "child" => Ok(PathExpr::Axis(Axis::Child)),
                    "parent" => Ok(PathExpr::Axis(Axis::Parent)),
                    "next" => Ok(PathExpr::Axis(Axis::NextSibling)),
                    "prev" => Ok(PathExpr::Axis(Axis::PrevSibling)),
                    "self" => Ok(PathExpr::Dot),
                    // Derived axes (sugar over the core, Definition 5.13):
                    // desc = child/(child)*, anc = parent/(parent)*,
                    // foll = next/(next)*, prec = prev/(prev)*.
                    "desc" => {
                        Ok(PathExpr::Axis(Axis::Child).then(PathExpr::Axis(Axis::Child).star()))
                    }
                    "anc" => {
                        Ok(PathExpr::Axis(Axis::Parent).then(PathExpr::Axis(Axis::Parent).star()))
                    }
                    "foll" => Ok(PathExpr::Axis(Axis::NextSibling)
                        .then(PathExpr::Axis(Axis::NextSibling).star())),
                    "prec" => Ok(PathExpr::Axis(Axis::PrevSibling)
                        .then(PathExpr::Axis(Axis::PrevSibling).star())),
                    other => self.err(format!(
                        "unknown axis {other:?} (expected child/parent/next/prev/\
                         self/desc/anc/foll/prec)"
                    )),
                }
            }
            Some(c) => self.err(format!("unexpected character {c:?} in path expression")),
            None => self.err("unexpected end of path expression"),
        }
    }

    // ---- node expressions ----

    fn node_and(&mut self, al: &mut Alphabet) -> Result<NodeExpr, XPathParseError> {
        let mut lhs = self.node_atom(al)?;
        loop {
            self.skip_ws();
            if self.peek() == Some('&') {
                self.bump();
                let rhs = self.node_atom(al)?;
                lhs = lhs.and(rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn node_atom(&mut self, al: &mut Alphabet) -> Result<NodeExpr, XPathParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.node_and(al)?;
                self.skip_ws();
                if self.peek() != Some(')') {
                    return self.err("expected ')'");
                }
                self.bump();
                Ok(inner)
            }
            Some('!') => {
                self.bump();
                Ok(self.node_atom(al)?.not())
            }
            Some('<') => {
                self.bump();
                let path = self.path_union(al)?;
                self.skip_ws();
                if self.peek() != Some('>') {
                    return self.err("expected '>'");
                }
                self.bump();
                Ok(NodeExpr::Has(Box::new(path)))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let name = self.ident()?.to_owned();
                if name == "true" {
                    return Ok(NodeExpr::True);
                }
                if name == "text" {
                    self.skip_ws();
                    if self.peek() == Some('(') {
                        self.bump();
                        self.skip_ws();
                        if self.peek() != Some(')') {
                            return self.err("expected ')' after text(");
                        }
                        self.bump();
                        return Ok(NodeExpr::IsText);
                    }
                    // bare `text` is a label test on a label named "text"
                }
                Ok(NodeExpr::Label(al.intern(&name)))
            }
            Some(c) => self.err(format!("unexpected character {c:?} in node expression")),
            None => self.err("unexpected end of node expression"),
        }
    }
}

/// Parses a path expression, interning label names into `al`.
pub fn parse_path(src: &str, al: &mut Alphabet) -> Result<PathExpr, XPathParseError> {
    let mut p = P { src, pos: 0 };
    let e = p.path_union(al)?;
    p.skip_ws();
    if p.pos != src.len() {
        return p.err("trailing input");
    }
    Ok(e)
}

/// Parses a node expression, interning label names into `al`.
pub fn parse_node_expr(src: &str, al: &mut Alphabet) -> Result<NodeExpr, XPathParseError> {
    let mut p = P { src, pos: 0 };
    let e = p.node_and(al)?;
    p.skip_ws();
    if p.pos != src.len() {
        return p.err("trailing input");
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_axes_and_ops() {
        let mut al = Alphabet::new();
        assert_eq!(
            parse_path("child", &mut al).unwrap(),
            PathExpr::Axis(Axis::Child)
        );
        assert!(matches!(
            parse_path("child/parent", &mut al).unwrap(),
            PathExpr::Seq(_, _)
        ));
        assert!(matches!(
            parse_path("child | next", &mut al).unwrap(),
            PathExpr::Union(_, _)
        ));
        assert!(matches!(
            parse_path("(next)*", &mut al).unwrap(),
            PathExpr::Star(_)
        ));
        assert_eq!(parse_path(".", &mut al).unwrap(), PathExpr::Dot);
    }

    #[test]
    fn precedence_seq_over_union() {
        let mut al = Alphabet::new();
        // a/b | c parses as (a/b) | c.
        let e = parse_path("child/parent | next", &mut al).unwrap();
        match e {
            PathExpr::Union(l, _) => assert!(matches!(*l, PathExpr::Seq(_, _))),
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn filters_and_node_exprs() {
        let mut al = Alphabet::new();
        let e = parse_path("child[a & !b]/next[<child>]", &mut al).unwrap();
        assert!(matches!(e, PathExpr::Seq(_, _)));
        let phi = parse_node_expr("!(a & <child[b]>) & true", &mut al).unwrap();
        assert!(matches!(phi, NodeExpr::And(_, _)));
        let t = parse_node_expr("text()", &mut al).unwrap();
        assert_eq!(t, NodeExpr::IsText);
    }

    #[test]
    fn bare_text_is_a_label() {
        let mut al = Alphabet::new();
        let phi = parse_node_expr("text", &mut al).unwrap();
        assert!(matches!(phi, NodeExpr::Label(_)));
    }

    #[test]
    fn derived_axes_desugar() {
        let mut al = Alphabet::new();
        // desc = child/(child)*.
        let d = parse_path("desc", &mut al).unwrap();
        let expect = PathExpr::Axis(Axis::Child).then(PathExpr::Axis(Axis::Child).star());
        assert_eq!(d, expect);
        assert_eq!(parse_path("self", &mut al).unwrap(), PathExpr::Dot);
        assert!(parse_path("anc", &mut al).is_ok());
        assert!(parse_path("foll[a]", &mut al).is_ok());
        assert!(parse_path("prec", &mut al).is_ok());
    }

    #[test]
    fn errors() {
        let mut al = Alphabet::new();
        assert!(parse_path("bogus", &mut al).is_err());
        assert!(parse_path("child[", &mut al).is_err());
        assert!(parse_path("child)", &mut al).is_err());
        assert!(parse_path("", &mut al).is_err());
        assert!(parse_node_expr("<child", &mut al).is_err());
        assert!(parse_node_expr("a &", &mut al).is_err());
    }
}
