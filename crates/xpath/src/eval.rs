//! The Table 1 semantics: `⟦α⟧_PExpr ⊆ Nodes × Nodes` and
//! `⟦φ⟧_NExpr ⊆ Nodes`, computed bottom-up over the expression.
//!
//! Relations are adjacency lists indexed by source node, with targets kept
//! in document order (the DTL rewriting of Section 5.1 substitutes selected
//! nodes `v₁ <lex ⋯ <lex vₘ` in that order).

use crate::ast::{Axis, NodeExpr, PathExpr};
use tpx_trees::{Hedge, NodeId, NodeLabel};

/// A binary relation on the nodes of one hedge: `targets[v] = {u : (v, u)}`,
/// each target list sorted in document order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    /// Indexed by the dense node id (`NodeId::index`).
    targets: Vec<Vec<NodeId>>,
}

impl Relation {
    fn empty(n: usize) -> Relation {
        Relation {
            targets: vec![Vec::new(); n],
        }
    }

    /// The targets of `v`, in document order.
    pub fn targets(&self, v: NodeId) -> &[NodeId] {
        &self.targets[v.index()]
    }

    /// Whether `(v, u)` is in the relation.
    pub fn contains(&self, v: NodeId, u: NodeId) -> bool {
        self.targets[v.index()].contains(&u)
    }

    /// Total number of pairs.
    pub fn pair_count(&self) -> usize {
        self.targets.iter().map(Vec::len).sum()
    }
}

/// Document-order positions for sorting target lists.
fn doc_positions(h: &Hedge) -> Vec<usize> {
    let mut pos = vec![0usize; h.node_count()];
    for (i, v) in h.dfs().into_iter().enumerate() {
        pos[v.index()] = i;
    }
    pos
}

fn sort_doc(targets: &mut Vec<NodeId>, pos: &[usize]) {
    targets.sort_by_key(|v| pos[v.index()]);
    targets.dedup();
}

/// Computes `⟦α⟧` on the hedge as a full relation.
pub fn all_pairs(h: &Hedge, alpha: &PathExpr) -> Relation {
    let pos = doc_positions(h);
    eval_path(h, alpha, &pos)
}

fn eval_path(h: &Hedge, alpha: &PathExpr, pos: &[usize]) -> Relation {
    let n = h.node_count();
    match alpha {
        PathExpr::Axis(axis) => {
            let mut rel = Relation::empty(n);
            for v in h.dfs() {
                let row = &mut rel.targets[v.index()];
                match axis {
                    Axis::Child => row.extend(h.children(v).iter().copied()),
                    Axis::Parent => row.extend(h.parent(v)),
                    Axis::NextSibling => row.extend(h.next_sibling(v)),
                    Axis::PrevSibling => row.extend(h.prev_sibling(v)),
                }
            }
            rel
        }
        PathExpr::Dot => {
            let mut rel = Relation::empty(n);
            for v in h.dfs() {
                rel.targets[v.index()].push(v);
            }
            rel
        }
        PathExpr::Star(a) => {
            let base = eval_path(h, a, pos);
            let mut rel = Relation::empty(n);
            // BFS closure from each node.
            for v in h.dfs() {
                let mut seen = vec![false; n];
                let mut stack = vec![v];
                seen[v.index()] = true;
                let mut out = vec![v];
                while let Some(u) = stack.pop() {
                    for &w in base.targets(u) {
                        if !seen[w.index()] {
                            seen[w.index()] = true;
                            out.push(w);
                            stack.push(w);
                        }
                    }
                }
                sort_doc(&mut out, pos);
                rel.targets[v.index()] = out;
            }
            rel
        }
        PathExpr::Seq(a, b) => {
            let ra = eval_path(h, a, pos);
            let rb = eval_path(h, b, pos);
            let mut rel = Relation::empty(n);
            for v in h.dfs() {
                let mut out = Vec::new();
                for &mid in ra.targets(v) {
                    out.extend(rb.targets(mid).iter().copied());
                }
                sort_doc(&mut out, pos);
                rel.targets[v.index()] = out;
            }
            rel
        }
        PathExpr::Union(a, b) => {
            let ra = eval_path(h, a, pos);
            let rb = eval_path(h, b, pos);
            let mut rel = Relation::empty(n);
            for v in h.dfs() {
                let mut out = ra.targets(v).to_vec();
                out.extend(rb.targets(v).iter().copied());
                sort_doc(&mut out, pos);
                rel.targets[v.index()] = out;
            }
            rel
        }
        PathExpr::Filter(a, phi) => {
            let ra = eval_path(h, a, pos);
            let sat = eval_node(h, phi, pos);
            let mut rel = Relation::empty(n);
            for v in h.dfs() {
                rel.targets[v.index()] = ra
                    .targets(v)
                    .iter()
                    .copied()
                    .filter(|u| sat[u.index()])
                    .collect();
            }
            rel
        }
    }
}

/// Computes `⟦φ⟧` on the hedge as a boolean per node (dense by node index).
pub fn eval_node_expr(h: &Hedge, phi: &NodeExpr) -> Vec<bool> {
    let pos = doc_positions(h);
    eval_node(h, phi, &pos)
}

fn eval_node(h: &Hedge, phi: &NodeExpr, pos: &[usize]) -> Vec<bool> {
    let n = h.node_count();
    match phi {
        NodeExpr::True => vec![true; n],
        NodeExpr::IsText => {
            let mut out = vec![false; n];
            for v in h.dfs() {
                out[v.index()] = h.is_text(v);
            }
            out
        }
        NodeExpr::Label(s) => {
            let mut out = vec![false; n];
            for v in h.dfs() {
                out[v.index()] = matches!(h.label(v), NodeLabel::Elem(l) if l == s);
            }
            out
        }
        NodeExpr::Has(a) => {
            let ra = eval_path(h, a, pos);
            let mut out = vec![false; n];
            for v in h.dfs() {
                out[v.index()] = !ra.targets(v).is_empty();
            }
            out
        }
        NodeExpr::Not(a) => eval_node(h, a, pos).into_iter().map(|b| !b).collect(),
        NodeExpr::And(a, b) => {
            let ra = eval_node(h, a, pos);
            let rb = eval_node(h, b, pos);
            ra.into_iter().zip(rb).map(|(x, y)| x && y).collect()
        }
    }
}

/// Whether `t ⊨ φ(v)`.
pub fn holds(h: &Hedge, phi: &NodeExpr, v: NodeId) -> bool {
    eval_node_expr(h, phi)[v.index()]
}

/// The nodes `u` with `t ⊨ α(v, u)`, in document order.
pub fn select(h: &Hedge, alpha: &PathExpr, v: NodeId) -> Vec<NodeId> {
    all_pairs(h, alpha).targets(v).to_vec()
}

/// Whether `t ⊨ α(v, u)`.
pub fn selects_pair(h: &Hedge, alpha: &PathExpr, v: NodeId, u: NodeId) -> bool {
    all_pairs(h, alpha).contains(v, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_node_expr, parse_path};
    use tpx_trees::term::parse_tree;
    use tpx_trees::{Alphabet, Tree};

    fn sample() -> (Alphabet, Tree) {
        let mut al = Alphabet::from_labels(["a", "b", "c"]);
        let t = parse_tree(r#"a(b("x") c b(c "y"))"#, &mut al).unwrap();
        (al, t)
    }

    #[test]
    fn axes() {
        let (mut al, t) = sample();
        let root = t.root();
        let kids = t.children(root).to_vec();
        let child = parse_path("child", &mut al).unwrap();
        assert_eq!(select(&t, &child, root), kids);
        let parent = parse_path("parent", &mut al).unwrap();
        assert_eq!(select(&t, &parent, kids[0]), vec![root]);
        let next = parse_path("next", &mut al).unwrap();
        assert_eq!(select(&t, &next, kids[0]), vec![kids[1]]);
        let prev = parse_path("prev", &mut al).unwrap();
        assert_eq!(select(&t, &prev, kids[1]), vec![kids[0]]);
        assert!(select(&t, &prev, kids[0]).is_empty());
    }

    #[test]
    fn descendant_via_star() {
        let (mut al, t) = sample();
        let desc = parse_path("(child)*", &mut al).unwrap();
        let from_root = select(&t, &desc, t.root());
        assert_eq!(from_root.len(), t.node_count()); // includes self
                                                     // Document order.
        let dfs = t.dfs();
        assert_eq!(from_root, dfs);
    }

    #[test]
    fn composition_and_filters() {
        let (mut al, t) = sample();
        // Children labelled b.
        let bkids = parse_path("child[b]", &mut al).unwrap();
        let res = select(&t, &bkids, t.root());
        assert_eq!(res.len(), 2);
        for v in &res {
            assert_eq!(t.label(*v).elem(), Some(al.sym("b")));
        }
        // b-children that have a c-child.
        let with_c = parse_path("child[b & <child[c]>]", &mut al).unwrap();
        let res2 = select(&t, &with_c, t.root());
        assert_eq!(res2.len(), 1);
        // Grandchildren.
        let gc = parse_path("child/child", &mut al).unwrap();
        assert_eq!(select(&t, &gc, t.root()).len(), 3);
    }

    #[test]
    fn union_and_dot() {
        let (mut al, t) = sample();
        let self_or_kids = parse_path(". | child", &mut al).unwrap();
        let res = select(&t, &self_or_kids, t.root());
        assert_eq!(res.len(), 4);
        assert_eq!(res[0], t.root()); // doc order puts self first
    }

    #[test]
    fn node_expressions() {
        let (mut al, t) = sample();
        let phi = parse_node_expr("b & <child[text()]>", &mut al).unwrap();
        let sat = eval_node_expr(&t, &phi);
        let holds_on: Vec<_> = t.dfs().into_iter().filter(|v| sat[v.index()]).collect();
        assert_eq!(holds_on.len(), 2); // both b's have a text child
        let not_b = parse_node_expr("!b & !text()", &mut al).unwrap();
        let sat2 = eval_node_expr(&t, &not_b);
        let count = t.dfs().into_iter().filter(|v| sat2[v.index()]).count();
        assert_eq!(count, 3); // a, c, c
    }

    #[test]
    fn example_5_15_pattern() {
        // recipe ∧ ⟨↓[comments]/↓[positive]/↓[comment]/→[comment]/→[comment]⟩
        let mut al = tpx_trees::samples::recipe_alphabet();
        let phi = parse_node_expr(
            "recipe & <child[comments]/child[positive]/child[comment]/next[comment]/next[comment]>",
            &mut al,
        )
        .unwrap();
        // Tree with 3 positive comments: satisfied.
        let t3 = tpx_trees::samples::recipe_tree_sized(&mut al, 1, 1, 3);
        let recipe_node = t3
            .dfs()
            .into_iter()
            .find(|&v| t3.label(v).elem() == Some(al.sym("recipe")))
            .unwrap();
        assert!(holds(&t3, &phi, recipe_node));
        // Tree with only 2 positive comments: not satisfied.
        let t2 = tpx_trees::samples::recipe_tree_sized(&mut al, 1, 1, 2);
        let recipe_node2 = t2
            .dfs()
            .into_iter()
            .find(|&v| t2.label(v).elem() == Some(al.sym("recipe")))
            .unwrap();
        assert!(!holds(&t2, &phi, recipe_node2));
    }

    #[test]
    fn star_of_compound_path() {
        let (mut al, t) = sample();
        // (child/child)*: even-depth descendants.
        let e = parse_path("(child/child)*", &mut al).unwrap();
        let res = select(&t, &e, t.root());
        // root (depth 1) + grandchildren (depth 3).
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn relation_contains_and_pair_count() {
        let (mut al, t) = sample();
        let child = parse_path("child", &mut al).unwrap();
        let rel = all_pairs(&t, &child);
        assert_eq!(rel.pair_count(), t.node_count() - 1);
        let kids = t.children(t.root());
        assert!(rel.contains(t.root(), kids[0]));
        assert!(!rel.contains(kids[0], t.root()));
    }
}
