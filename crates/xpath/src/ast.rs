//! The Core XPath AST (Definition 5.13).

use std::fmt;
use tpx_trees::{Alphabet, Symbol};

/// The four navigational axes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Axis {
    /// `↓` — child.
    Child,
    /// `↑` — parent.
    Parent,
    /// `→` — next sibling.
    NextSibling,
    /// `←` — previous sibling.
    PrevSibling,
}

/// A path expression denoting a binary relation on nodes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PathExpr {
    /// An axis step `R`.
    Axis(Axis),
    /// Reflexive-transitive closure `α*`.
    Star(Box<PathExpr>),
    /// The identity relation `·`.
    Dot,
    /// Composition `α/β`.
    Seq(Box<PathExpr>, Box<PathExpr>),
    /// Union `α ∪ β`.
    Union(Box<PathExpr>, Box<PathExpr>),
    /// Filter `α[φ]` (targets must satisfy `φ`).
    Filter(Box<PathExpr>, Box<NodeExpr>),
}

/// A node expression denoting a set of nodes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum NodeExpr {
    /// A label test `σ`.
    Label(Symbol),
    /// Path existence `⟨α⟩`.
    Has(Box<PathExpr>),
    /// `⊤`.
    True,
    /// Negation `¬φ`.
    Not(Box<NodeExpr>),
    /// Conjunction `φ ∧ ψ`.
    And(Box<NodeExpr>, Box<NodeExpr>),
    /// Text-node test (extension; see crate docs).
    IsText,
}

impl PathExpr {
    /// `α/β`.
    pub fn then(self, other: PathExpr) -> PathExpr {
        PathExpr::Seq(Box::new(self), Box::new(other))
    }

    /// `α ∪ β`.
    pub fn or(self, other: PathExpr) -> PathExpr {
        PathExpr::Union(Box::new(self), Box::new(other))
    }

    /// `α*`.
    pub fn star(self) -> PathExpr {
        PathExpr::Star(Box::new(self))
    }

    /// `α[φ]`.
    pub fn filter(self, phi: NodeExpr) -> PathExpr {
        PathExpr::Filter(Box::new(self), Box::new(phi))
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            PathExpr::Axis(_) | PathExpr::Dot => 1,
            PathExpr::Star(a) => 1 + a.size(),
            PathExpr::Seq(a, b) | PathExpr::Union(a, b) => 1 + a.size() + b.size(),
            PathExpr::Filter(a, p) => 1 + a.size() + p.size(),
        }
    }

    /// Renders in the concrete syntax with label names from `alpha`.
    pub fn display<'a>(&'a self, alpha: &'a Alphabet) -> impl fmt::Display + 'a {
        DisplayPath { e: self, alpha }
    }
}

impl NodeExpr {
    /// `φ ∧ ψ`.
    pub fn and(self, other: NodeExpr) -> NodeExpr {
        NodeExpr::And(Box::new(self), Box::new(other))
    }

    /// `¬φ`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> NodeExpr {
        NodeExpr::Not(Box::new(self))
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            NodeExpr::Label(_) | NodeExpr::True | NodeExpr::IsText => 1,
            NodeExpr::Has(a) => 1 + a.size(),
            NodeExpr::Not(a) => 1 + a.size(),
            NodeExpr::And(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Renders in the concrete syntax with label names from `alpha`.
    pub fn display<'a>(&'a self, alpha: &'a Alphabet) -> impl fmt::Display + 'a {
        DisplayNode { e: self, alpha }
    }
}

struct DisplayPath<'a> {
    e: &'a PathExpr,
    alpha: &'a Alphabet,
}

impl fmt::Display for DisplayPath<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_path(self.e, self.alpha, f)
    }
}

struct DisplayNode<'a> {
    e: &'a NodeExpr,
    alpha: &'a Alphabet,
}

impl fmt::Display for DisplayNode<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_node(self.e, self.alpha, f)
    }
}

fn write_path(e: &PathExpr, alpha: &Alphabet, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        PathExpr::Axis(Axis::Child) => write!(f, "child"),
        PathExpr::Axis(Axis::Parent) => write!(f, "parent"),
        PathExpr::Axis(Axis::NextSibling) => write!(f, "next"),
        PathExpr::Axis(Axis::PrevSibling) => write!(f, "prev"),
        PathExpr::Dot => write!(f, "."),
        PathExpr::Star(a) => {
            write!(f, "(")?;
            write_path(a, alpha, f)?;
            write!(f, ")*")
        }
        PathExpr::Seq(a, b) => {
            write_path(a, alpha, f)?;
            write!(f, "/")?;
            write_path(b, alpha, f)
        }
        PathExpr::Union(a, b) => {
            write!(f, "(")?;
            write_path(a, alpha, f)?;
            write!(f, " | ")?;
            write_path(b, alpha, f)?;
            write!(f, ")")
        }
        PathExpr::Filter(a, p) => {
            write_path(a, alpha, f)?;
            write!(f, "[")?;
            write_node(p, alpha, f)?;
            write!(f, "]")
        }
    }
}

fn write_node(e: &NodeExpr, alpha: &Alphabet, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        NodeExpr::Label(s) => write!(f, "{}", alpha.name(*s)),
        NodeExpr::True => write!(f, "true"),
        NodeExpr::IsText => write!(f, "text()"),
        NodeExpr::Has(a) => {
            write!(f, "<")?;
            write_path(a, alpha, f)?;
            write!(f, ">")
        }
        NodeExpr::Not(a) => {
            write!(f, "!(")?;
            write_node(a, alpha, f)?;
            write!(f, ")")
        }
        NodeExpr::And(a, b) => {
            write!(f, "(")?;
            write_node(a, alpha, f)?;
            write!(f, " & ")?;
            write_node(b, alpha, f)?;
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let a = PathExpr::Axis(Axis::Child)
            .filter(NodeExpr::True)
            .then(PathExpr::Axis(Axis::NextSibling).star());
        assert_eq!(a.size(), 6);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let mut al = Alphabet::from_labels(["a", "b"]);
        let src = "child[a & <next[b]>]/(next)*";
        let e = crate::parser::parse_path(src, &mut al).unwrap();
        let printed = format!("{}", e.display(&al));
        let back = crate::parser::parse_path(&printed, &mut al).unwrap();
        assert_eq!(e, back);
    }
}
