//! # `tpx-xpath`: Core XPath (Definition 5.13, Table 1)
//!
//! Node and path expressions of Core XPath, with the exact semantics of
//! Table 1 of the paper:
//!
//! ```text
//! Path expressions:  α ::= R | R* | · | α/β | α ∪ β | α[φ]
//! Node expressions:  φ ::= σ | ⟨α⟩ | ⊤ | ¬φ | φ ∧ ψ
//! ```
//!
//! with `R` one of the axes `child (↓)`, `parent (↑)`, `next-sibling (→)`,
//! `previous-sibling (←)`.
//!
//! Concrete syntax used by [`parse_path`] / [`parse_node_expr`]:
//!
//! ```text
//! α ::= child | parent | next | prev          axes
//!     | .                                     self (·)
//!     | α*                                    reflexive-transitive closure
//!     | α/β | α | β                           composition / union ("|")
//!     | α[φ]                                  filter
//!     | (α)
//! φ ::= ident                                 label test σ
//!     | <α>                                   ⟨α⟩ (path existence)
//!     | true                                  ⊤
//!     | text()                                text-node test (extension)
//!     | !φ | φ & ψ | (φ)
//! ```
//!
//! Note: the paper only defines `R*` for axes; this crate allows `α*` for
//! any path expression (a conservative generalization — the deciders only
//! rely on Core XPath being MSO-definable, which is preserved).
//!
//! The `text()` node test is an extension needed so DTL patterns can select
//! or avoid text nodes explicitly; it is MSO-definable and does not affect
//! any complexity result.

pub mod ast;
pub mod eval;
pub mod parser;

pub use ast::{Axis, NodeExpr, PathExpr};
pub use eval::{all_pairs, eval_node_expr, holds, select, selects_pair, Relation};
pub use parser::{parse_node_expr, parse_path, XPathParseError};
