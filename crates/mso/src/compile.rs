//! The Thatcher–Wright compiler: MSO formulas → bottom-up tree automata
//! over marked encodings.
//!
//! `compile(φ, ctx, n_symbols)` produces an automaton over
//! `(Σ ⊎ {text}) × 2^|ctx|` accepting exactly the marked encodings of trees
//! `t` with valuations `ν` (singleton marks for FO variables, arbitrary
//! marks for SO variables) such that `t ⊨ φ[ν]`.
//!
//! Recipe (per the classical construction):
//! * atomic formulas: the hand-coded automata of [`crate::atomic`];
//! * `∧` / `∨`: product / union (+ trim);
//! * `¬`: pushed toward the atoms first (double negation, De Morgan,
//!   quantifier duality), so only irreducibly negated subformulas pay the
//!   determinize–complement–trim route — the source of the non-elementary
//!   worst case;
//! * `∃x`: intersect with the singleton guard for `x`, then project the
//!   bit away; `∃X`: project directly; `∀` is `¬∃¬`.

pub use crate::atomic::MSym;
use crate::atomic::{self};
use crate::formula::{Formula, SetVar, Var};
use std::collections::HashMap;
use std::fmt;
use tpx_treeauto::{EncSym, Nbta, RankedTree};
use tpx_trees::budget::{BudgetExceeded, BudgetHandle};
use tpx_trees::{Hedge, NodeId, Tree};

/// Why a compilation failed: a malformed query (free variable missing from
/// the context) or an exhausted resource budget.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// `φ` mentions a variable the caller's context does not bind.
    UnboundVariable {
        /// The offending variable.
        var: VarKey,
        /// The context it was looked up in.
        ctx: Vec<VarKey>,
    },
    /// The budget ran out mid-compilation.
    Budget(BudgetExceeded),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnboundVariable { var, ctx } => {
                write!(f, "variable {var:?} not in context {ctx:?}")
            }
            CompileError::Budget(b) => write!(f, "mso compilation {b}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<BudgetExceeded> for CompileError {
    fn from(b: BudgetExceeded) -> Self {
        CompileError::Budget(b)
    }
}

/// A memoization cache for [`compile`]: large deciders (Section 5.3)
/// instantiate the same reachability subformulas for many state pairs, and
/// compilation is by far the dominant cost.
#[derive(Default)]
pub struct CompileCache {
    map: HashMap<(Formula, Vec<VarKey>, usize), Nbta<MSym>>,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached automata.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// [`compile`] with memoization on every recursive step.
pub fn compile_cached(
    phi: &Formula,
    ctx: &[VarKey],
    n_symbols: usize,
    cache: &mut CompileCache,
) -> Nbta<MSym> {
    try_compile_cached(phi, ctx, n_symbols, cache, &BudgetHandle::unlimited())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Budgeted [`compile_cached`]: only successful compilations are memoized,
/// so a budget-aborted compilation can be retried with a larger budget.
pub fn try_compile_cached(
    phi: &Formula,
    ctx: &[VarKey],
    n_symbols: usize,
    cache: &mut CompileCache,
    budget: &BudgetHandle,
) -> Result<Nbta<MSym>, CompileError> {
    let key = (phi.clone(), ctx.to_vec(), n_symbols);
    if let Some(hit) = cache.map.get(&key) {
        return Ok(hit.clone());
    }
    let result = compile_inner(phi, ctx, n_symbols, &mut Some(cache), budget)?;
    cache.map.insert(key, result.clone());
    Ok(result)
}

/// A context entry: a free variable with its bit position given by its
/// index in the context slice.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VarKey {
    /// A first-order variable.
    Fo(Var),
    /// A second-order variable.
    So(SetVar),
}

/// The bit position of `k` in `ctx`, or an [`CompileError::UnboundVariable`]
/// naming the variable and the context it was missing from.
fn bit_of(ctx: &[VarKey], k: VarKey) -> Result<usize, CompileError> {
    ctx.iter()
        .position(|&c| c == k)
        .ok_or_else(|| CompileError::UnboundVariable {
            var: k,
            ctx: ctx.to_vec(),
        })
}

/// Compiles `φ` against the given context (which must contain all free
/// variables of `φ`).
pub fn compile(phi: &Formula, ctx: &[VarKey], n_symbols: usize) -> Nbta<MSym> {
    try_compile(phi, ctx, n_symbols, &BudgetHandle::unlimited()).unwrap_or_else(|e| panic!("{e}"))
}

/// Budgeted, fallible [`compile`].
pub fn try_compile(
    phi: &Formula,
    ctx: &[VarKey],
    n_symbols: usize,
    budget: &BudgetHandle,
) -> Result<Nbta<MSym>, CompileError> {
    compile_inner(phi, ctx, n_symbols, &mut None, budget)
}

fn rec(
    phi: &Formula,
    ctx: &[VarKey],
    n_symbols: usize,
    cache: &mut Option<&mut CompileCache>,
    budget: &BudgetHandle,
) -> Result<Nbta<MSym>, CompileError> {
    match cache {
        Some(c) => try_compile_cached(phi, ctx, n_symbols, c, budget),
        None => compile_inner(phi, ctx, n_symbols, &mut None, budget),
    }
}

fn compile_inner(
    phi: &Formula,
    ctx: &[VarKey],
    n_symbols: usize,
    cache: &mut Option<&mut CompileCache>,
    budget: &BudgetHandle,
) -> Result<Nbta<MSym>, CompileError> {
    budget.charge(1)?;
    let w = ctx.len();
    Ok(match phi {
        Formula::True => atomic::true_auto(n_symbols, w),
        Formula::False => atomic::false_auto(n_symbols, w),
        Formula::Child(x, y) => atomic::child(
            n_symbols,
            w,
            bit_of(ctx, VarKey::Fo(*x))?,
            bit_of(ctx, VarKey::Fo(*y))?,
        ),
        Formula::NextSib(x, y) => atomic::next_sib(
            n_symbols,
            w,
            bit_of(ctx, VarKey::Fo(*x))?,
            bit_of(ctx, VarKey::Fo(*y))?,
        ),
        Formula::SibLess(x, y) => atomic::sib_less(
            n_symbols,
            w,
            bit_of(ctx, VarKey::Fo(*x))?,
            bit_of(ctx, VarKey::Fo(*y))?,
        ),
        Formula::Descendant(x, y) => atomic::descendant(
            n_symbols,
            w,
            bit_of(ctx, VarKey::Fo(*x))?,
            bit_of(ctx, VarKey::Fo(*y))?,
        ),
        Formula::Lab(s, x) => atomic::label_is(n_symbols, w, bit_of(ctx, VarKey::Fo(*x))?, *s),
        Formula::IsText(x) => atomic::is_text(n_symbols, w, bit_of(ctx, VarKey::Fo(*x))?),
        Formula::Eq(x, y) => atomic::eq(
            n_symbols,
            w,
            bit_of(ctx, VarKey::Fo(*x))?,
            bit_of(ctx, VarKey::Fo(*y))?,
        ),
        Formula::Root(x) => atomic::root_marked(n_symbols, w, bit_of(ctx, VarKey::Fo(*x))?),
        Formula::In(x, s) => atomic::in_set(
            n_symbols,
            w,
            bit_of(ctx, VarKey::Fo(*x))?,
            bit_of(ctx, VarKey::So(*s))?,
        ),
        Formula::And(a, b) => {
            let aa = rec(a, ctx, n_symbols, cache, budget)?;
            let bb = rec(b, ctx, n_symbols, cache, budget)?;
            aa.try_intersect(&bb, budget)?.try_trim(budget)?
        }
        Formula::Or(a, b) => {
            let aa = rec(a, ctx, n_symbols, cache, budget)?;
            let bb = rec(b, ctx, n_symbols, cache, budget)?;
            aa.union(&bb).try_trim(budget)?
        }
        Formula::Not(a) => match pushed_negation(a) {
            // Negation stays symbolic where the formula shape allows: De
            // Morgan / double-negation / quantifier duality move the `¬`
            // toward the atoms, so only irreducibly negated subformulas
            // ever pay for the subset construction.
            Some(simpler) => rec(&simpler, ctx, n_symbols, cache, budget)?,
            None => complement(&rec(a, ctx, n_symbols, cache, budget)?, budget)?,
        },
        Formula::ExistsFo(v, a) => {
            let inner = extend_ctx(ctx, VarKey::Fo(*v));
            let body = rec(a, &inner, n_symbols, cache, budget)?;
            let guarded = body
                .try_intersect(
                    &atomic::singleton(n_symbols, inner.len(), ctx.len()),
                    budget,
                )?
                .try_trim(budget)?;
            project_last_bit(&guarded, n_symbols, ctx.len(), budget)?
        }
        Formula::ExistsSo(v, a) => {
            let inner = extend_ctx(ctx, VarKey::So(*v));
            let body = rec(a, &inner, n_symbols, cache, budget)?;
            project_last_bit(&body.try_trim(budget)?, n_symbols, ctx.len(), budget)?
        }
        Formula::ForallFo(v, a) => {
            // ∀x φ = ¬∃x ¬φ.
            let neg = Formula::ExistsFo(*v, Box::new(a.clone().not()));
            complement(&rec(&neg, ctx, n_symbols, cache, budget)?, budget)?
        }
        Formula::ForallSo(v, a) => {
            let neg = Formula::ExistsSo(*v, Box::new(a.clone().not()));
            complement(&rec(&neg, ctx, n_symbols, cache, budget)?, budget)?
        }
    })
}

/// One step of negation pushing: `¬φ` rewritten to an equivalent formula
/// with the negation strictly closer to the atoms, or `None` when `φ` is
/// an atom or an existential (where a single complement is the plan).
/// The compiler's recursion applies this incrementally, so chains like
/// `¬¬¬(α ∧ ∀x β)` dissolve without a separate normalization pass.
fn pushed_negation(phi: &Formula) -> Option<Formula> {
    Some(match phi {
        Formula::True => Formula::False,
        Formula::False => Formula::True,
        Formula::Not(a) => (**a).clone(),
        Formula::And(a, b) => Formula::Or(
            Box::new(Formula::Not(a.clone())),
            Box::new(Formula::Not(b.clone())),
        ),
        Formula::Or(a, b) => Formula::And(
            Box::new(Formula::Not(a.clone())),
            Box::new(Formula::Not(b.clone())),
        ),
        Formula::ForallFo(v, a) => Formula::ExistsFo(*v, Box::new(Formula::Not(a.clone()))),
        Formula::ForallSo(v, a) => Formula::ExistsSo(*v, Box::new(Formula::Not(a.clone()))),
        _ => return None,
    })
}

fn extend_ctx(ctx: &[VarKey], k: VarKey) -> Vec<VarKey> {
    assert!(
        !ctx.contains(&k),
        "variable shadowing is not supported: {k:?} already in scope"
    );
    let mut v = ctx.to_vec();
    v.push(k);
    v
}

fn complement(a: &Nbta<MSym>, budget: &BudgetHandle) -> Result<Nbta<MSym>, BudgetExceeded> {
    a.try_determinize(budget)?
        .complement()
        .to_nbta()
        .try_trim(budget)
}

/// Drops the highest bit (the variable at position `width`, i.e. the last
/// of `width + 1` bits): existential projection.
fn project_last_bit(
    a: &Nbta<MSym>,
    n_symbols: usize,
    width: usize,
    budget: &BudgetHandle,
) -> Result<Nbta<MSym>, BudgetExceeded> {
    let mask = (1u64 << width) - 1;
    let projected = a.map_symbols(|s| MSym {
        label: s.label,
        bits: s.bits & mask,
    });
    // map_symbols derives alphabets from the source; normalize to the
    // canonical alphabets for this width.
    rebuild_alphabets(&projected, n_symbols, width, budget)?.try_trim(budget)
}

/// Rebuilds `a` with the canonical alphabets for `width` bits (languages
/// are unchanged; rule sets are already over a subset of these symbols).
fn rebuild_alphabets(
    a: &Nbta<MSym>,
    n_symbols: usize,
    width: usize,
    budget: &BudgetHandle,
) -> Result<Nbta<MSym>, BudgetExceeded> {
    let mut out = Nbta::new(
        atomic::leaf_alphabet(),
        atomic::internal_alphabet(n_symbols, width),
    );
    for _ in 0..a.state_count() {
        out.add_state();
    }
    for q in a.states() {
        out.set_final(q, a.is_final(q));
    }
    for l in a.leaf_alphabet() {
        for &q in a.leaf_states(l) {
            out.add_leaf_rule(*l, q);
        }
    }
    for l in a.internal_alphabet() {
        for q1 in a.states() {
            budget.charge(a.state_count() as u64)?;
            for q2 in a.states() {
                for &q in a.rule_states(l, q1, q2) {
                    out.add_rule(*l, q1, q2, q);
                }
            }
        }
    }
    Ok(out)
}

/// Compiles a sentence (no free variables) to an automaton over plain
/// encoding symbols: the regular language `{ t : t ⊨ φ }`.
pub fn compile_sentence(phi: &Formula, n_symbols: usize) -> Nbta<EncSym> {
    let (fo, so) = phi.free_vars();
    assert!(
        fo.is_empty() && so.is_empty(),
        "compile_sentence requires a closed formula"
    );
    let a = compile(phi, &[], n_symbols);
    strip_bits(&a, n_symbols)
}

/// As [`compile_sentence`], but with memoization across calls.
pub fn compile_sentence_cached(
    phi: &Formula,
    n_symbols: usize,
    cache: &mut CompileCache,
) -> Nbta<EncSym> {
    try_compile_sentence_cached(phi, n_symbols, cache, &BudgetHandle::unlimited())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Budgeted [`compile_sentence_cached`].
pub fn try_compile_sentence_cached(
    phi: &Formula,
    n_symbols: usize,
    cache: &mut CompileCache,
    budget: &BudgetHandle,
) -> Result<Nbta<EncSym>, CompileError> {
    let (fo, so) = phi.free_vars();
    assert!(
        fo.is_empty() && so.is_empty(),
        "compile_sentence requires a closed formula"
    );
    let a = try_compile_cached(phi, &[], n_symbols, cache, budget)?;
    Ok(try_strip_bits(&a, n_symbols, budget)?)
}

/// Converts a zero-bit marked automaton into one over plain encoding
/// symbols.
pub fn strip_bits(a: &Nbta<MSym>, n_symbols: usize) -> Nbta<EncSym> {
    try_strip_bits(a, n_symbols, &BudgetHandle::unlimited()).expect("unlimited budget")
}

/// Budgeted [`strip_bits`].
pub fn try_strip_bits(
    a: &Nbta<MSym>,
    n_symbols: usize,
    budget: &BudgetHandle,
) -> Result<Nbta<EncSym>, BudgetExceeded> {
    let mut out = Nbta::new(
        vec![EncSym::Nil],
        tpx_treeauto::convert::enc_internal_alphabet(n_symbols),
    );
    for _ in 0..a.state_count() {
        out.add_state();
    }
    for q in a.states() {
        out.set_final(q, a.is_final(q));
    }
    for l in a.leaf_alphabet() {
        for &q in a.leaf_states(l) {
            out.add_leaf_rule(l.label, q);
        }
    }
    for l in a.internal_alphabet() {
        for q1 in a.states() {
            budget.charge(a.state_count() as u64)?;
            for q2 in a.states() {
                for &q in a.rule_states(l, q1, q2) {
                    out.add_rule(l.label, q1, q2, q);
                }
            }
        }
    }
    out.try_trim(budget)
}

/// Re-embeds an automaton compiled at a narrow context into a wider one:
/// bit `i` of `a` is read from position `positions[i]` of the target
/// context; all other target bits are ignored. No determinization — this is
/// plain cylindrification, the cheap way to compose independently compiled
/// components (the paper's product constructions over `Σ_mark`).
pub fn lift(a: &Nbta<MSym>, n_symbols: usize, positions: &[usize], to_width: usize) -> Nbta<MSym> {
    for &p in positions {
        assert!(p < to_width);
    }
    a.inverse_map(
        atomic::leaf_alphabet(),
        atomic::internal_alphabet(n_symbols, to_width),
        |m: &MSym| {
            let mut bits = 0u64;
            for (i, &p) in positions.iter().enumerate() {
                if m.bits & (1 << p) != 0 {
                    bits |= 1 << i;
                }
            }
            MSym {
                label: m.label,
                bits,
            }
        },
    )
}

/// Existentially projects the *last* bit of a width-`width + 1` automaton,
/// guarding it as a singleton when `fo` is true (first-order variables).
/// No determinization: projection of a nondeterministic automaton is a
/// relabelling.
pub fn project_bit(a: &Nbta<MSym>, n_symbols: usize, width: usize, fo: bool) -> Nbta<MSym> {
    try_project_bit(a, n_symbols, width, fo, &BudgetHandle::unlimited()).expect("unlimited budget")
}

/// Budgeted [`project_bit`].
pub fn try_project_bit(
    a: &Nbta<MSym>,
    n_symbols: usize,
    width: usize,
    fo: bool,
    budget: &BudgetHandle,
) -> Result<Nbta<MSym>, BudgetExceeded> {
    let guarded = if fo {
        a.try_intersect(&atomic::singleton(n_symbols, width + 1, width), budget)?
            .try_trim(budget)?
    } else {
        a.try_trim(budget)?
    };
    project_last_bit(&guarded, n_symbols, width, budget)
}

/// The marked encoding of a tree under an assignment: bit `i` set exactly
/// on the binary node encoding the assigned node(s) of `ctx[i]`.
pub fn marked_encoding(
    t: &Tree,
    ctx: &[VarKey],
    asg: &crate::eval::Assignment,
) -> RankedTree<MSym> {
    marked_encoding_hedge(t.as_hedge(), ctx, asg)
}

/// Hedge variant of [`marked_encoding`].
pub fn marked_encoding_hedge(
    h: &Hedge,
    ctx: &[VarKey],
    asg: &crate::eval::Assignment,
) -> RankedTree<MSym> {
    let bt = tpx_trees::encode_hedge(h);
    let bits_for = |src: Option<NodeId>| -> u64 {
        let Some(node) = src else { return 0 };
        let mut bits = 0u64;
        for (i, k) in ctx.iter().enumerate() {
            let marked = match k {
                VarKey::Fo(v) => asg.fo.get(v) == Some(&node),
                VarKey::So(s) => asg.so.get(s).is_some_and(|set| set.contains(&node)),
            };
            if marked {
                bits |= 1 << i;
            }
        }
        bits
    };
    build_marked(&bt, bt.root(), &bits_for)
}

fn build_marked(
    bt: &tpx_trees::BinTree,
    v: tpx_trees::BinNodeId,
    bits_for: &impl Fn(Option<NodeId>) -> u64,
) -> RankedTree<MSym> {
    let label = match bt.label(v) {
        tpx_trees::BinLabel::Elem(s) => EncSym::Elem(*s),
        tpx_trees::BinLabel::Text(_) => EncSym::Text,
        tpx_trees::BinLabel::Nil => EncSym::Nil,
    };
    let sym = MSym {
        label,
        bits: bits_for(bt.source(v)),
    };
    match bt.kids(v) {
        None => RankedTree::Leaf(sym),
        Some((l, r)) => RankedTree::node(
            sym,
            build_marked(bt, l, bits_for),
            build_marked(bt, r, bits_for),
        ),
    }
}

/// Convenience: model checking through the compiled automaton (used to
/// validate the compiler against [`crate::eval::naive_eval`]).
pub fn compiled_eval(
    t: &Tree,
    phi: &Formula,
    ctx: &[VarKey],
    asg: &crate::eval::Assignment,
    n_symbols: usize,
) -> bool {
    let a = compile(phi, ctx, n_symbols);
    // Free FO variables must be singleton-marked for the automaton route to
    // coincide with the logical semantics; the assignment guarantees it.
    a.accepts(&marked_encoding(t, ctx, asg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{naive_eval, Assignment};
    use crate::formula::{derived, VarGen};
    use tpx_trees::term::parse_tree;
    use tpx_trees::Alphabet;

    fn alpha() -> Alphabet {
        Alphabet::from_labels(["a", "b"])
    }

    const SAMPLES: [&str; 6] = [
        "a",
        r#"a("x")"#,
        "a(b)",
        r#"a(b("x") b)"#,
        "a(b(a) a)",
        r#"b(a "y" a(b))"#,
    ];

    /// Checks compiler vs naive evaluator on all samples, all assignments of
    /// the (≤ 2) FO variables.
    fn agree_binary(phi_name: &str, mk: impl Fn(Var, Var) -> Formula) {
        let (x, y) = (Var(0), Var(1));
        let phi = mk(x, y);
        let ctx = [VarKey::Fo(x), VarKey::Fo(y)];
        for src in SAMPLES {
            let mut al = alpha();
            let t = parse_tree(src, &mut al).unwrap();
            let a = compile(&phi, &ctx, al.len());
            for &n1 in &t.dfs() {
                for &n2 in &t.dfs() {
                    let asg = Assignment::new().bind(x, n1).bind(y, n2);
                    let expect = naive_eval(&t, &phi, &asg);
                    let got = a.accepts(&marked_encoding(&t, &ctx, &asg));
                    assert_eq!(got, expect, "{phi_name} on {src} at {n1:?},{n2:?}");
                }
            }
        }
    }

    #[test]
    fn atomic_child_agrees() {
        agree_binary("child", Formula::Child);
    }

    #[test]
    fn atomic_next_sib_agrees() {
        agree_binary("next_sib", Formula::NextSib);
    }

    #[test]
    fn atomic_sib_less_agrees() {
        agree_binary("sib_less", Formula::SibLess);
    }

    #[test]
    fn atomic_descendant_agrees() {
        agree_binary("descendant", Formula::Descendant);
    }

    #[test]
    fn atomic_eq_agrees() {
        agree_binary("eq", Formula::Eq);
    }

    #[test]
    fn atomic_unary_agree() {
        let x = Var(0);
        let al = alpha();
        let formulas = [
            ("lab_a", Formula::Lab(al.sym("a"), x)),
            ("lab_b", Formula::Lab(al.sym("b"), x)),
            ("istext", Formula::IsText(x)),
            ("root", Formula::Root(x)),
        ];
        let ctx = [VarKey::Fo(x)];
        for (name, phi) in &formulas {
            for src in SAMPLES {
                let mut al = alpha();
                let t = parse_tree(src, &mut al).unwrap();
                let a = compile(phi, &ctx, al.len());
                for &n in &t.dfs() {
                    let asg = Assignment::new().bind(x, n);
                    let expect = naive_eval(&t, phi, &asg);
                    let got = a.accepts(&marked_encoding(&t, &ctx, &asg));
                    assert_eq!(got, expect, "{name} on {src} at {n:?}");
                }
            }
        }
    }

    #[test]
    fn boolean_connectives_agree() {
        let (x, y) = (Var(0), Var(1));
        agree_binary("child∧¬eq", |x, y| {
            Formula::Child(x, y).and(Formula::Eq(x, y).not())
        });
        agree_binary("sibless∨child", |x, y| {
            Formula::SibLess(x, y).or(Formula::Child(x, y))
        });
        let _ = (x, y);
    }

    #[test]
    fn sentences_with_quantifiers() {
        let mut al = alpha();
        let mut g = VarGen::new();
        let x = g.var();
        // ∃x lab_b(x): trees containing a b-node.
        let phi = Formula::exists(x, Formula::Lab(al.sym("b"), x));
        let a = compile_sentence(&phi, al.len());
        for (src, expect) in [
            ("a", false),
            ("a(b)", true),
            (r#"a("t")"#, false),
            ("b", true),
            ("a(a(a(b)))", true),
        ] {
            let t = parse_tree(src, &mut al).unwrap();
            let enc = tpx_treeauto::convert::encode_for_automata(&t);
            assert_eq!(a.accepts(&enc), expect, "{src}");
        }
    }

    #[test]
    fn forall_fo_sentence() {
        let mut al = alpha();
        let mut g = VarGen::new();
        let x = g.var();
        // ∀x (text(x) ∨ lab_a(x) ∨ lab_b(x)): trivially true.
        let phi = Formula::forall(
            x,
            Formula::IsText(x)
                .or(Formula::Lab(al.sym("a"), x))
                .or(Formula::Lab(al.sym("b"), x)),
        );
        let a = compile_sentence(&phi, al.len());
        let t = parse_tree(r#"a(b "x")"#, &mut al).unwrap();
        assert!(a.accepts(&tpx_treeauto::convert::encode_for_automata(&t)));
        // ∀x lab_a(x): only pure-a trees.
        let y = g.var();
        let phi2 = Formula::forall(y, Formula::Lab(al.sym("a"), y));
        let a2 = compile_sentence(&phi2, al.len());
        let pure = parse_tree("a(a a)", &mut al).unwrap();
        let mixed = parse_tree("a(b)", &mut al).unwrap();
        assert!(a2.accepts(&tpx_treeauto::convert::encode_for_automata(&pure)));
        assert!(!a2.accepts(&tpx_treeauto::convert::encode_for_automata(&mixed)));
    }

    #[test]
    fn set_quantifier_reachability_agrees_with_descendant() {
        // reach(x, y) via ∀Z closure = descendant-or-self(x, y).
        let mut g = VarGen::new();
        let (x, y) = (g.var(), g.var());
        let z = g.set_var();
        let (u, v) = (g.var(), g.var());
        let closed = Formula::forall(
            u,
            Formula::forall(
                v,
                Formula::In(u, z)
                    .and(Formula::Child(u, v))
                    .implies(Formula::In(v, z)),
            ),
        );
        let reach =
            Formula::forall_set(z, Formula::In(x, z).and(closed).implies(Formula::In(y, z)));
        let dos = derived::descendant_or_self(x, y);
        let ctx = [VarKey::Fo(x), VarKey::Fo(y)];
        let mut al = alpha();
        let t = parse_tree(r#"a(b("t") a)"#, &mut al).unwrap();
        let a_reach = compile(&reach, &ctx, al.len());
        let a_dos = compile(&dos, &ctx, al.len());
        for &n1 in &t.dfs() {
            for &n2 in &t.dfs() {
                let asg = Assignment::new().bind(x, n1).bind(y, n2);
                let enc = marked_encoding(&t, &ctx, &asg);
                assert_eq!(a_reach.accepts(&enc), a_dos.accepts(&enc), "{n1:?} {n2:?}");
            }
        }
    }

    #[test]
    fn lift_and_project_compose_like_quantifiers() {
        // ∃y child(x, y) computed two ways: through the compiler, and
        // manually via lift + singleton-guarded projection.
        let (x, y) = (Var(0), Var(1));
        let mut al = alpha();
        let n = al.len();
        let child = compile(&Formula::Child(x, y), &[VarKey::Fo(x), VarKey::Fo(y)], n);
        // Manual route: child is already at ctx [x, y]; project bit 1.
        let manual = crate::compile::project_bit(&child, n, 1, true);
        let via_compiler = compile(
            &Formula::exists(y, Formula::Child(x, y)),
            &[VarKey::Fo(x)],
            n,
        );
        let t = parse_tree(r#"a(b "t") "#.trim(), &mut al).unwrap();
        let ctx = [VarKey::Fo(x)];
        for &v in &t.dfs() {
            let asg = Assignment::new().bind(x, v);
            let enc = marked_encoding(&t, &ctx, &asg);
            assert_eq!(manual.accepts(&enc), via_compiler.accepts(&enc), "{v:?}");
            assert_eq!(via_compiler.accepts(&enc), !t.children(v).is_empty());
        }
    }

    #[test]
    fn lift_reorders_bits_correctly() {
        // child(x, y) lifted into a 3-marker context with x ↦ bit 2 and
        // y ↦ bit 0 must test the relation between those markers.
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let mut al = alpha();
        let n = al.len();
        let child = compile(&Formula::Child(x, y), &[VarKey::Fo(x), VarKey::Fo(y)], n);
        let lifted = crate::compile::lift(&child, n, &[2, 0], 3);
        // Equivalent formula at the wide context: Child(z, x) with ctx
        // [x, y, z] — bit 2 is z (source), bit 0 is x (target).
        let direct = compile(
            &Formula::Child(z, x),
            &[VarKey::Fo(x), VarKey::Fo(y), VarKey::Fo(z)],
            n,
        );
        let t = parse_tree("a(b(a) a)", &mut al).unwrap();
        let ctx = [VarKey::Fo(x), VarKey::Fo(y), VarKey::Fo(z)];
        for &n1 in &t.dfs() {
            for &n2 in &t.dfs() {
                for &n3 in &t.dfs() {
                    let asg = Assignment::new().bind(x, n1).bind(y, n2).bind(z, n3);
                    let enc = marked_encoding(&t, &ctx, &asg);
                    assert_eq!(
                        lifted.accepts(&enc),
                        direct.accepts(&enc),
                        "{n1:?} {n2:?} {n3:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn doc_before_compiles_correctly() {
        let mut g = VarGen::new();
        let (x, y) = (g.var(), g.var());
        let phi = derived::doc_before(x, y, &mut g);
        let ctx = [VarKey::Fo(x), VarKey::Fo(y)];
        let mut al = alpha();
        let t = parse_tree(r#"a(b("s") a(b) "t")"#, &mut al).unwrap();
        let a = compile(&phi, &ctx, al.len());
        for &n1 in &t.dfs() {
            for &n2 in &t.dfs() {
                let expect = t.doc_cmp(n1, n2) == std::cmp::Ordering::Less;
                let asg = Assignment::new().bind(x, n1).bind(y, n2);
                assert_eq!(
                    a.accepts(&marked_encoding(&t, &ctx, &asg)),
                    expect,
                    "{n1:?} {n2:?}"
                );
            }
        }
    }
}
