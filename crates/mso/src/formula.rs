//! MSO formulas over the paper's tree vocabulary.
//!
//! Atomic relations (Section 5.3): `E(x, y)` (child), `x < y` (sibling
//! order), `lab_σ(x)`, plus equality and set membership. This crate also
//! treats *next sibling*, *proper descendant* and *transitive sibling
//! order* as atomic — all three are MSO-definable from the paper's
//! vocabulary, but keeping them atomic lets the compiler use small
//! hand-coded automata instead of set quantification (see
//! [`crate::atomic`]).

use std::collections::BTreeSet;
use std::fmt;
use tpx_trees::Symbol;

/// A first-order variable (ranges over nodes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

/// A second-order variable (ranges over node sets).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetVar(pub u32);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for SetVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// A fresh-variable generator, shared by derived-formula constructors.
#[derive(Clone, Debug, Default)]
pub struct VarGen {
    next_fo: u32,
    next_so: u32,
}

impl VarGen {
    /// A generator whose variables start above any in use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh first-order variable.
    pub fn var(&mut self) -> Var {
        self.next_fo += 1;
        Var(self.next_fo - 1)
    }

    /// A fresh second-order variable.
    pub fn set_var(&mut self) -> SetVar {
        self.next_so += 1;
        SetVar(self.next_so - 1)
    }

    /// Reserves ids so fresh variables never collide with `v`.
    pub fn reserve(&mut self, v: Var) {
        self.next_fo = self.next_fo.max(v.0 + 1);
    }

    /// Reserves ids so fresh set variables never collide with `v`.
    pub fn reserve_set(&mut self, v: SetVar) {
        self.next_so = self.next_so.max(v.0 + 1);
    }
}

/// An MSO formula. Constructors below keep the usual precedence readable.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// `⊤`.
    True,
    /// `⊥`.
    False,
    /// `E(x, y)`: `y` is a child of `x`.
    Child(Var, Var),
    /// `y` is the immediate next sibling of `x` (atomic for the compiler).
    NextSib(Var, Var),
    /// `x < y`: same parent, `x` strictly before `y` (the paper's sibling
    /// order; transitive).
    SibLess(Var, Var),
    /// `y` is a proper descendant of `x` (atomic for the compiler).
    Descendant(Var, Var),
    /// `lab_σ(x)`.
    Lab(Symbol, Var),
    /// `x` is a text node.
    IsText(Var),
    /// `x = y`.
    Eq(Var, Var),
    /// `x` is the root.
    Root(Var),
    /// `x ∈ X`.
    In(Var, SetVar),
    /// `¬φ`.
    Not(Box<Formula>),
    /// `φ ∧ ψ`.
    And(Box<Formula>, Box<Formula>),
    /// `φ ∨ ψ`.
    Or(Box<Formula>, Box<Formula>),
    /// `∃x φ`.
    ExistsFo(Var, Box<Formula>),
    /// `∀x φ`.
    ForallFo(Var, Box<Formula>),
    /// `∃X φ`.
    ExistsSo(SetVar, Box<Formula>),
    /// `∀X φ`.
    ForallSo(SetVar, Box<Formula>),
}

impl Formula {
    /// `φ ∧ ψ` (with unit shortcuts).
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::True, b) => b,
            (a, Formula::True) => a,
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (a, b) => Formula::And(Box::new(a), Box::new(b)),
        }
    }

    /// `φ ∨ ψ` (with unit shortcuts).
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::False, b) => b,
            (a, Formula::False) => a,
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (a, b) => Formula::Or(Box::new(a), Box::new(b)),
        }
    }

    /// `¬φ`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// `φ → ψ`.
    pub fn implies(self, other: Formula) -> Formula {
        self.not().or(other)
    }

    /// `∃x φ`.
    pub fn exists(v: Var, body: Formula) -> Formula {
        Formula::ExistsFo(v, Box::new(body))
    }

    /// `∀x φ`.
    pub fn forall(v: Var, body: Formula) -> Formula {
        Formula::ForallFo(v, Box::new(body))
    }

    /// `∃X φ`.
    pub fn exists_set(v: SetVar, body: Formula) -> Formula {
        Formula::ExistsSo(v, Box::new(body))
    }

    /// `∀X φ`.
    pub fn forall_set(v: SetVar, body: Formula) -> Formula {
        Formula::ForallSo(v, Box::new(body))
    }

    /// Conjunction of many formulas.
    pub fn all(items: impl IntoIterator<Item = Formula>) -> Formula {
        items.into_iter().fold(Formula::True, Formula::and)
    }

    /// Disjunction of many formulas.
    pub fn any(items: impl IntoIterator<Item = Formula>) -> Formula {
        items.into_iter().fold(Formula::False, Formula::or)
    }

    /// Free first-order and second-order variables.
    pub fn free_vars(&self) -> (BTreeSet<Var>, BTreeSet<SetVar>) {
        let mut fo = BTreeSet::new();
        let mut so = BTreeSet::new();
        self.collect_free(&mut fo, &mut so);
        (fo, so)
    }

    fn collect_free(&self, fo: &mut BTreeSet<Var>, so: &mut BTreeSet<SetVar>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Child(x, y)
            | Formula::NextSib(x, y)
            | Formula::SibLess(x, y)
            | Formula::Descendant(x, y)
            | Formula::Eq(x, y) => {
                fo.insert(*x);
                fo.insert(*y);
            }
            Formula::Lab(_, x) | Formula::IsText(x) | Formula::Root(x) => {
                fo.insert(*x);
            }
            Formula::In(x, s) => {
                fo.insert(*x);
                so.insert(*s);
            }
            Formula::Not(a) => a.collect_free(fo, so),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_free(fo, so);
                b.collect_free(fo, so);
            }
            Formula::ExistsFo(v, a) | Formula::ForallFo(v, a) => {
                let mut inner_fo = BTreeSet::new();
                let mut inner_so = BTreeSet::new();
                a.collect_free(&mut inner_fo, &mut inner_so);
                inner_fo.remove(v);
                fo.extend(inner_fo);
                so.extend(inner_so);
            }
            Formula::ExistsSo(v, a) | Formula::ForallSo(v, a) => {
                let mut inner_fo = BTreeSet::new();
                let mut inner_so = BTreeSet::new();
                a.collect_free(&mut inner_fo, &mut inner_so);
                inner_so.remove(v);
                fo.extend(inner_fo);
                so.extend(inner_so);
            }
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Formula::True
            | Formula::False
            | Formula::Child(_, _)
            | Formula::NextSib(_, _)
            | Formula::SibLess(_, _)
            | Formula::Descendant(_, _)
            | Formula::Lab(_, _)
            | Formula::IsText(_)
            | Formula::Eq(_, _)
            | Formula::Root(_)
            | Formula::In(_, _) => 1,
            Formula::Not(a)
            | Formula::ExistsFo(_, a)
            | Formula::ForallFo(_, a)
            | Formula::ExistsSo(_, a)
            | Formula::ForallSo(_, a) => 1 + a.size(),
            Formula::And(a, b) | Formula::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Bound first-order variables (anywhere in the formula).
    pub fn bound_fo_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_bound(&mut out);
        out
    }

    fn collect_bound(&self, out: &mut BTreeSet<Var>) {
        match self {
            Formula::Not(a) | Formula::ExistsSo(_, a) | Formula::ForallSo(_, a) => {
                a.collect_bound(out)
            }
            Formula::ExistsFo(v, a) | Formula::ForallFo(v, a) => {
                out.insert(*v);
                a.collect_bound(out);
            }
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_bound(out);
                b.collect_bound(out);
            }
            _ => {}
        }
    }

    /// Replaces every *free* occurrence of `from` with `to`.
    ///
    /// Panics if `to` is bound anywhere in the formula (which would capture
    /// it) — callers pick `to` from a [`VarGen`] reserved above all pattern
    /// variables, so this never fires in practice.
    pub fn rename_fo(&self, from: Var, to: Var) -> Formula {
        assert!(
            !self.bound_fo_vars().contains(&to),
            "rename_fo would capture {to:?}"
        );
        self.rename_fo_unchecked(from, to)
    }

    fn rename_fo_unchecked(&self, from: Var, to: Var) -> Formula {
        let r = |v: Var| if v == from { to } else { v };
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Child(x, y) => Formula::Child(r(*x), r(*y)),
            Formula::NextSib(x, y) => Formula::NextSib(r(*x), r(*y)),
            Formula::SibLess(x, y) => Formula::SibLess(r(*x), r(*y)),
            Formula::Descendant(x, y) => Formula::Descendant(r(*x), r(*y)),
            Formula::Lab(s, x) => Formula::Lab(*s, r(*x)),
            Formula::IsText(x) => Formula::IsText(r(*x)),
            Formula::Eq(x, y) => Formula::Eq(r(*x), r(*y)),
            Formula::Root(x) => Formula::Root(r(*x)),
            Formula::In(x, s) => Formula::In(r(*x), *s),
            Formula::Not(a) => Formula::Not(Box::new(a.rename_fo_unchecked(from, to))),
            Formula::And(a, b) => Formula::And(
                Box::new(a.rename_fo_unchecked(from, to)),
                Box::new(b.rename_fo_unchecked(from, to)),
            ),
            Formula::Or(a, b) => Formula::Or(
                Box::new(a.rename_fo_unchecked(from, to)),
                Box::new(b.rename_fo_unchecked(from, to)),
            ),
            Formula::ExistsFo(v, a) => {
                if *v == from {
                    self.clone() // `from` is shadowed; nothing free below
                } else {
                    Formula::ExistsFo(*v, Box::new(a.rename_fo_unchecked(from, to)))
                }
            }
            Formula::ForallFo(v, a) => {
                if *v == from {
                    self.clone()
                } else {
                    Formula::ForallFo(*v, Box::new(a.rename_fo_unchecked(from, to)))
                }
            }
            Formula::ExistsSo(v, a) => {
                Formula::ExistsSo(*v, Box::new(a.rename_fo_unchecked(from, to)))
            }
            Formula::ForallSo(v, a) => {
                Formula::ForallSo(*v, Box::new(a.rename_fo_unchecked(from, to)))
            }
        }
    }

    /// Maximum quantifier nesting depth (a complexity measure for E6).
    pub fn quantifier_depth(&self) -> usize {
        match self {
            Formula::Not(a) => a.quantifier_depth(),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.quantifier_depth().max(b.quantifier_depth())
            }
            Formula::ExistsFo(_, a)
            | Formula::ForallFo(_, a)
            | Formula::ExistsSo(_, a)
            | Formula::ForallSo(_, a) => 1 + a.quantifier_depth(),
            _ => 0,
        }
    }
}

/// Derived formulas (macros over the core vocabulary).
pub mod derived {
    use super::*;

    /// `y` is a descendant of `x` or `x` itself.
    pub fn descendant_or_self(x: Var, y: Var) -> Formula {
        Formula::Eq(x, y).or(Formula::Descendant(x, y))
    }

    /// `x` is a leaf: no children.
    pub fn leaf(x: Var, gen: &mut VarGen) -> Formula {
        let y = gen.var();
        Formula::exists(y, Formula::Child(x, y)).not()
    }

    /// `y` is the parent of `x`.
    pub fn parent(x: Var, y: Var) -> Formula {
        Formula::Child(y, x)
    }

    /// `y` is the first child of `x`.
    pub fn first_child(x: Var, y: Var, gen: &mut VarGen) -> Formula {
        let z = gen.var();
        Formula::Child(x, y).and(Formula::exists(z, Formula::NextSib(z, y)).not())
    }

    /// Document order: `x <lex y` (strict). An ancestor precedes its
    /// descendants; otherwise order is decided at the separating siblings.
    pub fn doc_before(x: Var, y: Var, gen: &mut VarGen) -> Formula {
        let s1 = gen.var();
        let s2 = gen.var();
        Formula::Descendant(x, y).or(Formula::exists(
            s1,
            Formula::exists(
                s2,
                Formula::SibLess(s1, s2)
                    .and(descendant_or_self(s1, x))
                    .and(descendant_or_self(s2, y)),
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_respect_binders() {
        let (x, y) = (Var(0), Var(1));
        let s = SetVar(0);
        let f = Formula::exists(y, Formula::Child(x, y).and(Formula::In(y, s)));
        let (fo, so) = f.free_vars();
        assert!(fo.contains(&x));
        assert!(!fo.contains(&y));
        assert!(so.contains(&s));
    }

    #[test]
    fn connective_shortcuts() {
        assert_eq!(Formula::True.and(Formula::False), Formula::False);
        assert_eq!(Formula::False.or(Formula::True), Formula::True);
        assert_eq!(Formula::True.not(), Formula::False);
        assert_eq!(Formula::True.not().not(), Formula::True);
    }

    #[test]
    fn size_and_depth() {
        let x = Var(0);
        let f = Formula::exists(x, Formula::Root(x).and(Formula::IsText(x).not()));
        assert_eq!(f.quantifier_depth(), 1);
        assert!(f.size() >= 4);
    }

    #[test]
    fn vargen_is_fresh() {
        let mut g = VarGen::new();
        let a = g.var();
        let b = g.var();
        assert_ne!(a, b);
        g.reserve(Var(10));
        assert!(g.var().0 > 10);
    }
}
