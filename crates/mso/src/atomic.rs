//! Hand-coded deterministic bottom-up automata for the atomic relations,
//! over first-child/next-sibling encodings with variable-marking bits.
//!
//! Key facts about the encoding used below:
//!
//! * the *right* child of an encoded node is its next sibling,
//! * the *left* child encodes its children hedge, so the unranked children
//!   of `u` are exactly the right spine of `left(u)`,
//! * the binary subtree of `left(u)` is exactly the set of unranked proper
//!   descendants of `u`.
//!
//! All automata here are written with "∃ a marked node such that …"
//! semantics; the compiler guards first-order variables with singleton
//! automata at quantifier introduction, which makes the combination exact.

#![allow(clippy::if_same_then_else)] // found-state branches are spelt out per case

use tpx_treeauto::{EncSym, Nbta, State};
use tpx_trees::Symbol;

/// A marked encoding symbol: an [`EncSym`] plus one bit per in-scope
/// variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MSym {
    /// The underlying encoding symbol.
    pub label: EncSym,
    /// Variable-marking bits (bit `i` = variable at context position `i`).
    pub bits: u64,
}

impl MSym {
    /// Whether bit `i` is set.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        self.bits & (1 << i) != 0
    }
}

/// The leaf alphabet: the unmarked `⊥` symbol (variables never mark
/// padding nodes).
pub fn leaf_alphabet() -> Vec<MSym> {
    vec![MSym {
        label: EncSym::Nil,
        bits: 0,
    }]
}

/// The internal alphabet: `(Σ ⊎ {text}) × 2^width` marked symbols.
pub fn internal_alphabet(n_symbols: usize, width: usize) -> Vec<MSym> {
    assert!(width <= 32, "too many free variables in one scope");
    let mut out = Vec::with_capacity((n_symbols + 1) << width);
    for bits in 0..(1u64 << width) {
        for s in 0..n_symbols {
            out.push(MSym {
                label: EncSym::Elem(Symbol(s as u32)),
                bits,
            });
        }
        out.push(MSym {
            label: EncSym::Text,
            bits,
        });
    }
    out
}

/// Builds a deterministic bottom-up automaton from a transition table:
/// `leaf_state` at `⊥`, `f(label, bits, left, right)` at internal nodes.
fn table_automaton(
    n_symbols: usize,
    width: usize,
    n_states: usize,
    leaf_state: usize,
    finals: &[usize],
    f: impl Fn(&EncSym, u64, usize, usize) -> usize,
) -> Nbta<MSym> {
    let mut b = Nbta::new(leaf_alphabet(), internal_alphabet(n_symbols, width));
    for _ in 0..n_states {
        b.add_state();
    }
    for &q in finals {
        b.set_final(State(q as u32), true);
    }
    b.add_leaf_rule(
        MSym {
            label: EncSym::Nil,
            bits: 0,
        },
        State(leaf_state as u32),
    );
    let internal = b.internal_alphabet().to_vec();
    for sym in internal {
        for l in 0..n_states {
            for r in 0..n_states {
                let q = f(&sym.label, sym.bits, l, r);
                b.add_rule(sym, State(l as u32), State(r as u32), State(q as u32));
            }
        }
    }
    b
}

#[inline]
fn bit(bits: u64, i: usize) -> bool {
    bits & (1 << i) != 0
}

/// `⊤`: accepts every marked tree.
pub fn true_auto(n_symbols: usize, width: usize) -> Nbta<MSym> {
    table_automaton(n_symbols, width, 1, 0, &[0], |_, _, _, _| 0)
}

/// `⊥`: accepts nothing.
pub fn false_auto(n_symbols: usize, width: usize) -> Nbta<MSym> {
    table_automaton(n_symbols, width, 1, 0, &[], |_, _, _, _| 0)
}

/// `Sing(i)`: exactly one node carries bit `i`.
pub fn singleton(n_symbols: usize, width: usize, i: usize) -> Nbta<MSym> {
    // States: number of bit-i nodes seen, capped at 2.
    table_automaton(n_symbols, width, 3, 0, &[1], move |_, bits, l, r| {
        (l + r + usize::from(bit(bits, i))).min(2)
    })
}

/// `x ∈ X` (bits `i = x`, `j = X`): every bit-`i` node also has bit `j`.
pub fn in_set(n_symbols: usize, width: usize, i: usize, j: usize) -> Nbta<MSym> {
    // States: 0 ok, 1 violated.
    table_automaton(n_symbols, width, 2, 0, &[0], move |_, bits, l, r| {
        if l == 1 || r == 1 || (bit(bits, i) && !bit(bits, j)) {
            1
        } else {
            0
        }
    })
}

/// `lab_σ(x)`: every bit-`i` node is labelled `σ`.
pub fn label_is(n_symbols: usize, width: usize, i: usize, sigma: Symbol) -> Nbta<MSym> {
    table_automaton(n_symbols, width, 2, 0, &[0], move |lab, bits, l, r| {
        let ok = !bit(bits, i) || *lab == EncSym::Elem(sigma);
        if l == 1 || r == 1 || !ok {
            1
        } else {
            0
        }
    })
}

/// `x` is a text node.
pub fn is_text(n_symbols: usize, width: usize, i: usize) -> Nbta<MSym> {
    table_automaton(n_symbols, width, 2, 0, &[0], move |lab, bits, l, r| {
        let ok = !bit(bits, i) || *lab == EncSym::Text;
        if l == 1 || r == 1 || !ok {
            1
        } else {
            0
        }
    })
}

/// `x = y`: bits `i` and `j` agree on every node.
pub fn eq(n_symbols: usize, width: usize, i: usize, j: usize) -> Nbta<MSym> {
    table_automaton(n_symbols, width, 2, 0, &[0], move |_, bits, l, r| {
        if l == 1 || r == 1 || (bit(bits, i) != bit(bits, j)) {
            1
        } else {
            0
        }
    })
}

/// `Root(x)`: the bit-`i` node is the root of the (single-tree) encoding.
pub fn root_marked(n_symbols: usize, width: usize, i: usize) -> Nbta<MSym> {
    // States: 0 = no bit anywhere, 1 = bit at subtree root, 2 = bit inside.
    table_automaton(n_symbols, width, 3, 0, &[1], move |_, bits, l, r| {
        if bit(bits, i) {
            1
        } else if l != 0 || r != 0 {
            2
        } else {
            0
        }
    })
}

/// `E(x, y)`: the bit-`j` node is an unranked child of the bit-`i` node —
/// i.e. `j` lies on the right spine of `left(i)`.
pub fn child(n_symbols: usize, width: usize, i: usize, j: usize) -> Nbta<MSym> {
    // States: 0 nothing, 1 = j on the right spine of this subtree's root,
    // 2 = pair found.
    table_automaton(n_symbols, width, 3, 0, &[2], move |_, bits, l, r| {
        if l == 2 || r == 2 {
            2
        } else if bit(bits, i) && l == 1 {
            2
        } else if bit(bits, j) || r == 1 {
            1
        } else {
            0
        }
    })
}

/// `NextSib(x, y)`: `y = right(x)` in the encoding.
pub fn next_sib(n_symbols: usize, width: usize, i: usize, j: usize) -> Nbta<MSym> {
    // States: 0 nothing, 1 = subtree root has bit j, 2 = found.
    table_automaton(n_symbols, width, 3, 0, &[2], move |_, bits, l, r| {
        if l == 2 || r == 2 {
            2
        } else if bit(bits, i) && r == 1 {
            2
        } else if bit(bits, j) {
            1
        } else {
            0
        }
    })
}

/// `x < y` (transitive sibling order): `y ∈ right⁺(x)`.
pub fn sib_less(n_symbols: usize, width: usize, i: usize, j: usize) -> Nbta<MSym> {
    // States: 0 nothing, 1 = j on right spine (incl. root), 2 = found.
    table_automaton(n_symbols, width, 3, 0, &[2], move |_, bits, l, r| {
        if l == 2 || r == 2 {
            2
        } else if bit(bits, i) && r == 1 {
            2
        } else if bit(bits, j) || r == 1 {
            1
        } else {
            0
        }
    })
}

/// `Descendant(x, y)`: `y` is a proper unranked descendant of `x` — i.e.
/// `j` is anywhere in the binary subtree of `left(i)`.
pub fn descendant(n_symbols: usize, width: usize, i: usize, j: usize) -> Nbta<MSym> {
    // States: 0 nothing, 1 = subtree contains j, 2 = found.
    table_automaton(n_symbols, width, 3, 0, &[2], move |_, bits, l, r| {
        if l == 2 || r == 2 {
            2
        } else if bit(bits, i) && l == 1 {
            2
        } else if bit(bits, j) || l == 1 || r == 1 {
            1
        } else {
            0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabets_have_expected_sizes() {
        assert_eq!(leaf_alphabet().len(), 1);
        assert_eq!(internal_alphabet(2, 0).len(), 3);
        assert_eq!(internal_alphabet(2, 3).len(), 3 * 8);
    }

    #[test]
    fn true_false() {
        use tpx_treeauto::RankedTree;
        let t = RankedTree::node(
            MSym {
                label: EncSym::Text,
                bits: 0,
            },
            RankedTree::Leaf(MSym {
                label: EncSym::Nil,
                bits: 0,
            }),
            RankedTree::Leaf(MSym {
                label: EncSym::Nil,
                bits: 0,
            }),
        );
        assert!(true_auto(1, 0).accepts(&t));
        assert!(!false_auto(1, 0).accepts(&t));
    }
    // Exhaustive semantic agreement with the naive evaluator is tested in
    // `compile::tests` (the automata are exercised through the compiler).
}
