//! Naive MSO model checking on concrete hedges — the exact (but
//! exponential-in-SO-quantifiers) oracle used to validate the compiler.

use crate::formula::{Formula, SetVar, Var};
use std::collections::{HashMap, HashSet};
use std::fmt;
use tpx_trees::{Hedge, NodeId, NodeLabel};

/// A free variable of the evaluated formula was not bound by the
/// assignment. Carries the offending variable and the variables that *were*
/// in scope, for diagnosis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// An unbound first-order variable.
    UnboundVar {
        /// The offending variable.
        var: Var,
        /// The FO variables the assignment did bind.
        bound: Vec<Var>,
    },
    /// An unbound second-order (set) variable.
    UnboundSetVar {
        /// The offending variable.
        var: SetVar,
        /// The SO variables the assignment did bind.
        bound: Vec<SetVar>,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar { var, bound } => {
                write!(f, "unbound variable {var:?} (bound: {bound:?})")
            }
            EvalError::UnboundSetVar { var, bound } => {
                write!(f, "unbound set variable {var:?} (bound: {bound:?})")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// An assignment of nodes to FO variables and node sets to SO variables.
#[derive(Clone, Debug, Default)]
pub struct Assignment {
    /// First-order assignments.
    pub fo: HashMap<Var, NodeId>,
    /// Second-order assignments.
    pub so: HashMap<SetVar, HashSet<NodeId>>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `v ↦ node`.
    pub fn bind(mut self, v: Var, node: NodeId) -> Self {
        self.fo.insert(v, node);
        self
    }

    /// Binds `v ↦ set`.
    pub fn bind_set(mut self, v: SetVar, set: impl IntoIterator<Item = NodeId>) -> Self {
        self.so.insert(v, set.into_iter().collect());
        self
    }
}

/// Evaluates `φ` on `h` under `asg`. All free variables must be bound.
///
/// SO quantifiers enumerate all `2^|h|` subsets — use only on small trees.
///
/// # Panics
///
/// On an unbound free variable; use [`try_naive_eval`] for the recoverable
/// form.
pub fn naive_eval(h: &Hedge, phi: &Formula, asg: &Assignment) -> bool {
    try_naive_eval(h, phi, asg).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`naive_eval`], but an unbound free variable is an [`EvalError`]
/// naming the variable and the assignment's scope, not a panic.
pub fn try_naive_eval(h: &Hedge, phi: &Formula, asg: &Assignment) -> Result<bool, EvalError> {
    let nodes = h.dfs();
    eval(h, &nodes, phi, asg)
}

fn node(asg: &Assignment, v: Var) -> Result<NodeId, EvalError> {
    asg.fo
        .get(&v)
        .copied()
        .ok_or_else(|| EvalError::UnboundVar {
            var: v,
            bound: asg.fo.keys().copied().collect(),
        })
}

fn set(asg: &Assignment, s: SetVar) -> Result<&HashSet<NodeId>, EvalError> {
    asg.so.get(&s).ok_or_else(|| EvalError::UnboundSetVar {
        var: s,
        bound: asg.so.keys().copied().collect(),
    })
}

fn eval(h: &Hedge, nodes: &[NodeId], phi: &Formula, asg: &Assignment) -> Result<bool, EvalError> {
    Ok(match phi {
        Formula::True => true,
        Formula::False => false,
        Formula::Child(x, y) => h.parent(node(asg, *y)?) == Some(node(asg, *x)?),
        Formula::NextSib(x, y) => h.next_sibling(node(asg, *x)?) == Some(node(asg, *y)?),
        Formula::SibLess(x, y) => {
            let (a, b) = (node(asg, *x)?, node(asg, *y)?);
            a != b
                && h.parent(a) == h.parent(b)
                && h.parent(a).is_some()
                && h.sibling_position(a) < h.sibling_position(b)
        }
        Formula::Descendant(x, y) => {
            let (a, b) = (node(asg, *x)?, node(asg, *y)?);
            h.is_ancestor(a, b, true)
        }
        Formula::Lab(s, x) => matches!(h.label(node(asg, *x)?), NodeLabel::Elem(l) if l == s),
        Formula::IsText(x) => h.is_text(node(asg, *x)?),
        Formula::Eq(x, y) => node(asg, *x)? == node(asg, *y)?,
        Formula::Root(x) => {
            let a = node(asg, *x)?;
            h.parent(a).is_none() && h.prev_sibling(a).is_none() && h.next_sibling(a).is_none()
        }
        Formula::In(x, s) => set(asg, *s)?.contains(&node(asg, *x)?),
        Formula::Not(a) => !eval(h, nodes, a, asg)?,
        Formula::And(a, b) => eval(h, nodes, a, asg)? && eval(h, nodes, b, asg)?,
        Formula::Or(a, b) => eval(h, nodes, a, asg)? || eval(h, nodes, b, asg)?,
        Formula::ExistsFo(v, a) => {
            let mut found = false;
            for &n in nodes {
                let mut inner = asg.clone();
                inner.fo.insert(*v, n);
                if eval(h, nodes, a, &inner)? {
                    found = true;
                    break;
                }
            }
            found
        }
        Formula::ForallFo(v, a) => {
            let mut all = true;
            for &n in nodes {
                let mut inner = asg.clone();
                inner.fo.insert(*v, n);
                if !eval(h, nodes, a, &inner)? {
                    all = false;
                    break;
                }
            }
            all
        }
        Formula::ExistsSo(v, a) => {
            let mut found = false;
            for s in subsets(nodes) {
                let mut inner = asg.clone();
                inner.so.insert(*v, s);
                if eval(h, nodes, a, &inner)? {
                    found = true;
                    break;
                }
            }
            found
        }
        Formula::ForallSo(v, a) => {
            let mut all = true;
            for s in subsets(nodes) {
                let mut inner = asg.clone();
                inner.so.insert(*v, s);
                if !eval(h, nodes, a, &inner)? {
                    all = false;
                    break;
                }
            }
            all
        }
    })
}

fn subsets(nodes: &[NodeId]) -> impl Iterator<Item = HashSet<NodeId>> + '_ {
    assert!(
        nodes.len() <= 20,
        "naive SO enumeration on a tree with more than 20 nodes"
    );
    (0u64..(1 << nodes.len())).map(move |mask| {
        nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &n)| n)
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{derived, VarGen};
    use tpx_trees::term::parse_tree;
    use tpx_trees::Alphabet;

    fn sample() -> (Alphabet, tpx_trees::Tree) {
        let mut al = Alphabet::from_labels(["a", "b", "c"]);
        let t = parse_tree(r#"a(b("x") c b)"#, &mut al).unwrap();
        (al, t)
    }

    #[test]
    fn atomic_relations() {
        let (al, t) = sample();
        let root = t.root();
        let kids = t.children(root).to_vec();
        let tx = t.children(kids[0])[0];
        let (x, y) = (Var(0), Var(1));
        let bind2 = |a, b| Assignment::new().bind(x, a).bind(y, b);
        assert!(naive_eval(&t, &Formula::Child(x, y), &bind2(root, kids[0])));
        assert!(!naive_eval(
            &t,
            &Formula::Child(x, y),
            &bind2(kids[0], root)
        ));
        assert!(!naive_eval(&t, &Formula::Child(x, y), &bind2(root, tx)));
        assert!(naive_eval(&t, &Formula::Descendant(x, y), &bind2(root, tx)));
        assert!(naive_eval(
            &t,
            &Formula::NextSib(x, y),
            &bind2(kids[0], kids[1])
        ));
        assert!(!naive_eval(
            &t,
            &Formula::NextSib(x, y),
            &bind2(kids[0], kids[2])
        ));
        assert!(naive_eval(
            &t,
            &Formula::SibLess(x, y),
            &bind2(kids[0], kids[2])
        ));
        assert!(!naive_eval(
            &t,
            &Formula::SibLess(x, y),
            &bind2(kids[2], kids[0])
        ));
        let one = Assignment::new().bind(x, root);
        assert!(naive_eval(&t, &Formula::Root(x), &one));
        assert!(naive_eval(&t, &Formula::Lab(al.sym("a"), x), &one));
        assert!(naive_eval(
            &t,
            &Formula::IsText(x),
            &Assignment::new().bind(x, tx)
        ));
    }

    #[test]
    fn unbound_variables_are_reported_with_context() {
        let (al, t) = sample();
        let (x, y) = (Var(0), Var(7));
        let asg = Assignment::new().bind(x, t.root());
        let err = try_naive_eval(&t, &Formula::Child(x, y), &asg).unwrap_err();
        assert_eq!(
            err,
            EvalError::UnboundVar {
                var: y,
                bound: vec![x],
            }
        );
        let z = crate::formula::SetVar(3);
        let err = try_naive_eval(&t, &Formula::In(x, z), &asg).unwrap_err();
        assert!(matches!(err, EvalError::UnboundSetVar { var, .. } if var == z));
        let _ = al;
    }

    #[test]
    fn quantifiers() {
        let (al, t) = sample();
        let mut g = VarGen::new();
        let x = g.var();
        // ∃x lab_c(x)
        let f = Formula::exists(x, Formula::Lab(al.sym("c"), x));
        assert!(naive_eval(&t, &f, &Assignment::new()));
        // ∀x (lab_b(x) → ∃y child(x,y)) — false: the second b is a leaf.
        let y = g.var();
        let f2 = Formula::forall(
            x,
            Formula::Lab(al.sym("b"), x).implies(Formula::exists(y, Formula::Child(x, y))),
        );
        assert!(!naive_eval(&t, &f2, &Assignment::new()));
    }

    #[test]
    fn set_quantifiers_express_reachability() {
        let (_, t) = sample();
        let mut g = VarGen::new();
        let (x, y) = (g.var(), g.var());
        let z = g.set_var();
        let (u, v) = (g.var(), g.var());
        // descendant-or-self via set closure: ∀Z (x∈Z ∧ closed-under-child → y∈Z)
        let closed = Formula::forall(
            u,
            Formula::forall(
                v,
                Formula::In(u, z)
                    .and(Formula::Child(u, v))
                    .implies(Formula::In(v, z)),
            ),
        );
        let reach =
            Formula::forall_set(z, Formula::In(x, z).and(closed).implies(Formula::In(y, z)));
        let root = t.root();
        let tx = t.text_nodes()[0];
        assert!(naive_eval(
            &t,
            &reach,
            &Assignment::new().bind(x, root).bind(y, tx)
        ));
        assert!(!naive_eval(
            &t,
            &reach,
            &Assignment::new().bind(x, tx).bind(y, root)
        ));
        // Agrees with the atomic descendant relation everywhere.
        for &a in &t.dfs() {
            for &b in &t.dfs() {
                let asg = Assignment::new().bind(x, a).bind(y, b);
                let via_sets = naive_eval(&t, &reach, &asg);
                let via_atomic =
                    naive_eval(&t, &crate::formula::derived::descendant_or_self(x, y), &asg);
                assert_eq!(via_sets, via_atomic, "{a:?} {b:?}");
            }
        }
    }

    #[test]
    fn doc_before_matches_doc_cmp() {
        let (_, t) = sample();
        let mut g = VarGen::new();
        let (x, y) = (g.var(), g.var());
        let f = derived::doc_before(x, y, &mut g);
        for &a in &t.dfs() {
            for &b in &t.dfs() {
                let expect = t.doc_cmp(a, b) == std::cmp::Ordering::Less;
                let got = naive_eval(&t, &f, &Assignment::new().bind(x, a).bind(y, b));
                assert_eq!(got, expect, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn derived_leaf_and_first_child() {
        let (_, t) = sample();
        let mut g = VarGen::new();
        let x = g.var();
        let leaf = derived::leaf(x, &mut g);
        let leaves: Vec<_> = t
            .dfs()
            .into_iter()
            .filter(|&v| naive_eval(&t, &leaf, &Assignment::new().bind(x, v)))
            .collect();
        assert_eq!(leaves, t.leaves());
        let y = g.var();
        let fc = derived::first_child(x, y, &mut g);
        let root = t.root();
        let kids = t.children(root).to_vec();
        assert!(naive_eval(
            &t,
            &fc,
            &Assignment::new().bind(x, root).bind(y, kids[0])
        ));
        assert!(!naive_eval(
            &t,
            &fc,
            &Assignment::new().bind(x, root).bind(y, kids[1])
        ));
    }
}
