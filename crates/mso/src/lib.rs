//! # `tpx-mso`: monadic second-order logic on unranked text trees
//!
//! Section 5.3 of the paper instantiates DTL with MSO-definable patterns and
//! proves decidability via regularity of the counter-example language. This
//! crate provides the logic substrate:
//!
//! * [`formula`] — MSO formulas over the paper's vocabulary: child `E(x,y)`,
//!   sibling order `x < y`, labels `lab_σ(x)`, set membership, Boolean
//!   connectives and first-/second-order quantifiers; plus derived macros
//!   (descendant, document order `<lex`, root, leaf, …);
//! * [`eval`] — a naive but exact model checker on concrete trees (the test
//!   oracle; exponential in SO quantifiers, fine on small trees);
//! * [`compile`](mod@compile) — the Thatcher–Wright compilation of formulas to bottom-up
//!   binary tree automata over marked first-child/next-sibling encodings.
//!   Free variables become marking bits; FO quantifiers are handled with
//!   singleton guards; `∃` is projection, `¬` is
//!   determinize-and-complement. Non-elementary in general — exactly the
//!   lower bound the paper quotes for DTL_MSO — but effective, and the
//!   engine behind Theorem 5.12 and Corollary 5.9;
//! * [`atomic`] — hand-coded automata for the atomic relations on
//!   encodings (kept deterministic and small so the compiler starts from
//!   the best possible primitives; includes descendant and transitive
//!   sibling order as primitives so Core XPath's `R*` needs no set
//!   quantifier).

pub mod atomic;
pub mod compile;
pub mod eval;
pub mod formula;

pub use compile::{
    compile, compile_cached, compile_sentence, compile_sentence_cached, lift, marked_encoding,
    project_bit, strip_bits, try_compile, try_compile_cached, try_compile_sentence_cached,
    try_project_bit, try_strip_bits, CompileCache, CompileError, MSym, VarKey,
};
pub use eval::{naive_eval, try_naive_eval, Assignment, EvalError};
pub use formula::{Formula, SetVar, Var, VarGen};
