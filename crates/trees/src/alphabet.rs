//! Interned finite alphabets.
//!
//! The paper distinguishes a *finite* alphabet `Σ` of element labels from the
//! *infinite* set `Text` of text values. Element labels are interned into
//! cheap copyable [`Symbol`]s; text values stay plain strings (see
//! [`crate::hedge::NodeLabel`]).

use std::collections::HashMap;
use std::fmt;

/// An interned element label from a finite alphabet `Σ`.
///
/// Symbols are only meaningful relative to the [`Alphabet`] that produced
/// them. They are dense indices starting at `0`, which the automata crates
/// exploit for array-indexed transition tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The dense index of this symbol within its alphabet.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{}", self.0)
    }
}

/// A finite alphabet `Σ` of element labels, interning strings to [`Symbol`]s.
///
/// ```
/// use tpx_trees::Alphabet;
/// let mut sigma = Alphabet::new();
/// let a = sigma.intern("recipes");
/// let b = sigma.intern("recipe");
/// assert_ne!(a, b);
/// assert_eq!(sigma.intern("recipes"), a);
/// assert_eq!(sigma.name(a), "recipes");
/// assert_eq!(sigma.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Alphabet {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet from a list of labels, in order.
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut alpha = Self::new();
        for l in labels {
            alpha.intern(l.as_ref());
        }
        alpha
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&i) = self.map.get(name) {
            return Symbol(i);
        }
        let i = u32::try_from(self.names.len()).expect("alphabet too large");
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), i);
        Symbol(i)
    }

    /// Looks up an already-interned label.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied().map(Symbol)
    }

    /// Looks up a label, panicking with a helpful message if absent.
    ///
    /// Convenient in tests and examples where the label is known to exist.
    pub fn sym(&self, name: &str) -> Symbol {
        self.get(name)
            .unwrap_or_else(|| panic!("label {name:?} not in alphabet"))
    }

    /// The textual name of `s`.
    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in index order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len() as u32).map(Symbol)
    }

    /// Iterates over `(Symbol, name)` pairs in index order.
    pub fn entries(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let x = a.intern("x");
        let y = a.intern("y");
        assert_eq!(a.intern("x"), x);
        assert_eq!(a.intern("y"), y);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn from_labels_preserves_order() {
        let a = Alphabet::from_labels(["p", "q", "r"]);
        assert_eq!(a.sym("p").index(), 0);
        assert_eq!(a.sym("q").index(), 1);
        assert_eq!(a.sym("r").index(), 2);
    }

    #[test]
    fn get_absent_is_none() {
        let a = Alphabet::from_labels(["p"]);
        assert!(a.get("zz").is_none());
    }

    #[test]
    fn symbols_iterates_all() {
        let a = Alphabet::from_labels(["p", "q"]);
        let all: Vec<_> = a.symbols().collect();
        assert_eq!(all, vec![Symbol(0), Symbol(1)]);
        let names: Vec<_> = a.entries().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(names, vec!["p", "q"]);
    }

    #[test]
    #[should_panic(expected = "not in alphabet")]
    fn sym_panics_on_missing() {
        let a = Alphabet::new();
        let _ = a.sym("missing");
    }
}
