//! A tiny deterministic PRNG for workload generation and randomized tests.
//!
//! The build environment is offline, so the workspace cannot depend on the
//! `rand` crate; this SplitMix64 generator (Steele, Lea & Flood, OOPSLA'14)
//! is small, fast, statistically solid for test-data generation, and —
//! crucially — **stable across platforms and releases**, so seeded
//! experiments stay reproducible run to run.

/// A SplitMix64 pseudo-random generator. Deterministic in its seed.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `usize` in `0..n`. Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "SplitMix64::below(0)");
        // Multiply-shift bounded generation (Lemire); the tiny modulo bias
        // of a plain `% n` would also be fine for test data, but this is
        // just as cheap.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// A uniform `usize` in `lo..=hi`. Panics when `lo > hi`.
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "SplitMix64::range_inclusive({lo}, {hi})");
        lo + self.below(hi - lo + 1)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen element of `items`. Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let wa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let wb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let wc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(wa, wb);
        assert_ne!(wa, wc);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = r.below(5);
            assert!(x < 5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(2);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let heads = (0..1000).filter(|_| r.chance(0.5)).count();
        assert!((300..700).contains(&heads), "{heads}");
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = SplitMix64::new(3);
        let xs: Vec<usize> = (0..100).map(|_| r.range_inclusive(2, 4)).collect();
        assert!(xs.iter().all(|&x| (2..=4).contains(&x)));
        assert!(xs.contains(&2) && xs.contains(&4));
    }
}
