//! # `tpx-trees`: text trees and hedges
//!
//! The foundational substrate of the `textpres` workspace: unranked trees and
//! hedges over a finite alphabet `Σ` whose leaves may carry values from an
//! infinite set `Text`, exactly as defined in Section 2 of
//! *"The Complexity of Text-Preserving XML Transformations"* (PODS 2011).
//!
//! The crate provides:
//!
//! * interned alphabets ([`Alphabet`], [`Symbol`]),
//! * arena-based [`Hedge`]s and [`Tree`]s with document-order navigation,
//!   ancestor strings, lowest common ancestors and subtree replacement,
//! * the *text content* and *frontier* of a hedge,
//! * the subsequence relation `≺` of Definition 2.2 ([`subseq`]),
//! * `Text`-substitutions and value-uniqueness ([`subst`]),
//! * a term syntax (`a(b "text")`) and a small XML reader/writer ([`term`],
//!   [`xml`]),
//! * the first-child/next-sibling binary encoding used by the tree-automata
//!   and MSO substrates ([`encode`]),
//! * stable content hashing for the engine's artifact cache ([`hash`]) and
//!   a tiny deterministic PRNG for workload generation ([`rng`]),
//! * fuel/deadline budgets threaded through the decision pipelines
//!   ([`budget`]),
//! * the paper's running example, the recipe document of Figure 1
//!   ([`samples`]).

pub mod alphabet;
pub mod budget;
pub mod encode;
pub mod hash;
pub mod hedge;
pub mod rng;
pub mod samples;
pub mod subseq;
pub mod subst;
pub mod term;
pub mod xml;

pub use alphabet::{Alphabet, Symbol};
pub use budget::{Budget, BudgetExceeded, BudgetHandle, ExhaustReason};
pub use encode::{decode_hedge, encode_hedge, encode_tree, BinLabel, BinNodeId, BinTree};
pub use hash::{stable_hash_debug, stable_hash_of, StableHash, StableHasher};
pub use hedge::{Hedge, HedgeBuilder, NodeId, NodeLabel, Tree};
pub use subseq::{is_subsequence, subsequence_witness};
pub use subst::{canonical_substitution, is_value_unique, make_value_unique, TextSubstitution};
