//! `Text`-substitutions and value-uniqueness (Section 2 / Section 3).
//!
//! A `Text`-substitution relabels zero or more text nodes to other `Text`
//! values, leaving the tree structure and element labels untouched. All tree
//! languages in the paper are closed under `Text`-substitutions; because this
//! crate treats text values opaquely, every language expressible here is
//! closed by construction.
//!
//! A tree is *value-unique* when all its text values are pairwise different —
//! the key device in the characterization of Theorem 3.3.

use crate::hedge::{Hedge, NodeId};
use std::collections::HashMap;
use std::collections::HashSet;

/// A `Text`-substitution `ρ`: a partial map from text nodes to new values.
/// Nodes not in the map keep their value.
#[derive(Clone, Debug, Default)]
pub struct TextSubstitution {
    map: HashMap<NodeId, String>,
}

impl TextSubstitution {
    /// The identity substitution.
    pub fn identity() -> Self {
        Self::default()
    }

    /// Adds a relabelling `v ↦ value`.
    pub fn set(&mut self, v: NodeId, value: impl Into<String>) -> &mut Self {
        self.map.insert(v, value.into());
        self
    }

    /// Applies the substitution, returning `ρ(h)`. Panics if a mapped node is
    /// not a text node of `h`.
    pub fn apply(&self, h: &Hedge) -> Hedge {
        let mut out = h.clone();
        for (&v, val) in &self.map {
            out.set_text(v, val);
        }
        out
    }

    /// Number of relabelled nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether this is the identity substitution.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Whether all text values in `h` are pairwise distinct.
pub fn is_value_unique(h: &Hedge) -> bool {
    let mut seen = HashSet::new();
    h.text_content().into_iter().all(|t| seen.insert(t))
}

/// The substitution `ρ` that makes `h` value-unique by relabelling every text
/// node with a canonical fresh value `τ0, τ1, …` (in document order).
///
/// This is the substitution used in the proof of Theorem 3.3 to reduce
/// non-text-preservation to copying/rearranging on value-unique trees.
pub fn canonical_substitution(h: &Hedge) -> TextSubstitution {
    let mut rho = TextSubstitution::identity();
    for (i, v) in h.text_nodes().into_iter().enumerate() {
        rho.set(v, format!("τ{i}"));
    }
    rho
}

/// Applies [`canonical_substitution`], returning a value-unique copy of `h`.
pub fn make_value_unique(h: &Hedge) -> Hedge {
    canonical_substitution(h).apply(h)
}

/// The substitution `ρ_γ` relabelling *every* text node of `h` to the single
/// value `γ` (used in the definition of `Text`-independence, Section 3).
pub fn constant_substitution(h: &Hedge, gamma: &str) -> TextSubstitution {
    let mut rho = TextSubstitution::identity();
    for v in h.text_nodes() {
        rho.set(v, gamma);
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::hedge::HedgeBuilder;

    fn sample() -> Hedge {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let mut b = HedgeBuilder::new();
        b.open(a);
        b.text("x");
        b.text("x");
        b.text("y");
        b.close();
        b.finish()
    }

    #[test]
    fn value_uniqueness_detects_duplicates() {
        let h = sample();
        assert!(!is_value_unique(&h));
        let u = make_value_unique(&h);
        assert!(is_value_unique(&u));
        assert_eq!(u.text_content(), vec!["τ0", "τ1", "τ2"]);
    }

    #[test]
    fn substitution_preserves_structure() {
        let h = sample();
        let u = make_value_unique(&h);
        assert_eq!(h.node_count(), u.node_count());
        assert_eq!(h.text_nodes(), u.text_nodes());
        for v in h.dfs() {
            assert_eq!(h.label(v).is_text(), u.label(v).is_text());
            if !h.is_text(v) {
                assert_eq!(h.label(v), u.label(v));
            }
        }
    }

    #[test]
    fn identity_substitution_is_noop() {
        let h = sample();
        let same = TextSubstitution::identity().apply(&h);
        assert_eq!(h, same);
        assert!(TextSubstitution::identity().is_empty());
    }

    #[test]
    fn constant_substitution_relabels_all() {
        let h = sample();
        let z = constant_substitution(&h, "z").apply(&h);
        assert_eq!(z.text_content(), vec!["z", "z", "z"]);
    }

    #[test]
    fn partial_substitution() {
        let h = sample();
        let first = h.text_nodes()[0];
        let mut rho = TextSubstitution::identity();
        rho.set(first, "q");
        assert_eq!(rho.len(), 1);
        let out = rho.apply(&h);
        assert_eq!(out.text_content(), vec!["q", "x", "y"]);
    }
}
