//! The paper's term syntax for trees and hedges.
//!
//! Trees are written `σ(w)` where `w` is a whitespace-separated sequence of
//! trees; `σ()` may be abbreviated `σ`; text leaves are double-quoted
//! strings. Example: `a("x" b("y" c) "z")`.
//!
//! Parsing interns element labels into a caller-supplied [`Alphabet`].

use crate::alphabet::{Alphabet, Symbol};
use crate::hedge::{Hedge, HedgeBuilder, NodeId, NodeLabel, Tree};
use std::fmt;

/// Error from [`parse_hedge`] / [`parse_tree`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-' || c == ':')
        {
            self.bump();
        }
        if self.pos == start {
            return self.err("expected a label identifier");
        }
        Ok(&self.src[start..self.pos])
    }

    fn string(&mut self) -> Result<String, ParseError> {
        debug_assert_eq!(self.peek(), Some('"'));
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string literal"),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some(c) => return self.err(format!("bad escape \\{c}")),
                    None => return self.err("unterminated escape"),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn tree(&mut self, b: &mut HedgeBuilder, alpha: &mut Alphabet) -> Result<(), ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('"') => {
                let s = self.string()?;
                b.text(&s);
                Ok(())
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                let name = self.ident()?;
                let sym = alpha.intern(name);
                b.open(sym);
                self.skip_ws();
                if self.peek() == Some('(') {
                    self.bump();
                    self.hedge_items(b, alpha)?;
                    self.skip_ws();
                    if self.bump() != Some(')') {
                        return self.err("expected ')'");
                    }
                }
                b.close();
                Ok(())
            }
            Some(c) => self.err(format!("unexpected character {c:?}")),
            None => self.err("unexpected end of input"),
        }
    }

    fn hedge_items(
        &mut self,
        b: &mut HedgeBuilder,
        alpha: &mut Alphabet,
    ) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            match self.peek() {
                None | Some(')') => return Ok(()),
                _ => self.tree(b, alpha)?,
            }
        }
    }
}

/// Parses a hedge in term syntax, interning labels into `alpha`.
pub fn parse_hedge(src: &str, alpha: &mut Alphabet) -> Result<Hedge, ParseError> {
    let mut p = Parser { src, pos: 0 };
    let mut b = HedgeBuilder::new();
    p.hedge_items(&mut b, alpha)?;
    p.skip_ws();
    if p.pos != src.len() {
        return p.err("trailing input");
    }
    Ok(b.finish())
}

/// Parses a single tree in term syntax.
pub fn parse_tree(src: &str, alpha: &mut Alphabet) -> Result<Tree, ParseError> {
    let h = parse_hedge(src, alpha)?;
    let n = h.roots().len();
    Tree::from_hedge(h).ok_or(ParseError {
        offset: 0,
        message: format!("expected exactly one tree, found {n}"),
    })
}

/// Display adapter rendering a hedge in term syntax (see
/// [`Hedge::display`](crate::hedge::Hedge::display)).
pub struct DisplayHedge<'a> {
    pub(crate) hedge: &'a Hedge,
    pub(crate) alpha: &'a Alphabet,
}

impl fmt::Display for DisplayHedge<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &r) in self.hedge.roots().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write_node(self.hedge, self.alpha, r, f)?;
        }
        Ok(())
    }
}

fn write_node(h: &Hedge, alpha: &Alphabet, v: NodeId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match h.label(v) {
        NodeLabel::Text(t) => write_text(t, f),
        NodeLabel::Elem(s) => {
            write_label(*s, alpha, f)?;
            if !h.children(v).is_empty() {
                write!(f, "(")?;
                for (i, &c) in h.children(v).iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write_node(h, alpha, c, f)?;
                }
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

fn write_label(s: Symbol, alpha: &Alphabet, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "{}", alpha.name(s))
}

fn write_text(t: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "\"")?;
    for c in t.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_tree() {
        let mut al = Alphabet::new();
        let t = parse_tree(r#"a("x" b("y" c) "z")"#, &mut al).unwrap();
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.text_content(), vec!["x", "y", "z"]);
        assert_eq!(t.label(t.root()).elem(), Some(al.sym("a")));
    }

    #[test]
    fn leaf_abbreviation() {
        let mut al = Alphabet::new();
        let t1 = parse_tree("c", &mut al).unwrap();
        let t2 = parse_tree("c()", &mut al).unwrap();
        assert_eq!(*t1.as_hedge(), *t2.as_hedge());
    }

    #[test]
    fn parses_hedge_of_several_trees() {
        let mut al = Alphabet::new();
        let h = parse_hedge(r#"a b "x""#, &mut al).unwrap();
        assert_eq!(h.roots().len(), 3);
    }

    #[test]
    fn empty_input_is_empty_hedge() {
        let mut al = Alphabet::new();
        let h = parse_hedge("  ", &mut al).unwrap();
        assert!(h.is_empty());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut al = Alphabet::new();
        let t = parse_tree(r#"a("say \"hi\"\\")"#, &mut al).unwrap();
        assert_eq!(t.text_content(), vec![r#"say "hi"\"#]);
        let printed = format!("{}", t.display(&al));
        let back = parse_tree(&printed, &mut al).unwrap();
        assert_eq!(*t.as_hedge(), *back.as_hedge());
    }

    #[test]
    fn display_round_trips() {
        let mut al = Alphabet::new();
        let src = r#"recipes(recipe(description("d") ingredients(item("i1") item("i2"))))"#;
        let t = parse_tree(src, &mut al).unwrap();
        let printed = format!("{}", t.display(&al));
        assert_eq!(printed, src);
        let back = parse_tree(&printed, &mut al).unwrap();
        assert_eq!(*t.as_hedge(), *back.as_hedge());
    }

    #[test]
    fn errors_report_offsets() {
        let mut al = Alphabet::new();
        let e = parse_tree("a(", &mut al).unwrap_err();
        assert!(e.offset >= 2);
        assert!(parse_tree("a) ", &mut al).is_err());
        assert!(parse_tree(r#"a("unterminated)"#, &mut al).is_err());
        assert!(parse_hedge("a(b))", &mut al).is_err());
    }

    #[test]
    fn tree_requires_single_root() {
        let mut al = Alphabet::new();
        assert!(parse_tree("a b", &mut al).is_err());
        assert!(parse_tree("", &mut al).is_err());
    }
}
