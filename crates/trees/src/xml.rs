//! A small reader/writer for the text-centric XML subset used by the paper.
//!
//! Supported: elements, text content, self-closing tags, comments, an
//! optional XML declaration, character entities (`&lt; &gt; &amp; &quot;
//! &apos;`), and attributes. Whitespace-only text between elements is
//! dropped; other text is kept verbatim (leading/trailing whitespace
//! trimmed).
//!
//! Two views of a document are offered. [`parse_document`] lowers into the
//! paper's attribute-free [`Tree`] model (attributes are parsed and
//! dropped, since the model has none). [`parse_document_raw`] keeps the
//! full surface — element names with their namespace prefixes, attributes
//! in document order, and the 1-based source line of every open tag — for
//! consumers that need the document verbatim, such as the XSLT frontend
//! and round-trip tooling. [`raw_to_xml`] serializes the raw view back
//! without reordering or dropping anything.

use crate::alphabet::Alphabet;
use crate::hedge::{Hedge, HedgeBuilder, NodeId, NodeLabel, Tree};
use std::fmt;

/// Error from [`parse_document`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

struct Reader<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError {
            offset: self.pos,
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn skip(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        match self.src[self.pos..]
            .windows(end.len())
            .position(|w| w == end.as_bytes())
        {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => self.err(format!("missing {end:?}")),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c == b':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| XmlError {
            offset: start,
            message: "invalid UTF-8 in name".into(),
        })
    }

    /// Parses attributes up to (but not including) `>` or `/>`, in
    /// document order. Entities in values are decoded; a valueless
    /// attribute (`checked`) becomes an empty-string value.
    fn attributes(&mut self) -> Result<Vec<(String, String)>, XmlError> {
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') | None => return Ok(attrs),
                _ => {
                    let key = self.name()?.to_owned();
                    self.skip_ws();
                    let mut value = String::new();
                    if self.peek() == Some(b'=') {
                        self.skip(1);
                        self.skip_ws();
                        let quote = match self.peek() {
                            Some(q @ (b'"' | b'\'')) => q,
                            _ => return self.err("expected quoted attribute value"),
                        };
                        self.skip(1);
                        while let Some(c) = self.peek() {
                            if c == quote {
                                break;
                            }
                            if c == b'&' {
                                value.push(self.entity()?);
                            } else {
                                let start = self.pos;
                                while matches!(self.peek(), Some(c) if c != quote && c != b'&') {
                                    self.pos += 1;
                                }
                                value.push_str(
                                    std::str::from_utf8(&self.src[start..self.pos]).map_err(
                                        |_| XmlError {
                                            offset: start,
                                            message: "invalid UTF-8 in attribute value".into(),
                                        },
                                    )?,
                                );
                            }
                        }
                        if self.peek().is_none() {
                            return self.err("unterminated attribute value");
                        }
                        self.skip(1);
                    }
                    attrs.push((key, value));
                }
            }
        }
    }

    /// The 1-based line number of byte offset `pos`.
    fn line_at(&self, pos: usize) -> usize {
        1 + self.src[..pos.min(self.src.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }

    fn text_run(&mut self) -> Result<String, XmlError> {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            match c {
                b'<' => break,
                b'&' => out.push(self.entity()?),
                _ => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'<' && c != b'&') {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.src[start..self.pos]).map_err(
                        |_| XmlError {
                            offset: start,
                            message: "invalid UTF-8 in text".into(),
                        },
                    )?);
                }
            }
        }
        Ok(out)
    }

    fn entity(&mut self) -> Result<char, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        let start = self.pos;
        self.skip(1);
        let end = self.src[self.pos..]
            .iter()
            .position(|&c| c == b';')
            .ok_or(XmlError {
                offset: start,
                message: "unterminated entity".into(),
            })?;
        let name = std::str::from_utf8(&self.src[self.pos..self.pos + end]).unwrap_or("");
        self.pos += end + 1;
        match name {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            _ => {
                if let Some(hex) = name.strip_prefix("#x") {
                    u32::from_str_radix(hex, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or(XmlError {
                            offset: start,
                            message: format!("bad character reference &{name};"),
                        })
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or(XmlError {
                            offset: start,
                            message: format!("bad character reference &{name};"),
                        })
                } else {
                    Err(XmlError {
                        offset: start,
                        message: format!("unknown entity &{name};"),
                    })
                }
            }
        }
    }

    fn element(&mut self, b: &mut HedgeBuilder, alpha: &mut Alphabet) -> Result<(), XmlError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.skip(1);
        let name = self.name()?.to_owned();
        let sym = alpha.intern(&name);
        self.attributes()?;
        if self.starts_with("/>") {
            self.skip(2);
            b.leaf(sym);
            return Ok(());
        }
        if self.peek() != Some(b'>') {
            return self.err("expected '>'");
        }
        self.skip(1);
        b.open(sym);
        self.content(b, alpha)?;
        if !self.starts_with("</") {
            return self.err(format!("missing closing tag for <{name}>"));
        }
        self.skip(2);
        let close = self.name()?;
        if close != name {
            return self.err(format!("mismatched closing tag </{close}> for <{name}>"));
        }
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return self.err("expected '>' after closing tag name");
        }
        self.skip(1);
        b.close();
        Ok(())
    }

    fn content(&mut self, b: &mut HedgeBuilder, alpha: &mut Alphabet) -> Result<(), XmlError> {
        loop {
            if self.starts_with("</") || self.peek().is_none() {
                return Ok(());
            }
            if self.starts_with("<!--") {
                self.skip(4);
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.skip(9);
                let start = self.pos;
                self.skip_until("]]>")?;
                let raw =
                    std::str::from_utf8(&self.src[start..self.pos - 3]).map_err(|_| XmlError {
                        offset: start,
                        message: "invalid UTF-8 in CDATA".into(),
                    })?;
                if !raw.is_empty() {
                    b.text(raw);
                }
                continue;
            }
            if self.peek() == Some(b'<') {
                self.element(b, alpha)?;
            } else {
                let text = self.text_run()?;
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    b.text(trimmed);
                }
            }
        }
    }

    fn raw_element(&mut self) -> Result<RawElement, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        let line = self.line_at(self.pos);
        self.skip(1);
        let name = self.name()?.to_owned();
        let attrs = self.attributes()?;
        if self.starts_with("/>") {
            self.skip(2);
            return Ok(RawElement {
                name,
                attrs,
                children: Vec::new(),
                line,
            });
        }
        if self.peek() != Some(b'>') {
            return self.err("expected '>'");
        }
        self.skip(1);
        let children = self.raw_content()?;
        if !self.starts_with("</") {
            return self.err(format!("missing closing tag for <{name}>"));
        }
        self.skip(2);
        let close = self.name()?;
        if close != name {
            return self.err(format!("mismatched closing tag </{close}> for <{name}>"));
        }
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return self.err("expected '>' after closing tag name");
        }
        self.skip(1);
        Ok(RawElement {
            name,
            attrs,
            children,
            line,
        })
    }

    fn raw_content(&mut self) -> Result<Vec<RawNode>, XmlError> {
        let mut out = Vec::new();
        loop {
            if self.starts_with("</") || self.peek().is_none() {
                return Ok(out);
            }
            if self.starts_with("<!--") {
                self.skip(4);
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.skip(9);
                let start = self.pos;
                self.skip_until("]]>")?;
                let raw =
                    std::str::from_utf8(&self.src[start..self.pos - 3]).map_err(|_| XmlError {
                        offset: start,
                        message: "invalid UTF-8 in CDATA".into(),
                    })?;
                if !raw.is_empty() {
                    out.push(RawNode::Text(raw.to_owned()));
                }
                continue;
            }
            if self.peek() == Some(b'<') {
                out.push(RawNode::Elem(self.raw_element()?));
            } else {
                let text = self.text_run()?;
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    out.push(RawNode::Text(trimmed.to_owned()));
                }
            }
        }
    }
}

/// A node of the attribute-preserving raw document view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RawNode {
    /// An element with its full surface syntax.
    Elem(RawElement),
    /// A text run (whitespace-only runs between elements are dropped,
    /// matching [`parse_document`]; CDATA is kept verbatim).
    Text(String),
}

/// An element as written: name with any namespace prefix intact,
/// attributes in document order, and the source line of the open tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawElement {
    /// The element name, prefix and all (e.g. `bpmn:text`).
    pub name: String,
    /// Attributes in document order; entities in values are decoded.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<RawNode>,
    /// 1-based line of the element's open tag in the source.
    pub line: usize,
}

impl RawElement {
    /// The value of attribute `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The element's local name (after the last `:`), e.g. `text` for
    /// `bpmn:text`.
    pub fn local_name(&self) -> &str {
        self.name.rsplit(':').next().unwrap_or(&self.name)
    }

    /// Child elements in document order (text runs skipped).
    pub fn child_elements(&self) -> impl Iterator<Item = &RawElement> {
        self.children.iter().filter_map(|c| match c {
            RawNode::Elem(e) => Some(e),
            RawNode::Text(_) => None,
        })
    }
}

/// Parses an XML document into a [`Tree`], interning element names into
/// `alpha`.
///
/// ```
/// use tpx_trees::{xml, Alphabet};
/// let mut sigma = Alphabet::new();
/// let t = xml::parse_document("<a><b>hello</b><c/></a>", &mut sigma).unwrap();
/// assert_eq!(t.text_content(), vec!["hello"]);
/// assert_eq!(t.node_count(), 4);
/// ```
pub fn parse_document(src: &str, alpha: &mut Alphabet) -> Result<Tree, XmlError> {
    let mut r = Reader {
        src: src.as_bytes(),
        pos: 0,
    };
    r.skip_ws();
    if r.starts_with("<?") {
        r.skip(2);
        r.skip_until("?>")?;
        r.skip_ws();
    }
    while r.starts_with("<!--") {
        r.skip(4);
        r.skip_until("-->")?;
        r.skip_ws();
    }
    if r.starts_with("<!DOCTYPE") {
        r.skip_until(">")?;
        r.skip_ws();
    }
    if r.peek() != Some(b'<') {
        return r.err("expected root element");
    }
    let mut b = HedgeBuilder::new();
    r.element(&mut b, alpha)?;
    r.skip_ws();
    if r.pos != r.src.len() {
        return r.err("trailing content after root element");
    }
    Tree::from_hedge(b.finish()).ok_or(XmlError {
        offset: 0,
        message: "document is not a single tree".into(),
    })
}

/// Parses an XML document into the attribute-preserving raw view.
///
/// Unlike [`parse_document`], nothing about the surface is lost: element
/// names keep their namespace prefixes, attributes keep their document
/// order (including on self-closing tags), and every element records its
/// source line. The declaration, top-level comments, and a DOCTYPE are
/// still skipped.
///
/// ```
/// use tpx_trees::xml;
/// let e = xml::parse_document_raw(r#"<bpmn:task id="t" name="Review"/>"#).unwrap();
/// assert_eq!(e.name, "bpmn:task");
/// assert_eq!(e.attrs, vec![("id".into(), "t".into()), ("name".into(), "Review".into())]);
/// ```
pub fn parse_document_raw(src: &str) -> Result<RawElement, XmlError> {
    let mut r = Reader {
        src: src.as_bytes(),
        pos: 0,
    };
    r.skip_ws();
    if r.starts_with("<?") {
        r.skip(2);
        r.skip_until("?>")?;
        r.skip_ws();
    }
    while r.starts_with("<!--") {
        r.skip(4);
        r.skip_until("-->")?;
        r.skip_ws();
    }
    if r.starts_with("<!DOCTYPE") {
        r.skip_until(">")?;
        r.skip_ws();
    }
    if r.peek() != Some(b'<') {
        return r.err("expected root element");
    }
    let root = r.raw_element()?;
    r.skip_ws();
    if r.pos != r.src.len() {
        return r.err("trailing content after root element");
    }
    Ok(root)
}

/// Serializes the raw view back to XML, preserving attribute order and
/// self-closing empty elements. Round-trips with [`parse_document_raw`].
pub fn raw_to_xml(e: &RawElement) -> String {
    let mut out = String::new();
    write_raw(e, &mut out);
    out
}

fn write_raw(e: &RawElement, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        escape_attr_into(v, out);
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &e.children {
        match c {
            RawNode::Text(t) => escape_into(t, out),
            RawNode::Elem(child) => write_raw(child, out),
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

fn escape_attr_into(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

/// Serializes a hedge as XML (text nodes escaped; no declaration).
pub fn to_xml(h: &Hedge, alpha: &Alphabet) -> String {
    let mut out = String::new();
    for &r in h.roots() {
        write_xml(h, alpha, r, &mut out);
    }
    out
}

fn write_xml(h: &Hedge, alpha: &Alphabet, v: NodeId, out: &mut String) {
    match h.label(v) {
        NodeLabel::Text(t) => escape_into(t, out),
        NodeLabel::Elem(s) => {
            let name = alpha.name(*s);
            if h.children(v).is_empty() {
                out.push('<');
                out.push_str(name);
                out.push_str("/>");
            } else {
                out.push('<');
                out.push_str(name);
                out.push('>');
                for &c in h.children(v) {
                    write_xml(h, alpha, c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

fn escape_into(t: &str, out: &mut String) {
    for c in t.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let mut al = Alphabet::new();
        let t = parse_document("<a><b>x</b><b>y<c/></b></a>", &mut al).unwrap();
        assert_eq!(t.text_content(), vec!["x", "y"]);
        assert_eq!(t.node_count(), 6);
    }

    #[test]
    fn handles_declaration_comments_and_doctype() {
        let mut al = Alphabet::new();
        let t = parse_document(
            "<?xml version=\"1.0\"?><!-- top --><!DOCTYPE a><a><!-- in -->t</a>",
            &mut al,
        )
        .unwrap();
        assert_eq!(t.text_content(), vec!["t"]);
    }

    #[test]
    fn ignores_attributes() {
        let mut al = Alphabet::new();
        let t = parse_document(r#"<a id="1" class='x'><b checked/></a>"#, &mut al).unwrap();
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn entities_decode() {
        let mut al = Alphabet::new();
        let t = parse_document("<a>&lt;x&gt; &amp; &#65;&#x42;</a>", &mut al).unwrap();
        assert_eq!(t.text_content(), vec!["<x> & AB"]);
    }

    #[test]
    fn cdata_is_verbatim() {
        let mut al = Alphabet::new();
        let t = parse_document("<a><![CDATA[ <raw> & stuff ]]></a>", &mut al).unwrap();
        assert_eq!(t.text_content(), vec![" <raw> & stuff "]);
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let mut al = Alphabet::new();
        let t = parse_document("<a>\n  <b>x</b>\n  <c/>\n</a>", &mut al).unwrap();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.text_content(), vec!["x"]);
    }

    #[test]
    fn round_trip_through_serializer() {
        let mut al = Alphabet::new();
        let src = "<a><b>x &amp; y</b><c/><d>z</d></a>";
        let t = parse_document(src, &mut al).unwrap();
        let ser = to_xml(t.as_hedge(), &al);
        let back = parse_document(&ser, &mut al).unwrap();
        assert_eq!(*t.as_hedge(), *back.as_hedge());
    }

    #[test]
    fn prefixed_names_round_trip_with_prefix_intact() {
        // `bpmn:text`-style labels must survive parse -> serialize ->
        // parse without the prefix being dropped or garbled.
        let mut al = Alphabet::new();
        let src = "<bpmn:definitions><bpmn:task><bpmn:text>note</bpmn:text></bpmn:task></bpmn:definitions>";
        let t = parse_document(src, &mut al).unwrap();
        let names: Vec<&str> = al.entries().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["bpmn:definitions", "bpmn:task", "bpmn:text"]);
        let ser = to_xml(t.as_hedge(), &al);
        assert_eq!(ser, src);
        let back = parse_document(&ser, &mut al).unwrap();
        assert_eq!(*t.as_hedge(), *back.as_hedge());
    }

    #[test]
    fn raw_view_preserves_attribute_order_on_self_closing_elements() {
        let src = r#"<proc><bpmn:task id="t1" name="Review" bpmn:kind="user"/></proc>"#;
        let root = parse_document_raw(src).unwrap();
        let task = root.child_elements().next().unwrap();
        assert_eq!(task.name, "bpmn:task");
        assert_eq!(
            task.attrs,
            vec![
                ("id".to_owned(), "t1".to_owned()),
                ("name".to_owned(), "Review".to_owned()),
                ("bpmn:kind".to_owned(), "user".to_owned()),
            ]
        );
        // Serialize and reparse: attributes must come back identical and
        // in the same order, not silently reordered.
        let ser = raw_to_xml(&root);
        assert_eq!(ser, src);
        let back = parse_document_raw(&ser).unwrap();
        let back_task = back.child_elements().next().unwrap();
        assert_eq!(back_task.attrs, task.attrs);
    }

    #[test]
    fn raw_view_decodes_and_reencodes_attribute_entities() {
        let src = r#"<x select="concat('&lt;', name(), '&gt;') &amp; &quot;q&quot;"/>"#;
        let e = parse_document_raw(src).unwrap();
        assert_eq!(e.attr("select"), Some("concat('<', name(), '>') & \"q\""));
        let ser = raw_to_xml(&e);
        let back = parse_document_raw(&ser).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn raw_view_records_source_lines_and_local_names() {
        let src = "<a>\n  <b:c/>\n  <d>\n    <e/>\n  </d>\n</a>";
        let root = parse_document_raw(src).unwrap();
        assert_eq!(root.line, 1);
        let kids: Vec<&RawElement> = root.child_elements().collect();
        assert_eq!(kids[0].line, 2);
        assert_eq!(kids[0].local_name(), "c");
        assert_eq!(kids[1].line, 3);
        assert_eq!(kids[1].child_elements().next().unwrap().line, 4);
    }

    #[test]
    fn errors_on_mismatched_tags() {
        let mut al = Alphabet::new();
        assert!(parse_document("<a></b>", &mut al).is_err());
        assert!(parse_document("<a>", &mut al).is_err());
        assert!(parse_document("<a></a><b></b>", &mut al).is_err());
        assert!(parse_document("text only", &mut al).is_err());
        assert!(parse_document("<a>&bogus;</a>", &mut al).is_err());
    }
}
