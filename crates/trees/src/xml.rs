//! A small reader/writer for the text-centric XML subset used by the paper.
//!
//! Supported: elements, text content, self-closing tags, comments, an
//! optional XML declaration, character entities (`&lt; &gt; &amp; &quot;
//! &apos;`), and attributes (parsed and *ignored*, since the paper's model
//! has none). Whitespace-only text between elements is dropped; other text
//! is kept verbatim (leading/trailing whitespace trimmed).

use crate::alphabet::Alphabet;
use crate::hedge::{Hedge, HedgeBuilder, NodeId, NodeLabel, Tree};
use std::fmt;

/// Error from [`parse_document`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

struct Reader<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError {
            offset: self.pos,
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn skip(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        match self.src[self.pos..]
            .windows(end.len())
            .position(|w| w == end.as_bytes())
        {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => self.err(format!("missing {end:?}")),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c == b':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| XmlError {
            offset: start,
            message: "invalid UTF-8 in name".into(),
        })
    }

    /// Skips attributes up to (but not including) `>` or `/>`.
    fn skip_attributes(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') | None => return Ok(()),
                _ => {
                    self.name()?;
                    self.skip_ws();
                    if self.peek() == Some(b'=') {
                        self.skip(1);
                        self.skip_ws();
                        let quote = match self.peek() {
                            Some(q @ (b'"' | b'\'')) => q,
                            _ => return self.err("expected quoted attribute value"),
                        };
                        self.skip(1);
                        while self.peek().is_some_and(|c| c != quote) {
                            self.skip(1);
                        }
                        if self.peek().is_none() {
                            return self.err("unterminated attribute value");
                        }
                        self.skip(1);
                    }
                }
            }
        }
    }

    fn text_run(&mut self) -> Result<String, XmlError> {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            match c {
                b'<' => break,
                b'&' => out.push(self.entity()?),
                _ => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'<' && c != b'&') {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.src[start..self.pos]).map_err(
                        |_| XmlError {
                            offset: start,
                            message: "invalid UTF-8 in text".into(),
                        },
                    )?);
                }
            }
        }
        Ok(out)
    }

    fn entity(&mut self) -> Result<char, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        let start = self.pos;
        self.skip(1);
        let end = self.src[self.pos..]
            .iter()
            .position(|&c| c == b';')
            .ok_or(XmlError {
                offset: start,
                message: "unterminated entity".into(),
            })?;
        let name = std::str::from_utf8(&self.src[self.pos..self.pos + end]).unwrap_or("");
        self.pos += end + 1;
        match name {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            _ => {
                if let Some(hex) = name.strip_prefix("#x") {
                    u32::from_str_radix(hex, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or(XmlError {
                            offset: start,
                            message: format!("bad character reference &{name};"),
                        })
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or(XmlError {
                            offset: start,
                            message: format!("bad character reference &{name};"),
                        })
                } else {
                    Err(XmlError {
                        offset: start,
                        message: format!("unknown entity &{name};"),
                    })
                }
            }
        }
    }

    fn element(&mut self, b: &mut HedgeBuilder, alpha: &mut Alphabet) -> Result<(), XmlError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.skip(1);
        let name = self.name()?.to_owned();
        let sym = alpha.intern(&name);
        self.skip_attributes()?;
        if self.starts_with("/>") {
            self.skip(2);
            b.leaf(sym);
            return Ok(());
        }
        if self.peek() != Some(b'>') {
            return self.err("expected '>'");
        }
        self.skip(1);
        b.open(sym);
        self.content(b, alpha)?;
        if !self.starts_with("</") {
            return self.err(format!("missing closing tag for <{name}>"));
        }
        self.skip(2);
        let close = self.name()?;
        if close != name {
            return self.err(format!("mismatched closing tag </{close}> for <{name}>"));
        }
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return self.err("expected '>' after closing tag name");
        }
        self.skip(1);
        b.close();
        Ok(())
    }

    fn content(&mut self, b: &mut HedgeBuilder, alpha: &mut Alphabet) -> Result<(), XmlError> {
        loop {
            if self.starts_with("</") || self.peek().is_none() {
                return Ok(());
            }
            if self.starts_with("<!--") {
                self.skip(4);
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.skip(9);
                let start = self.pos;
                self.skip_until("]]>")?;
                let raw =
                    std::str::from_utf8(&self.src[start..self.pos - 3]).map_err(|_| XmlError {
                        offset: start,
                        message: "invalid UTF-8 in CDATA".into(),
                    })?;
                if !raw.is_empty() {
                    b.text(raw);
                }
                continue;
            }
            if self.peek() == Some(b'<') {
                self.element(b, alpha)?;
            } else {
                let text = self.text_run()?;
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    b.text(trimmed);
                }
            }
        }
    }
}

/// Parses an XML document into a [`Tree`], interning element names into
/// `alpha`.
///
/// ```
/// use tpx_trees::{xml, Alphabet};
/// let mut sigma = Alphabet::new();
/// let t = xml::parse_document("<a><b>hello</b><c/></a>", &mut sigma).unwrap();
/// assert_eq!(t.text_content(), vec!["hello"]);
/// assert_eq!(t.node_count(), 4);
/// ```
pub fn parse_document(src: &str, alpha: &mut Alphabet) -> Result<Tree, XmlError> {
    let mut r = Reader {
        src: src.as_bytes(),
        pos: 0,
    };
    r.skip_ws();
    if r.starts_with("<?") {
        r.skip(2);
        r.skip_until("?>")?;
        r.skip_ws();
    }
    while r.starts_with("<!--") {
        r.skip(4);
        r.skip_until("-->")?;
        r.skip_ws();
    }
    if r.starts_with("<!DOCTYPE") {
        r.skip_until(">")?;
        r.skip_ws();
    }
    if r.peek() != Some(b'<') {
        return r.err("expected root element");
    }
    let mut b = HedgeBuilder::new();
    r.element(&mut b, alpha)?;
    r.skip_ws();
    if r.pos != r.src.len() {
        return r.err("trailing content after root element");
    }
    Tree::from_hedge(b.finish()).ok_or(XmlError {
        offset: 0,
        message: "document is not a single tree".into(),
    })
}

/// Serializes a hedge as XML (text nodes escaped; no declaration).
pub fn to_xml(h: &Hedge, alpha: &Alphabet) -> String {
    let mut out = String::new();
    for &r in h.roots() {
        write_xml(h, alpha, r, &mut out);
    }
    out
}

fn write_xml(h: &Hedge, alpha: &Alphabet, v: NodeId, out: &mut String) {
    match h.label(v) {
        NodeLabel::Text(t) => escape_into(t, out),
        NodeLabel::Elem(s) => {
            let name = alpha.name(*s);
            if h.children(v).is_empty() {
                out.push('<');
                out.push_str(name);
                out.push_str("/>");
            } else {
                out.push('<');
                out.push_str(name);
                out.push('>');
                for &c in h.children(v) {
                    write_xml(h, alpha, c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

fn escape_into(t: &str, out: &mut String) {
    for c in t.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let mut al = Alphabet::new();
        let t = parse_document("<a><b>x</b><b>y<c/></b></a>", &mut al).unwrap();
        assert_eq!(t.text_content(), vec!["x", "y"]);
        assert_eq!(t.node_count(), 6);
    }

    #[test]
    fn handles_declaration_comments_and_doctype() {
        let mut al = Alphabet::new();
        let t = parse_document(
            "<?xml version=\"1.0\"?><!-- top --><!DOCTYPE a><a><!-- in -->t</a>",
            &mut al,
        )
        .unwrap();
        assert_eq!(t.text_content(), vec!["t"]);
    }

    #[test]
    fn ignores_attributes() {
        let mut al = Alphabet::new();
        let t = parse_document(r#"<a id="1" class='x'><b checked/></a>"#, &mut al).unwrap();
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn entities_decode() {
        let mut al = Alphabet::new();
        let t = parse_document("<a>&lt;x&gt; &amp; &#65;&#x42;</a>", &mut al).unwrap();
        assert_eq!(t.text_content(), vec!["<x> & AB"]);
    }

    #[test]
    fn cdata_is_verbatim() {
        let mut al = Alphabet::new();
        let t = parse_document("<a><![CDATA[ <raw> & stuff ]]></a>", &mut al).unwrap();
        assert_eq!(t.text_content(), vec![" <raw> & stuff "]);
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let mut al = Alphabet::new();
        let t = parse_document("<a>\n  <b>x</b>\n  <c/>\n</a>", &mut al).unwrap();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.text_content(), vec!["x"]);
    }

    #[test]
    fn round_trip_through_serializer() {
        let mut al = Alphabet::new();
        let src = "<a><b>x &amp; y</b><c/><d>z</d></a>";
        let t = parse_document(src, &mut al).unwrap();
        let ser = to_xml(t.as_hedge(), &al);
        let back = parse_document(&ser, &mut al).unwrap();
        assert_eq!(*t.as_hedge(), *back.as_hedge());
    }

    #[test]
    fn errors_on_mismatched_tags() {
        let mut al = Alphabet::new();
        assert!(parse_document("<a></b>", &mut al).is_err());
        assert!(parse_document("<a>", &mut al).is_err());
        assert!(parse_document("<a></a><b></b>", &mut al).is_err());
        assert!(parse_document("text only", &mut al).is_err());
        assert!(parse_document("<a>&bogus;</a>", &mut al).is_err());
    }
}
