//! Unranked text trees and hedges (Section 2 of the paper).
//!
//! A *hedge* is a finite sequence of trees; a *tree* is a hedge with exactly
//! one root. Leaves may be labelled with values from the infinite set `Text`
//! (text nodes); inner nodes and element leaves carry symbols from a finite
//! alphabet `Σ`.
//!
//! Hedges are stored in a flat arena ([`Hedge`]); [`Tree`] is a thin wrapper
//! enforcing the single-root invariant. Nodes are addressed by [`NodeId`]s
//! and, following the paper, also by their *address* in `ℕ*` (1-based child
//! positions), which induces document order (`<lex`).

use crate::alphabet::{Alphabet, Symbol};
use std::cmp::Ordering;
use std::fmt;
use std::ops::Deref;

/// Identifier of a node within one [`Hedge`] arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Arena index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The label of a node: either an element label from `Σ` or a `Text` value.
///
/// The paper models `Text` as an abstract infinite set; here text values are
/// arbitrary strings, treated opaquely by all algorithms (which keeps every
/// tree language closed under `Text`-substitutions by construction).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeLabel {
    /// An element node labelled with a symbol from `Σ`.
    Elem(Symbol),
    /// A text node carrying a `Text` value. Always a leaf.
    Text(String),
}

impl NodeLabel {
    /// The element symbol, if this is an element label.
    pub fn elem(&self) -> Option<Symbol> {
        match self {
            NodeLabel::Elem(s) => Some(*s),
            NodeLabel::Text(_) => None,
        }
    }

    /// The text value, if this is a text label.
    pub fn text(&self) -> Option<&str> {
        match self {
            NodeLabel::Elem(_) => None,
            NodeLabel::Text(t) => Some(t),
        }
    }

    /// Whether this is a text label.
    pub fn is_text(&self) -> bool {
        matches!(self, NodeLabel::Text(_))
    }
}

#[derive(Clone, Debug)]
struct Node {
    label: NodeLabel,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// An unranked hedge (sequence of trees) over `Σ ∪ Text`.
///
/// Invariants:
/// * text nodes are leaves,
/// * `roots` and every `children` list are in sibling order,
/// * parent/child links are consistent.
///
/// Structural equality ([`PartialEq`]) compares shapes and labels, ignoring
/// arena numbering, so two hedges built in different orders compare equal
/// when they denote the same hedge.
#[derive(Clone, Default)]
pub struct Hedge {
    nodes: Vec<Node>,
    roots: Vec<NodeId>,
}

impl Hedge {
    /// The empty hedge `ε`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether this is the empty hedge.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// The root nodes, in sibling order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Total number of nodes (the paper's `|h|`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The label of `v`.
    pub fn label(&self, v: NodeId) -> &NodeLabel {
        &self.nodes[v.index()].label
    }

    /// The children of `v`, in sibling order.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.nodes[v.index()].children
    }

    /// The parent of `v` (`None` for roots).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.nodes[v.index()].parent
    }

    /// Whether `v` is a leaf (no children).
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children(v).is_empty()
    }

    /// Whether `v` is a text node.
    pub fn is_text(&self, v: NodeId) -> bool {
        self.label(v).is_text()
    }

    /// The 1-based position of `v` among its siblings.
    pub fn sibling_position(&self, v: NodeId) -> usize {
        let sibs = match self.parent(v) {
            Some(p) => self.children(p),
            None => self.roots(),
        };
        1 + sibs
            .iter()
            .position(|&s| s == v)
            .expect("node not among its siblings")
    }

    /// The next sibling of `v`, if any.
    pub fn next_sibling(&self, v: NodeId) -> Option<NodeId> {
        let sibs = match self.parent(v) {
            Some(p) => self.children(p),
            None => self.roots(),
        };
        let i = sibs.iter().position(|&s| s == v)?;
        sibs.get(i + 1).copied()
    }

    /// The previous sibling of `v`, if any.
    pub fn prev_sibling(&self, v: NodeId) -> Option<NodeId> {
        let sibs = match self.parent(v) {
            Some(p) => self.children(p),
            None => self.roots(),
        };
        let i = sibs.iter().position(|&s| s == v)?;
        i.checked_sub(1).map(|j| sibs[j])
    }

    /// The first child of `v`, if any.
    pub fn first_child(&self, v: NodeId) -> Option<NodeId> {
        self.children(v).first().copied()
    }

    /// The address of `v` as a sequence of 1-based child positions, exactly
    /// the paper's node naming in `ℕ*` (e.g. `[1, 1, 2]` for node `112` in
    /// Figure 1).
    pub fn address(&self, v: NodeId) -> Vec<usize> {
        let mut addr = Vec::new();
        let mut cur = v;
        loop {
            addr.push(self.sibling_position(cur));
            match self.parent(cur) {
                Some(p) => cur = p,
                None => break,
            }
        }
        addr.reverse();
        addr
    }

    /// Depth of `v`; the root of a tree has depth 1 (paper convention).
    pub fn depth(&self, v: NodeId) -> usize {
        let mut d = 1;
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Ancestors of `v` from the root down to and including `v`.
    pub fn ancestors_from_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = Some(v);
        while let Some(u) = cur {
            path.push(u);
            cur = self.parent(u);
        }
        path.reverse();
        path
    }

    /// The ancestor string `anc-str(v)`: labels on the path from the root to
    /// `v`, inclusive.
    pub fn ancestor_string(&self, v: NodeId) -> Vec<NodeLabel> {
        self.ancestors_from_root(v)
            .into_iter()
            .map(|u| self.label(u).clone())
            .collect()
    }

    /// The lowest common ancestor of `v1` and `v2` (longest common prefix of
    /// their addresses). `None` when they live in different root trees.
    pub fn lca(&self, v1: NodeId, v2: NodeId) -> Option<NodeId> {
        let p1 = self.ancestors_from_root(v1);
        let p2 = self.ancestors_from_root(v2);
        let mut best = None;
        for (a, b) in p1.iter().zip(p2.iter()) {
            if a == b {
                best = Some(*a);
            } else {
                break;
            }
        }
        best
    }

    /// Compares two nodes in document order (`<lex` on addresses). Ancestors
    /// come before their descendants.
    pub fn doc_cmp(&self, a: NodeId, b: NodeId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        self.address(a).cmp(&self.address(b))
    }

    /// All nodes in document order (depth-first, left to right).
    pub fn dfs(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<NodeId> = self.roots.iter().rev().copied().collect();
        while let Some(v) = stack.pop() {
            out.push(v);
            stack.extend(self.children(v).iter().rev());
        }
        out
    }

    /// Nodes of the subtree rooted at `v`, in document order.
    pub fn dfs_from(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            out.push(u);
            stack.extend(self.children(u).iter().rev());
        }
        out
    }

    /// Whether `anc` is an ancestor of `v` (proper or reflexive per `strict`).
    pub fn is_ancestor(&self, anc: NodeId, v: NodeId, strict: bool) -> bool {
        if anc == v {
            return !strict;
        }
        let mut cur = self.parent(v);
        while let Some(u) = cur {
            if u == anc {
                return true;
            }
            cur = self.parent(u);
        }
        false
    }

    /// The text nodes in document order (`text-nodes` in the paper).
    pub fn text_nodes(&self) -> Vec<NodeId> {
        self.dfs()
            .into_iter()
            .filter(|&v| self.is_text(v))
            .collect()
    }

    /// The text content: the sequence of `Text` values of all text nodes in
    /// document order (a string over the alphabet `Text`).
    pub fn text_content(&self) -> Vec<&str> {
        self.dfs()
            .into_iter()
            .filter_map(|v| self.label(v).text())
            .collect()
    }

    /// The frontier: labels of all leaves in document order.
    pub fn frontier(&self) -> Vec<NodeLabel> {
        self.dfs()
            .into_iter()
            .filter(|&v| self.is_leaf(v))
            .map(|v| self.label(v).clone())
            .collect()
    }

    /// Leaves in document order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.dfs()
            .into_iter()
            .filter(|&v| self.is_leaf(v))
            .collect()
    }

    /// Extracts the subtree rooted at `v` as a fresh [`Tree`].
    pub fn subtree(&self, v: NodeId) -> Tree {
        let mut b = HedgeBuilder::new();
        self.copy_into(&mut b, v);
        b.finish_tree().expect("single root by construction")
    }

    fn copy_into(&self, b: &mut HedgeBuilder, v: NodeId) {
        match self.label(v) {
            NodeLabel::Text(t) => {
                b.text(t);
            }
            NodeLabel::Elem(s) => {
                b.open(*s);
                for &c in self.children(v) {
                    self.copy_into(b, c);
                }
                b.close();
            }
        }
    }

    /// The paper's `h[u ← h']`: a new hedge with `subtree(u)` replaced by the
    /// hedge `repl` (which may be empty, deleting the subtree, or contain
    /// several trees).
    pub fn replace(&self, u: NodeId, repl: &Hedge) -> Hedge {
        let mut b = HedgeBuilder::new();
        for &r in self.roots() {
            self.replace_into(&mut b, r, u, repl);
        }
        b.finish()
    }

    fn replace_into(&self, b: &mut HedgeBuilder, v: NodeId, target: NodeId, repl: &Hedge) {
        if v == target {
            for &r in repl.roots() {
                repl.copy_into(b, r);
            }
            return;
        }
        match self.label(v) {
            NodeLabel::Text(t) => {
                b.text(t);
            }
            NodeLabel::Elem(s) => {
                b.open(*s);
                for &c in self.children(v) {
                    self.replace_into(b, c, target, repl);
                }
                b.close();
            }
        }
    }

    /// Relabels a text node in place. Panics if `v` is not a text node.
    pub fn set_text(&mut self, v: NodeId, value: &str) {
        match &mut self.nodes[v.index()].label {
            NodeLabel::Text(t) => *t = value.to_owned(),
            NodeLabel::Elem(_) => panic!("set_text on an element node"),
        }
    }

    /// Renders the hedge in the paper's term syntax using `alpha` for labels.
    pub fn display<'a>(&'a self, alpha: &'a Alphabet) -> impl fmt::Display + 'a {
        crate::term::DisplayHedge { hedge: self, alpha }
    }

    fn structural_eq_node(&self, a: NodeId, other: &Hedge, b: NodeId) -> bool {
        if self.label(a) != other.label(b) {
            return false;
        }
        let ca = self.children(a);
        let cb = other.children(b);
        ca.len() == cb.len()
            && ca
                .iter()
                .zip(cb.iter())
                .all(|(&x, &y)| self.structural_eq_node(x, other, y))
    }
}

impl PartialEq for Hedge {
    fn eq(&self, other: &Self) -> bool {
        self.roots.len() == other.roots.len()
            && self
                .roots
                .iter()
                .zip(other.roots.iter())
                .all(|(&a, &b)| self.structural_eq_node(a, other, b))
    }
}

impl Eq for Hedge {}

impl fmt::Debug for Hedge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Debug output without an alphabet: symbols rendered as σi.
        fn rec(h: &Hedge, v: NodeId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match h.label(v) {
                NodeLabel::Text(t) => write!(f, "{t:?}"),
                NodeLabel::Elem(s) => {
                    write!(f, "{s:?}")?;
                    if !h.children(v).is_empty() {
                        write!(f, "(")?;
                        for (i, &c) in h.children(v).iter().enumerate() {
                            if i > 0 {
                                write!(f, " ")?;
                            }
                            rec(h, c, f)?;
                        }
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        for (i, &r) in self.roots.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            rec(self, r, f)?;
        }
        Ok(())
    }
}

/// A tree: a hedge with exactly one root. Derefs to [`Hedge`].
#[derive(Clone, PartialEq, Eq)]
pub struct Tree(Hedge);

impl Tree {
    /// Wraps a single-root hedge. Returns `None` if `h` is not a tree.
    pub fn from_hedge(h: Hedge) -> Option<Tree> {
        (h.roots().len() == 1).then_some(Tree(h))
    }

    /// A single text-leaf tree.
    pub fn text(value: &str) -> Tree {
        let mut b = HedgeBuilder::new();
        b.text(value);
        b.finish_tree().unwrap()
    }

    /// A single element leaf `σ()`.
    pub fn leaf(s: Symbol) -> Tree {
        let mut b = HedgeBuilder::new();
        b.open(s);
        b.close();
        b.finish_tree().unwrap()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.0.roots()[0]
    }

    /// The underlying hedge.
    pub fn as_hedge(&self) -> &Hedge {
        &self.0
    }

    /// Consumes the tree, yielding its hedge.
    pub fn into_hedge(self) -> Hedge {
        self.0
    }
}

impl Deref for Tree {
    type Target = Hedge;
    fn deref(&self) -> &Hedge {
        &self.0
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Linear-time builder for hedges, with an open/close (SAX-like) interface.
///
/// ```
/// use tpx_trees::{Alphabet, HedgeBuilder};
/// let mut sigma = Alphabet::new();
/// let (a, b) = (sigma.intern("a"), sigma.intern("b"));
/// let mut hb = HedgeBuilder::new();
/// hb.open(a);
/// hb.text("hello");
/// hb.open(b);
/// hb.close();
/// hb.close();
/// let t = hb.finish_tree().unwrap();
/// assert_eq!(t.node_count(), 3);
/// assert_eq!(t.text_content(), vec!["hello"]);
/// ```
#[derive(Default)]
pub struct HedgeBuilder {
    hedge: Hedge,
    stack: Vec<NodeId>,
}

impl HedgeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_node(&mut self, label: NodeLabel) -> NodeId {
        let id = NodeId(u32::try_from(self.hedge.nodes.len()).expect("hedge too large"));
        let parent = self.stack.last().copied();
        self.hedge.nodes.push(Node {
            label,
            parent,
            children: Vec::new(),
        });
        match parent {
            Some(p) => self.hedge.nodes[p.index()].children.push(id),
            None => self.hedge.roots.push(id),
        }
        id
    }

    /// Opens an element node `σ(...`; returns its id.
    pub fn open(&mut self, s: Symbol) -> NodeId {
        let id = self.push_node(NodeLabel::Elem(s));
        self.stack.push(id);
        id
    }

    /// Closes the most recently opened element.
    pub fn close(&mut self) {
        self.stack.pop().expect("close without open");
    }

    /// Adds a text leaf; returns its id.
    pub fn text(&mut self, value: &str) -> NodeId {
        self.push_node(NodeLabel::Text(value.to_owned()))
    }

    /// Adds an element leaf `σ()`; returns its id.
    pub fn leaf(&mut self, s: Symbol) -> NodeId {
        let id = self.open(s);
        self.close();
        id
    }

    /// Splices a copy of `h` at the current position.
    pub fn hedge(&mut self, h: &Hedge) {
        for &r in h.roots() {
            h.copy_into(self, r);
        }
    }

    /// Finishes, returning the built hedge. Panics on unclosed elements.
    pub fn finish(self) -> Hedge {
        assert!(self.stack.is_empty(), "unclosed element in builder");
        self.hedge
    }

    /// Finishes as a tree; `None` if the hedge does not have exactly one root.
    pub fn finish_tree(self) -> Option<Tree> {
        Tree::from_hedge(self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (Alphabet, Symbol, Symbol, Symbol) {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let b = al.intern("b");
        let c = al.intern("c");
        (al, a, b, c)
    }

    /// a( "x" b( "y" c ) "z" )
    fn sample() -> (Alphabet, Tree) {
        let (al, a, b, c) = abc();
        let mut hb = HedgeBuilder::new();
        hb.open(a);
        hb.text("x");
        hb.open(b);
        hb.text("y");
        hb.leaf(c);
        hb.close();
        hb.text("z");
        hb.close();
        (al, hb.finish_tree().unwrap())
    }

    #[test]
    fn navigation_basics() {
        let (_, t) = sample();
        let root = t.root();
        assert_eq!(t.children(root).len(), 3);
        assert_eq!(t.node_count(), 6);
        let kids = t.children(root).to_vec();
        assert_eq!(t.parent(kids[0]), Some(root));
        assert_eq!(t.next_sibling(kids[0]), Some(kids[1]));
        assert_eq!(t.prev_sibling(kids[1]), Some(kids[0]));
        assert_eq!(t.prev_sibling(kids[0]), None);
        assert_eq!(t.next_sibling(kids[2]), None);
        assert_eq!(t.first_child(root), Some(kids[0]));
        assert!(t.is_leaf(kids[0]));
        assert!(!t.is_leaf(kids[1]));
    }

    #[test]
    fn addresses_follow_paper_convention() {
        let (_, t) = sample();
        let root = t.root();
        assert_eq!(t.address(root), vec![1]);
        let b = t.children(root)[1];
        assert_eq!(t.address(b), vec![1, 2]);
        let c = t.children(b)[1];
        assert_eq!(t.address(c), vec![1, 2, 2]);
        assert_eq!(t.depth(root), 1);
        assert_eq!(t.depth(c), 3);
    }

    #[test]
    fn document_order_and_text_content() {
        let (_, t) = sample();
        assert_eq!(t.text_content(), vec!["x", "y", "z"]);
        let dfs = t.dfs();
        assert_eq!(dfs.len(), 6);
        for w in dfs.windows(2) {
            assert_eq!(t.doc_cmp(w[0], w[1]), Ordering::Less);
        }
    }

    #[test]
    fn frontier_contains_leaves_in_order() {
        let (al, t) = sample();
        let f = t.frontier();
        assert_eq!(f.len(), 4);
        assert_eq!(f[0].text(), Some("x"));
        assert_eq!(f[1].text(), Some("y"));
        assert_eq!(f[2].elem(), Some(al.sym("c")));
        assert_eq!(f[3].text(), Some("z"));
    }

    #[test]
    fn lca_and_ancestors() {
        let (_, t) = sample();
        let root = t.root();
        let b = t.children(root)[1];
        let y = t.children(b)[0];
        let z = t.children(root)[2];
        assert_eq!(t.lca(y, z), Some(root));
        assert_eq!(t.lca(y, b), Some(b));
        assert_eq!(t.lca(y, y), Some(y));
        assert!(t.is_ancestor(root, y, true));
        assert!(!t.is_ancestor(y, root, true));
        assert!(t.is_ancestor(y, y, false));
        assert!(!t.is_ancestor(y, y, true));
    }

    #[test]
    fn ancestor_string() {
        let (al, t) = sample();
        let b = t.children(t.root())[1];
        let y = t.children(b)[0];
        let anc = t.ancestor_string(y);
        assert_eq!(anc.len(), 3);
        assert_eq!(anc[0].elem(), Some(al.sym("a")));
        assert_eq!(anc[1].elem(), Some(al.sym("b")));
        assert_eq!(anc[2].text(), Some("y"));
    }

    #[test]
    fn subtree_extraction() {
        let (_, t) = sample();
        let b = t.children(t.root())[1];
        let sub = t.subtree(b);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.text_content(), vec!["y"]);
    }

    #[test]
    fn replace_subtree_with_hedge() {
        let (al, t) = sample();
        let b = t.children(t.root())[1];
        // Replace b(...) with the two-tree hedge `c c`.
        let mut rb = HedgeBuilder::new();
        rb.leaf(al.sym("c"));
        rb.leaf(al.sym("c"));
        let repl = rb.finish();
        let out = t.replace(b, &repl);
        assert_eq!(out.node_count(), 5);
        assert_eq!(out.text_content(), vec!["x", "z"]);
        // Replace with empty hedge deletes.
        let del = t.replace(b, &Hedge::new());
        assert_eq!(del.node_count(), 3);
        assert_eq!(del.text_content(), vec!["x", "z"]);
    }

    #[test]
    fn structural_equality_ignores_build_order() {
        let (al, t) = sample();
        // Rebuild via replace with identical content.
        let b = t.children(t.root())[1];
        let same = t.replace(b, t.subtree(b).as_hedge());
        assert_eq!(*t.as_hedge(), same);
        let diff = t.replace(b, &Hedge::new());
        assert_ne!(*t.as_hedge(), diff);
        let _ = al;
    }

    #[test]
    fn empty_hedge() {
        let h = Hedge::new();
        assert!(h.is_empty());
        assert_eq!(h.node_count(), 0);
        assert!(h.text_content().is_empty());
        assert!(h.dfs().is_empty());
    }

    #[test]
    fn set_text_relabels() {
        let (_, t) = sample();
        let mut h = t.into_hedge();
        let tx = h.text_nodes()[0];
        h.set_text(tx, "new");
        assert_eq!(h.text_content(), vec!["new", "y", "z"]);
    }

    #[test]
    fn replace_at_root_and_multi_root_hedges() {
        let (al, t) = sample();
        // Replacing the root with a hedge of two leaves.
        let mut rb = HedgeBuilder::new();
        rb.leaf(al.sym("c"));
        rb.leaf(al.sym("b"));
        let repl = rb.finish();
        let out = t.replace(t.root(), &repl);
        assert_eq!(out.roots().len(), 2);
        assert_eq!(out.node_count(), 2);
        // doc order across multiple roots.
        let roots = out.roots().to_vec();
        assert_eq!(out.doc_cmp(roots[0], roots[1]), Ordering::Less);
        assert_eq!(out.address(roots[1]), vec![2]);
    }

    #[test]
    fn siblings_across_roots() {
        let (al, _) = sample();
        let mut b = HedgeBuilder::new();
        b.leaf(al.sym("a"));
        b.text("t");
        b.leaf(al.sym("b"));
        let h = b.finish();
        let roots = h.roots().to_vec();
        assert_eq!(h.next_sibling(roots[0]), Some(roots[1]));
        assert_eq!(h.prev_sibling(roots[2]), Some(roots[1]));
        assert_eq!(h.sibling_position(roots[2]), 3);
        assert_eq!(h.lca(roots[0], roots[2]), None);
        assert_eq!(h.depth(roots[0]), 1);
    }

    #[test]
    fn subtree_of_text_leaf() {
        let (_, t) = sample();
        let tx = t.text_nodes()[0];
        let sub = t.subtree(tx);
        assert_eq!(sub.node_count(), 1);
        assert_eq!(sub.text_content(), vec!["x"]);
    }

    #[test]
    fn builder_splices_hedges() {
        let (al, t) = sample();
        let mut b = HedgeBuilder::new();
        b.open(al.sym("c"));
        b.hedge(t.as_hedge());
        b.hedge(t.as_hedge());
        b.close();
        let out = b.finish();
        assert_eq!(out.node_count(), 1 + 2 * t.node_count());
        assert_eq!(out.text_content().len(), 6);
    }

    #[test]
    #[should_panic(expected = "set_text on an element node")]
    fn set_text_on_element_panics() {
        let (_, t) = sample();
        let root = t.root();
        let mut h = t.into_hedge();
        h.set_text(root, "oops");
    }
}
