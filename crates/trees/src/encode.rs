//! First-child / next-sibling binary encoding of unranked hedges.
//!
//! The encoding `enc(·)` maps a hedge to a *binary* tree over the alphabet
//! `Σ ⊎ {text} ⊎ {⊥}`:
//!
//! * `enc(ε) = ⊥` (a nullary padding symbol),
//! * `enc(σ(h) · rest) = σ(enc(h), enc(rest))`.
//!
//! Every element/text node of the original hedge becomes a binary node whose
//! left child encodes its children hedge and whose right child encodes its
//! following siblings; `⊥` leaves pad the frontier. Text nodes keep their
//! value but always have `⊥` children.
//!
//! This encoding is MSO-definable in both directions and is the standard
//! bridge between unranked tree languages and classical (binary) tree
//! automata; the [`tpx-treeauto`](../../treeauto) and [`tpx-mso`](../../mso)
//! crates run on encoded trees.

use crate::alphabet::Symbol;
use crate::hedge::{Hedge, HedgeBuilder, NodeId, NodeLabel};
use std::fmt;

/// Identifier of a node within a [`BinTree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BinNodeId(pub u32);

impl BinNodeId {
    /// Arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BinNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Label of a binary-encoded node.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BinLabel {
    /// An element node from the original hedge.
    Elem(Symbol),
    /// A text node from the original hedge (value retained).
    Text(String),
    /// The `⊥` padding leaf.
    Nil,
}

impl BinLabel {
    /// Whether this is the `⊥` padding leaf.
    pub fn is_nil(&self) -> bool {
        matches!(self, BinLabel::Nil)
    }
}

#[derive(Clone, Debug)]
struct BinNode {
    label: BinLabel,
    /// `(left, right)` for non-`Nil` nodes; `None` for `Nil` leaves.
    kids: Option<(BinNodeId, BinNodeId)>,
    parent: Option<(BinNodeId, bool)>, // (parent, is_right_child)
    /// The original hedge node this binary node encodes (`None` for `⊥`).
    source: Option<NodeId>,
}

/// A binary tree over `Σ ⊎ {text} ⊎ {⊥}`: every non-`⊥` node has exactly two
/// children, every `⊥` node is a leaf.
#[derive(Clone)]
pub struct BinTree {
    nodes: Vec<BinNode>,
    root: BinNodeId,
}

impl BinTree {
    /// The root node.
    pub fn root(&self) -> BinNodeId {
        self.root
    }

    /// Number of nodes, including `⊥` padding.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The label of `v`.
    pub fn label(&self, v: BinNodeId) -> &BinLabel {
        &self.nodes[v.index()].label
    }

    /// The two children of a non-`⊥` node.
    pub fn kids(&self, v: BinNodeId) -> Option<(BinNodeId, BinNodeId)> {
        self.nodes[v.index()].kids
    }

    /// The left child (first-child encoding).
    pub fn left(&self, v: BinNodeId) -> Option<BinNodeId> {
        self.kids(v).map(|(l, _)| l)
    }

    /// The right child (next-sibling encoding).
    pub fn right(&self, v: BinNodeId) -> Option<BinNodeId> {
        self.kids(v).map(|(_, r)| r)
    }

    /// Parent plus whether `v` is its right child.
    pub fn parent(&self, v: BinNodeId) -> Option<(BinNodeId, bool)> {
        self.nodes[v.index()].parent
    }

    /// The original hedge node encoded by `v` (`None` for `⊥` padding).
    pub fn source(&self, v: BinNodeId) -> Option<NodeId> {
        self.nodes[v.index()].source
    }

    /// All nodes in a deterministic pre-order (node, left, right).
    pub fn preorder(&self) -> Vec<BinNodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            out.push(v);
            if let Some((l, r)) = self.kids(v) {
                stack.push(r);
                stack.push(l);
            }
        }
        out
    }

    /// All nodes in post-order (left, right, node) — the evaluation order of
    /// bottom-up tree automata.
    pub fn postorder(&self) -> Vec<BinNodeId> {
        // Compute by reversing a (node, right, left) pre-order.
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            out.push(v);
            if let Some((l, r)) = self.kids(v) {
                stack.push(l);
                stack.push(r);
            }
        }
        out.reverse();
        out
    }

    fn add(&mut self, label: BinLabel, source: Option<NodeId>) -> BinNodeId {
        let id = BinNodeId(u32::try_from(self.nodes.len()).expect("tree too large"));
        self.nodes.push(BinNode {
            label,
            kids: None,
            parent: None,
            source,
        });
        id
    }
}

/// Encodes a hedge into its first-child/next-sibling binary tree.
pub fn encode_hedge(h: &Hedge) -> BinTree {
    let mut bt = BinTree {
        nodes: Vec::with_capacity(2 * h.node_count() + 1),
        root: BinNodeId(0),
    };
    let root = enc_seq(h, h.roots(), &mut bt);
    bt.root = root;
    bt
}

/// Encodes a tree (as the one-tree hedge `t`).
pub fn encode_tree(t: &crate::hedge::Tree) -> BinTree {
    encode_hedge(t.as_hedge())
}

fn enc_seq(h: &Hedge, seq: &[NodeId], bt: &mut BinTree) -> BinNodeId {
    match seq.split_first() {
        None => bt.add(BinLabel::Nil, None),
        Some((&first, rest)) => {
            let label = match h.label(first) {
                NodeLabel::Elem(s) => BinLabel::Elem(*s),
                NodeLabel::Text(t) => BinLabel::Text(t.clone()),
            };
            let me = bt.add(label, Some(first));
            let l = enc_seq(h, h.children(first), bt);
            let r = enc_seq(h, rest, bt);
            bt.nodes[me.index()].kids = Some((l, r));
            bt.nodes[l.index()].parent = Some((me, false));
            bt.nodes[r.index()].parent = Some((me, true));
            me
        }
    }
}

/// Decodes a binary-encoded tree back into the original hedge.
///
/// Panics if the input is not a valid encoding (e.g. a text node with a
/// non-`⊥` left child).
pub fn decode_hedge(bt: &BinTree) -> Hedge {
    let mut b = HedgeBuilder::new();
    dec_seq(bt, bt.root(), &mut b);
    b.finish()
}

fn dec_seq(bt: &BinTree, v: BinNodeId, b: &mut HedgeBuilder) {
    match bt.label(v) {
        BinLabel::Nil => {}
        BinLabel::Text(t) => {
            let (l, r) = bt.kids(v).expect("text node must have padding children");
            assert!(
                bt.label(l).is_nil(),
                "invalid encoding: text node with children"
            );
            b.text(t);
            dec_seq(bt, r, b);
        }
        BinLabel::Elem(s) => {
            let (l, r) = bt.kids(v).expect("element node must have two children");
            b.open(*s);
            dec_seq(bt, l, b);
            b.close();
            dec_seq(bt, r, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::term::parse_hedge;

    fn enc(src: &str) -> (Hedge, BinTree) {
        let mut al = Alphabet::new();
        let h = parse_hedge(src, &mut al).unwrap();
        let bt = encode_hedge(&h);
        (h, bt)
    }

    #[test]
    fn empty_hedge_encodes_to_nil() {
        let (_, bt) = enc("");
        assert_eq!(bt.node_count(), 1);
        assert!(bt.label(bt.root()).is_nil());
    }

    #[test]
    fn single_leaf() {
        let (h, bt) = enc("a");
        // a(⊥, ⊥)
        assert_eq!(bt.node_count(), 3);
        let (l, r) = bt.kids(bt.root()).unwrap();
        assert!(bt.label(l).is_nil());
        assert!(bt.label(r).is_nil());
        assert_eq!(decode_hedge(&bt), h);
    }

    #[test]
    fn structure_of_encoding() {
        let (_, bt) = enc(r#"a(b c) d"#);
        // root = a, left = enc(b c), right = enc(d)
        let root = bt.root();
        assert!(matches!(bt.label(root), BinLabel::Elem(_)));
        let (l, r) = bt.kids(root).unwrap();
        assert!(matches!(bt.label(l), BinLabel::Elem(_))); // b
        assert!(matches!(bt.label(r), BinLabel::Elem(_))); // d
        let (_, bsib) = bt.kids(l).unwrap();
        assert!(matches!(bt.label(bsib), BinLabel::Elem(_))); // c
                                                              // node count = original nodes + (original + 1) nils
        assert_eq!(bt.node_count(), 4 + 5);
    }

    #[test]
    fn text_nodes_round_trip() {
        let (h, bt) = enc(r#"a("x" b("y") "z")"#);
        assert_eq!(decode_hedge(&bt), h);
    }

    #[test]
    fn parent_links_consistent() {
        let (_, bt) = enc(r#"a(b c)"#);
        for v in bt.preorder() {
            if let Some((l, r)) = bt.kids(v) {
                assert_eq!(bt.parent(l), Some((v, false)));
                assert_eq!(bt.parent(r), Some((v, true)));
            }
        }
        assert_eq!(bt.parent(bt.root()), None);
    }

    #[test]
    fn postorder_ends_at_root_and_visits_children_first() {
        let (_, bt) = enc(r#"a(b c) d"#);
        let post = bt.postorder();
        assert_eq!(post.len(), bt.node_count());
        assert_eq!(*post.last().unwrap(), bt.root());
        let pos: std::collections::HashMap<_, _> =
            post.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for v in bt.preorder() {
            if let Some((l, r)) = bt.kids(v) {
                assert!(pos[&l] < pos[&v]);
                assert!(pos[&r] < pos[&v]);
            }
        }
    }

    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        /// A small random term-syntax string over {a,b} with text leaves.
        fn arb_term(depth: u32) -> impl Strategy<Value = String> {
            let leaf = prop_oneof![
                Just("a".to_owned()),
                Just("b".to_owned()),
                "[xyz]{1,2}".prop_map(|t| format!("\"{t}\"")),
            ];
            leaf.prop_recursive(depth, 24, 3, |inner| {
                (
                    prop_oneof![Just("a"), Just("b")],
                    proptest::collection::vec(inner, 0..3),
                )
                    .prop_map(|(l, kids)| format!("{l}({})", kids.join(" ")))
            })
        }

        proptest! {
            #[test]
            fn round_trip(src in arb_term(4)) {
                let mut al = Alphabet::new();
                let h = parse_hedge(&src, &mut al).unwrap();
                let bt = encode_hedge(&h);
                prop_assert_eq!(decode_hedge(&bt), h.clone());
                // Nil count is original node count + 1.
                let nils = bt.preorder().iter()
                    .filter(|&&v| bt.label(v).is_nil()).count();
                prop_assert_eq!(nils, h.node_count() + 1);
            }
        }
    }
}
