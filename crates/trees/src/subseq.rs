//! The subsequence relation `≺` of Definition 2.2.
//!
//! A string `s₁ = σ₁⋯σₙ` is a subsequence of `s₂` (written `s₁ ≺ s₂`) when
//! `s₂ = w₀σ₁w₁⋯σₙwₙ`. Text-preservation (Definition 2.2 of the paper) asks
//! `text-content(T(t)) ≺ text-content(t)`.

/// Whether `needle ≺ haystack` (greedy linear scan).
///
/// ```
/// use tpx_trees::is_subsequence;
/// assert!(is_subsequence(&["a", "c"], &["a", "b", "c"]));
/// assert!(!is_subsequence(&["c", "a"], &["a", "b", "c"]));
/// assert!(is_subsequence::<&str>(&[], &[]));
/// ```
pub fn is_subsequence<T: PartialEq>(needle: &[T], haystack: &[T]) -> bool {
    subsequence_witness(needle, haystack).is_some()
}

/// If `needle ≺ haystack`, returns for each needle position the index of the
/// matched haystack position (the leftmost witness, strictly increasing).
///
/// The witness is the function `g` used in the proof of Theorem 3.3: it maps
/// output text occurrences to the input occurrences they came from.
pub fn subsequence_witness<T: PartialEq>(needle: &[T], haystack: &[T]) -> Option<Vec<usize>> {
    let mut witness = Vec::with_capacity(needle.len());
    let mut j = 0usize;
    for item in needle {
        loop {
            if j >= haystack.len() {
                return None;
            }
            if haystack[j] == *item {
                witness.push(j);
                j += 1;
                break;
            }
            j += 1;
        }
    }
    Some(witness)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_subsequence_of_everything() {
        assert!(is_subsequence::<u32>(&[], &[]));
        assert!(is_subsequence(&[], &[1, 2, 3]));
    }

    #[test]
    fn nothing_nonempty_fits_in_empty() {
        assert!(!is_subsequence(&[1], &[]));
    }

    #[test]
    fn equal_strings_are_subsequences() {
        assert!(is_subsequence(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn order_matters() {
        assert!(is_subsequence(&[1, 3], &[1, 2, 3]));
        assert!(!is_subsequence(&[3, 1], &[1, 2, 3]));
    }

    #[test]
    fn multiplicity_matters() {
        assert!(!is_subsequence(&[2, 2], &[1, 2, 3]));
        assert!(is_subsequence(&[2, 2], &[2, 1, 2]));
    }

    #[test]
    fn witness_is_strictly_increasing_and_correct() {
        let w = subsequence_witness(&["b", "b", "d"], &["a", "b", "b", "c", "d"]).unwrap();
        assert_eq!(w, vec![1, 2, 4]);
        for pair in w.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn witness_absent_when_not_subsequence() {
        assert!(subsequence_witness(&["z"], &["a", "b"]).is_none());
    }

    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Deleting arbitrary positions from a string yields a subsequence.
            #[test]
            fn deletion_yields_subsequence(s in proptest::collection::vec(0u8..4, 0..30),
                                           mask in proptest::collection::vec(any::<bool>(), 0..30)) {
                let kept: Vec<u8> = s.iter().zip(mask.iter().chain(std::iter::repeat(&true)))
                    .filter(|(_, &keep)| keep).map(|(&x, _)| x).collect();
                prop_assert!(is_subsequence(&kept, &s));
            }

            /// Subsequence-ness is transitive.
            #[test]
            fn transitive(s in proptest::collection::vec(0u8..3, 0..20),
                          m1 in proptest::collection::vec(any::<bool>(), 20),
                          m2 in proptest::collection::vec(any::<bool>(), 20)) {
                let a: Vec<u8> = s.iter().zip(&m1).filter(|(_, &k)| k).map(|(&x, _)| x).collect();
                let b: Vec<u8> = a.iter().zip(&m2).filter(|(_, &k)| k).map(|(&x, _)| x).collect();
                prop_assert!(is_subsequence(&a, &s));
                prop_assert!(is_subsequence(&b, &a));
                prop_assert!(is_subsequence(&b, &s));
            }

            /// The witness indexes match the needle contents.
            #[test]
            fn witness_sound(n in proptest::collection::vec(0u8..3, 0..10),
                             h in proptest::collection::vec(0u8..3, 0..30)) {
                if let Some(w) = subsequence_witness(&n, &h) {
                    prop_assert_eq!(w.len(), n.len());
                    for (i, &j) in w.iter().enumerate() {
                        prop_assert_eq!(h[j], n[i]);
                    }
                    for pair in w.windows(2) {
                        prop_assert!(pair[0] < pair[1]);
                    }
                }
            }
        }
    }
}
