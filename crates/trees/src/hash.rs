//! Stable content hashing for decision-engine artifact keys.
//!
//! The engine layer (`tpx-engine`) memoizes compiled artifacts — path
//! automata, counter-example automata, schema compilations — in a cache
//! keyed by the *content* of the schema or transducer they were compiled
//! from. `std::hash::Hash` is unsuitable for such keys: its output is
//! randomized per process (`RandomState`) and unspecified across releases.
//! This module provides a fixed 64-bit FNV-1a hasher and a [`StableHash`]
//! trait whose results depend only on the hashed content, so cache keys are
//! reproducible across runs, threads and (for future sharded deployments)
//! machines.

use std::fmt::Write as _;

/// A 64-bit FNV-1a hasher with a fixed, documented algorithm.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// Absorbs a `usize` (widened to `u64` so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Content-stable hashing: equal content ⇒ equal hash, in every process.
pub trait StableHash {
    /// Feeds `self`'s content into the hasher.
    fn stable_hash(&self, h: &mut StableHasher);
}

/// The stable hash of a single value.
pub fn stable_hash_of<T: StableHash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.stable_hash(&mut h);
    h.finish()
}

/// The stable hash of a value's `Debug` rendering — an escape hatch for
/// deep generic structures (e.g. DTL transducers over arbitrary pattern
/// languages) whose `Debug` output is a faithful function of their content.
pub fn stable_hash_debug<T: std::fmt::Debug + ?Sized>(value: &T) -> u64 {
    struct H(StableHasher);
    impl std::fmt::Write for H {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            self.0.write(s.as_bytes());
            Ok(())
        }
    }
    let mut sink = H(StableHasher::new());
    write!(sink, "{value:?}").expect("Debug formatting never fails");
    sink.0.finish()
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_u64(*self as u64);
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i32, i64);

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write(&[u8::from(*self)]);
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(self.len());
        h.write(self.as_bytes());
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_str().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_usize(self.len());
        for x in self {
            x.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write(&[0]),
            Some(x) => {
                h.write(&[1]);
                x.stable_hash(h);
            }
        }
    }
}

impl<A: StableHash, B: StableHash> StableHash for (A, B) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash, C: StableHash> StableHash for (A, B, C) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
        self.2.stable_hash(h);
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, h: &mut StableHasher) {
        (**self).stable_hash(h);
    }
}

impl StableHash for crate::Symbol {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(u64::from(self.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_content_equal_hash() {
        let a = vec![1u32, 2, 3];
        let b = vec![1u32, 2, 3];
        assert_eq!(stable_hash_of(&a), stable_hash_of(&b));
        assert_ne!(stable_hash_of(&a), stable_hash_of(&vec![1u32, 2, 4]));
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        // ["ab", "c"] vs ["a", "bc"] must differ.
        let x = vec!["ab".to_owned(), "c".to_owned()];
        let y = vec!["a".to_owned(), "bc".to_owned()];
        assert_ne!(stable_hash_of(&x), stable_hash_of(&y));
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a 64 of the empty input is the offset basis.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn debug_hash_is_content_stable() {
        #[derive(Debug)]
        #[allow(dead_code)]
        struct S {
            x: u32,
            s: &'static str,
        }
        let h1 = stable_hash_debug(&S { x: 1, s: "a" });
        let h2 = stable_hash_debug(&S { x: 1, s: "a" });
        let h3 = stable_hash_debug(&S { x: 2, s: "a" });
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
    }
}
