//! The paper's running example: the recipe document of Figure 1.

use crate::alphabet::Alphabet;
use crate::hedge::{HedgeBuilder, Tree};

/// Labels used by the recipe example, in a fixed order.
pub const RECIPE_LABELS: [&str; 11] = [
    "recipes",
    "recipe",
    "description",
    "ingredients",
    "item",
    "instructions",
    "br",
    "comments",
    "negative",
    "positive",
    "comment",
];

/// An alphabet containing exactly the recipe labels.
pub fn recipe_alphabet() -> Alphabet {
    Alphabet::from_labels(RECIPE_LABELS)
}

/// Builds the text tree of Figure 1 (one fully populated recipe plus a
/// second, smaller one), interning labels into `alpha`.
pub fn recipe_tree(alpha: &mut Alphabet) -> Tree {
    recipe_tree_sized(alpha, 2, 2, 2)
}

/// A scalable variant of Figure 1: `recipes` recipes, each with `items`
/// ingredients and `comments` positive and negative comments. Used by the
/// throughput experiments (E7).
pub fn recipe_tree_sized(
    alpha: &mut Alphabet,
    recipes: usize,
    items: usize,
    comments: usize,
) -> Tree {
    let recipes_s = alpha.intern("recipes");
    let recipe_s = alpha.intern("recipe");
    let description = alpha.intern("description");
    let ingredients = alpha.intern("ingredients");
    let item = alpha.intern("item");
    let instructions = alpha.intern("instructions");
    let br = alpha.intern("br");
    let comments_s = alpha.intern("comments");
    let negative = alpha.intern("negative");
    let positive = alpha.intern("positive");
    let comment = alpha.intern("comment");

    let mut b = HedgeBuilder::new();
    b.open(recipes_s);
    for r in 0..recipes {
        b.open(recipe_s);
        b.open(description);
        if r == 0 {
            b.text(
                "This is the best chocolate mousse in the world. It tastes \
                 fantastic and has only finitely many calories.",
            );
        } else {
            b.text(&format!("Description of recipe {r}."));
        }
        b.close();
        b.open(ingredients);
        for i in 0..items {
            b.open(item);
            if r == 0 && i == 0 {
                b.text("100 g of butter");
            } else if r == 0 && i == 1 {
                b.text("100 g of Belgian chocolate");
            } else {
                b.text(&format!("ingredient {i} of recipe {r}"));
            }
            b.close();
        }
        b.close();
        b.open(instructions);
        if r == 0 {
            b.text("We start by melting the butter on a low fire.");
            b.leaf(br);
            b.text("Then, melt the chocolate au bain-marie.");
        } else {
            for s in 0..items {
                if s > 0 {
                    b.leaf(br);
                }
                b.text(&format!("step {s} of recipe {r}"));
            }
        }
        b.close();
        b.open(comments_s);
        b.open(negative);
        for c in 0..comments {
            b.open(comment);
            b.text(&format!("negative comment {c} on recipe {r}"));
            b.close();
        }
        b.close();
        b.open(positive);
        for c in 0..comments {
            b.open(comment);
            if r == 0 && c == 0 {
                b.text("It's true! It's great! Especially with Greek coffee afterwards!");
            } else {
                b.text(&format!("positive comment {c} on recipe {r}"));
            }
            b.close();
        }
        b.close();
        b.close(); // comments
        b.close(); // recipe
    }
    b.close();
    b.finish_tree().expect("recipes tree has a single root")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let mut al = Alphabet::new();
        let t = recipe_tree(&mut al);
        let root = t.root();
        assert_eq!(t.label(root).elem(), Some(al.sym("recipes")));
        assert_eq!(t.children(root).len(), 2);
        let recipe = t.children(root)[0];
        // description, ingredients, instructions, comments — paper node (11).
        let kids: Vec<_> = t
            .children(recipe)
            .iter()
            .map(|&c| al.name(t.label(c).elem().unwrap()).to_owned())
            .collect();
        assert_eq!(
            kids,
            vec!["description", "ingredients", "instructions", "comments"]
        );
        // The paper's example text appears first in the text content.
        let tc = t.text_content();
        assert!(tc[0].starts_with("This is the best chocolate mousse"));
        assert!(tc.contains(&"100 g of butter"));
    }

    #[test]
    fn ancestor_path_of_positive_matches_paper() {
        let mut al = Alphabet::new();
        let t = recipe_tree(&mut al);
        let positive = t
            .dfs()
            .into_iter()
            .find(|&v| t.label(v).elem() == Some(al.sym("positive")))
            .unwrap();
        let path: Vec<_> = t
            .ancestor_string(positive)
            .iter()
            .map(|l| al.name(l.elem().unwrap()).to_owned())
            .collect();
        assert_eq!(path, vec!["recipes", "recipe", "comments", "positive"]);
    }

    #[test]
    fn sized_tree_scales() {
        let mut al = Alphabet::new();
        let small = recipe_tree_sized(&mut al, 1, 1, 1);
        let big = recipe_tree_sized(&mut al, 10, 5, 5);
        assert!(big.node_count() > 10 * small.node_count() / 2);
        assert_eq!(
            big.children(big.root()).len(),
            10,
            "one child per recipe under the root"
        );
    }
}
