//! Resource budgets for the decision pipelines: wall-clock deadlines plus
//! *fuel*, a coarse work-unit counter charged at state/transition
//! construction sites.
//!
//! The symbolic pipelines (NTA/NBTA products, subset constructions, the
//! MSO→NBTA compilation) are heavy-tailed: a tiny input can blow up
//! non-elementarily. A [`Budget`] makes every such computation complete,
//! fail, or degrade within caller-set bounds. The mechanism is cooperative:
//! hot construction loops hold a [`BudgetHandle`] and call
//! [`BudgetHandle::charge`] (or the zero-cost probe
//! [`BudgetHandle::check_budget`]) once per unit of work; when the fuel or
//! the deadline runs out the probe returns a [`BudgetExceeded`] carrying
//! how much was spent, and the error propagates out through `Result`s —
//! no thread is killed, no partial state leaks.
//!
//! Placement rules (see DESIGN.md §10):
//!
//! * charge **1 unit per constructed state or transition** in worklist and
//!   saturation loops — never per arithmetic op (too hot) and never per
//!   pipeline stage (too coarse to interrupt a blowup);
//! * probes live in the *construction* loops, not on the read paths:
//!   membership tests and accessors stay infallible;
//! * the deadline is polled every [`DEADLINE_POLL_MASK`]+1 charges so the
//!   common case stays one relaxed atomic add.
//!
//! This module lives in `tpx-trees` because every crate of the workspace
//! depends on it; the engine re-exports it as `tpx_engine::budget`.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A resource limit configuration: optional fuel, optional deadline.
///
/// `Budget` is the plain-data half (cheap to copy, store in configs, parse
/// from CLI flags); [`Budget::start`] turns it into a live [`BudgetHandle`]
/// whose clock starts ticking at that moment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum work units; `None` = unlimited.
    pub fuel: Option<u64>,
    /// Maximum wall-clock time; `None` = unlimited.
    pub timeout: Option<Duration>,
}

impl Budget {
    /// No limits at all.
    pub const UNLIMITED: Budget = Budget {
        fuel: None,
        timeout: None,
    };

    /// A budget limited to `fuel` work units.
    pub fn with_fuel(self, fuel: u64) -> Budget {
        Budget {
            fuel: Some(fuel),
            ..self
        }
    }

    /// A budget limited to `timeout` of wall-clock time.
    pub fn with_timeout(self, timeout: Duration) -> Budget {
        Budget {
            timeout: Some(timeout),
            ..self
        }
    }

    /// Whether this budget imposes no limit.
    pub fn is_unlimited(&self) -> bool {
        self.fuel.is_none() && self.timeout.is_none()
    }

    /// Starts the clock: a live handle with this budget's limits.
    pub fn start(&self) -> BudgetHandle {
        BudgetHandle::new(*self)
    }
}

/// Which limit a computation ran into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExhaustReason {
    /// The fuel counter crossed its limit.
    Fuel,
    /// The wall-clock deadline passed.
    Deadline,
    /// [`BudgetHandle::cancel`] was called.
    Cancelled,
}

impl fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExhaustReason::Fuel => "fuel exhausted",
            ExhaustReason::Deadline => "deadline exceeded",
            ExhaustReason::Cancelled => "cancelled",
        })
    }
}

/// The error of a failed budget probe: why, and how much was consumed.
#[derive(Clone, Copy, Debug)]
pub struct BudgetExceeded {
    /// Which limit was hit.
    pub reason: ExhaustReason,
    /// Work units charged up to the failing probe.
    pub fuel_spent: u64,
    /// Wall-clock time elapsed since [`Budget::start`].
    pub elapsed: Duration,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} fuel units, {:.1?}",
            self.reason, self.fuel_spent, self.elapsed
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// The deadline is polled once every this-many-plus-one charges (must be
/// `2^k - 1`), so the common probe is a single relaxed atomic add.
pub const DEADLINE_POLL_MASK: u64 = 255;

/// A live, shareable budget: atomic fuel counter, deadline, cancel flag.
///
/// One handle is shared (by reference) across every stage of one check;
/// [`BudgetHandle::fuel_spent`] thus accounts for the whole pipeline, and a
/// per-stage delta can be taken by sampling it before and after a stage.
/// All operations are `&self` and thread-safe, so the handle also works as
/// a cross-thread cancellation token.
#[derive(Debug)]
pub struct BudgetHandle {
    fuel_limit: Option<u64>,
    fuel_spent: AtomicU64,
    deadline: Option<Instant>,
    started: Instant,
    cancelled: AtomicBool,
    charges: AtomicU64,
}

impl BudgetHandle {
    /// A live handle enforcing `budget`, with the clock started now.
    pub fn new(budget: Budget) -> Self {
        let started = Instant::now();
        BudgetHandle {
            fuel_limit: budget.fuel,
            fuel_spent: AtomicU64::new(0),
            deadline: budget.timeout.map(|t| started + t),
            started,
            cancelled: AtomicBool::new(false),
            charges: AtomicU64::new(0),
        }
    }

    /// A handle that never fails a probe (still counts fuel).
    pub fn unlimited() -> Self {
        Self::new(Budget::UNLIMITED)
    }

    /// Whether this handle enforces any limit.
    pub fn is_limited(&self) -> bool {
        self.fuel_limit.is_some() || self.deadline.is_some()
    }

    /// Work units charged so far.
    pub fn fuel_spent(&self) -> u64 {
        self.fuel_spent.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the handle was started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Requests cooperative cancellation: the next probe on any thread
    /// sharing this handle fails with [`ExhaustReason::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    fn exceeded(&self, reason: ExhaustReason) -> BudgetExceeded {
        BudgetExceeded {
            reason,
            fuel_spent: self.fuel_spent(),
            elapsed: self.elapsed(),
        }
    }

    /// Charges `units` of work and probes every limit. The fuel check is
    /// exact; the deadline is polled every [`DEADLINE_POLL_MASK`]+1 charges.
    pub fn charge(&self, units: u64) -> Result<(), BudgetExceeded> {
        let spent = self.fuel_spent.fetch_add(units, Ordering::Relaxed) + units;
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(self.exceeded(ExhaustReason::Cancelled));
        }
        if let Some(limit) = self.fuel_limit {
            if spent > limit {
                return Err(self.exceeded(ExhaustReason::Fuel));
            }
        }
        if self.deadline.is_some() {
            let n = self.charges.fetch_add(1, Ordering::Relaxed);
            if n & DEADLINE_POLL_MASK == 0 {
                self.check_deadline()?;
            }
        }
        Ok(())
    }

    /// A zero-fuel probe: fails iff the budget is already exhausted. Use at
    /// loop heads that do work without constructing states.
    pub fn check_budget(&self) -> Result<(), BudgetExceeded> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(self.exceeded(ExhaustReason::Cancelled));
        }
        if let Some(limit) = self.fuel_limit {
            if self.fuel_spent() > limit {
                return Err(self.exceeded(ExhaustReason::Fuel));
            }
        }
        self.check_deadline()
    }

    /// Polls the deadline unconditionally (not batched).
    pub fn check_deadline(&self) -> Result<(), BudgetExceeded> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(self.exceeded(ExhaustReason::Deadline)),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fails_but_counts() {
        let h = BudgetHandle::unlimited();
        for _ in 0..1000 {
            h.charge(3).unwrap();
        }
        h.check_budget().unwrap();
        assert_eq!(h.fuel_spent(), 3000);
        assert!(!h.is_limited());
    }

    #[test]
    fn fuel_limit_is_exact() {
        let h = Budget::default().with_fuel(10).start();
        for _ in 0..10 {
            h.charge(1).unwrap();
        }
        let err = h.charge(1).unwrap_err();
        assert_eq!(err.reason, ExhaustReason::Fuel);
        assert_eq!(err.fuel_spent, 11);
        // Once exhausted, even the zero-fuel probe fails.
        assert!(h.check_budget().is_err());
    }

    #[test]
    fn zero_fuel_fails_on_first_charge() {
        let h = Budget::default().with_fuel(0).start();
        assert!(h.check_budget().is_ok(), "nothing spent yet");
        let err = h.charge(1).unwrap_err();
        assert_eq!(err.reason, ExhaustReason::Fuel);
    }

    #[test]
    fn expired_deadline_fails_probe() {
        let h = Budget::default().with_timeout(Duration::ZERO).start();
        let err = h.check_budget().unwrap_err();
        assert_eq!(err.reason, ExhaustReason::Deadline);
        // Charges notice the deadline within one poll window.
        let h = Budget::default().with_timeout(Duration::ZERO).start();
        let mut failed = false;
        for _ in 0..=DEADLINE_POLL_MASK {
            if h.charge(1).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "deadline not noticed within the poll window");
    }

    #[test]
    fn cancel_trips_every_sharer() {
        let h = Budget::default().with_fuel(u64::MAX).start();
        h.charge(1).unwrap();
        h.cancel();
        assert!(h.is_cancelled());
        let err = h.charge(1).unwrap_err();
        assert_eq!(err.reason, ExhaustReason::Cancelled);
        assert!(h.check_budget().is_err());
    }

    #[test]
    fn budget_config_builders() {
        let b = Budget::default()
            .with_fuel(7)
            .with_timeout(Duration::from_millis(5));
        assert_eq!(b.fuel, Some(7));
        assert_eq!(b.timeout, Some(Duration::from_millis(5)));
        assert!(!b.is_unlimited());
        assert!(Budget::UNLIMITED.is_unlimited());
        let h = b.start();
        assert!(h.is_limited());
        assert_eq!(h.fuel_spent(), 0);
    }
}
