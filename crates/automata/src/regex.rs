//! Regular expressions with the Glushkov construction.
//!
//! Used to write DTD content models (Example 2.3) and test languages. The
//! concrete syntax:
//!
//! * identifiers are symbols (resolved by a caller-supplied function),
//! * juxtaposition or `,` is concatenation, `|` is union,
//! * postfix `*` (Kleene star), `+` (one or more), `?` (optional),
//! * `%eps` is the empty word, `%empty` the empty language,
//! * parentheses group.
//!
//! The paper writes union as `+` (e.g. `(br + text)*`); this crate uses `|`
//! to keep postfix `+` for "one or more", as in DTDs.

use crate::nfa::Nfa;
use std::fmt;
use std::hash::Hash;

/// A regular expression over symbols of type `A`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex<A> {
    /// The empty language `∅`.
    Empty,
    /// The empty word `ε`.
    Epsilon,
    /// A single symbol.
    Sym(A),
    /// Concatenation.
    Concat(Box<Regex<A>>, Box<Regex<A>>),
    /// Union.
    Alt(Box<Regex<A>>, Box<Regex<A>>),
    /// Kleene star.
    Star(Box<Regex<A>>),
}

impl<A: Clone + Eq + Hash> Regex<A> {
    /// `r₁ · r₂`.
    pub fn then(self, other: Regex<A>) -> Regex<A> {
        Regex::Concat(Box::new(self), Box::new(other))
    }

    /// `r₁ | r₂`.
    pub fn or(self, other: Regex<A>) -> Regex<A> {
        Regex::Alt(Box::new(self), Box::new(other))
    }

    /// `r*`.
    pub fn star(self) -> Regex<A> {
        Regex::Star(Box::new(self))
    }

    /// `r⁺ = r · r*`.
    pub fn plus(self) -> Regex<A> {
        self.clone().then(self.star())
    }

    /// `r? = r | ε`.
    pub fn opt(self) -> Regex<A> {
        self.or(Regex::Epsilon)
    }

    /// Concatenation of many expressions (`ε` for none).
    pub fn seq(items: impl IntoIterator<Item = Regex<A>>) -> Regex<A> {
        items
            .into_iter()
            .reduce(Regex::then)
            .unwrap_or(Regex::Epsilon)
    }

    /// Union of many expressions (`∅` for none).
    pub fn any(items: impl IntoIterator<Item = Regex<A>>) -> Regex<A> {
        items.into_iter().reduce(Regex::or).unwrap_or(Regex::Empty)
    }

    /// Whether `ε` is in the language.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Alt(a, b) => a.nullable() || b.nullable(),
        }
    }

    /// Number of AST nodes (a size measure for benches).
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) => 1,
            Regex::Star(a) => 1 + a.size(),
            Regex::Concat(a, b) | Regex::Alt(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Compiles to an NFA via the Glushkov (position) construction: the NFA
    /// has one state per symbol occurrence plus one initial state, and no
    /// ε-transitions.
    pub fn to_nfa(&self) -> Nfa<A> {
        // Collect positions (symbol occurrences) left to right.
        let mut symbols: Vec<A> = Vec::new();
        let mut follow: Vec<Vec<usize>> = Vec::new();
        let info = glushkov(self, &mut symbols, &mut follow);
        let info = Glushkov { follow, ..info };
        let mut nfa = Nfa::new();
        let q0 = nfa.add_state();
        nfa.set_initial(q0);
        nfa.set_final(q0, info.nullable);
        // State i+1 = position i.
        let first_pos = nfa.add_states(symbols.len());
        let _ = first_pos;
        for &p in &info.first {
            nfa.add_transition(q0, symbols[p].clone(), crate::nfa::StateId(p as u32 + 1));
        }
        for (p, follows) in info.follow.iter().enumerate() {
            for &f in follows {
                nfa.add_transition(
                    crate::nfa::StateId(p as u32 + 1),
                    symbols[f].clone(),
                    crate::nfa::StateId(f as u32 + 1),
                );
            }
        }
        for &p in &info.last {
            nfa.set_final(crate::nfa::StateId(p as u32 + 1), true);
        }
        nfa
    }
}

struct Glushkov {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
    /// `follow[p]` = positions that may follow position `p`.
    follow: Vec<Vec<usize>>,
}

/// Recursive Glushkov pass. Positions are global indices into `symbols`;
/// `follow` is the single global follow table (one row per position).
/// The returned `Glushkov.follow` is unused (left empty) — the caller reads
/// the shared table.
fn glushkov<A: Clone>(
    re: &Regex<A>,
    symbols: &mut Vec<A>,
    follow: &mut Vec<Vec<usize>>,
) -> Glushkov {
    let empty = |nullable| Glushkov {
        nullable,
        first: vec![],
        last: vec![],
        follow: vec![],
    };
    match re {
        Regex::Empty => empty(false),
        Regex::Epsilon => empty(true),
        Regex::Sym(a) => {
            let p = symbols.len();
            symbols.push(a.clone());
            follow.push(Vec::new());
            Glushkov {
                nullable: false,
                first: vec![p],
                last: vec![p],
                follow: vec![],
            }
        }
        Regex::Alt(a, b) => {
            let mut ga = glushkov(a, symbols, follow);
            let gb = glushkov(b, symbols, follow);
            ga.first.extend(gb.first);
            ga.last.extend(gb.last);
            Glushkov {
                nullable: ga.nullable || gb.nullable,
                ..ga
            }
        }
        Regex::Concat(a, b) => {
            let ga = glushkov(a, symbols, follow);
            let gb = glushkov(b, symbols, follow);
            // last(a) × first(b) edges.
            for &l in &ga.last {
                for &f in &gb.first {
                    if !follow[l].contains(&f) {
                        follow[l].push(f);
                    }
                }
            }
            let nullable = ga.nullable && gb.nullable;
            let first = if ga.nullable {
                let mut f = ga.first.clone();
                f.extend(gb.first.iter().copied());
                f
            } else {
                ga.first
            };
            let last = if gb.nullable {
                let mut l = gb.last.clone();
                l.extend(ga.last.iter().copied());
                l
            } else {
                gb.last
            };
            Glushkov {
                nullable,
                first,
                last,
                follow: vec![],
            }
        }
        Regex::Star(a) => {
            let ga = glushkov(a, symbols, follow);
            for &l in &ga.last {
                for &f in &ga.first {
                    if !follow[l].contains(&f) {
                        follow[l].push(f);
                    }
                }
            }
            Glushkov {
                nullable: true,
                ..ga
            }
        }
    }
}

/// Error from [`parse_regex`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegexParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RegexParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for RegexParseError {}

/// Parses the concrete syntax described in the module docs; identifiers are
/// turned into symbols by `resolve`.
pub fn parse_regex<A: Clone + Eq + Hash>(
    src: &str,
    resolve: &mut dyn FnMut(&str) -> A,
) -> Result<Regex<A>, RegexParseError> {
    let mut p = ReParser { src, pos: 0 };
    let re = p.alt(resolve)?;
    p.skip_ws();
    if p.pos != src.len() {
        return p.err("trailing input");
    }
    Ok(re)
}

struct ReParser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> ReParser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, RegexParseError> {
        Err(RegexParseError {
            offset: self.pos,
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn alt<A: Clone + Eq + Hash>(
        &mut self,
        resolve: &mut dyn FnMut(&str) -> A,
    ) -> Result<Regex<A>, RegexParseError> {
        let mut lhs = self.cat(resolve)?;
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.bump();
                let rhs = self.cat(resolve)?;
                lhs = lhs.or(rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn cat<A: Clone + Eq + Hash>(
        &mut self,
        resolve: &mut dyn FnMut(&str) -> A,
    ) -> Result<Regex<A>, RegexParseError> {
        let mut parts = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                    continue;
                }
                Some(')') | Some('|') | None => break,
                _ => parts.push(self.postfix(resolve)?),
            }
        }
        if parts.is_empty() {
            return self.err("expected an expression");
        }
        Ok(Regex::seq(parts))
    }

    fn postfix<A: Clone + Eq + Hash>(
        &mut self,
        resolve: &mut dyn FnMut(&str) -> A,
    ) -> Result<Regex<A>, RegexParseError> {
        let mut base = self.atom(resolve)?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    base = base.star();
                }
                Some('+') => {
                    self.bump();
                    base = base.plus();
                }
                Some('?') => {
                    self.bump();
                    base = base.opt();
                }
                _ => return Ok(base),
            }
        }
    }

    fn atom<A: Clone + Eq + Hash>(
        &mut self,
        resolve: &mut dyn FnMut(&str) -> A,
    ) -> Result<Regex<A>, RegexParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.alt(resolve)?;
                self.skip_ws();
                if self.peek() != Some(')') {
                    return self.err("expected ')'");
                }
                self.bump();
                Ok(inner)
            }
            Some('%') => {
                self.bump();
                let name = self.ident()?;
                match name {
                    "eps" => Ok(Regex::Epsilon),
                    "empty" => Ok(Regex::Empty),
                    other => self.err(format!("unknown keyword %{other}")),
                }
            }
            Some(c) if c.is_alphanumeric() || c == '_' || c == '#' => {
                let name = self.ident()?;
                Ok(Regex::Sym(resolve(name)))
            }
            Some(c) => self.err(format!("unexpected character {c:?}")),
            None => self.err("unexpected end of input"),
        }
    }

    fn ident(&mut self) -> Result<&'a str, RegexParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-' || c == '#' || c == ':')
        {
            self.bump();
        }
        if self.pos == start {
            return self.err("expected an identifier");
        }
        Ok(&self.src[start..self.pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(src: &str) -> Regex<char> {
        parse_regex(src, &mut |s: &str| s.chars().next().unwrap()).unwrap()
    }

    fn lit(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn parses_basic_forms() {
        assert_eq!(re("a"), Regex::Sym('a'));
        assert_eq!(re("%eps"), Regex::Epsilon);
        assert_eq!(re("%empty"), Regex::Empty);
        assert!(matches!(re("a b"), Regex::Concat(_, _)));
        assert!(matches!(re("a, b"), Regex::Concat(_, _)));
        assert!(matches!(re("a | b"), Regex::Alt(_, _)));
        assert!(matches!(re("a*"), Regex::Star(_)));
    }

    #[test]
    fn precedence_star_binds_tighter_than_concat_than_alt() {
        // a b* | c  ==  (a · (b*)) | c
        let r = re("a b* | c");
        let n = r.to_nfa();
        assert!(n.accepts(&lit("a")));
        assert!(n.accepts(&lit("abbb")));
        assert!(n.accepts(&lit("c")));
        assert!(!n.accepts(&lit("ac")));
    }

    #[test]
    fn glushkov_matches_semantics() {
        let n = re("(a | b)* a").to_nfa();
        assert!(n.accepts(&lit("a")));
        assert!(n.accepts(&lit("bba")));
        assert!(n.accepts(&lit("aba")));
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&lit("b")));
    }

    #[test]
    fn plus_and_opt() {
        let n = re("a+ b?").to_nfa();
        assert!(n.accepts(&lit("a")));
        assert!(n.accepts(&lit("aab")));
        assert!(!n.accepts(&lit("b")));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn epsilon_and_empty() {
        let e = re("%eps").to_nfa();
        assert!(e.accepts(&[]));
        assert!(!e.accepts(&lit("a")));
        let z = re("%empty").to_nfa();
        assert!(z.is_empty());
        // empty absorbs concat.
        let z2 = re("%empty a").to_nfa();
        assert!(z2.is_empty());
    }

    #[test]
    fn nested_groups() {
        let n = re("((a b) | (b a))*").to_nfa();
        assert!(n.accepts(&[]));
        assert!(n.accepts(&lit("abba")));
        assert!(n.accepts(&lit("baab")));
        assert!(!n.accepts(&lit("aa")));
    }

    #[test]
    fn paper_content_model_br_text() {
        // Paper writes (br + text)*; our syntax: (br | text)*.
        let mut names = Vec::new();
        let r = parse_regex("(br | text)*", &mut |s: &str| {
            if let Some(i) = names.iter().position(|n| n == s) {
                i
            } else {
                names.push(s.to_owned());
                names.len() - 1
            }
        })
        .unwrap();
        let n = r.to_nfa();
        assert!(n.accepts(&[0, 1, 0]));
        assert!(n.accepts(&[]));
        assert_eq!(names, vec!["br", "text"]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_regex("a |", &mut |s: &str| s.to_owned()).is_err());
        assert!(parse_regex("(a", &mut |s: &str| s.to_owned()).is_err());
        assert!(parse_regex("a)", &mut |s: &str| s.to_owned()).is_err());
        assert!(parse_regex("%bogus", &mut |s: &str| s.to_owned()).is_err());
        assert!(parse_regex("", &mut |s: &str| s.to_owned()).is_err());
    }

    #[test]
    fn nullable_agrees_with_nfa() {
        for src in ["a*", "%eps", "a?", "a", "a b", "a* b*", "(a|%eps) b*"] {
            let r = re(src);
            assert_eq!(r.nullable(), r.to_nfa().accepts(&[]), "{src}");
        }
    }

    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_regex() -> impl Strategy<Value = Regex<char>> {
            let leaf = prop_oneof![
                Just(Regex::Epsilon),
                Just(Regex::Sym('a')),
                Just(Regex::Sym('b')),
            ];
            leaf.prop_recursive(4, 24, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner.clone()).prop_map(|(a, b)| a.then(b)),
                    (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                    inner.prop_map(Regex::star),
                ]
            })
        }

        /// Naive regex matcher used as ground truth.
        fn matches(re: &Regex<char>, w: &[char]) -> bool {
            match re {
                Regex::Empty => false,
                Regex::Epsilon => w.is_empty(),
                Regex::Sym(a) => w.len() == 1 && w[0] == *a,
                Regex::Alt(a, b) => matches(a, w) || matches(b, w),
                Regex::Concat(a, b) => {
                    (0..=w.len()).any(|i| matches(a, &w[..i]) && matches(b, &w[i..]))
                }
                Regex::Star(a) => {
                    w.is_empty()
                        || (1..=w.len()).any(|i| matches(a, &w[..i]) && matches(re, &w[i..]))
                }
            }
        }

        proptest! {
            #[test]
            fn glushkov_agrees_with_naive(re in arb_regex(),
                                          w in proptest::collection::vec(prop_oneof![Just('a'), Just('b')], 0..5)) {
                let nfa = re.to_nfa();
                prop_assert_eq!(nfa.accepts(&w), matches(&re, &w));
            }
        }
    }
}
