//! # `tpx-automata`: string automata and regular expressions
//!
//! Nondeterministic finite string automata (NFAs) over *arbitrary* symbol
//! types, deterministic automata with completion/complement/minimization,
//! and a regular-expression engine with the Glushkov construction.
//!
//! These are the Section 2 "Automata" of the paper, generalized over the
//! symbol type because the workspace runs NFAs over several alphabets:
//! `Σ ⊎ {text}` for path automata (Lemma 4.8), tree-automaton state sets `Q`
//! for DTD/NTA content models, and product alphabets for the deciders of
//! Section 4.3.

pub mod dfa;
pub mod inclusion;
pub mod nfa;
pub mod regex;
pub mod to_regex;

pub use dfa::Dfa;
pub use nfa::{Nfa, StateId};
pub use regex::{parse_regex, Regex};
pub use to_regex::{nfa_to_regex, regex_to_string};
