//! Deterministic finite automata: subset construction, complement,
//! minimization and equivalence testing.
//!
//! DFAs are always *complete* relative to an explicit alphabet (a dead sink
//! is materialized by the subset construction), which makes complementation
//! a final-flag flip.

use crate::nfa::{Nfa, StateId};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::hash::Hash;

/// A complete deterministic finite automaton over symbols of type `A`.
///
/// The alphabet is explicit and fixed at construction; `step` is total over
/// it. State 0 is the initial state.
#[derive(Clone, Debug)]
pub struct Dfa<A> {
    alphabet: Vec<A>,
    /// `trans[q][a_idx]` = successor state.
    trans: Vec<Vec<u32>>,
    finals: Vec<bool>,
}

impl<A: Clone + Eq + Hash> Dfa<A> {
    /// Subset construction from an NFA, relative to `alphabet`.
    ///
    /// Symbols not in `alphabet` are assumed never to occur in inputs; NFA
    /// transitions on them are ignored.
    pub fn from_nfa(nfa: &Nfa<A>, alphabet: &[A]) -> Dfa<A> {
        let sym_index: HashMap<&A, usize> =
            alphabet.iter().enumerate().map(|(i, a)| (a, i)).collect();
        let start: BTreeSet<StateId> = nfa.initial_states().iter().copied().collect();
        let mut ids: HashMap<BTreeSet<StateId>, u32> = HashMap::new();
        let mut queue = VecDeque::new();
        let mut trans: Vec<Vec<u32>> = Vec::new();
        let mut finals: Vec<bool> = Vec::new();
        ids.insert(start.clone(), 0);
        queue.push_back(start);
        while let Some(set) = queue.pop_front() {
            let id = ids[&set] as usize;
            if trans.len() <= id {
                trans.resize(id + 1, Vec::new());
                finals.resize(id + 1, false);
            }
            finals[id] = set.iter().any(|&q| nfa.is_final(q));
            let mut row = vec![0u32; alphabet.len()];
            // Successor sets per alphabet symbol.
            let mut succ: Vec<BTreeSet<StateId>> = vec![BTreeSet::new(); alphabet.len()];
            for &q in &set {
                for (a, r) in nfa.transitions_from(q) {
                    if let Some(&i) = sym_index.get(a) {
                        succ[i].insert(*r);
                    }
                }
            }
            for (i, s) in succ.into_iter().enumerate() {
                let next = ids.len() as u32;
                let next_id = *ids.entry(s.clone()).or_insert_with(|| {
                    queue.push_back(s);
                    next
                });
                row[i] = next_id;
            }
            trans[id] = row;
        }
        Dfa {
            alphabet: alphabet.to_vec(),
            trans,
            finals,
        }
    }

    /// Budgeted [`Self::from_nfa`]: charges one fuel unit per macro-state
    /// and per macro-transition, so an exponential subset construction
    /// exhausts its budget instead of the host.
    pub fn try_from_nfa(
        nfa: &Nfa<A>,
        alphabet: &[A],
        budget: &tpx_trees::budget::BudgetHandle,
    ) -> Result<Dfa<A>, tpx_trees::budget::BudgetExceeded> {
        budget.charge(1)?;
        let sym_index: HashMap<&A, usize> =
            alphabet.iter().enumerate().map(|(i, a)| (a, i)).collect();
        let start: BTreeSet<StateId> = nfa.initial_states().iter().copied().collect();
        let mut ids: HashMap<BTreeSet<StateId>, u32> = HashMap::new();
        let mut queue = VecDeque::new();
        let mut trans: Vec<Vec<u32>> = Vec::new();
        let mut finals: Vec<bool> = Vec::new();
        ids.insert(start.clone(), 0);
        queue.push_back(start);
        while let Some(set) = queue.pop_front() {
            budget.charge(1)?;
            let id = ids[&set] as usize;
            if trans.len() <= id {
                trans.resize(id + 1, Vec::new());
                finals.resize(id + 1, false);
            }
            finals[id] = set.iter().any(|&q| nfa.is_final(q));
            let mut row = vec![0u32; alphabet.len()];
            let mut succ: Vec<BTreeSet<StateId>> = vec![BTreeSet::new(); alphabet.len()];
            for &q in &set {
                for (a, r) in nfa.transitions_from(q) {
                    if let Some(&i) = sym_index.get(a) {
                        succ[i].insert(*r);
                    }
                }
            }
            for (i, s) in succ.into_iter().enumerate() {
                budget.charge(1)?;
                let next = ids.len() as u32;
                let next_id = *ids.entry(s.clone()).or_insert_with(|| {
                    queue.push_back(s);
                    next
                });
                row[i] = next_id;
            }
            trans[id] = row;
        }
        Ok(Dfa {
            alphabet: alphabet.to_vec(),
            trans,
            finals,
        })
    }

    /// The alphabet this DFA is complete over.
    pub fn alphabet(&self) -> &[A] {
        &self.alphabet
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// Runs the DFA on `w`; `None` if a symbol is outside the alphabet.
    pub fn run(&self, w: &[A]) -> Option<u32> {
        let sym_index: HashMap<&A, usize> = self
            .alphabet
            .iter()
            .enumerate()
            .map(|(i, a)| (a, i))
            .collect();
        let mut q = 0u32;
        for a in w {
            let i = *sym_index.get(a)?;
            q = self.trans[q as usize][i];
        }
        Some(q)
    }

    /// Whether the DFA accepts `w`. Words with out-of-alphabet symbols are
    /// rejected.
    pub fn accepts(&self, w: &[A]) -> bool {
        self.run(w).is_some_and(|q| self.finals[q as usize])
    }

    /// Complement over the same alphabet.
    pub fn complement(&self) -> Dfa<A> {
        Dfa {
            alphabet: self.alphabet.clone(),
            trans: self.trans.clone(),
            finals: self.finals.iter().map(|f| !f).collect(),
        }
    }

    /// Converts back into an NFA.
    pub fn to_nfa(&self) -> Nfa<A> {
        let mut n = Nfa::new();
        n.add_states(self.state_count());
        for (q, row) in self.trans.iter().enumerate() {
            for (i, &r) in row.iter().enumerate() {
                n.add_transition(StateId(q as u32), self.alphabet[i].clone(), StateId(r));
            }
            n.set_final(StateId(q as u32), self.finals[q]);
        }
        n.set_initial(StateId(0));
        n
    }

    /// Whether the language is empty.
    pub fn is_empty(&self) -> bool {
        // BFS from the initial state.
        let mut seen = vec![false; self.state_count()];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(q) = stack.pop() {
            if self.finals[q as usize] {
                return false;
            }
            for &r in &self.trans[q as usize] {
                if !seen[r as usize] {
                    seen[r as usize] = true;
                    stack.push(r);
                }
            }
        }
        true
    }

    /// Moore's partition-refinement minimization. The result accepts the
    /// same language with the minimum number of states (unreachable states
    /// dropped first).
    pub fn minimize(&self) -> Dfa<A> {
        // Restrict to reachable states.
        let mut reach: Vec<Option<u32>> = vec![None; self.state_count()];
        let mut order = Vec::new();
        let mut stack = vec![0u32];
        reach[0] = Some(0);
        order.push(0u32);
        while let Some(q) = stack.pop() {
            for &r in &self.trans[q as usize] {
                if reach[r as usize].is_none() {
                    reach[r as usize] = Some(order.len() as u32);
                    order.push(r);
                    stack.push(r);
                }
            }
        }
        let n = order.len();
        let trans: Vec<Vec<u32>> = order
            .iter()
            .map(|&q| {
                self.trans[q as usize]
                    .iter()
                    .map(|&r| reach[r as usize].unwrap())
                    .collect()
            })
            .collect();
        let finals: Vec<bool> = order.iter().map(|&q| self.finals[q as usize]).collect();

        // Partition refinement.
        let mut class: Vec<u32> = finals.iter().map(|&f| u32::from(f)).collect();
        loop {
            let mut sig_ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut next: Vec<u32> = Vec::with_capacity(n);
            for q in 0..n {
                let sig: Vec<u32> = trans[q].iter().map(|&r| class[r as usize]).collect();
                let fresh = sig_ids.len() as u32;
                let id = *sig_ids.entry((class[q], sig)).or_insert(fresh);
                next.push(id);
            }
            if next == class {
                break;
            }
            class = next;
        }
        let n_classes = class.iter().copied().max().map_or(0, |m| m as usize + 1);
        // Renumber so the initial state's class is 0.
        let mut rename: Vec<Option<u32>> = vec![None; n_classes];
        rename[class[0] as usize] = Some(0);
        let mut fresh = 1u32;
        for &cq in class.iter().take(n) {
            let c = cq as usize;
            if rename[c].is_none() {
                rename[c] = Some(fresh);
                fresh += 1;
            }
        }
        let mut min_trans = vec![vec![0u32; self.alphabet.len()]; n_classes];
        let mut min_finals = vec![false; n_classes];
        for q in 0..n {
            let c = rename[class[q] as usize].unwrap() as usize;
            min_finals[c] = finals[q];
            for (i, &r) in trans[q].iter().enumerate() {
                min_trans[c][i] = rename[class[r as usize] as usize].unwrap();
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            trans: min_trans,
            finals: min_finals,
        }
    }

    /// Language equivalence with `other` (must share the same alphabet,
    /// order included).
    pub fn equivalent(&self, other: &Dfa<A>) -> bool {
        assert!(
            self.alphabet == other.alphabet,
            "equivalence requires identical alphabets"
        );
        // Product walk looking for a distinguishing state pair.
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![(0u32, 0u32)];
        seen.insert((0u32, 0u32));
        while let Some((p, q)) = stack.pop() {
            if self.finals[p as usize] != other.finals[q as usize] {
                return false;
            }
            for i in 0..self.alphabet.len() {
                let pair = (self.trans[p as usize][i], other.trans[q as usize][i]);
                if seen.insert(pair) {
                    stack.push(pair);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    fn ab() -> Vec<char> {
        vec!['a', 'b']
    }

    #[test]
    fn determinize_preserves_language() {
        // (a|b)*a — classic NFA.
        let mut n = Nfa::<char>::new();
        let q0 = n.add_state();
        let q1 = n.add_state();
        n.set_initial(q0);
        n.set_final(q1, true);
        n.add_transition(q0, 'a', q0);
        n.add_transition(q0, 'b', q0);
        n.add_transition(q0, 'a', q1);
        let d = n.determinize(&ab());
        for w in ["a", "ba", "aa", "bbba"] {
            assert!(d.accepts(&lit(w)), "{w}");
            assert!(n.accepts(&lit(w)), "{w}");
        }
        for w in ["", "b", "ab", "aab"] {
            assert!(!d.accepts(&lit(w)), "{w}");
        }
    }

    #[test]
    fn complement_flips_membership() {
        let n = Nfa::word("ab".chars());
        let d = n.determinize(&ab());
        let c = d.complement();
        assert!(d.accepts(&lit("ab")));
        assert!(!c.accepts(&lit("ab")));
        assert!(c.accepts(&lit("a")));
        assert!(c.accepts(&[]));
        assert!(c.accepts(&lit("abb")));
    }

    #[test]
    fn complement_rejects_out_of_alphabet() {
        let n = Nfa::word("a".chars());
        let c = n.determinize(&ab()).complement();
        // 'z' is outside the alphabet: membership is simply false, by contract.
        assert!(!c.accepts(&lit("z")));
    }

    #[test]
    fn minimize_collapses_equivalent_states() {
        // (a|b)(a|b) — even naive subset DFA has redundant structure when
        // built from a bloated NFA union.
        let x = Nfa::word("aa".chars())
            .union(&Nfa::word("ab".chars()))
            .union(&Nfa::word("ba".chars()))
            .union(&Nfa::word("bb".chars()));
        let d = x.determinize(&ab());
        let m = d.minimize();
        assert!(m.state_count() <= d.state_count());
        assert_eq!(m.state_count(), 4); // q0, q1, accept, sink
        for w in ["aa", "ab", "ba", "bb"] {
            assert!(m.accepts(&lit(w)));
        }
        for w in ["", "a", "aaa"] {
            assert!(!m.accepts(&lit(w)));
        }
        assert!(m.equivalent(&d));
    }

    #[test]
    fn equivalence_distinguishes() {
        let a = Nfa::word("a".chars()).determinize(&ab());
        let b = Nfa::word("b".chars()).determinize(&ab());
        let a2 = Nfa::word("a".chars())
            .union(&Nfa::<char>::new())
            .determinize(&ab());
        assert!(!a.equivalent(&b));
        assert!(a.equivalent(&a2));
    }

    #[test]
    fn empty_language_detected() {
        let d = Nfa::<char>::new().determinize(&ab());
        assert!(d.is_empty());
        let e = Nfa::<char>::epsilon().determinize(&ab());
        assert!(!e.is_empty());
    }

    #[test]
    fn to_nfa_round_trip() {
        let n = Nfa::word("ab".chars()).star();
        let d = n.determinize(&ab());
        let back = d.to_nfa();
        for w in ["", "ab", "abab", "a", "ba"] {
            assert_eq!(n.accepts(&lit(w)), back.accepts(&lit(w)), "{w}");
        }
    }

    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Random small NFA over {a, b}.
        fn arb_nfa() -> impl Strategy<Value = Nfa<char>> {
            (
                1usize..5,
                proptest::collection::vec(
                    (0u32..5, prop_oneof![Just('a'), Just('b')], 0u32..5),
                    0..12,
                ),
                proptest::collection::vec(any::<bool>(), 5),
            )
                .prop_map(|(n, edges, fins)| {
                    let mut nfa = Nfa::new();
                    nfa.add_states(n);
                    nfa.set_initial(StateId(0));
                    for (q, a, r) in edges {
                        let (q, r) = (q % n as u32, r % n as u32);
                        nfa.add_transition(StateId(q), a, StateId(r));
                    }
                    for (i, f) in fins.into_iter().take(n).enumerate() {
                        nfa.set_final(StateId(i as u32), f);
                    }
                    nfa
                })
        }

        proptest! {
            #[test]
            fn determinization_agrees_with_nfa(nfa in arb_nfa(),
                                               words in proptest::collection::vec(
                                                   proptest::collection::vec(prop_oneof![Just('a'), Just('b')], 0..6), 0..10)) {
                let d = nfa.determinize(&['a', 'b']);
                let m = d.minimize();
                for w in &words {
                    let expect = nfa.accepts(w);
                    prop_assert_eq!(d.accepts(w), expect);
                    prop_assert_eq!(m.accepts(w), expect);
                }
                prop_assert!(m.equivalent(&d));
            }

            #[test]
            fn complement_is_involutive_and_disjoint(nfa in arb_nfa(),
                                                     w in proptest::collection::vec(prop_oneof![Just('a'), Just('b')], 0..6)) {
                let d = nfa.determinize(&['a', 'b']);
                let c = d.complement();
                prop_assert_ne!(d.accepts(&w), c.accepts(&w));
                prop_assert!(c.complement().equivalent(&d));
            }

            #[test]
            fn product_ops_match_boolean_semantics(n1 in arb_nfa(), n2 in arb_nfa(),
                                                   w in proptest::collection::vec(prop_oneof![Just('a'), Just('b')], 0..6)) {
                let i = n1.intersect(&n2);
                let u = n1.union(&n2);
                prop_assert_eq!(i.accepts(&w), n1.accepts(&w) && n2.accepts(&w));
                prop_assert_eq!(u.accepts(&w), n1.accepts(&w) || n2.accepts(&w));
            }

            #[test]
            fn concat_star_semantics(n1 in arb_nfa(), n2 in arb_nfa(),
                                     w1 in proptest::collection::vec(prop_oneof![Just('a'), Just('b')], 0..4),
                                     w2 in proptest::collection::vec(prop_oneof![Just('a'), Just('b')], 0..4)) {
                if n1.accepts(&w1) && n2.accepts(&w2) {
                    let mut w = w1.clone();
                    w.extend(w2.iter().copied());
                    prop_assert!(n1.concat(&n2).accepts(&w));
                    // star accepts w1·w1 and ε.
                    let mut ww = w1.clone();
                    ww.extend(w1.iter().copied());
                    prop_assert!(n1.star().accepts(&ww));
                    prop_assert!(n1.star().accepts(&[]));
                }
            }

            #[test]
            fn trim_preserves_language(nfa in arb_nfa(),
                                       w in proptest::collection::vec(prop_oneof![Just('a'), Just('b')], 0..6)) {
                prop_assert_eq!(nfa.trim().accepts(&w), nfa.accepts(&w));
            }

            #[test]
            fn shortest_word_is_accepted_and_minimal(nfa in arb_nfa()) {
                if let Some(w) = nfa.shortest_word() {
                    prop_assert!(nfa.accepts(&w));
                } else {
                    prop_assert!(nfa.is_empty());
                }
            }
        }
    }
}
