//! Nondeterministic finite automata over generic symbol types.
//!
//! An [`Nfa<A>`] is `(Q, A, δ, I, F)` with a *set* of initial states (the
//! paper uses a single `q₀`; a set costs nothing and simplifies unions).
//! There are no ε-transitions; constructions that would need them (union,
//! concatenation) splice transitions instead.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

/// A dense automaton state identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// Dense index of this state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A nondeterministic finite automaton over symbols of type `A`.
#[derive(Clone, Debug)]
pub struct Nfa<A> {
    /// Outgoing transitions per state.
    trans: Vec<Vec<(A, StateId)>>,
    initial: Vec<StateId>,
    finals: Vec<bool>,
}

impl<A: Clone + Eq + Hash> Default for Nfa<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Clone + Eq + Hash> Nfa<A> {
    /// The automaton with no states (empty language).
    pub fn new() -> Self {
        Nfa {
            trans: Vec::new(),
            initial: Vec::new(),
            finals: Vec::new(),
        }
    }

    /// An automaton accepting exactly the empty word.
    pub fn epsilon() -> Self {
        let mut n = Self::new();
        let q = n.add_state();
        n.set_initial(q);
        n.set_final(q, true);
        n
    }

    /// An automaton accepting exactly the single-symbol word `a`.
    pub fn symbol(a: A) -> Self {
        let mut n = Self::new();
        let q0 = n.add_state();
        let q1 = n.add_state();
        n.set_initial(q0);
        n.set_final(q1, true);
        n.add_transition(q0, a, q1);
        n
    }

    /// An automaton accepting exactly the word `w`.
    pub fn word(w: impl IntoIterator<Item = A>) -> Self {
        let mut n = Self::new();
        let mut cur = n.add_state();
        n.set_initial(cur);
        for a in w {
            let next = n.add_state();
            n.add_transition(cur, a, next);
            cur = next;
        }
        n.set_final(cur, true);
        n
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId(u32::try_from(self.trans.len()).expect("too many states"));
        self.trans.push(Vec::new());
        self.finals.push(false);
        id
    }

    /// Adds `n` fresh states, returning the first id.
    pub fn add_states(&mut self, n: usize) -> StateId {
        let first = StateId(self.trans.len() as u32);
        for _ in 0..n {
            self.add_state();
        }
        first
    }

    /// Marks `q` as (an additional) initial state.
    pub fn set_initial(&mut self, q: StateId) {
        if !self.initial.contains(&q) {
            self.initial.push(q);
        }
    }

    /// Sets the final flag of `q`.
    pub fn set_final(&mut self, q: StateId, is_final: bool) {
        self.finals[q.index()] = is_final;
    }

    /// Adds a transition `q --a--> r` (duplicates ignored).
    pub fn add_transition(&mut self, q: StateId, a: A, r: StateId) {
        let row = &mut self.trans[q.index()];
        if !row.iter().any(|(b, s)| *b == a && *s == r) {
            row.push((a, r));
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.trans.iter().map(Vec::len).sum()
    }

    /// The paper's `|A|`: states plus transitions.
    pub fn size(&self) -> usize {
        self.state_count() + self.transition_count()
    }

    /// All states.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.trans.len() as u32).map(StateId)
    }

    /// The initial states.
    pub fn initial_states(&self) -> &[StateId] {
        &self.initial
    }

    /// Whether `q` is final.
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q.index()]
    }

    /// Outgoing transitions of `q`.
    pub fn transitions_from(&self, q: StateId) -> &[(A, StateId)] {
        &self.trans[q.index()]
    }

    /// Iterates over all transitions `(q, a, r)`.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, &A, StateId)> {
        self.trans
            .iter()
            .enumerate()
            .flat_map(|(q, row)| row.iter().map(move |(a, r)| (StateId(q as u32), a, *r)))
    }

    /// Successor set of `S` under symbol `a`.
    pub fn step(&self, states: &HashSet<StateId>, a: &A) -> HashSet<StateId> {
        let mut out = HashSet::new();
        for &q in states {
            for (b, r) in &self.trans[q.index()] {
                if b == a {
                    out.insert(*r);
                }
            }
        }
        out
    }

    /// Whether the automaton accepts `w`.
    pub fn accepts(&self, w: &[A]) -> bool {
        let mut cur: HashSet<StateId> = self.initial.iter().copied().collect();
        for a in w {
            if cur.is_empty() {
                return false;
            }
            cur = self.step(&cur, a);
        }
        cur.iter().any(|&q| self.is_final(q))
    }

    /// Whether the automaton accepts the empty word.
    pub fn accepts_empty(&self) -> bool {
        self.initial.iter().any(|&q| self.is_final(q))
    }

    /// Whether the language is empty (no final state reachable).
    pub fn is_empty(&self) -> bool {
        self.shortest_word().is_none()
    }

    /// A shortest accepted word, if the language is non-empty (BFS).
    pub fn shortest_word(&self) -> Option<Vec<A>> {
        let mut pred: HashMap<StateId, Option<(StateId, A)>> = HashMap::new();
        let mut queue = VecDeque::new();
        for &q in &self.initial {
            if pred.insert(q, None).is_none() {
                queue.push_back(q);
            }
        }
        while let Some(q) = queue.pop_front() {
            if self.is_final(q) {
                let mut w = Vec::new();
                let mut cur = q;
                while let Some(Some((p, a))) = pred.get(&cur) {
                    w.push(a.clone());
                    cur = *p;
                }
                w.reverse();
                return Some(w);
            }
            for (a, r) in &self.trans[q.index()] {
                if !pred.contains_key(r) {
                    pred.insert(*r, Some((q, a.clone())));
                    queue.push_back(*r);
                }
            }
        }
        None
    }

    /// States reachable from the initial states.
    pub fn reachable(&self) -> HashSet<StateId> {
        let mut seen: HashSet<StateId> = self.initial.iter().copied().collect();
        let mut stack: Vec<StateId> = self.initial.clone();
        while let Some(q) = stack.pop() {
            for (_, r) in &self.trans[q.index()] {
                if seen.insert(*r) {
                    stack.push(*r);
                }
            }
        }
        seen
    }

    /// States from which a final state is reachable.
    pub fn productive(&self) -> HashSet<StateId> {
        // Reverse reachability from finals.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.trans.len()];
        for (q, _, r) in self.transitions() {
            rev[r.index()].push(q);
        }
        let mut seen: HashSet<StateId> = self.states().filter(|&q| self.is_final(q)).collect();
        let mut stack: Vec<StateId> = seen.iter().copied().collect();
        while let Some(q) = stack.pop() {
            for &p in &rev[q.index()] {
                if seen.insert(p) {
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// Removes unreachable and unproductive states, renumbering the rest.
    /// Language-preserving.
    pub fn trim(&self) -> Nfa<A> {
        let reach = self.reachable();
        let prod = self.productive();
        let keep: Vec<StateId> = self
            .states()
            .filter(|q| reach.contains(q) && prod.contains(q))
            .collect();
        let remap: HashMap<StateId, StateId> = keep
            .iter()
            .enumerate()
            .map(|(i, &q)| (q, StateId(i as u32)))
            .collect();
        let mut out = Nfa::new();
        out.add_states(keep.len());
        for &q in &keep {
            let nq = remap[&q];
            out.set_final(nq, self.is_final(q));
            for (a, r) in &self.trans[q.index()] {
                if let Some(&nr) = remap.get(r) {
                    out.add_transition(nq, a.clone(), nr);
                }
            }
        }
        for q in &self.initial {
            if let Some(&nq) = remap.get(q) {
                out.set_initial(nq);
            }
        }
        out
    }

    /// Product automaton accepting `L(self) ∩ L(other)`.
    pub fn intersect(&self, other: &Nfa<A>) -> Nfa<A> {
        let mut out = Nfa::new();
        let mut ids: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut stack = Vec::new();
        for &p in &self.initial {
            for &q in &other.initial {
                let id = *ids.entry((p, q)).or_insert_with(|| {
                    stack.push((p, q));
                    out.add_state()
                });
                out.set_initial(id);
            }
        }
        while let Some((p, q)) = stack.pop() {
            let id = ids[&(p, q)];
            out.set_final(id, self.is_final(p) && other.is_final(q));
            for (a, p2) in &self.trans[p.index()] {
                for (b, q2) in &other.trans[q.index()] {
                    if a == b {
                        let next = *ids.entry((*p2, *q2)).or_insert_with(|| {
                            stack.push((*p2, *q2));
                            out.add_state()
                        });
                        out.add_transition(id, a.clone(), next);
                    }
                }
            }
        }
        out
    }

    /// Disjoint union accepting `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Nfa<A>) -> Nfa<A> {
        let mut out = self.clone();
        let offset = out.state_count() as u32;
        for row in &other.trans {
            let q = out.add_state();
            for (a, r) in row {
                out.add_transition(q, a.clone(), StateId(r.0 + offset));
            }
        }
        for q in other.states() {
            out.set_final(StateId(q.0 + offset), other.is_final(q));
        }
        for &q in &other.initial {
            out.set_initial(StateId(q.0 + offset));
        }
        out
    }

    /// Concatenation `L(self) · L(other)`.
    pub fn concat(&self, other: &Nfa<A>) -> Nfa<A> {
        let mut out = self.clone();
        let offset = out.state_count() as u32;
        for row in &other.trans {
            let q = out.add_state();
            for (a, r) in row {
                out.add_transition(q, a.clone(), StateId(r.0 + offset));
            }
        }
        let other_initial: Vec<StateId> = other
            .initial
            .iter()
            .map(|q| StateId(q.0 + offset))
            .collect();
        let other_accepts_empty = other.accepts_empty();
        // Splice: from every self-final state, copy the out-edges of other's
        // initial states; self-final states stay final iff other accepts ε.
        for q in self.states() {
            if self.is_final(q) {
                for &i in &other_initial {
                    let edges: Vec<(A, StateId)> = out.trans[i.index()].clone();
                    for (a, r) in edges {
                        out.add_transition(q, a, r);
                    }
                }
                out.set_final(q, other_accepts_empty);
            }
        }
        for q in other.states() {
            out.set_final(StateId(q.0 + offset), other.is_final(q));
        }
        if self.accepts_empty() {
            for &i in &other_initial {
                out.set_initial(i);
            }
        }
        out
    }

    /// Kleene star `L(self)*`.
    pub fn star(&self) -> Nfa<A> {
        let mut out = self.plus();
        // Ensure ε is accepted: add a fresh initial+final state.
        let q = out.add_state();
        out.set_initial(q);
        out.set_final(q, true);
        out
    }

    /// Kleene plus `L(self)⁺`.
    pub fn plus(&self) -> Nfa<A> {
        let mut out = self.clone();
        // From every final state, copy out-edges of initial states.
        let init_edges: Vec<(StateId, A, StateId)> = out
            .initial
            .clone()
            .into_iter()
            .flat_map(|i| {
                out.trans[i.index()]
                    .clone()
                    .into_iter()
                    .map(move |(a, r)| (i, a, r))
            })
            .collect();
        for q in out.states().collect::<Vec<_>>() {
            if out.is_final(q) {
                for (_, a, r) in &init_edges {
                    out.add_transition(q, a.clone(), *r);
                }
            }
        }
        out
    }

    /// Optional `L(self) ∪ {ε}`.
    pub fn optional(&self) -> Nfa<A> {
        let mut out = self.clone();
        let q = out.add_state();
        out.set_initial(q);
        out.set_final(q, true);
        out
    }

    /// Maps symbols through `f`, preserving structure.
    pub fn map_symbols<B: Clone + Eq + Hash>(&self, mut f: impl FnMut(&A) -> B) -> Nfa<B> {
        let mut out = Nfa::new();
        out.add_states(self.state_count());
        for (q, a, r) in self.transitions() {
            out.add_transition(q, f(a), r);
        }
        for q in self.states() {
            out.set_final(q, self.is_final(q));
        }
        for &q in &self.initial {
            out.set_initial(q);
        }
        out
    }

    /// The symbols occurring on transitions (the *effective* alphabet).
    pub fn alphabet(&self) -> Vec<A> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for (_, a, _) in self.transitions() {
            if seen.insert(a.clone()) {
                out.push(a.clone());
            }
        }
        out
    }

    /// Subset construction relative to the given alphabet (symbols outside
    /// `alphabet` are assumed to never occur). The result is complete over
    /// `alphabet`.
    pub fn determinize(&self, alphabet: &[A]) -> crate::dfa::Dfa<A> {
        crate::dfa::Dfa::from_nfa(self, alphabet)
    }

    /// Language equivalence over the given alphabet (via determinization).
    pub fn equivalent(&self, other: &Nfa<A>, alphabet: &[A]) -> bool {
        let d1 = self.determinize(alphabet);
        let d2 = other.determinize(alphabet);
        d1.equivalent(&d2)
    }
}

impl tpx_trees::StableHash for StateId {
    fn stable_hash(&self, h: &mut tpx_trees::StableHasher) {
        h.write_u64(u64::from(self.0));
    }
}

/// Structural content hash: two NFAs built the same way hash the same, in
/// every process — the engine layer keys its artifact cache on this.
impl<A: tpx_trees::StableHash> tpx_trees::StableHash for Nfa<A> {
    fn stable_hash(&self, h: &mut tpx_trees::StableHasher) {
        self.initial.stable_hash(h);
        self.finals.stable_hash(h);
        h.write_usize(self.trans.len());
        for per_state in &self.trans {
            per_state.as_slice().stable_hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn word_automaton() {
        let n = Nfa::word("abc".chars());
        assert!(n.accepts(&lit("abc")));
        assert!(!n.accepts(&lit("ab")));
        assert!(!n.accepts(&lit("abcd")));
        assert_eq!(n.state_count(), 4);
    }

    #[test]
    fn epsilon_and_symbol() {
        let e = Nfa::<char>::epsilon();
        assert!(e.accepts(&[]));
        assert!(!e.accepts(&lit("a")));
        let s = Nfa::symbol('a');
        assert!(s.accepts(&lit("a")));
        assert!(!s.accepts(&[]));
    }

    #[test]
    fn union_and_intersection() {
        let a = Nfa::word("ab".chars());
        let b = Nfa::word("ac".chars());
        let u = a.union(&b);
        assert!(u.accepts(&lit("ab")));
        assert!(u.accepts(&lit("ac")));
        assert!(!u.accepts(&lit("aa")));
        let i = u.intersect(&a);
        assert!(i.accepts(&lit("ab")));
        assert!(!i.accepts(&lit("ac")));
    }

    #[test]
    fn concat_handles_epsilon_cases() {
        let e = Nfa::<char>::epsilon();
        let a = Nfa::symbol('a');
        assert!(e.concat(&a).accepts(&lit("a")));
        assert!(a.concat(&e).accepts(&lit("a")));
        assert!(e.concat(&e).accepts(&[]));
        let ab = a.concat(&Nfa::symbol('b'));
        assert!(ab.accepts(&lit("ab")));
        assert!(!ab.accepts(&lit("a")));
        // (a|ε)(b): both paths.
        let opt_a = a.optional();
        let c = opt_a.concat(&Nfa::symbol('b'));
        assert!(c.accepts(&lit("ab")));
        assert!(c.accepts(&lit("b")));
        assert!(!c.accepts(&lit("a")));
    }

    #[test]
    fn star_and_plus() {
        let a = Nfa::symbol('a');
        let s = a.star();
        assert!(s.accepts(&[]));
        assert!(s.accepts(&lit("aaa")));
        assert!(!s.accepts(&lit("ab")));
        let p = a.plus();
        assert!(!p.accepts(&[]));
        assert!(p.accepts(&lit("a")));
        assert!(p.accepts(&lit("aa")));
        // (ab)+ via word.
        let abp = Nfa::word("ab".chars()).plus();
        assert!(abp.accepts(&lit("abab")));
        assert!(!abp.accepts(&lit("aba")));
    }

    #[test]
    fn emptiness_and_shortest_word() {
        let mut n = Nfa::<char>::new();
        let q0 = n.add_state();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.set_initial(q0);
        n.add_transition(q0, 'a', q1);
        n.add_transition(q1, 'b', q2);
        n.add_transition(q0, 'x', q2);
        assert!(n.is_empty());
        n.set_final(q2, true);
        assert!(!n.is_empty());
        assert_eq!(n.shortest_word(), Some(lit("x")));
    }

    #[test]
    fn trim_removes_dead_states() {
        let mut n = Nfa::<char>::new();
        let q0 = n.add_state();
        let q1 = n.add_state();
        let dead = n.add_state(); // unreachable
        let unprod = n.add_state(); // reachable but no path to final
        n.set_initial(q0);
        n.set_final(q1, true);
        n.add_transition(q0, 'a', q1);
        n.add_transition(q0, 'b', unprod);
        n.add_transition(dead, 'c', q1);
        let t = n.trim();
        assert_eq!(t.state_count(), 2);
        assert!(t.accepts(&lit("a")));
        assert!(!t.accepts(&lit("b")));
    }

    #[test]
    fn map_symbols_relabels() {
        let n = Nfa::word("ab".chars());
        let m = n.map_symbols(|c| c.to_ascii_uppercase());
        assert!(m.accepts(&lit("AB")));
        assert!(!m.accepts(&lit("ab")));
    }

    #[test]
    fn intersect_of_disjoint_is_empty() {
        let a = Nfa::word("a".chars());
        let b = Nfa::word("b".chars());
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn alphabet_lists_used_symbols() {
        let n = Nfa::word("aba".chars());
        let mut al = n.alphabet();
        al.sort();
        assert_eq!(al, vec!['a', 'b']);
    }
}
