//! NFA → regular expression via state elimination (Kleene's construction),
//! used to render computed automata — e.g. the content models of a maximal
//! sub-schema — in human-readable form.

use crate::nfa::{Nfa, StateId};
use crate::regex::Regex;
use std::collections::HashMap;
use std::hash::Hash;

/// Converts an NFA into an equivalent regular expression by eliminating
/// states one at a time. The result can be large (state elimination is
/// worst-case exponential) but is exact; light algebraic simplifications
/// keep common cases readable.
pub fn nfa_to_regex<A: Clone + Eq + Hash>(nfa: &Nfa<A>) -> Regex<A> {
    let trimmed = nfa.trim();
    if trimmed.state_count() == 0 {
        return if nfa.accepts_empty() {
            Regex::Epsilon
        } else {
            Regex::Empty
        };
    }
    // Generalized NFA with a fresh initial (s) and final (f) state; edges
    // labelled by regexes.
    let n = trimmed.state_count();
    let s = n;
    let f = n + 1;
    let mut edges: HashMap<(usize, usize), Regex<A>> = HashMap::new();
    let add =
        |edges: &mut HashMap<(usize, usize), Regex<A>>, from: usize, to: usize, re: Regex<A>| {
            edges
                .entry((from, to))
                .and_modify(|old| *old = simplify(old.clone().or(re.clone())))
                .or_insert(re);
        };
    for &q in trimmed.initial_states() {
        add(&mut edges, s, q.index(), Regex::Epsilon);
    }
    for q in trimmed.states() {
        if trimmed.is_final(q) {
            add(&mut edges, q.index(), f, Regex::Epsilon);
        }
        for (a, r) in trimmed.transitions_from(q) {
            add(&mut edges, q.index(), r.index(), Regex::Sym(a.clone()));
        }
    }
    let _ = StateId(0);
    // Eliminate internal states.
    for k in 0..n {
        let self_loop = edges.remove(&(k, k));
        let star = self_loop.map(|r| simplify(r.star()));
        let incoming: Vec<(usize, Regex<A>)> = edges
            .iter()
            .filter(|((_, to), _)| *to == k)
            .map(|((from, _), re)| (*from, re.clone()))
            .collect();
        let outgoing: Vec<(usize, Regex<A>)> = edges
            .iter()
            .filter(|((from, _), _)| *from == k)
            .map(|((_, to), re)| (*to, re.clone()))
            .collect();
        edges.retain(|(from, to), _| *from != k && *to != k);
        for (from, rin) in &incoming {
            for (to, rout) in &outgoing {
                let mut path = rin.clone();
                if let Some(star) = &star {
                    path = simplify(path.then(star.clone()));
                }
                path = simplify(path.then(rout.clone()));
                add(&mut edges, *from, *to, path);
            }
        }
    }
    edges.remove(&(s, f)).map_or(Regex::Empty, simplify)
}

/// Light algebraic simplification (units, absorption, `ε|x·x* = x*`-free —
/// kept simple on purpose).
fn simplify<A: Clone + Eq + Hash>(re: Regex<A>) -> Regex<A> {
    match re {
        Regex::Concat(a, b) => match (simplify(*a), simplify(*b)) {
            (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
            (Regex::Epsilon, x) | (x, Regex::Epsilon) => x,
            (x, y) => x.then(y),
        },
        Regex::Alt(a, b) => match (simplify(*a), simplify(*b)) {
            (Regex::Empty, x) | (x, Regex::Empty) => x,
            (x, y) if x == y => x,
            (x, y) => x.or(y),
        },
        Regex::Star(a) => match simplify(*a) {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(inner) => Regex::Star(inner),
            x => x.star(),
        },
        other => other,
    }
}

/// Renders a regex with a caller-supplied symbol printer (concrete syntax
/// of [`crate::regex`]: `|`, juxtaposition, postfix `*`, `%eps`, `%empty`).
pub fn regex_to_string<A>(re: &Regex<A>, print: &impl Fn(&A) -> String) -> String {
    fn go<A>(re: &Regex<A>, print: &impl Fn(&A) -> String, prec: u8, out: &mut String) {
        match re {
            Regex::Empty => out.push_str("%empty"),
            Regex::Epsilon => out.push_str("%eps"),
            Regex::Sym(a) => out.push_str(&print(a)),
            Regex::Alt(a, b) => {
                let wrap = prec > 0;
                if wrap {
                    out.push('(');
                }
                go(a, print, 0, out);
                out.push_str(" | ");
                go(b, print, 0, out);
                if wrap {
                    out.push(')');
                }
            }
            Regex::Concat(a, b) => {
                let wrap = prec > 1;
                if wrap {
                    out.push('(');
                }
                go(a, print, 1, out);
                out.push(' ');
                go(b, print, 1, out);
                if wrap {
                    out.push(')');
                }
            }
            Regex::Star(a) => {
                match a.as_ref() {
                    Regex::Sym(_) => {
                        go(a, print, 2, out);
                    }
                    _ => {
                        out.push('(');
                        go(a, print, 0, out);
                        out.push(')');
                    }
                }
                out.push('*');
            }
        }
    }
    let mut out = String::new();
    go(re, print, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse_regex;

    fn round_trip(src: &str, words_yes: &[&str], words_no: &[&str]) {
        let re = parse_regex(src, &mut |s: &str| s.chars().next().unwrap()).unwrap();
        let nfa = re.to_nfa();
        let back = nfa_to_regex(&nfa);
        let nfa2 = back.to_nfa();
        for w in words_yes {
            let word: Vec<char> = w.chars().collect();
            assert!(nfa.accepts(&word), "{src} should accept {w}");
            assert!(
                nfa2.accepts(&word),
                "extracted regex for {src} must accept {w}"
            );
        }
        for w in words_no {
            let word: Vec<char> = w.chars().collect();
            assert!(
                !nfa2.accepts(&word),
                "extracted regex for {src} must reject {w}"
            );
        }
    }

    #[test]
    fn extraction_preserves_language() {
        round_trip("a b*", &["a", "ab", "abbb"], &["", "b", "ba"]);
        round_trip("(a | b)* a", &["a", "ba", "aba"], &["", "b", "ab"]);
        round_trip("%eps", &[""], &["a"]);
        round_trip("a? b+", &["b", "ab", "abb"], &["a", "", "ba"]);
        round_trip("(a b)*", &["", "ab", "abab"], &["a", "aba"]);
    }

    #[test]
    fn empty_language() {
        let nfa: Nfa<char> = Nfa::new();
        assert_eq!(nfa_to_regex(&nfa), Regex::Empty);
    }

    #[test]
    fn rendering() {
        let re = parse_regex("(a | b)* c", &mut |s: &str| s.chars().next().unwrap()).unwrap();
        let printed = regex_to_string(&re, &|c: &char| c.to_string());
        // Re-parse the rendering and compare languages on samples.
        let re2 = parse_regex(&printed, &mut |s: &str| s.chars().next().unwrap()).unwrap();
        for w in ["c", "abc", "bac", "", "ab"] {
            let word: Vec<char> = w.chars().collect();
            assert_eq!(
                re.to_nfa().accepts(&word),
                re2.to_nfa().accepts(&word),
                "{w}"
            );
        }
    }

    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_regex() -> impl Strategy<Value = Regex<char>> {
            let leaf = prop_oneof![
                Just(Regex::Epsilon),
                Just(Regex::Sym('a')),
                Just(Regex::Sym('b')),
            ];
            leaf.prop_recursive(3, 16, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner.clone()).prop_map(|(a, b)| a.then(b)),
                    (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                    inner.prop_map(Regex::star),
                ]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn extract_round_trip(re in arb_regex(),
                                  w in proptest::collection::vec(prop_oneof![Just('a'), Just('b')], 0..6)) {
                let nfa = re.to_nfa();
                let back = nfa_to_regex(&nfa);
                prop_assert_eq!(back.to_nfa().accepts(&w), nfa.accepts(&w));
            }
        }
    }
}
