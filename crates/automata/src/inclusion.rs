//! Lazy, antichain-pruned decision procedures on word NFAs.
//!
//! The eager route decides `L(A) ⊆ L(B)` by determinizing `B`,
//! complementing, and intersecting — the word-level twin of the NBTA
//! construction that DESIGN.md §13 replaced with the tree-level antichain
//! layer. The procedures here never build the subset automaton. They
//! explore, on the fly and forward from the initial states, only the
//! *reachable* portion of the product of `A` with the subset automaton of
//! `B`: pairs `(p, S)` where `p` is an `A`-state reached by some word `w`
//! and `S` is the **exact** set of `B`-states reached by `w`. A pair with
//! `p` final in `A` and `S ∩ F_B = ∅` is a counterexample, and a
//! predecessor chain decodes the concrete word the moment one is interned.
//!
//! The same two properties that make the tree layer fast apply verbatim:
//!
//! * **Reachability**: most of the `2^{|Q_B|}` subset space is never
//!   reached by any word, and the exploration simply never visits it.
//! * **Antichain pruning**: the macro-step is monotone (`S ⊆ S'` implies
//!   `step(S, a) ⊆ step(S', a)`) and rejection (`S ∩ F_B = ∅`) is
//!   downward closed, so a pair whose macro-state is a *superset* of an
//!   already-explored macro-state for the same `A`-state can never reach
//!   a counterexample the explored one cannot. We keep only the
//!   ⊆-minimal macro-states per `A`-state and skip every dominated
//!   candidate.
//!
//! Exploration is breadth-first, so a returned counterexample is a
//! shortest one — the witness quality the path-automaton callers
//! (Lemma 4.8 / the text-retention analysis) surface to users.

use crate::nfa::{Nfa, StateId};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use tpx_trees::budget::{BudgetExceeded, BudgetHandle};

fn bit_has(bits: &[u64], q: StateId) -> bool {
    bits[q.index() / 64] & (1 << (q.index() % 64)) != 0
}

fn bit_set(bits: &mut [u64], q: StateId) {
    bits[q.index() / 64] |= 1 << (q.index() % 64);
}

/// `a ⊆ b` on bitsets of equal length.
fn is_subset(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// An explored `(A-state, exact B-state-set)` pair; `prov` is the
/// predecessor arena id and the symbol that reached this pair (`None` for
/// the initial pair).
struct Pair<A> {
    p: StateId,
    set: Vec<u64>,
    prov: Option<(usize, A)>,
}

fn decode<A: Clone>(pairs: &[Pair<A>], mut id: usize) -> Vec<A> {
    let mut w = Vec::new();
    while let Some((parent, a)) = &pairs[id].prov {
        w.push(a.clone());
        id = *parent;
    }
    w.reverse();
    w
}

impl<A: Clone + Eq + Hash> Nfa<A> {
    /// Whether `L(self) ⊆ L(other)` — decided lazily, without ever
    /// determinizing `other`.
    pub fn included_in(&self, other: &Nfa<A>) -> bool {
        self.try_included_in(other, &BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::included_in`]: charges one fuel unit per explored
    /// pair and per macro-step.
    pub fn try_included_in(
        &self,
        other: &Nfa<A>,
        budget: &BudgetHandle,
    ) -> Result<bool, BudgetExceeded> {
        Ok(self.try_inclusion_counterexample(other, budget)?.is_none())
    }

    /// A shortest word in `L(self) \ L(other)`, or `None` when
    /// `L(self) ⊆ L(other)`.
    pub fn inclusion_counterexample(&self, other: &Nfa<A>) -> Option<Vec<A>> {
        self.try_inclusion_counterexample(other, &BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::inclusion_counterexample`]. Explores `(p, S)`
    /// pairs breadth-first, prunes with a per-state antichain of
    /// ⊆-minimal macro-states, and early-exits with a decoded word at the
    /// first rejecting pair.
    pub fn try_inclusion_counterexample(
        &self,
        other: &Nfa<A>,
        budget: &BudgetHandle,
    ) -> Result<Option<Vec<A>>, BudgetExceeded> {
        budget.charge(1)?;
        let words = other.state_count().div_ceil(64).max(1);
        let mut b_final_bits = vec![0u64; words];
        for q in other.states() {
            if other.is_final(q) {
                bit_set(&mut b_final_bits, q);
            }
        }
        // `other`'s transitions indexed by (state, symbol), for the
        // macro-step.
        let mut b_idx: HashMap<(StateId, &A), Vec<StateId>> = HashMap::new();
        for q in other.states() {
            for (a, r) in other.transitions_from(q) {
                b_idx.entry((q, a)).or_default().push(*r);
            }
        }
        let rejects = |set: &[u64]| set.iter().zip(&b_final_bits).all(|(s, f)| s & f == 0);

        // Arena of explored pairs. `antichain[p]` holds the ids whose
        // macro-state is ⊆-minimal among those interned for `p`;
        // dominated entries leave the antichain (so future domination
        // checks stay cheap) but their queued exploration is merely
        // redundant, never unsound.
        let mut pairs: Vec<Pair<A>> = Vec::new();
        let mut antichain: HashMap<StateId, Vec<usize>> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let intern = |p: StateId,
                      set: Vec<u64>,
                      prov: Option<(usize, A)>,
                      pairs: &mut Vec<Pair<A>>,
                      antichain: &mut HashMap<StateId, Vec<usize>>,
                      queue: &mut VecDeque<usize>|
         -> Option<usize> {
            let chain = antichain.entry(p).or_default();
            if chain.iter().any(|&i| is_subset(&pairs[i].set, &set)) {
                return None;
            }
            chain.retain(|&i| !is_subset(&set, &pairs[i].set));
            let id = pairs.len();
            chain.push(id);
            pairs.push(Pair { p, set, prov });
            queue.push_back(id);
            Some(id)
        };

        // The ε-word pair seeds the worklist: every A-initial state is
        // paired with the full B-initial macro-state.
        let mut seed = vec![0u64; words];
        for &b in other.initial_states() {
            bit_set(&mut seed, b);
        }
        for &p in self.initial_states() {
            budget.charge(1)?;
            if let Some(id) = intern(
                p,
                seed.clone(),
                None,
                &mut pairs,
                &mut antichain,
                &mut queue,
            ) {
                if self.is_final(p) && rejects(&pairs[id].set) {
                    return Ok(Some(decode(&pairs, id)));
                }
            }
        }

        while let Some(id) = queue.pop_front() {
            budget.charge(1)?;
            let p = pairs[id].p;
            // The macro-successor depends only on (S, a), so compute it
            // once per symbol even when several A-transitions share one.
            let mut succ_memo: HashMap<&A, Vec<u64>> = HashMap::new();
            let moves: Vec<(&A, StateId)> = self
                .transitions_from(p)
                .iter()
                .map(|(a, r)| (a, *r))
                .collect();
            for (a, p2) in moves {
                budget.charge(1)?;
                let succ = succ_memo
                    .entry(a)
                    .or_insert_with(|| {
                        let mut out = vec![0u64; words];
                        for b in other.states() {
                            if bit_has(&pairs[id].set, b) {
                                if let Some(rs) = b_idx.get(&(b, a)) {
                                    for &r in rs {
                                        bit_set(&mut out, r);
                                    }
                                }
                            }
                        }
                        out
                    })
                    .clone();
                if let Some(nid) = intern(
                    p2,
                    succ,
                    Some((id, a.clone())),
                    &mut pairs,
                    &mut antichain,
                    &mut queue,
                ) {
                    if self.is_final(p2) && rejects(&pairs[nid].set) {
                        return Ok(Some(decode(&pairs, nid)));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Budgeted [`Nfa::intersect`]: charges one fuel unit per product
    /// state and per product transition, so a blowing-up product exhausts
    /// its budget instead of the host.
    pub fn try_intersect(
        &self,
        other: &Nfa<A>,
        budget: &BudgetHandle,
    ) -> Result<Nfa<A>, BudgetExceeded> {
        budget.charge(1)?;
        let mut out = Nfa::new();
        let mut ids: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut stack = Vec::new();
        for &p in self.initial_states() {
            for &q in other.initial_states() {
                budget.charge(1)?;
                let id = *ids.entry((p, q)).or_insert_with(|| {
                    stack.push((p, q));
                    out.add_state()
                });
                out.set_initial(id);
            }
        }
        while let Some((p, q)) = stack.pop() {
            let id = ids[&(p, q)];
            out.set_final(id, self.is_final(p) && other.is_final(q));
            for (a, p2) in self.transitions_from(p) {
                for (b, q2) in other.transitions_from(q) {
                    if a == b {
                        budget.charge(1)?;
                        let next = *ids.entry((*p2, *q2)).or_insert_with(|| {
                            stack.push((*p2, *q2));
                            out.add_state()
                        });
                        out.add_transition(id, a.clone(), next);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Budgeted [`Nfa::determinize`]: the subset construction, charging
    /// one fuel unit per macro-state and per macro-transition. Kept for
    /// the derived operations that genuinely need the determinized
    /// automaton as an object; inclusion/emptiness queries should use
    /// [`Self::try_included_in`] instead and never pay for the subset
    /// space.
    pub fn try_determinize(
        &self,
        alphabet: &[A],
        budget: &BudgetHandle,
    ) -> Result<crate::dfa::Dfa<A>, BudgetExceeded> {
        crate::dfa::Dfa::try_from_nfa(self, alphabet, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    /// `(a|b)*a` — every word ending in `a`.
    fn ends_in_a() -> Nfa<char> {
        let mut n = Nfa::new();
        let q0 = n.add_state();
        let q1 = n.add_state();
        n.set_initial(q0);
        n.set_final(q1, true);
        n.add_transition(q0, 'a', q0);
        n.add_transition(q0, 'b', q0);
        n.add_transition(q0, 'a', q1);
        n
    }

    /// Every word over {a, b}.
    fn universal() -> Nfa<char> {
        let mut n = Nfa::new();
        let q = n.add_state();
        n.set_initial(q);
        n.set_final(q, true);
        n.add_transition(q, 'a', q);
        n.add_transition(q, 'b', q);
        n
    }

    #[test]
    fn inclusion_verdicts() {
        let a = ends_in_a();
        let u = universal();
        assert!(a.included_in(&u));
        assert!(!u.included_in(&a));
        assert!(a.included_in(&a));
        assert!(u.included_in(&u));
    }

    #[test]
    fn counterexample_is_genuine_and_shortest() {
        let a = ends_in_a();
        let u = universal();
        let w = u.inclusion_counterexample(&a).expect("u ⊄ ends_in_a");
        assert!(u.accepts(&w));
        assert!(!a.accepts(&w));
        // ε is the shortest word in L(u) \ L(a).
        assert!(w.is_empty());
        assert!(a.inclusion_counterexample(&u).is_none());
    }

    #[test]
    fn inclusion_agrees_with_eager_complement_route() {
        let a = ends_in_a();
        let u = universal();
        let ab = ['a', 'b'];
        for (x, y) in [(&a, &u), (&u, &a), (&a, &a), (&u, &u)] {
            let eager = x
                .intersect(&y.determinize(&ab).complement().to_nfa())
                .is_empty();
            assert_eq!(x.included_in(y), eager);
        }
    }

    #[test]
    fn inclusion_against_empty_language() {
        let empty = Nfa::<char>::new();
        assert!(empty.included_in(&ends_in_a()));
        let w = ends_in_a()
            .inclusion_counterexample(&empty)
            .expect("nonempty ⊄ ∅");
        assert!(ends_in_a().accepts(&w));
        assert_eq!(w, lit("a"));
    }

    #[test]
    fn try_intersect_matches_eager() {
        let a = ends_in_a();
        let u = universal();
        let b = BudgetHandle::unlimited();
        let i = a.try_intersect(&u, &b).unwrap();
        for w in ["", "a", "ba", "ab", "bb"] {
            assert_eq!(i.accepts(&lit(w)), a.accepts(&lit(w)), "{w}");
        }
    }

    #[test]
    fn try_determinize_matches_eager() {
        let a = ends_in_a();
        let ab = ['a', 'b'];
        let d = a.try_determinize(&ab, &BudgetHandle::unlimited()).unwrap();
        for w in ["", "a", "ba", "ab", "bb"] {
            assert_eq!(d.accepts(&lit(w)), a.accepts(&lit(w)), "{w}");
        }
        assert!(d.equivalent(&a.determinize(&ab)));
    }

    #[test]
    fn budgeted_ops_charge_and_fail_on_zero_fuel() {
        use tpx_trees::budget::{Budget, ExhaustReason};
        let a = ends_in_a();
        let u = universal();
        let gen = Budget::default().with_fuel(1_000_000).start();
        assert!(a.try_included_in(&u, &gen).unwrap());
        assert!(!u.try_included_in(&a, &gen).unwrap());
        assert!(gen.fuel_spent() > 0, "the lazy ops must charge fuel");
        let z = Budget::default().with_fuel(0).start();
        for err in [
            a.try_included_in(&u, &z).map(|_| ()).unwrap_err(),
            a.try_inclusion_counterexample(&u, &z)
                .map(|_| ())
                .unwrap_err(),
            a.try_intersect(&u, &z).map(|_| ()).unwrap_err(),
            a.try_determinize(&['a', 'b'], &z).map(|_| ()).unwrap_err(),
        ] {
            assert_eq!(err.reason, ExhaustReason::Fuel);
        }
    }
}
