//! Top-down uniform tree transducers (Definition 4.1).

use std::collections::HashMap;
use std::fmt;

use tpx_trees::{Alphabet, Hedge, HedgeBuilder, NodeId, NodeLabel, Symbol, Tree};

/// A transducer state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TdState(pub u32);

impl TdState {
    /// Dense index of this state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TdState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A node of a rule's right-hand-side hedge: an element with sub-hedge, or a
/// state leaf.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RhsNode {
    /// An output element `σ(...)`.
    Elem(Symbol, Vec<RhsNode>),
    /// A state leaf `p`, replaced during evaluation by `T^p(t₁)⋯T^p(tₙ)`.
    State(TdState),
}

impl RhsNode {
    /// Size (number of nodes) of this template tree.
    pub fn size(&self) -> usize {
        match self {
            RhsNode::State(_) => 1,
            RhsNode::Elem(_, kids) => 1 + kids.iter().map(RhsNode::size).sum::<usize>(),
        }
    }

    fn frontier_states_into(&self, out: &mut Vec<TdState>) {
        match self {
            RhsNode::State(q) => out.push(*q),
            RhsNode::Elem(_, kids) => {
                for k in kids {
                    k.frontier_states_into(out);
                }
            }
        }
    }
}

/// The state leaves of a template hedge, in frontier (document) order — the
/// paper's `frontier(rhs(q, a))` restricted to `Q`-labels. (Σ-labelled
/// leaves of the rhs never matter for runs, so we keep only states.)
pub fn frontier_states(rhs: &[RhsNode]) -> Vec<TdState> {
    let mut out = Vec::new();
    for n in rhs {
        n.frontier_states_into(&mut out);
    }
    out
}

/// A top-down uniform tree transducer `(Q, Σ ∪ {text}, q₀, R)`.
#[derive(Clone, Debug)]
pub struct Transducer {
    n_symbols: usize,
    n_states: usize,
    initial: TdState,
    /// `rhs(q, a)`, if a rule exists. Indexed `[q][a]`.
    rules: Vec<Vec<Option<Vec<RhsNode>>>>,
    /// Whether `(q, text) → text` is a rule.
    text_rules: Vec<bool>,
}

impl Transducer {
    /// A transducer over `n_symbols` labels with `n_states` states and the
    /// given initial state; no rules yet.
    pub fn new(n_symbols: usize, n_states: usize, initial: TdState) -> Self {
        assert!(initial.index() < n_states);
        Transducer {
            n_symbols,
            n_states,
            initial,
            rules: vec![vec![None; n_symbols]; n_states],
            text_rules: vec![false; n_states],
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.n_states
    }

    /// Number of element symbols.
    pub fn symbol_count(&self) -> usize {
        self.n_symbols
    }

    /// The initial state `q₀`.
    pub fn initial(&self) -> TdState {
        self.initial
    }

    /// All states.
    pub fn states(&self) -> impl Iterator<Item = TdState> {
        (0..self.n_states as u32).map(TdState)
    }

    /// Installs the rule `(q, a) → rhs`. Per Definition 4.1 there is at most
    /// one rule per `(q, a)`; installing twice replaces. Rules with an empty
    /// rhs are *useless* (equivalent to no rule) and rejected.
    pub fn set_rule(&mut self, q: TdState, a: Symbol, rhs: Vec<RhsNode>) {
        assert!(!rhs.is_empty(), "useless rule (q, a) → ε; omit it instead");
        self.rules[q.index()][a.index()] = Some(rhs);
    }

    /// Installs (or removes) the rule `(q, text) → text`.
    pub fn set_text_rule(&mut self, q: TdState, enabled: bool) {
        self.text_rules[q.index()] = enabled;
    }

    /// The rhs of the rule `(q, a)`, if present.
    pub fn rhs(&self, q: TdState, a: Symbol) -> Option<&[RhsNode]> {
        self.rules[q.index()][a.index()].as_deref()
    }

    /// Whether `(q, text) → text` is a rule.
    pub fn text_rule(&self, q: TdState) -> bool {
        self.text_rules[q.index()]
    }

    /// The paper's `|T| = |Q| + |R|` with `|R|` the total rhs size.
    pub fn size(&self) -> usize {
        self.n_states
            + self
                .rules
                .iter()
                .flatten()
                .flatten()
                .flatten()
                .map(RhsNode::size)
                .sum::<usize>()
            + self.text_rules.iter().filter(|&&b| b).count()
    }

    /// Checks the Definition 4.1 well-formedness restriction on the initial
    /// state: every `rhs(q₀, a)` is a single tree whose root is a Σ-label
    /// (this forces outputs to be trees).
    pub fn initial_rules_output_trees(&self) -> bool {
        (0..self.n_symbols).all(|a| match self.rhs(self.initial, Symbol(a as u32)) {
            None => true,
            Some([RhsNode::Elem(_, _)]) => true,
            Some(_) => false,
        })
    }

    /// The transformation `T(t) = T^{q₀}(t)`.
    pub fn transform(&self, t: &Tree) -> Hedge {
        let mut b = HedgeBuilder::new();
        self.eval_state(t.as_hedge(), t.root(), self.initial, &mut b);
        b.finish()
    }

    /// The translation `T^q(h)` of a hedge (Definition 4.1 (i)–(iii)).
    pub fn eval_hedge(&self, h: &Hedge, q: TdState) -> Hedge {
        let mut b = HedgeBuilder::new();
        for &r in h.roots() {
            self.eval_state(h, r, q, &mut b);
        }
        b.finish()
    }

    fn eval_state(&self, h: &Hedge, v: NodeId, q: TdState, b: &mut HedgeBuilder) {
        match h.label(v) {
            NodeLabel::Text(val) => {
                if self.text_rules[q.index()] {
                    b.text(val);
                }
            }
            NodeLabel::Elem(a) => {
                let Some(rhs) = self.rhs(q, *a) else {
                    return; // no rule: T^q(t) = ε
                };
                for node in rhs {
                    self.eval_rhs(h, v, node, b);
                }
            }
        }
    }

    fn eval_rhs(&self, h: &Hedge, v: NodeId, node: &RhsNode, b: &mut HedgeBuilder) {
        match node {
            RhsNode::Elem(s, kids) => {
                b.open(*s);
                for k in kids {
                    self.eval_rhs(h, v, k, b);
                }
                b.close();
            }
            RhsNode::State(p) => {
                for &c in h.children(v) {
                    self.eval_state(h, c, *p, b);
                }
            }
        }
    }

    /// States reachable from `q₀` through rhs state leaves (Section 4.1).
    pub fn reachable_states(&self) -> Vec<bool> {
        let mut reach = vec![false; self.n_states];
        reach[self.initial.index()] = true;
        let mut stack = vec![self.initial];
        while let Some(q) = stack.pop() {
            for row in &self.rules[q.index()] {
                let Some(rhs) = row else { continue };
                for p in frontier_states(rhs) {
                    if !reach[p.index()] {
                        reach[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
        }
        reach
    }

    /// Whether all states are reachable and no rule is useless (the paper's
    /// *reduced* normal form, assumed throughout Section 4).
    pub fn is_reduced(&self) -> bool {
        // Useless rules are rejected at construction; only reachability
        // remains.
        self.reachable_states().iter().all(|&r| r)
    }

    /// The reduced equivalent: unreachable states dropped, the rest
    /// renumbered.
    pub fn reduce(&self) -> Transducer {
        let reach = self.reachable_states();
        let keep: Vec<TdState> = self.states().filter(|q| reach[q.index()]).collect();
        let remap: HashMap<TdState, TdState> = keep
            .iter()
            .enumerate()
            .map(|(i, &q)| (q, TdState(i as u32)))
            .collect();
        let mut out = Transducer::new(self.n_symbols, keep.len(), remap[&self.initial]);
        for &q in &keep {
            out.text_rules[remap[&q].index()] = self.text_rules[q.index()];
            for a in 0..self.n_symbols {
                if let Some(rhs) = self.rhs(q, Symbol(a as u32)) {
                    let mapped: Vec<RhsNode> = rhs.iter().map(|n| remap_rhs(n, &remap)).collect();
                    out.set_rule(remap[&q], Symbol(a as u32), mapped);
                }
            }
        }
        out
    }
}

impl Transducer {
    /// Renders the rule table in the paper's notation, e.g.
    /// `(q0, recipes) → recipes(q0)`.
    pub fn display<'a>(&'a self, alpha: &'a Alphabet) -> impl fmt::Display + 'a {
        DisplayTransducer { t: self, alpha }
    }
}

struct DisplayTransducer<'a> {
    t: &'a Transducer,
    alpha: &'a Alphabet,
}

impl fmt::Display for DisplayTransducer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "initial q{}", self.t.initial().0)?;
        for q in self.t.states() {
            for sym in 0..self.t.symbol_count() {
                let s = Symbol(sym as u32);
                if let Some(rhs) = self.t.rhs(q, s) {
                    write!(f, "(q{}, {}) → ", q.0, self.alpha.name(s))?;
                    for (i, node) in rhs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write_rhs(node, self.alpha, f)?;
                    }
                    writeln!(f)?;
                }
            }
            if self.t.text_rule(q) {
                writeln!(f, "(q{}, text) → text", q.0)?;
            }
        }
        Ok(())
    }
}

fn write_rhs(node: &RhsNode, alpha: &Alphabet, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match node {
        RhsNode::State(q) => write!(f, "q{}", q.0),
        RhsNode::Elem(s, kids) => {
            write!(f, "{}", alpha.name(*s))?;
            if !kids.is_empty() {
                write!(f, "(")?;
                for (i, k) in kids.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write_rhs(k, alpha, f)?;
                }
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

fn remap_rhs(node: &RhsNode, remap: &HashMap<TdState, TdState>) -> RhsNode {
    match node {
        RhsNode::State(q) => RhsNode::State(remap[q]),
        RhsNode::Elem(s, kids) => {
            RhsNode::Elem(*s, kids.iter().map(|k| remap_rhs(k, remap)).collect())
        }
    }
}

impl tpx_trees::StableHash for TdState {
    fn stable_hash(&self, h: &mut tpx_trees::StableHasher) {
        h.write_u64(u64::from(self.0));
    }
}

impl tpx_trees::StableHash for RhsNode {
    fn stable_hash(&self, h: &mut tpx_trees::StableHasher) {
        match self {
            RhsNode::Elem(s, kids) => {
                h.write(&[0]);
                s.stable_hash(h);
                kids.stable_hash(h);
            }
            RhsNode::State(q) => {
                h.write(&[1]);
                q.stable_hash(h);
            }
        }
    }
}

/// Structural content hash over the full rule table: two transducers built
/// the same way hash the same, in every process — the engine layer keys
/// its transducer-artifact cache on this.
impl tpx_trees::StableHash for Transducer {
    fn stable_hash(&self, h: &mut tpx_trees::StableHasher) {
        h.write_usize(self.n_symbols);
        h.write_usize(self.n_states);
        self.initial.stable_hash(h);
        self.text_rules.stable_hash(h);
        for per_state in &self.rules {
            for rhs in per_state {
                rhs.stable_hash(h);
            }
        }
    }
}

/// Convenience builder with named states and term-syntax right-hand sides.
///
/// Rhs syntax: the term syntax of [`tpx_trees::term`], where an identifier
/// that names a declared *state* is a state leaf and every other identifier
/// is an output label. States must therefore be declared (via
/// [`TransducerBuilder::state`] or by appearing as a rule's source) before
/// the rhs that mentions them is parsed.
///
/// ```
/// use tpx_trees::Alphabet;
/// use tpx_topdown::TransducerBuilder;
/// let sigma = Alphabet::from_labels(["a", "b"]);
/// let mut b = TransducerBuilder::new(&sigma, "q0");
/// b.state("q");
/// b.rule("q0", "a", "a(q)");
/// b.rule("q", "b", "b");
/// b.text_rule("q");
/// let t = b.finish();
/// assert_eq!(t.state_count(), 2);
/// assert!(t.initial_rules_output_trees());
/// ```
pub struct TransducerBuilder {
    alpha: Alphabet,
    state_names: Vec<String>,
    state_ids: HashMap<String, TdState>,
    rules: Vec<(TdState, Symbol, String)>,
    text_rules: Vec<String>,
    initial: TdState,
}

impl TransducerBuilder {
    /// Starts building over `alpha` with the given initial state name.
    pub fn new(alpha: &Alphabet, initial: &str) -> Self {
        let mut b = TransducerBuilder {
            alpha: alpha.clone(),
            state_names: Vec::new(),
            state_ids: HashMap::new(),
            rules: Vec::new(),
            text_rules: Vec::new(),
            initial: TdState(0),
        };
        b.initial = b.state(initial);
        b
    }

    /// Declares a state (idempotent), returning its id.
    pub fn state(&mut self, name: &str) -> TdState {
        if let Some(&q) = self.state_ids.get(name) {
            return q;
        }
        let q = TdState(self.state_names.len() as u32);
        self.state_names.push(name.to_owned());
        self.state_ids.insert(name.to_owned(), q);
        q
    }

    /// Adds the rule `(state, label) → rhs` (term syntax; see type docs).
    pub fn rule(&mut self, state: &str, label: &str, rhs: &str) -> &mut Self {
        let q = self.state(state);
        let sym = self
            .alpha
            .get(label)
            .unwrap_or_else(|| panic!("label {label:?} not in alphabet"));
        self.rules.push((q, sym, rhs.to_owned()));
        self
    }

    /// Adds `(state, text) → text`.
    pub fn text_rule(&mut self, state: &str) -> &mut Self {
        let name = state.to_owned();
        self.state(state);
        self.text_rules.push(name);
        self
    }

    /// Finishes building. Panics on malformed rhs syntax.
    pub fn finish(&mut self) -> Transducer {
        let mut t = Transducer::new(self.alpha.len(), self.state_names.len(), self.initial);
        let rules = self.rules.clone();
        for (q, sym, rhs_src) in rules {
            let rhs = self.parse_rhs(&rhs_src);
            t.set_rule(q, sym, rhs);
        }
        for name in &self.text_rules {
            t.set_text_rule(self.state_ids[name], true);
        }
        t
    }

    fn parse_rhs(&mut self, src: &str) -> Vec<RhsNode> {
        let mut scratch = self.alpha.clone();
        let hedge = tpx_trees::term::parse_hedge(src, &mut scratch)
            .unwrap_or_else(|e| panic!("bad rhs {src:?}: {e}"));
        hedge
            .roots()
            .iter()
            .map(|&r| self.convert(&hedge, r, &scratch, src))
            .collect()
    }

    fn convert(&self, h: &Hedge, v: NodeId, scratch: &Alphabet, src: &str) -> RhsNode {
        match h.label(v) {
            NodeLabel::Text(_) => {
                panic!("rhs {src:?} contains a text literal; rules cannot output Text values")
            }
            NodeLabel::Elem(s) => {
                let name = scratch.name(*s);
                if let Some(&q) = self.state_ids.get(name) {
                    assert!(
                        h.children(v).is_empty(),
                        "state {name} used as inner node in rhs {src:?}"
                    );
                    RhsNode::State(q)
                } else {
                    let sym = self.alpha.get(name).unwrap_or_else(|| {
                        panic!("identifier {name:?} in rhs {src:?} is neither a state nor a label")
                    });
                    RhsNode::Elem(
                        sym,
                        h.children(v)
                            .iter()
                            .map(|&c| self.convert(h, c, scratch, src))
                            .collect(),
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpx_trees::term::parse_tree;

    fn alpha() -> Alphabet {
        Alphabet::from_labels(["a", "b", "c"])
    }

    /// Identity on {a, b}-trees with text, deleting c-subtrees.
    fn identity_minus_c() -> (Alphabet, Transducer) {
        let al = alpha();
        let mut b = TransducerBuilder::new(&al, "q0");
        b.rule("q0", "a", "a(q0)");
        b.rule("q0", "b", "b(q0)");
        b.text_rule("q0");
        (al, b.finish())
    }

    #[test]
    fn identity_transformation() {
        let (mut al, t) = identity_minus_c();
        let input = parse_tree(r#"a("x" b("y") "z")"#, &mut al).unwrap();
        let out = t.transform(&input);
        assert_eq!(out, *input.as_hedge());
    }

    #[test]
    fn deletion_of_unmatched_labels() {
        let (mut al, t) = identity_minus_c();
        let input = parse_tree(r#"a("x" c("hidden") b)"#, &mut al).unwrap();
        let out = t.transform(&input);
        let expect = parse_tree(r#"a("x" b)"#, &mut al).unwrap();
        assert_eq!(out, *expect.as_hedge());
    }

    #[test]
    fn state_leaf_expands_over_all_children() {
        // (q0, a) → a(q q); q relabels b-children to c.
        let al = alpha();
        let mut b = TransducerBuilder::new(&al, "q0");
        b.state("q");
        b.rule("q0", "a", "a(q q)");
        b.rule("q", "b", "c");
        let t = b.finish();
        let mut al2 = alpha();
        let input = parse_tree(r#"a(b b)"#, &mut al2).unwrap();
        let out = t.transform(&input);
        // Each q expands over both children: c c c c under a.
        let expect = parse_tree(r#"a(c c c c)"#, &mut al2).unwrap();
        assert_eq!(out, *expect.as_hedge());
    }

    #[test]
    fn text_deleted_without_text_rule() {
        let al = alpha();
        let mut b = TransducerBuilder::new(&al, "q0");
        b.rule("q0", "a", "a(q0)");
        let t = b.finish();
        let mut al2 = alpha();
        let input = parse_tree(r#"a("x" a("y"))"#, &mut al2).unwrap();
        let out = t.transform(&input);
        let expect = parse_tree(r#"a(a)"#, &mut al2).unwrap();
        assert_eq!(out, *expect.as_hedge());
    }

    #[test]
    fn no_rule_at_root_yields_empty_hedge() {
        let al = alpha();
        let mut b = TransducerBuilder::new(&al, "q0");
        b.rule("q0", "a", "a(q0)");
        let t = b.finish();
        let mut al2 = alpha();
        let input = parse_tree("b", &mut al2).unwrap();
        assert!(t.transform(&input).is_empty());
    }

    #[test]
    fn example_4_2_on_figure_1() {
        let mut al = tpx_trees::samples::recipe_alphabet();
        let t = crate::samples::example_4_2(&al);
        let input = tpx_trees::samples::recipe_tree(&mut al);
        let out = t.transform(&input);
        // Comments are gone.
        let out_tree = Tree::from_hedge(out).expect("output is a tree");
        for v in out_tree.dfs() {
            if let NodeLabel::Elem(s) = out_tree.label(v) {
                assert_ne!(al.name(*s), "comments");
                assert_ne!(al.name(*s), "comment");
                assert_ne!(al.name(*s), "item"); // item nodes deleted, text kept
            }
        }
        // All descriptions/ingredient/instruction text kept, in order; the
        // comment text is gone.
        let in_text = input.text_content();
        let out_text = out_tree.text_content();
        assert!(tpx_trees::is_subsequence(&out_text, &in_text));
        assert!(out_text.iter().any(|s| s.contains("butter")));
        assert!(!out_text.iter().any(|s| s.contains("Greek coffee")));
        // br markup survives inside instructions.
        assert!(out_tree
            .dfs()
            .iter()
            .any(|&v| out_tree.label(v).elem() == Some(al.sym("br"))));
    }

    #[test]
    fn reduce_drops_unreachable_states() {
        let al = alpha();
        let mut b = TransducerBuilder::new(&al, "q0");
        b.rule("q0", "a", "a(q0)");
        b.rule("qzombie", "b", "b(qzombie)");
        let t = b.finish();
        assert!(!t.is_reduced());
        let r = t.reduce();
        assert!(r.is_reduced());
        assert_eq!(r.state_count(), 1);
        let mut al2 = alpha();
        let input = parse_tree(r#"a(a b)"#, &mut al2).unwrap();
        assert_eq!(t.transform(&input), r.transform(&input));
    }

    #[test]
    #[should_panic(expected = "useless rule")]
    fn empty_rhs_rejected() {
        let al = alpha();
        let mut t = Transducer::new(al.len(), 1, TdState(0));
        t.set_rule(TdState(0), al.sym("a"), vec![]);
    }

    #[test]
    fn frontier_states_in_document_order() {
        let al = alpha();
        let mut b = TransducerBuilder::new(&al, "q0");
        b.state("p");
        b.state("r");
        b.rule("q0", "a", "a(p b(r p))");
        let t = b.finish();
        let rhs = t.rhs(TdState(0), al.sym("a")).unwrap();
        let f = frontier_states(rhs);
        assert_eq!(f.len(), 3);
        // p, r, p in order.
        assert_eq!(f[0], f[2]);
        assert_ne!(f[0], f[1]);
    }

    #[test]
    fn size_measures_rules() {
        let (_, t) = identity_minus_c();
        assert!(t.size() > 1 + 2 * 2); // 1 state + two rhs of size 2 + text rule
    }

    #[test]
    fn display_renders_paper_notation() {
        let al = tpx_trees::samples::recipe_alphabet();
        let t = crate::samples::example_4_2(&al);
        let printed = format!("{}", t.display(&al));
        assert!(printed.contains("(q0, recipes) → recipes(q0)"));
        assert!(printed.contains("text) → text"));
        assert!(printed.lines().count() >= 8);
    }

    #[test]
    fn initial_rule_shape_check() {
        let al = alpha();
        let mut good = TransducerBuilder::new(&al, "q0");
        good.rule("q0", "a", "a(q0)");
        assert!(good.finish().initial_rules_output_trees());
        let mut bad = TransducerBuilder::new(&al, "q0");
        bad.rule("q0", "a", "q0");
        assert!(!bad.finish().initial_rules_output_trees());
    }
}
