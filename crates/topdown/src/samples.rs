//! Paper examples: the uniform transducer of Example 4.2 and some
//! deliberately copying / rearranging variants used in tests and benches.

use crate::transducer::{Transducer, TransducerBuilder};
use tpx_trees::Alphabet;

/// Example 4.2: selects all recipes with their descriptions, ingredient
/// lists and instructions; deletes comments; keeps `br` markup but strips
/// `item` element nodes (keeping their text).
///
/// ```text
/// (q0,   recipes)      → recipes(q0)
/// (q0,   recipe)       → recipe(qsel)
/// (qsel, σ)            → σ(q)       σ ∈ {description, ingredients, instructions}
/// (q,    item)         → q
/// (q,    br)           → br(q)
/// (q,    text)         → text
/// ```
pub fn example_4_2(alpha: &Alphabet) -> Transducer {
    let mut b = TransducerBuilder::new(alpha, "q0");
    b.state("qsel");
    b.state("q");
    b.rule("q0", "recipes", "recipes(q0)");
    b.rule("q0", "recipe", "recipe(qsel)");
    b.rule("qsel", "description", "description(q)");
    b.rule("qsel", "ingredients", "ingredients(q)");
    b.rule("qsel", "instructions", "instructions(q)");
    b.rule("q", "item", "q");
    b.rule("q", "br", "br(q)");
    b.text_rule("q");
    b.finish()
}

/// A copying variant: duplicates every description.
pub fn copying_example(alpha: &Alphabet) -> Transducer {
    let mut b = TransducerBuilder::new(alpha, "q0");
    b.state("q");
    b.rule("q0", "recipes", "recipes(q0)");
    b.rule("q0", "recipe", "recipe(q q)");
    b.rule("q", "description", "description(q)");
    b.text_rule("q");
    b.finish()
}

/// A rearranging variant: swaps the output order of `negative` and
/// `positive` comment sections (negative text ends up after positive text
/// even though it precedes it in the input).
pub fn rearranging_example(alpha: &Alphabet) -> Transducer {
    let mut b = TransducerBuilder::new(alpha, "q0");
    b.state("qr");
    b.state("qc");
    b.state("qpos");
    b.state("qneg");
    b.state("q");
    b.rule("q0", "recipes", "recipes(q0)");
    b.rule("q0", "recipe", "recipe(qr)");
    b.rule("qr", "comments", "comments(qpos qneg)");
    b.rule("qpos", "positive", "positive(qc)");
    b.rule("qneg", "negative", "negative(qc)");
    b.rule("qc", "comment", "comment(q)");
    b.text_rule("q");
    b.finish()
}

/// A deep selector with `n` chained states, text-preserving by
/// construction; used to scale `|T|` in the benches (E1).
pub fn chain_selector(alpha: &Alphabet, label: &str, n: usize) -> Transducer {
    assert!(n >= 1);
    let mut b = TransducerBuilder::new(alpha, "q0");
    for i in 1..n {
        b.state(&format!("q{i}"));
    }
    for i in 0..n {
        let next = format!("q{}", (i + 1) % n);
        b.rule(&format!("q{i}"), label, &format!("{label}({next})"));
    }
    b.text_rule(&format!("q{}", n - 1));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_4_2_is_reduced() {
        let al = tpx_trees::samples::recipe_alphabet();
        let t = example_4_2(&al);
        assert!(t.is_reduced());
        assert!(t.initial_rules_output_trees());
    }

    #[test]
    fn chain_selector_scales() {
        let al = Alphabet::from_labels(["a"]);
        let t = chain_selector(&al, "a", 5);
        assert_eq!(t.state_count(), 5);
        assert!(t.is_reduced());
    }
}
