//! Output conformance: does `T(L(S)) ⊆ L(D)` for a target schema `D`?
//!
//! Text-preservation asks how the transformation treats *text*; output
//! conformance asks whether the transformed documents still *validate*
//! against a target DTD — the classic typechecking question, restricted to
//! the paper's uniform top-down transducers where it stays in PTIME-ish
//! territory via **inverse type inference** (the standard route, cf.
//! Martens–Neven "Typechecking top-down uniform unranked tree transducers").
//!
//! The construction computes, for every input tree `t`, its **type**
//! `τ_t : Q_T → B`: what each transducer state's output `T^q(t)` *does* to
//! the target automaton. A single behavior `b ∈ B` is
//!
//! * a relation over `U`, the disjoint union of all content NFAs of `D`:
//!   `(x, y) ∈ R` iff the output hedge can drive `U` from `x` to `y` (each
//!   output tree deriving a target state `d` moves `U` along a `d`-labelled
//!   content transition); and
//! * a bit `conforms`: whether every component tree of the output hedge
//!   derives a *root* state of `D` (the top-level acceptance condition,
//!   which the relation alone cannot express).
//!
//! Behaviors compose like relations (`R₁;R₂`, `c₁∧c₂`), so the type of
//! `a(t₁…tₙ)` is a function of `a` and the pointwise product
//! `τ_{t₁} ⊗ ⋯ ⊗ τ_{tₙ}` — the content language of each type is recognized
//! by the *product monoid graph*, shared across all types and symbols, with
//! per-`(τ, a)` final sets. Types are finitely many, so a worklist closure
//! discovers them all (budget-charged per new type, product and
//! transition), and the **bad NTA** — trees whose image violates `D`,
//! i.e. `¬τ_t(q₀).conforms` — falls out directly. A violation witness is
//! then a tree of `L(S) ∩ L(bad)`, found with the existing governed
//! intersect/trim/witness pipeline.

use std::collections::HashMap;

use crate::transducer::{RhsNode, Transducer};
use tpx_automata::Nfa;
use tpx_treeauto::{Nta, State};
use tpx_trees::budget::{BudgetExceeded, BudgetHandle};
use tpx_trees::{Hedge, Symbol, Tree};

/// The compiled artifact of the output-conformance analysis: the NTA of
/// input trees whose image under `T` does **not** conform to the target.
/// Depends on the transducer and the target schema (and the alphabet
/// width), but not on the input schema, so the engine layer caches it per
/// `(T, D)` pair.
#[derive(Clone, Debug)]
pub struct ConformanceArtifacts {
    /// Accepts exactly the trees `t` (over the shared alphabet) with
    /// `T(t) ⊭ D`.
    pub bad: Nta,
}

impl ConformanceArtifacts {
    /// Total size of the compiled artifact.
    pub fn size(&self) -> usize {
        self.bad.size()
    }
}

// ---------------------------------------------------------------------------
// Relations over U (bitset rows) and behaviors.
// ---------------------------------------------------------------------------

fn rel_identity(u: usize, wpr: usize) -> Vec<u64> {
    let mut rel = vec![0u64; u * wpr];
    for x in 0..u {
        rel[x * wpr + x / 64] |= 1u64 << (x % 64);
    }
    rel
}

fn rel_set(rel: &mut [u64], x: usize, y: usize, wpr: usize) {
    rel[x * wpr + y / 64] |= 1u64 << (y % 64);
}

fn rel_get(rel: &[u64], x: usize, y: usize, wpr: usize) -> bool {
    rel[x * wpr + y / 64] & (1u64 << (y % 64)) != 0
}

fn rel_union_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

fn rel_compose(a: &[u64], b: &[u64], u: usize, wpr: usize) -> Vec<u64> {
    let mut out = vec![0u64; u * wpr];
    for x in 0..u {
        let arow = &a[x * wpr..(x + 1) * wpr];
        for (w, &word) in arow.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let y = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let brow = &b[y * wpr..(y + 1) * wpr];
                for (i, &bw) in brow.iter().enumerate() {
                    out[x * wpr + i] |= bw;
                }
            }
        }
    }
    out
}

/// What an output hedge does to the target automaton: a relation over `U`
/// plus the top-level acceptance bit.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Behavior {
    rel: Vec<u64>,
    conforms: bool,
}

impl Behavior {
    fn compose(&self, other: &Behavior, u: usize, wpr: usize) -> Behavior {
        Behavior {
            rel: rel_compose(&self.rel, &other.rel, u, wpr),
            conforms: self.conforms && other.conforms,
        }
    }
}

// ---------------------------------------------------------------------------
// Target-side index: U, per-child-state step relations, roots, text.
// ---------------------------------------------------------------------------

struct Block {
    init: Vec<usize>,
    fin: Vec<usize>,
}

struct TargetIndex {
    u: usize,
    wpr: usize,
    /// `blocks[d][sym]`: the content NFA of `(d, sym)` embedded in `U`.
    blocks: Vec<Vec<Option<Block>>>,
    /// `step[d]`: all `d`-labelled content transitions of `U`.
    step: Vec<Vec<u64>>,
    text_set: Vec<bool>,
    root_set: Vec<bool>,
    n_target_states: usize,
}

impl TargetIndex {
    fn build(target: &Nta, budget: &BudgetHandle) -> Result<TargetIndex, BudgetExceeded> {
        let nd = target.state_count();
        let nsym = target.symbol_count();
        let mut blocks: Vec<Vec<Option<Block>>> = Vec::with_capacity(nd);
        let mut u = 0usize;
        let mut offsets: Vec<Vec<usize>> = Vec::with_capacity(nd);
        for d in target.states() {
            let mut row = Vec::with_capacity(nsym);
            let mut offs = Vec::with_capacity(nsym);
            for sym in 0..nsym {
                let block = target.content(d, Symbol(sym as u32)).map(|nfa| {
                    let offset = u;
                    u += nfa.state_count();
                    offs.push(offset);
                    Block {
                        init: nfa
                            .initial_states()
                            .iter()
                            .map(|q| offset + q.index())
                            .collect(),
                        fin: nfa
                            .states()
                            .filter(|&q| nfa.is_final(q))
                            .map(|q| offset + q.index())
                            .collect(),
                    }
                });
                if block.is_none() {
                    offs.push(usize::MAX);
                }
                row.push(block);
            }
            blocks.push(row);
            offsets.push(offs);
        }
        budget.charge(1 + u as u64)?;
        let wpr = u.div_ceil(64);
        let mut step = vec![vec![0u64; u * wpr]; nd];
        for d in target.states() {
            for sym in 0..nsym {
                if blocks[d.0 as usize][sym].is_none() {
                    continue;
                }
                let offset = offsets[d.0 as usize][sym];
                let nfa = target.content(d, Symbol(sym as u32)).expect("block exists");
                for q in nfa.states() {
                    for &(child, r) in nfa.transitions_from(q) {
                        budget.charge(1)?;
                        rel_set(
                            &mut step[child.0 as usize],
                            offset + q.index(),
                            offset + r.index(),
                            wpr,
                        );
                    }
                }
            }
        }
        let text_set = target.states().map(|d| target.text_ok(d)).collect();
        let mut root_set = vec![false; nd];
        for &r in target.roots() {
            root_set[r.0 as usize] = true;
        }
        Ok(TargetIndex {
            u,
            wpr,
            blocks,
            step,
            text_set,
            root_set,
            n_target_states: nd,
        })
    }

    fn identity(&self) -> Behavior {
        Behavior {
            rel: rel_identity(self.u, self.wpr),
            conforms: true,
        }
    }

    /// Behavior of a single output tree deriving exactly the states
    /// `derivable` of the target.
    fn single_tree(&self, derivable: &[bool]) -> Behavior {
        let mut rel = vec![0u64; self.u * self.wpr];
        let mut conforms = false;
        for (d, &ok) in derivable.iter().enumerate() {
            if ok {
                rel_union_into(&mut rel, &self.step[d]);
                conforms |= self.root_set[d];
            }
        }
        Behavior { rel, conforms }
    }

    /// Behavior of a single output element `b(h)` where the sub-hedge has
    /// relation `inner_rel`.
    fn elem(&self, b: Symbol, inner_rel: &[u64]) -> Behavior {
        let mut derivable = vec![false; self.n_target_states];
        for (d, slot) in derivable.iter_mut().enumerate() {
            if let Some(block) = self.blocks[d].get(b.index()).and_then(Option::as_ref) {
                *slot = block.init.iter().any(|&x| {
                    block
                        .fin
                        .iter()
                        .any(|&y| rel_get(inner_rel, x, y, self.wpr))
                });
            }
        }
        self.single_tree(&derivable)
    }

    fn text(&self) -> Behavior {
        let text_set = self.text_set.clone();
        self.single_tree(&text_set)
    }
}

// ---------------------------------------------------------------------------
// Type inference.
// ---------------------------------------------------------------------------

fn eval_hedge(
    nodes: &[RhsNode],
    prod: &[Behavior],
    idx: &TargetIndex,
    budget: &BudgetHandle,
) -> Result<Behavior, BudgetExceeded> {
    let mut acc = idx.identity();
    for n in nodes {
        budget.charge(1)?;
        let b = match n {
            RhsNode::State(p) => prod[p.0 as usize].clone(),
            RhsNode::Elem(sym, sub) => {
                let inner = eval_hedge(sub, prod, idx, budget)?;
                idx.elem(*sym, &inner.rel)
            }
        };
        acc = acc.compose(&b, idx.u, idx.wpr);
    }
    Ok(acc)
}

/// The type of a tree `a(t₁…tₙ)` from the product of the children's types:
/// evaluate each state's rule template over `prod`. Symbols outside the
/// transducer's alphabet behave like missing rules (output `ε`).
fn apply_symbol(
    t: &Transducer,
    sym: usize,
    prod: &[Behavior],
    idx: &TargetIndex,
    budget: &BudgetHandle,
) -> Result<Vec<Behavior>, BudgetExceeded> {
    let mut out = Vec::with_capacity(t.state_count());
    for q in t.states() {
        let rhs = if sym < t.symbol_count() {
            t.rhs(q, Symbol(sym as u32))
        } else {
            None
        };
        out.push(match rhs {
            Some(rhs) => eval_hedge(rhs, prod, idx, budget)?,
            None => idx.identity(),
        });
    }
    Ok(out)
}

fn intern(
    arena: &mut Vec<Vec<Behavior>>,
    ids: &mut HashMap<Vec<Behavior>, usize>,
    v: Vec<Behavior>,
    budget: &BudgetHandle,
    unit: u64,
) -> Result<usize, BudgetExceeded> {
    if let Some(&i) = ids.get(&v) {
        return Ok(i);
    }
    budget.charge(unit)?;
    let i = arena.len();
    ids.insert(v.clone(), i);
    arena.push(v);
    Ok(i)
}

/// Compiles the conformance artifact: the NTA of input trees over an
/// `n_symbols`-wide alphabet whose image under `t` violates `target`.
///
/// `n_symbols` must cover every symbol that input trees may carry — pass
/// `max` over the transducer, the target *and* the input schema(s) the
/// artifact will be checked against (symbols unknown to `t` are transformed
/// to `ε`, which still matters for the type of their ancestors).
pub fn try_compile_conformance_artifacts(
    t: &Transducer,
    target: &Nta,
    n_symbols: usize,
    budget: &BudgetHandle,
) -> Result<ConformanceArtifacts, BudgetExceeded> {
    budget.charge(1)?;
    let idx = TargetIndex::build(target, budget)?;
    let n_syms = n_symbols.max(t.symbol_count()).max(target.symbol_count());
    let nq = t.state_count();
    // Rough memory footprint of one type / product, in fuel units.
    let unit = 1 + (nq * (idx.u * idx.wpr + 1)) as u64;

    let mut types: Vec<Vec<Behavior>> = Vec::new();
    let mut type_ids: HashMap<Vec<Behavior>, usize> = HashMap::new();
    let mut prods: Vec<Vec<Behavior>> = Vec::new();
    let mut prod_ids: HashMap<Vec<Behavior>, usize> = HashMap::new();
    // apply_res[p][sym]: the type of `sym(h)` for a child hedge with product p.
    let mut apply_res: Vec<Vec<usize>> = Vec::new();
    // prod_trans[p][τ]: the product p ⊗ τ.
    let mut prod_trans: Vec<Vec<usize>> = Vec::new();

    let id_beh = idx.identity();
    let text_beh = idx.text();
    let text_type: Vec<Behavior> = t
        .states()
        .map(|q| {
            if t.text_rule(q) {
                text_beh.clone()
            } else {
                id_beh.clone()
            }
        })
        .collect();
    let text_tid = intern(&mut types, &mut type_ids, text_type, budget, unit)?;
    intern(
        &mut prods,
        &mut prod_ids,
        vec![id_beh.clone(); nq],
        budget,
        unit,
    )?;

    loop {
        let mut progress = false;
        while apply_res.len() < prods.len() {
            let p = apply_res.len();
            let mut row = Vec::with_capacity(n_syms);
            for sym in 0..n_syms {
                let ty = apply_symbol(t, sym, &prods[p], &idx, budget)?;
                row.push(intern(&mut types, &mut type_ids, ty, budget, unit)?);
            }
            apply_res.push(row);
            progress = true;
        }
        for p in 0..prods.len() {
            if prod_trans.len() <= p {
                prod_trans.push(Vec::new());
            }
            while prod_trans[p].len() < types.len() {
                let ti = prod_trans[p].len();
                budget.charge(1)?;
                let next: Vec<Behavior> = prods[p]
                    .iter()
                    .zip(types[ti].iter())
                    .map(|(a, b)| a.compose(b, idx.u, idx.wpr))
                    .collect();
                let pid = intern(&mut prods, &mut prod_ids, next, budget, unit)?;
                prod_trans[p].push(pid);
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }

    // Assemble the bad NTA: one state per type, content models from the
    // product monoid graph, roots = types whose initial-state behavior
    // fails the top-level acceptance check.
    let mut bad = Nta::new(n_syms);
    let states: Vec<State> = (0..types.len()).map(|_| bad.add_state()).collect();
    bad.set_text_ok(states[text_tid], true);
    for sym in 0..n_syms {
        let mut finals_for: HashMap<usize, Vec<usize>> = HashMap::new();
        for (p, row) in apply_res.iter().enumerate() {
            finals_for.entry(row[sym]).or_default().push(p);
        }
        for (&tid, fprods) in &finals_for {
            let mut nfa: Nfa<State> = Nfa::new();
            let sts: Vec<_> = (0..prods.len()).map(|_| nfa.add_state()).collect();
            nfa.set_initial(sts[0]);
            for &p in fprods {
                nfa.set_final(sts[p], true);
            }
            for (p, row) in prod_trans.iter().enumerate() {
                for (ti, &succ) in row.iter().enumerate() {
                    nfa.add_transition(sts[p], states[ti], sts[succ]);
                }
            }
            budget.charge(nfa.size() as u64)?;
            bad.set_content(states[tid], Symbol(sym as u32), nfa);
        }
    }
    let q0 = t.initial().0 as usize;
    for (tid, ty) in types.iter().enumerate() {
        if !ty[q0].conforms {
            bad.add_root(states[tid]);
        }
    }
    Ok(ConformanceArtifacts { bad })
}

/// Unbudgeted [`try_compile_conformance_artifacts`].
pub fn compile_conformance_artifacts(
    t: &Transducer,
    target: &Nta,
    n_symbols: usize,
) -> ConformanceArtifacts {
    try_compile_conformance_artifacts(t, target, n_symbols, &BudgetHandle::unlimited())
        .expect("unlimited budget")
}

/// The decision stage of the conformance analysis over a precompiled
/// artifact: a schema tree whose image violates the target, or `None` when
/// `T(L(schema)) ⊆ L(target)`. Runs the governed intersect → trim →
/// witness pipeline under the caller's budget.
pub fn try_conformance_witness_with(
    art: &ConformanceArtifacts,
    schema: &Nta,
    budget: &BudgetHandle,
) -> Result<Option<Tree>, BudgetExceeded> {
    budget.charge(1)?;
    let padded;
    let schema = if schema.symbol_count() < art.bad.symbol_count() {
        padded = pad_symbols(schema, art.bad.symbol_count());
        &padded
    } else {
        assert!(
            schema.symbol_count() == art.bad.symbol_count(),
            "conformance artifact compiled for a narrower alphabet than the schema; \
             pass the schema's symbol count to try_compile_conformance_artifacts"
        );
        schema
    };
    let product = art.bad.try_intersect(schema, budget)?.try_trim(budget)?;
    product.try_witness(budget)
}

/// Widens an NTA to a larger alphabet (new symbols get no content rules).
fn pad_symbols(nta: &Nta, n_symbols: usize) -> Nta {
    debug_assert!(n_symbols >= nta.symbol_count());
    let mut out = Nta::new(n_symbols);
    for _ in 0..nta.state_count() {
        out.add_state();
    }
    for q in nta.states() {
        out.set_text_ok(q, nta.text_ok(q));
        for sym in 0..nta.symbol_count() {
            let s = Symbol(sym as u32);
            if let Some(nfa) = nta.content(q, s) {
                out.set_content(q, s, nfa.clone());
            }
        }
    }
    for &r in nta.roots() {
        out.add_root(r);
    }
    out
}

/// A schema tree whose image under `t` does not conform to `target`, or
/// `None` when the transformation always stays inside the target.
///
/// Convenience wrapper compiling the artifact eagerly; the engine's
/// `OutputConformanceDecider` caches it instead.
pub fn conformance_witness(t: &Transducer, schema: &Nta, target: &Nta) -> Option<Tree> {
    let n = t
        .symbol_count()
        .max(target.symbol_count())
        .max(schema.symbol_count());
    let unlimited = BudgetHandle::unlimited();
    let art =
        try_compile_conformance_artifacts(t, target, n, &unlimited).expect("unlimited budget");
    try_conformance_witness_with(&art, schema, &unlimited).expect("unlimited budget")
}

/// Whether `T(L(schema)) ⊆ L(target)`.
pub fn output_conforms(t: &Transducer, schema: &Nta, target: &Nta) -> bool {
    conformance_witness(t, schema, target).is_none()
}

// ---------------------------------------------------------------------------
// Semantic (per-tree) oracle, used by witness validation and diffcheck.
// ---------------------------------------------------------------------------

/// Whether every component tree of the hedge is accepted by `target` — the
/// per-document conformance relation the symbolic analysis decides. The
/// empty hedge conforms vacuously.
pub fn hedge_conforms(h: &Hedge, target: &Nta) -> bool {
    let acc = target.accepting_states(h);
    h.roots().iter().all(|r| {
        acc.get(r)
            .is_some_and(|qs| qs.iter().any(|q| target.roots().contains(q)))
    })
}

/// Whether `t`'s image of one input tree conforms to `target`.
pub fn conforms_on(t: &Transducer, tree: &Tree, target: &Nta) -> bool {
    hedge_conforms(&t.transform(tree), target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use crate::transducer::TransducerBuilder;
    use tpx_schema::samples::recipe_dtd;
    use tpx_trees::budget::{Budget, ExhaustReason};
    use tpx_trees::samples::recipe_alphabet;
    use tpx_trees::Alphabet;

    /// The identity transducer over `alpha`: every symbol maps to itself.
    fn identity_transducer(alpha: &Alphabet) -> Transducer {
        let mut b = TransducerBuilder::new(alpha, "q");
        for s in alpha.symbols() {
            let name = alpha.name(s).to_string();
            b.rule("q", &name, &format!("{name}(q)"));
        }
        b.text_rule("q");
        b.finish()
    }

    #[test]
    fn identity_conforms_to_its_own_schema() {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        let t = identity_transducer(&al);
        assert!(output_conforms(&t, &nta, &nta));
    }

    #[test]
    fn stripping_transducer_violates_the_original_schema() {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        // Example 4.2 deletes comments and strips item markup — its output
        // no longer validates against the recipe DTD (which requires a
        // comments section).
        let t = samples::example_4_2(&al);
        let w = conformance_witness(&t, &nta, &nta).expect("violation");
        assert!(nta.accepts(&w), "witness must be a schema tree");
        assert!(
            !conforms_on(&t, &w, &nta),
            "witness image must violate the target"
        );
    }

    #[test]
    fn relabeling_conforms_exactly_to_the_relabeled_target() {
        let al = Alphabet::from_labels(["a", "b"]);
        // Schema: a-trees, a → a*.
        let mut schema = Nta::new(2);
        let sa = schema.add_state();
        let mut c: Nfa<State> = Nfa::new();
        let c0 = c.add_state();
        c.set_initial(c0);
        c.set_final(c0, true);
        c.add_transition(c0, sa, c0);
        schema.set_content(sa, al.sym("a"), c);
        schema.add_root(sa);
        // Transducer: relabel a → b.
        let mut b = TransducerBuilder::new(&al, "q");
        b.rule("q", "a", "b(q)");
        let t = b.finish();
        // Target accepting all b-trees: conforms.
        let mut target = Nta::new(2);
        let sb = target.add_state();
        let mut cb: Nfa<State> = Nfa::new();
        let cb0 = cb.add_state();
        cb.set_initial(cb0);
        cb.set_final(cb0, true);
        cb.add_transition(cb0, sb, cb0);
        target.set_content(sb, al.sym("b"), cb);
        target.add_root(sb);
        assert!(output_conforms(&t, &schema, &target));
        // Target accepting only b-leaves: a(a) maps to b(b), which violates.
        let mut leaf_only = Nta::new(2);
        let sl = leaf_only.add_state();
        let mut cl: Nfa<State> = Nfa::new();
        let cl0 = cl.add_state();
        cl.set_initial(cl0);
        cl.set_final(cl0, true);
        leaf_only.set_content(sl, al.sym("b"), cl);
        leaf_only.add_root(sl);
        let w = conformance_witness(&t, &schema, &leaf_only).expect("violation");
        assert!(schema.accepts(&w));
        assert!(!conforms_on(&t, &w, &leaf_only));
        assert!(w.as_hedge().node_count() >= 2, "needs a nested a-node");
    }

    #[test]
    fn deleting_everything_conforms_vacuously() {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        // A transducer with no rules at all outputs the empty hedge.
        let b = TransducerBuilder::new(&al, "q").finish();
        assert!(output_conforms(&b, &nta, &nta));
    }

    #[test]
    fn staged_pipeline_charges_fuel_and_fails_on_zero_budget() {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        let t = samples::example_4_2(&al);
        let n = t.symbol_count().max(nta.symbol_count());
        let gen = Budget::default().with_fuel(50_000_000).start();
        let art = try_compile_conformance_artifacts(&t, &nta, n, &gen).unwrap();
        try_conformance_witness_with(&art, &nta, &gen).unwrap();
        assert!(gen.fuel_spent() > 0);
        let z = Budget::default().with_fuel(0).start();
        let err = try_compile_conformance_artifacts(&t, &nta, n, &z)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.reason, ExhaustReason::Fuel);
        let err = try_conformance_witness_with(&art, &nta, &z)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.reason, ExhaustReason::Fuel);
    }
}
