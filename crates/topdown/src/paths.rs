//! Path automata (Lemma 4.8).
//!
//! The *text path language* of a tree language `L` is the set of ancestor
//! strings `σ₁⋯σₙ · text` of text nodes in trees of `L`. Lemma 4.8 shows:
//!
//! 1. for an NTA `N`, a *path automaton* `A_N` for `L(N)` is constructible
//!    in polynomial time, and
//! 2. for a transducer `T`, a *transducer path automaton* `A_T` accepting
//!    exactly the text paths on which `T` has a path run is constructible
//!    in polynomial time.
//!
//! Both are NFAs over `Σ ⊎ {text}` accepting only strings ending in `text`.

use crate::transducer::{frontier_states, TdState, Transducer};
use tpx_automata::{Nfa, StateId};
use tpx_treeauto::Nta;
use tpx_trees::{NodeLabel, Symbol, Tree};

/// A symbol of a text path: an element label or the terminal `text` marker.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PathSym {
    /// An element label.
    Elem(Symbol),
    /// The terminal `text` symbol.
    Text,
}

/// The ancestor string of a text node as a path word (element labels plus
/// the final `text`).
pub fn text_path_of(t: &Tree, v: tpx_trees::NodeId) -> Option<Vec<PathSym>> {
    if !t.is_text(v) {
        return None;
    }
    let mut w: Vec<PathSym> = t
        .ancestor_string(v)
        .iter()
        .filter_map(|l| match l {
            NodeLabel::Elem(s) => Some(PathSym::Elem(*s)),
            NodeLabel::Text(_) => None,
        })
        .collect();
    w.push(PathSym::Text);
    Some(w)
}

/// All text paths of a tree, in document order.
pub fn text_paths(t: &Tree) -> Vec<Vec<PathSym>> {
    t.text_nodes()
        .into_iter()
        .filter_map(|v| text_path_of(t, v))
        .collect()
}

/// Lemma 4.8(1): the path automaton `A_N` of `L(N)`.
///
/// NFA states are pairs `(q, σ)` ("the current node has NTA state `q` and
/// label `σ`, and is completable to a valid subtree"), plus a start state
/// and an accepting sink reached on the final `text` symbol.
pub fn path_automaton_nta(nta: &Nta) -> Nfa<PathSym> {
    let inhabited = nta.inhabited_states();
    let n_syms = nta.symbol_count();
    let mut nfa: Nfa<PathSym> = Nfa::new();
    let start = nfa.add_state();
    nfa.set_initial(start);
    let sink = nfa.add_state();
    nfa.set_final(sink, true);
    // State of pair (q, σ): dense layout after start/sink.
    let pair = |q: tpx_treeauto::State, s: Symbol| StateId(2 + q.0 * n_syms as u32 + s.0);
    for _ in 0..(nta.state_count() * n_syms) {
        nfa.add_state();
    }
    // A pair (q, σ) is *viable* if δ(q, σ) accepts some inhabited word.
    let viable = |q: tpx_treeauto::State, s: Symbol| nta.content_satisfiable(q, s, &inhabited);
    for &r in nta.roots() {
        for sym in 0..n_syms {
            let s = Symbol(sym as u32);
            if viable(r, s) {
                nfa.add_transition(start, PathSym::Elem(s), pair(r, s));
            }
        }
    }
    for q in nta.states() {
        for sym in 0..n_syms {
            let s = Symbol(sym as u32);
            if !viable(q, s) {
                continue;
            }
            let children = nta.content_useful_children(q, s, &inhabited);
            for &c in &children {
                // Element continuation.
                for sym2 in 0..n_syms {
                    let s2 = Symbol(sym2 as u32);
                    if viable(c, s2) {
                        nfa.add_transition(pair(q, s), PathSym::Elem(s2), pair(c, s2));
                    }
                }
                // Text termination.
                if nta.text_ok(c) {
                    nfa.add_transition(pair(q, s), PathSym::Text, sink);
                }
            }
        }
    }
    nfa.trim()
}

/// Lemma 4.8(2): the transducer path automaton `A_T`, accepting the text
/// paths on which `T` has a path run.
///
/// NFA states are the transducer states plus an accepting sink; transitions
/// `q --a--> q'` exist when `q'` occurs at a leaf of `rhs(q, a)`, and
/// `q --text--> sink` when `(q, text) → text ∈ R`.
pub fn path_automaton_transducer(t: &Transducer) -> Nfa<PathSym> {
    let mut nfa: Nfa<PathSym> = Nfa::new();
    for _ in 0..t.state_count() {
        nfa.add_state();
    }
    let sink = nfa.add_state();
    nfa.set_final(sink, true);
    nfa.set_initial(StateId(t.initial().0));
    for q in t.states() {
        for sym in 0..t.symbol_count() {
            let s = Symbol(sym as u32);
            if let Some(rhs) = t.rhs(q, s) {
                for p in frontier_states(rhs) {
                    nfa.add_transition(StateId(q.0), PathSym::Elem(s), StateId(p.0));
                }
            }
        }
        if t.text_rule(q) {
            nfa.add_transition(StateId(q.0), PathSym::Text, sink);
        }
    }
    nfa
}

/// Occurrence counts of each state on the frontier of `rhs(q, a)` — used by
/// the copying decider for condition (2) of Lemma 4.5.
pub fn frontier_multiplicity(t: &Transducer, q: TdState, a: Symbol) -> Vec<(TdState, usize)> {
    let Some(rhs) = t.rhs(q, a) else {
        return Vec::new();
    };
    let mut counts: std::collections::HashMap<TdState, usize> = std::collections::HashMap::new();
    for p in frontier_states(rhs) {
        *counts.entry(p).or_insert(0) += 1;
    }
    let mut out: Vec<_> = counts.into_iter().collect();
    out.sort_by_key(|&(p, _)| p);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpx_schema::samples::recipe_dtd;
    use tpx_trees::samples::{recipe_alphabet, recipe_tree};
    use tpx_trees::Alphabet;

    #[test]
    fn nta_path_automaton_accepts_exactly_tree_paths() {
        let mut al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        let an = path_automaton_nta(&nta);
        let t = recipe_tree(&mut al);
        assert!(nta.accepts(&t));
        for p in text_paths(&t) {
            assert!(an.accepts(&p), "path {p:?} must be accepted");
        }
        // Paths not in the language.
        let bad1 = vec![PathSym::Elem(al.sym("recipes")), PathSym::Text];
        let bad2 = vec![
            PathSym::Elem(al.sym("recipes")),
            PathSym::Elem(al.sym("recipe")),
            PathSym::Elem(al.sym("comments")),
            PathSym::Text,
        ];
        let not_root = vec![PathSym::Elem(al.sym("recipe")), PathSym::Text];
        for p in [bad1, bad2, not_root] {
            assert!(!an.accepts(&p), "path {p:?} must be rejected");
        }
    }

    #[test]
    fn nta_path_automaton_respects_completability() {
        // Schema: root a must have a b-child AND a text child; b-children
        // require an impossible subtree — so no valid tree exists and the
        // path language is empty.
        let al = Alphabet::from_labels(["a", "b"]);
        let mut builder = tpx_treeauto::NtaBuilder::new(&al);
        builder.root("q0");
        builder.rule("q0", "a", "qb qt");
        builder.rule("qb", "b", "qb"); // uninhabited
        builder.text_rule("qt");
        let nta = builder.finish();
        let an = path_automaton_nta(&nta);
        assert!(an.is_empty());
    }

    #[test]
    fn transducer_path_automaton_matches_runs() {
        let al = recipe_alphabet();
        let t = crate::samples::example_4_2(&al);
        let at = path_automaton_transducer(&t);
        // Path with a run: recipes/recipe/description/text.
        let good = vec![
            PathSym::Elem(al.sym("recipes")),
            PathSym::Elem(al.sym("recipe")),
            PathSym::Elem(al.sym("description")),
            PathSym::Text,
        ];
        assert!(at.accepts(&good));
        // item text is reached through the deleting rule (q, item) → q.
        let item = vec![
            PathSym::Elem(al.sym("recipes")),
            PathSym::Elem(al.sym("recipe")),
            PathSym::Elem(al.sym("ingredients")),
            PathSym::Elem(al.sym("item")),
            PathSym::Text,
        ];
        assert!(at.accepts(&item));
        // Comments are dropped: no run.
        let comment = vec![
            PathSym::Elem(al.sym("recipes")),
            PathSym::Elem(al.sym("recipe")),
            PathSym::Elem(al.sym("comments")),
            PathSym::Elem(al.sym("positive")),
            PathSym::Elem(al.sym("comment")),
            PathSym::Text,
        ];
        assert!(!at.accepts(&comment));
        // Text directly below recipes: q0 has no text rule.
        let top = vec![PathSym::Elem(al.sym("recipes")), PathSym::Text];
        assert!(!at.accepts(&top));
    }

    #[test]
    fn path_automata_are_polynomial_in_input() {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        let an = path_automaton_nta(&nta);
        let t = crate::samples::example_4_2(&al);
        let at = path_automaton_transducer(&t);
        // Loose sanity bounds: quadratic-ish, not exponential.
        assert!(an.size() <= (nta.size() + 2) * (nta.symbol_count() + 2) * 4);
        assert!(at.size() <= (t.size() + 2) * 4);
    }

    #[test]
    fn text_path_extraction() {
        let mut al = Alphabet::new();
        let t = tpx_trees::term::parse_tree(r#"a(b("x") "y")"#, &mut al).unwrap();
        let paths = text_paths(&t);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].len(), 3); // a b text
        assert_eq!(paths[1].len(), 2); // a text
        assert_eq!(paths[0][2], PathSym::Text);
    }
}
