//! The regular language of counter-examples and the maximal sub-schema
//! (paper conclusion).
//!
//! The proofs of Lemmas 4.9/4.10 show that the set of trees on which `T` is
//! *not* text-preserving is regular: the union of a "copying" NTA and the
//! rearranging NTA of Lemma 4.10. Since regular tree languages are closed
//! under complement (via the encoding machinery of `tpx-treeauto`), the
//! *maximal* subset of a schema on which `T` is text-preserving is regular
//! and computable: `L(N) ∖ counterexamples(T)`.

use crate::decide::rearranging_nta;
use crate::transducer::{frontier_states, TdState, Transducer};
use tpx_automata::Nfa;
use tpx_treeauto::{difference_nta, Nta, State};
use tpx_trees::Symbol;

/// Role layout for the copying NTA: `Any`, `S0(q)` (single shared run),
/// `D(q₁, q₂)` (two runs, same path), `SC(q)` (after a doubling rule).
struct CopySpace {
    n: u32,
}

impl CopySpace {
    fn size(&self) -> usize {
        (1 + 2 * self.n + self.n * self.n) as usize
    }
    fn any(&self) -> State {
        State(0)
    }
    fn s0(&self, q: TdState) -> State {
        State(1 + q.0)
    }
    fn d(&self, q1: TdState, q2: TdState) -> State {
        State(1 + self.n + q1.0 * self.n + q2.0)
    }
    fn sc(&self, q: TdState) -> State {
        State(1 + self.n + self.n * self.n + q.0)
    }
    fn text_ok(&self, s: State, t: &Transducer) -> bool {
        let i = s.0;
        if i == 0 {
            true
        } else if i < 1 + self.n {
            false // S0: the copy event has not happened
        } else if i < 1 + self.n + self.n * self.n {
            let j = i - 1 - self.n;
            let (q1, q2) = (TdState(j / self.n), TdState(j % self.n));
            t.text_rule(q1) && t.text_rule(q2)
        } else {
            t.text_rule(TdState(i - 1 - self.n - self.n * self.n))
        }
    }
}

/// An NTA accepting exactly the trees on which `t` copies (Lemma 4.5,
/// tree-level): two different path runs end at the same text node, or one
/// path run passes a doubling rule.
pub fn copying_nta(t: &Transducer) -> Nta {
    let sp = CopySpace {
        n: t.state_count() as u32,
    };
    let mut m = Nta::new(t.symbol_count());
    for _ in 0..sp.size() {
        m.add_state();
    }
    let all_states: Vec<State> = (0..sp.size() as u32).map(State).collect();
    // `Any* · X · Any*` rows: don't-care siblings derive `Any` (every tree
    // does, see the `Any` row below), the one event child derives one of
    // `singles`. Looping on `Any` alone keeps each row O(|singles|), not
    // O(|Q|²) — the same shape the rearranging NTA rows use.
    let content = |singles: &[State]| -> Nfa<State> {
        let mut nfa: Nfa<State> = Nfa::new();
        let s0 = nfa.add_state();
        let s1 = nfa.add_state();
        nfa.set_initial(s0);
        nfa.set_final(s1, true);
        nfa.add_transition(s0, sp.any(), s0);
        nfa.add_transition(s1, sp.any(), s1);
        for &x in singles {
            nfa.add_transition(s0, x, s1);
        }
        nfa
    };
    // The `Any` row must accept ε so element *leaves* derive `Any` too —
    // otherwise counterexample trees with element leaves in don't-care
    // positions are missed and the "maximal" sub-schema keeps
    // non-preserving trees (the same ≥1-child bug the rearranging NTA had
    // before DESIGN.md §13).
    let any_row = || -> Nfa<State> {
        let mut nfa: Nfa<State> = Nfa::new();
        let s = nfa.add_state();
        nfa.set_initial(s);
        nfa.set_final(s, true);
        nfa.add_transition(s, sp.any(), s);
        nfa
    };

    for sym in 0..t.symbol_count() {
        let s = Symbol(sym as u32);
        m.set_content(sp.any(), s, any_row());
        for q in t.states() {
            let Some(rhs) = t.rhs(q, s) else { continue };
            let ls = frontier_states(rhs);
            let mut singles: Vec<State> = Vec::new();
            for &p in &ls {
                singles.push(sp.s0(p));
                // Doubling: p occurs at two distinct frontier positions.
                if ls.iter().filter(|&&x| x == p).count() >= 2 {
                    singles.push(sp.sc(p));
                }
            }
            // Divergence of the two runs: distinct successor states, both on
            // the frontier (same path, so same child node).
            for &p1 in &ls {
                for &p2 in &ls {
                    if p1 != p2 {
                        singles.push(sp.d(p1, p2));
                    }
                }
            }
            m.set_content(sp.s0(q), s, content(&singles));
            // SC(q): continue one run.
            let sc_singles: Vec<State> = ls.iter().map(|&p| sp.sc(p)).collect();
            m.set_content(sp.sc(q), s, content(&sc_singles));
        }
        // D(q1, q2): continue both runs along the same node path.
        for q1 in t.states() {
            for q2 in t.states() {
                let (Some(r1), Some(r2)) = (t.rhs(q1, s), t.rhs(q2, s)) else {
                    continue;
                };
                let ls1 = frontier_states(r1);
                let ls2 = frontier_states(r2);
                let mut singles = Vec::new();
                for &p1 in &ls1 {
                    for &p2 in &ls2 {
                        singles.push(sp.d(p1, p2));
                    }
                }
                m.set_content(sp.d(q1, q2), s, content(&singles));
            }
        }
    }
    for st in &all_states {
        m.set_text_ok(*st, sp.text_ok(*st, t));
    }
    m.add_root(sp.s0(t.initial()));
    m.trim()
}

/// The regular language of counter-examples: all trees on which `t` is not
/// text-preserving (copying ∪ rearranging). By Theorem 3.3 this is exact
/// for the admissible transductions of this paper.
pub fn counterexample_language(t: &Transducer) -> Nta {
    copying_nta(t).union(&rearranging_nta(t)).trim()
}

/// The maximal sub-schema: the largest subset of `L(nta)` on which `t` is
/// text-preserving, as an NTA (paper conclusion). Computed as
/// `L(nta) ∖ counterexamples(t)`.
pub fn maximal_subschema(t: &Transducer, nta: &Nta) -> Nta {
    difference_nta(nta, &counterexample_language(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::{copying_witness, is_text_preserving};
    use crate::samples;
    use crate::semantic;
    use tpx_schema::samples::recipe_dtd;
    use tpx_trees::samples::recipe_alphabet;
    use tpx_trees::{Alphabet, Tree};

    #[test]
    fn copying_nta_agrees_with_nfa_decider() {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        for t in [
            samples::example_4_2(&al),
            samples::copying_example(&al),
            samples::rearranging_example(&al),
        ] {
            let via_nfa = copying_witness(&t, &nta).is_some();
            let via_nta = !copying_nta(&t).intersect(&nta).trim().is_empty();
            assert_eq!(via_nfa, via_nta);
        }
    }

    #[test]
    fn copying_nta_witness_validates_semantically() {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        let t = samples::copying_example(&al);
        let w = copying_nta(&t).intersect(&nta).trim().witness().unwrap();
        assert!(nta.accepts(&w));
        assert!(semantic::copying_on(&t, &w));
    }

    #[test]
    fn maximal_subschema_of_preserving_transducer_is_whole_schema() {
        let mut al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        let t = samples::example_4_2(&al);
        let max = maximal_subschema(&t, &nta);
        // Same language as the schema: test on samples.
        let fig1 = tpx_trees::samples::recipe_tree(&mut al);
        assert!(max.accepts(&fig1));
        // And the difference schema ∖ max is empty.
        assert!(tpx_treeauto::difference_nta(&nta, &max).is_empty());
    }

    #[test]
    fn maximal_subschema_carves_out_copying_region() {
        // T copies under b, identity elsewhere; schema allows root a with
        // text and b(text) children. Max sub-schema: trees without text
        // under b... i.e. b-children must have no text? A b-node's text is
        // copied, so any b with a text child is excluded.
        let al = Alphabet::from_labels(["a", "b"]);
        let mut tb = crate::transducer::TransducerBuilder::new(&al, "q0");
        tb.state("qc");
        tb.rule("q0", "a", "a(q0)");
        tb.rule("q0", "b", "b(qc qc)");
        tb.text_rule("q0");
        tb.text_rule("qc");
        let t = tb.finish();
        let mut nb = tpx_treeauto::NtaBuilder::new(&al);
        nb.root("s");
        nb.rule("s", "a", "(st | sb)*");
        nb.rule("sb", "b", "st*");
        nb.text_rule("st");
        let nta = nb.finish();
        // T is not text-preserving over the whole schema…
        assert!(!is_text_preserving(&t, &nta).is_preserving());
        let max = maximal_subschema(&t, &nta);
        // …but is over the maximal sub-schema, which is non-trivial.
        assert!(!max.is_empty());
        let mut al2 = al.clone();
        let inside = tpx_trees::term::parse_tree(r#"a("x" b)"#, &mut al2).unwrap();
        let outside = tpx_trees::term::parse_tree(r#"a("x" b("y"))"#, &mut al2).unwrap();
        assert!(nta.accepts(&inside) && nta.accepts(&outside));
        assert!(max.accepts(&inside));
        assert!(!max.accepts(&outside));
        // Witnesses from the max sub-schema are preserved; semantic check.
        let w = max.witness().unwrap();
        assert!(semantic::text_preserving_on(
            &t,
            &Tree::from_hedge(tpx_trees::make_value_unique(w.as_hedge())).unwrap()
        ));
        // Maximality: schema trees outside max are counter-examples.
        let outside_lang = tpx_treeauto::difference_nta(&nta, &max);
        let cex = outside_lang.witness().unwrap();
        let cex_unique = Tree::from_hedge(tpx_trees::make_value_unique(cex.as_hedge())).unwrap();
        assert!(!semantic::text_preserving_on(&t, &cex_unique));
    }

    #[test]
    fn copying_with_element_leaf_sibling_is_detected() {
        // Regression: the `Any` row used to demand ≥1 child, so an element
        // leaf in a don't-care position could not derive `Any` and the
        // copying NTA missed counterexamples containing one.
        let al = Alphabet::from_labels(["a", "b", "c"]);
        let mut tb = crate::transducer::TransducerBuilder::new(&al, "q0");
        tb.state("qc");
        tb.rule("q0", "a", "a(q0)");
        tb.rule("q0", "b", "b(qc qc)");
        tb.rule("q0", "c", "c");
        tb.text_rule("q0");
        tb.text_rule("qc");
        let t = tb.finish();
        let mut nb = tpx_treeauto::NtaBuilder::new(&al);
        nb.root("s");
        nb.rule("s", "a", "(sc | sb)*");
        nb.rule("sb", "b", "st*");
        nb.rule("sc", "c", "st*");
        nb.text_rule("st");
        let nta = nb.finish();
        let mut al2 = al.clone();
        let cex = tpx_trees::term::parse_tree(r#"a(c b("y"))"#, &mut al2).unwrap();
        assert!(nta.accepts(&cex));
        // T copies "y" under b; the element-leaf sibling c must not hide it.
        assert!(semantic::copying_on(&t, &cex));
        assert!(copying_nta(&t).accepts(&cex));
        let max = maximal_subschema(&t, &nta);
        assert!(!max.accepts(&cex));
        // a(c) alone is preserved, so it stays inside the sub-schema.
        let inside = tpx_trees::term::parse_tree("a(c)", &mut al2).unwrap();
        assert!(max.accepts(&inside));
    }

    #[test]
    fn counterexample_language_is_empty_for_preserving_everywhere() {
        // Identity transducer copies/rearranges nowhere.
        let al = Alphabet::from_labels(["a"]);
        let mut tb = crate::transducer::TransducerBuilder::new(&al, "q0");
        tb.rule("q0", "a", "a(q0)");
        tb.text_rule("q0");
        let t = tb.finish();
        assert!(counterexample_language(&t).is_empty());
    }
}
