//! # `tpx-topdown`: top-down uniform tree transducers (Section 4)
//!
//! The simple XSLT fragment of Martens–Neven: rules `(q, a) → h` with
//! `h ∈ Hedges_Σ(Q)`, evaluated top-down with every state leaf `p` replaced
//! by `T^p(t₁)⋯T^p(tₙ)`; text leaves are either output verbatim (when the
//! rule `(q, text) → text` exists) or deleted.
//!
//! This crate contains the paper's first headline result chain:
//!
//! * [`transducer`] — Definition 4.1, evaluation, reduction, Example 4.2;
//! * [`semantic`] — per-tree oracles for copying / rearranging /
//!   text-preservation (Definitions 2.2 and 3.1, Theorem 3.3);
//! * [`paths`] — the path automaton `A_N` of a schema and the transducer
//!   path automaton `A_T` (Lemma 4.8), both polynomial;
//! * [`decide`] — the PTIME deciders: copying (Lemma 4.9, via an NFA
//!   product), rearranging (Lemma 4.10, via an NTA construction), and
//!   text-preservation (Theorem 4.11);
//! * [`subschema`] — the regular language of counter-examples and the
//!   maximal sub-schema on which `T` is text-preserving (paper conclusion);
//! * [`extensions`] — the conclusion's stronger tests ("never deletes text
//!   below a node labelled σ").

pub mod conformance;
pub mod decide;
pub mod extensions;
pub mod paths;
pub mod samples;
pub mod semantic;
pub mod subschema;
pub mod transducer;

pub use conformance::{
    compile_conformance_artifacts, conformance_witness, conforms_on, hedge_conforms,
    output_conforms, try_compile_conformance_artifacts, try_conformance_witness_with,
    ConformanceArtifacts,
};
pub use decide::{
    compile_copy_artifacts, compile_schema_artifacts, compile_transducer_artifacts,
    copying_witness_with, is_text_preserving, is_text_preserving_with, rearranging_witness_with,
    try_compile_copy_artifacts, try_compile_schema_artifacts, try_compile_transducer_artifacts,
    try_compile_transducer_artifacts_traced, try_copying_witness_with,
    try_is_text_preserving_traced, try_is_text_preserving_with, try_rearranging_witness_with,
    CheckReport, CopyArtifacts, SchemaArtifacts, TransducerArtifacts,
};
pub use paths::{path_automaton_nta, path_automaton_transducer, PathSym};
pub use subschema::{counterexample_language, maximal_subschema};
pub use transducer::{RhsNode, TdState, Transducer, TransducerBuilder};
