//! Per-tree semantic oracles for the notions of Section 2 and 3:
//! text-preservation (Definition 2.2), copying and rearranging
//! (Definition 3.1), and the characterization of Theorem 3.3.
//!
//! These are *ground truth* used to cross-validate the symbolic deciders:
//! they evaluate the transducer on concrete (value-unique) trees and inspect
//! the output directly.

use crate::transducer::Transducer;
use tpx_trees::{is_subsequence, make_value_unique, Hedge, Tree};

/// Whether `text-content(T(t)) ≺ text-content(t)` for this particular tree.
pub fn text_preserving_on(t: &Transducer, input: &Tree) -> bool {
    let out = t.transform(input);
    is_subsequence(&out.text_content(), &input.text_content())
}

/// Whether `T` is copying on (the value-unique version of) `input`:
/// the output contains multiple occurrences of the same `Text` value.
pub fn copying_on(t: &Transducer, input: &Tree) -> bool {
    let unique = value_unique_version(input);
    let out = t.transform(&unique);
    has_duplicates(&out.text_content())
}

/// Whether `T` is rearranging on (the value-unique version of) `input`:
/// some pair of values appears in one order in the input and the opposite
/// order in the output.
pub fn rearranging_on(t: &Transducer, input: &Tree) -> bool {
    let unique = value_unique_version(input);
    let out = t.transform(&unique);
    is_rearrangement(&unique.text_content(), &out.text_content())
}

/// Checks Theorem 3.3 on a single tree: text-preserving on the value-unique
/// version iff neither copying nor rearranging. Used by property tests.
pub fn theorem_3_3_holds_on(t: &Transducer, input: &Tree) -> bool {
    let unique = value_unique_version(input);
    let preserving = text_preserving_on(t, &unique);
    preserving == (!copying_on(t, input) && !rearranging_on(t, input))
}

fn value_unique_version(input: &Tree) -> Tree {
    Tree::from_hedge(make_value_unique(input.as_hedge()))
        .expect("substitution preserves tree shape")
}

fn has_duplicates(values: &[&str]) -> bool {
    let mut seen = std::collections::HashSet::new();
    values.iter().any(|v| !seen.insert(*v))
}

/// For value-unique input content `input`, whether `output` swaps some pair:
/// ∃ γ₁ before γ₂ in the input with γ₂ before γ₁ in the output.
fn is_rearrangement(input: &[&str], output: &[&str]) -> bool {
    let pos: std::collections::HashMap<&str, usize> =
        input.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    // For each pair of output positions i < j: values b = out[i], a = out[j]
    // with input position of a strictly before b witness γ₁ = a, γ₂ = b.
    for i in 0..output.len() {
        for j in (i + 1)..output.len() {
            let (b, a) = (output[i], output[j]);
            if let (Some(&pb), Some(&pa)) = (pos.get(b), pos.get(a)) {
                if pa < pb {
                    return true;
                }
            }
        }
    }
    false
}

/// Admissibility spot-check (Lemma 4.3): verifies `Text`-independence and
/// `Text`-functionality of `T` on one tree by comparing the transformation
/// before and after a `Text`-substitution.
pub fn admissible_on(t: &Transducer, input: &Tree) -> bool {
    use tpx_trees::subst::constant_substitution;
    let out_orig = t.transform(input);
    // Text-independence: relabelling all text to "z" then transforming
    // equals transforming then relabelling all text to "z".
    let rho = constant_substitution(input.as_hedge(), "z");
    let relabelled = Tree::from_hedge(rho.apply(input.as_hedge())).expect("shape preserved");
    let out_after = t.transform(&relabelled);
    let z_out_after = constant_substitution(&out_after, "z").apply(&out_after);
    let z_out_orig = constant_substitution(&out_orig, "z").apply(&out_orig);
    if z_out_after != z_out_orig {
        return false;
    }
    // Text-functionality: every output text value appears in the input.
    let in_vals: std::collections::HashSet<&str> = input.text_content().into_iter().collect();
    output_values_subset(&out_orig, &in_vals)
}

fn output_values_subset(out: &Hedge, in_vals: &std::collections::HashSet<&str>) -> bool {
    out.text_content().iter().all(|v| in_vals.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use tpx_trees::samples::{recipe_alphabet, recipe_tree};
    use tpx_trees::term::parse_tree;
    use tpx_trees::Alphabet;

    #[test]
    fn example_4_2_preserves_on_figure_1() {
        let mut al = recipe_alphabet();
        let t = samples::example_4_2(&al);
        let input = recipe_tree(&mut al);
        assert!(text_preserving_on(&t, &input));
        assert!(!copying_on(&t, &input));
        assert!(!rearranging_on(&t, &input));
        assert!(theorem_3_3_holds_on(&t, &input));
        assert!(admissible_on(&t, &input));
    }

    #[test]
    fn copying_example_detected() {
        let mut al = recipe_alphabet();
        let t = samples::copying_example(&al);
        let input = recipe_tree(&mut al);
        assert!(copying_on(&t, &input));
        assert!(!text_preserving_on(
            &t,
            &Tree::from_hedge(tpx_trees::make_value_unique(input.as_hedge())).unwrap()
        ));
        assert!(theorem_3_3_holds_on(&t, &input));
    }

    #[test]
    fn rearranging_example_detected() {
        let mut al = recipe_alphabet();
        let t = samples::rearranging_example(&al);
        let input = recipe_tree(&mut al);
        assert!(rearranging_on(&t, &input));
        assert!(!copying_on(&t, &input));
        assert!(theorem_3_3_holds_on(&t, &input));
    }

    #[test]
    fn rearrangement_needs_two_swapped_values() {
        // Deleting everything is fine.
        let al = Alphabet::from_labels(["a"]);
        let mut b = crate::transducer::TransducerBuilder::new(&al, "q0");
        b.rule("q0", "a", "a");
        let t = b.finish();
        let mut al2 = al.clone();
        let input = parse_tree(r#"a("x" "y")"#, &mut al2).unwrap();
        assert!(text_preserving_on(&t, &input));
        assert!(!rearranging_on(&t, &input));
    }

    #[test]
    fn duplicate_input_values_handled_via_value_uniqueness() {
        // Input has the same value twice; a transducer keeping both is NOT
        // copying (Definition 3.1 quantifies over value-unique trees).
        let al = Alphabet::from_labels(["a"]);
        let mut b = crate::transducer::TransducerBuilder::new(&al, "q0");
        b.rule("q0", "a", "a(q0)");
        b.text_rule("q0");
        let t = b.finish();
        let mut al2 = al.clone();
        let input = parse_tree(r#"a("x" "x")"#, &mut al2).unwrap();
        assert!(!copying_on(&t, &input));
        assert!(text_preserving_on(&t, &input));
    }
}
