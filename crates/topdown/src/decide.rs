//! The PTIME deciders of Section 4.3.
//!
//! * Copying over `L(N)` (Lemma 4.9): an NFA `M` simulating the path
//!   automaton `A_N` together with two copies of the transducer path
//!   automaton `A_T`, accepting text paths witnessing condition (1) or (2)
//!   of Lemma 4.5. `T` is copying over `L(N)` iff `L(M) ≠ ∅`.
//! * Rearranging over `L(N)` (Lemma 4.10): an NTA `M` accepting exactly the
//!   trees on which `T` rearranges (condition of Lemma 4.6); `T` is
//!   rearranging over `L(N)` iff `L(M ∩ N) ≠ ∅`.
//! * Text-preservation (Theorem 4.11): by Theorem 3.3, `T` is
//!   text-preserving over `L(N)` iff it is neither copying nor rearranging.
//!
//! All constructions are polynomial; emptiness tests are linear-time graph
//! searches, so the whole decision procedure is PTIME.

use crate::paths::{path_automaton_nta, path_automaton_transducer, PathSym};
use crate::transducer::{frontier_states, TdState, Transducer};
use tpx_automata::{Nfa, StateId};
use tpx_obs::{SpanFields, Tracer};
use tpx_treeauto::{Nta, State};
use tpx_trees::budget::{BudgetExceeded, BudgetHandle};
use tpx_trees::{Symbol, Tree};

/// The outcome of [`is_text_preserving`], with a diagnostic witness.
#[derive(Clone, Debug)]
pub enum CheckReport {
    /// The transduction is text-preserving over the schema.
    TextPreserving,
    /// The transduction copies; the witness is a text path of the schema on
    /// which `T` has two different path runs or a doubling rule.
    Copying {
        /// A witness text path.
        path: Vec<PathSym>,
    },
    /// The transduction rearranges; the witness is a schema tree on which
    /// two text values swap.
    Rearranging {
        /// A witness tree (text values are placeholders).
        witness: Tree,
    },
}

impl CheckReport {
    /// Whether the report says "text-preserving".
    pub fn is_preserving(&self) -> bool {
        matches!(self, CheckReport::TextPreserving)
    }
}

/// The schema-side stage of the pipeline: everything Lemma 4.9 needs from
/// the schema alone. Reusable across every transducer checked against the
/// same schema — the engine layer caches it by schema content hash.
#[derive(Clone, Debug)]
pub struct SchemaArtifacts {
    /// `A_N`, the path automaton of `L(N)` (Lemma 4.8(1)).
    pub a_n: Nfa<PathSym>,
    /// The full path-symbol alphabet `Σ ⊎ {text}` of the schema, hoisted
    /// here so per-analysis pipelines (text-retention's `through-σ`
    /// automaton, determinization-requiring callers) never rebuild it per
    /// call.
    pub path_alphabet: Vec<PathSym>,
}

impl SchemaArtifacts {
    /// Total size of the compiled artifacts (states + transitions).
    pub fn size(&self) -> usize {
        self.a_n.size() + self.path_alphabet.len()
    }
}

/// The copy-side transducer stage: the Lemma 4.5 condition automata built
/// from `A_T` (Lemma 4.8(2)). Linear in `|T|`² — cheap next to the
/// rearranging NTA, so callers that only need the copying half (e.g.
/// [`crate::extensions`], the E1 copying-only sweep) can stop here.
#[derive(Clone, Debug)]
pub struct CopyArtifacts {
    /// `A_T`, the transducer path automaton (Lemma 4.8(2)).
    pub a_t: Nfa<PathSym>,
    /// Two lock-step copies of `A_T` accepting paths with two *different*
    /// runs (condition (1) of Lemma 4.5).
    pub diverging: Nfa<PathSym>,
    /// One copy of `A_T` marked once a doubling rule fires (condition (2)
    /// of Lemma 4.5).
    pub doubling: Nfa<PathSym>,
}

impl CopyArtifacts {
    /// Total size of the compiled artifacts (states + transitions).
    pub fn size(&self) -> usize {
        self.a_t.size() + self.diverging.size() + self.doubling.size()
    }
}

/// The full transducer-side stage: copy-side automata plus the Lemma 4.10
/// rearranging NTA. Reusable across every schema the same transducer is
/// checked against — the engine layer caches it by transducer content hash.
#[derive(Clone, Debug)]
pub struct TransducerArtifacts {
    /// The copy-side condition automata (Lemma 4.5 / 4.9).
    pub copying: CopyArtifacts,
    /// The rearranging NTA `M` of Lemma 4.10.
    pub rearranging: Nta,
}

impl TransducerArtifacts {
    /// Total size of the compiled artifacts (states + transitions/rules).
    pub fn size(&self) -> usize {
        self.copying.size() + self.rearranging.size()
    }
}

/// Stage 1a: compiles the schema-side artifacts (Lemma 4.8(1)).
pub fn compile_schema_artifacts(nta: &Nta) -> SchemaArtifacts {
    try_compile_schema_artifacts(nta, &BudgetHandle::unlimited()).expect("unlimited budget")
}

/// Budgeted [`compile_schema_artifacts`]: charges one fuel unit per state
/// and transition of the constructed path automaton.
pub fn try_compile_schema_artifacts(
    nta: &Nta,
    budget: &BudgetHandle,
) -> Result<SchemaArtifacts, BudgetExceeded> {
    // Entering the stage costs one unit, so a zero-fuel budget fails fast
    // before any construction starts.
    budget.charge(1)?;
    let a_n = path_automaton_nta(nta);
    budget.charge(a_n.size() as u64)?;
    let mut path_alphabet: Vec<PathSym> = (0..nta.symbol_count() as u32)
        .map(|i| PathSym::Elem(Symbol(i)))
        .collect();
    path_alphabet.push(PathSym::Text);
    budget.charge(path_alphabet.len() as u64)?;
    Ok(SchemaArtifacts { a_n, path_alphabet })
}

/// Stage 1b (copy side): `A_T` and the two Lemma 4.5 condition automata.
pub fn compile_copy_artifacts(t: &Transducer) -> CopyArtifacts {
    try_compile_copy_artifacts(t, &BudgetHandle::unlimited()).expect("unlimited budget")
}

/// Budgeted [`compile_copy_artifacts`]: fuel is charged inside the pair and
/// doubling constructions, one unit per product state row.
pub fn try_compile_copy_artifacts(
    t: &Transducer,
    budget: &BudgetHandle,
) -> Result<CopyArtifacts, BudgetExceeded> {
    let a_t = path_automaton_transducer(t);
    budget.charge(a_t.size() as u64)?;
    let diverging = diverging_pairs_automaton(&a_t, budget)?;
    let doubling = doubling_marked_automaton(t, budget)?;
    Ok(CopyArtifacts {
        a_t,
        diverging,
        doubling,
    })
}

/// Stage 1b (full): copy-side automata plus the Lemma 4.10 rearranging NTA.
pub fn compile_transducer_artifacts(t: &Transducer) -> TransducerArtifacts {
    try_compile_transducer_artifacts(t, &BudgetHandle::unlimited()).expect("unlimited budget")
}

/// Budgeted [`compile_transducer_artifacts`]: fuel probes run inside both
/// the copy-side construction and the rearranging-NTA state loops.
pub fn try_compile_transducer_artifacts(
    t: &Transducer,
    budget: &BudgetHandle,
) -> Result<TransducerArtifacts, BudgetExceeded> {
    try_compile_transducer_artifacts_traced(t, budget, Tracer::disabled_ref())
}

/// Traced [`try_compile_transducer_artifacts`]: emits one sub-span per
/// compiled half (`topdown/transducer/copying`,
/// `topdown/transducer/rearranging`) carrying the fuel charged and the
/// artifact size. With a disabled tracer this is exactly the untraced call.
pub fn try_compile_transducer_artifacts_traced(
    t: &Transducer,
    budget: &BudgetHandle,
    tracer: &Tracer,
) -> Result<TransducerArtifacts, BudgetExceeded> {
    let span = tracer.span("topdown/transducer/copying");
    let fuel_before = budget.fuel_spent();
    let copying = try_compile_copy_artifacts(t, budget)?;
    span.exit_with(
        SpanFields::new()
            .fuel(budget.fuel_spent() - fuel_before)
            .size(copying.size()),
    );
    let span = tracer.span("topdown/transducer/rearranging");
    let fuel_before = budget.fuel_spent();
    let rearranging = try_rearranging_nta(t, budget)?;
    span.exit_with(
        SpanFields::new()
            .fuel(budget.fuel_spent() - fuel_before)
            .size(rearranging.size()),
    );
    Ok(TransducerArtifacts {
        copying,
        rearranging,
    })
}

/// Stage 2 (copying): the Lemma 4.9 emptiness tests over precompiled
/// artifacts — two linear products plus shortest-word searches.
pub fn copying_witness_with(
    schema: &SchemaArtifacts,
    copy: &CopyArtifacts,
) -> Option<Vec<PathSym>> {
    try_copying_witness_with(schema, copy, &BudgetHandle::unlimited()).expect("unlimited budget")
}

/// Budgeted [`copying_witness_with`]: charges fuel proportional to each
/// intersection product before building it.
pub fn try_copying_witness_with(
    schema: &SchemaArtifacts,
    copy: &CopyArtifacts,
    budget: &BudgetHandle,
) -> Result<Option<Vec<PathSym>>, BudgetExceeded> {
    // Condition (1): two different path runs on the same text path.
    budget.charge((schema.a_n.size() + copy.diverging.size()) as u64)?;
    let m1 = schema.a_n.intersect(&copy.diverging);
    if let Some(w) = m1.shortest_word() {
        return Ok(Some(w));
    }
    // Condition (2): one path run through a doubling rule.
    budget.charge((schema.a_n.size() + copy.doubling.size()) as u64)?;
    let m2 = schema.a_n.intersect(&copy.doubling);
    Ok(m2.shortest_word())
}

/// Stage 2 (rearranging): the Lemma 4.10 emptiness test over the
/// precompiled rearranging NTA.
pub fn rearranging_witness_with(transducer: &TransducerArtifacts, nta: &Nta) -> Option<Tree> {
    try_rearranging_witness_with(transducer, nta, &BudgetHandle::unlimited())
        .expect("unlimited budget")
}

/// Budgeted [`rearranging_witness_with`]: the product, trim, and witness
/// search all run under the same fuel/deadline budget.
pub fn try_rearranging_witness_with(
    transducer: &TransducerArtifacts,
    nta: &Nta,
    budget: &BudgetHandle,
) -> Result<Option<Tree>, BudgetExceeded> {
    let product = transducer
        .rearranging
        .try_intersect(nta, budget)?
        .try_trim(budget)?;
    product.try_witness(budget)
}

/// Stage 3: the Theorem 4.11 verdict over precompiled artifacts.
pub fn is_text_preserving_with(
    schema: &SchemaArtifacts,
    transducer: &TransducerArtifacts,
    nta: &Nta,
) -> CheckReport {
    try_is_text_preserving_with(schema, transducer, nta, &BudgetHandle::unlimited())
        .expect("unlimited budget")
}

/// Budgeted [`is_text_preserving_with`]: both emptiness tests are run under
/// the budget; an exhausted budget aborts with the fuel/deadline report.
pub fn try_is_text_preserving_with(
    schema: &SchemaArtifacts,
    transducer: &TransducerArtifacts,
    nta: &Nta,
    budget: &BudgetHandle,
) -> Result<CheckReport, BudgetExceeded> {
    try_is_text_preserving_traced(schema, transducer, nta, budget, Tracer::disabled_ref())
}

/// Traced [`try_is_text_preserving_with`]: emits one sub-span per emptiness
/// test (`topdown/decide/copying`, `topdown/decide/rearranging`) carrying
/// the fuel each charged. With a disabled tracer this is exactly the
/// untraced call.
pub fn try_is_text_preserving_traced(
    schema: &SchemaArtifacts,
    transducer: &TransducerArtifacts,
    nta: &Nta,
    budget: &BudgetHandle,
    tracer: &Tracer,
) -> Result<CheckReport, BudgetExceeded> {
    let span = tracer.span("topdown/decide/copying");
    let fuel_before = budget.fuel_spent();
    let copying = try_copying_witness_with(schema, &transducer.copying, budget)?;
    span.exit_with(SpanFields::new().fuel(budget.fuel_spent() - fuel_before));
    if let Some(path) = copying {
        return Ok(CheckReport::Copying { path });
    }
    let span = tracer.span("topdown/decide/rearranging");
    let fuel_before = budget.fuel_spent();
    let rearranging = try_rearranging_witness_with(transducer, nta, budget)?;
    span.exit_with(SpanFields::new().fuel(budget.fuel_spent() - fuel_before));
    if let Some(witness) = rearranging {
        return Ok(CheckReport::Rearranging { witness });
    }
    Ok(CheckReport::TextPreserving)
}

/// Theorem 4.11: decides in PTIME whether `t` is text-preserving over
/// `L(nta)`. Returns a witness for the violated condition otherwise.
///
/// One-shot convenience over the staged pipeline
/// ([`compile_schema_artifacts`] → [`compile_transducer_artifacts`] →
/// [`is_text_preserving_with`]); batch callers should compile the stages
/// once and reuse them (see the `tpx-engine` crate).
pub fn is_text_preserving(t: &Transducer, nta: &Nta) -> CheckReport {
    let schema = compile_schema_artifacts(nta);
    let transducer = compile_transducer_artifacts(t);
    is_text_preserving_with(&schema, &transducer, nta)
}

/// Lemma 4.9: whether `t` is copying over `L(nta)`; returns a witness text
/// path. PTIME. One-shot convenience over the copy side of the staged
/// pipeline (the rearranging NTA is *not* built).
pub fn copying_witness(t: &Transducer, nta: &Nta) -> Option<Vec<PathSym>> {
    copying_witness_with(&compile_schema_artifacts(nta), &compile_copy_artifacts(t))
}

/// Lemma 4.10: whether `t` is rearranging over `L(nta)`; returns a witness
/// tree. PTIME. One-shot convenience over the staged pipeline.
pub fn rearranging_witness(t: &Transducer, nta: &Nta) -> Option<Tree> {
    let m = rearranging_nta(t);
    let product = m.intersect(nta).trim();
    product.witness()
}

/// Simulates two copies of `a_t` in lock-step, accepting iff both accept
/// and the two state sequences differ somewhere (condition (1) of
/// Lemma 4.5: two *different* path runs).
///
/// One fuel unit per product state row `(p, q, flag)`.
fn diverging_pairs_automaton(
    a_t: &Nfa<PathSym>,
    budget: &BudgetHandle,
) -> Result<Nfa<PathSym>, BudgetExceeded> {
    let n = a_t.state_count() as u32;
    let id =
        |p: StateId, q: StateId, diverged: bool| StateId((p.0 * n + q.0) * 2 + u32::from(diverged));
    let mut out: Nfa<PathSym> = Nfa::new();
    out.add_states(2 * (n as usize) * (n as usize));
    for &i in a_t.initial_states() {
        for &j in a_t.initial_states() {
            out.set_initial(id(i, j, i != j));
        }
    }
    for p in a_t.states() {
        for q in a_t.states() {
            for flag in [false, true] {
                budget.charge(1)?;
                let from = id(p, q, flag);
                for (a, p2) in a_t.transitions_from(p) {
                    for (b, q2) in a_t.transitions_from(q) {
                        if a == b {
                            let flag2 = flag || p2 != q2;
                            out.add_transition(from, *a, id(*p2, *q2, flag2));
                        }
                    }
                }
                if flag && a_t.is_final(p) && a_t.is_final(q) {
                    out.set_final(from, true);
                }
            }
        }
    }
    Ok(out.trim())
}

/// One copy of `A_T` with a flag set once a transition uses a rule whose
/// frontier contains the successor state twice (condition (2) of
/// Lemma 4.5).
///
/// One fuel unit per `(state, symbol)` rule row.
fn doubling_marked_automaton(
    t: &Transducer,
    budget: &BudgetHandle,
) -> Result<Nfa<PathSym>, BudgetExceeded> {
    let n = t.state_count() as u32;
    let id = |q: TdState, flag: bool| StateId(q.0 * 2 + u32::from(flag));
    let sink = StateId(2 * n); // accepting, flag already consumed
    let mut out: Nfa<PathSym> = Nfa::new();
    out.add_states(2 * n as usize + 1);
    out.set_initial(id(t.initial(), false));
    out.set_final(sink, true);
    for q in t.states() {
        for sym in 0..t.symbol_count() {
            budget.charge(1)?;
            let s = Symbol(sym as u32);
            let Some(rhs) = t.rhs(q, s) else { continue };
            let states = frontier_states(rhs);
            for &p in &states {
                let copies = states.iter().filter(|&&x| x == p).count();
                for flag in [false, true] {
                    out.add_transition(id(q, flag), PathSym::Elem(s), id(p, flag || copies >= 2));
                }
            }
        }
        if t.text_rule(q) {
            out.add_transition(id(q, true), PathSym::Text, sink);
        }
    }
    Ok(out.trim())
}

/// The role of an NTA state of the rearranging automaton `M` (Lemma 4.10).
///
/// Layout of the dense state space over `n` transducer states:
/// `Any`, then `S0(q)`, then `D(q₁, q₂)` (both runs at the same node), then
/// `B1(q)` (run towards the doc-earlier leaf `v₁`), then `B2(q)` (towards
/// `v₂`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Any,
    S0(TdState),
    D(TdState, TdState),
    B1(TdState),
    B2(TdState),
}

struct RearrangeSpace {
    n: u32,
}

impl RearrangeSpace {
    fn size(&self) -> usize {
        (1 + 3 * self.n + self.n * self.n) as usize
    }
    fn any(&self) -> State {
        State(0)
    }
    fn s0(&self, q: TdState) -> State {
        State(1 + q.0)
    }
    fn d(&self, q1: TdState, q2: TdState) -> State {
        State(1 + self.n + q1.0 * self.n + q2.0)
    }
    fn b1(&self, q: TdState) -> State {
        State(1 + self.n + self.n * self.n + q.0)
    }
    fn b2(&self, q: TdState) -> State {
        State(1 + 2 * self.n + self.n * self.n + q.0)
    }
    fn role(&self, s: State) -> Role {
        let i = s.0;
        if i == 0 {
            Role::Any
        } else if i < 1 + self.n {
            Role::S0(TdState(i - 1))
        } else if i < 1 + self.n + self.n * self.n {
            let j = i - 1 - self.n;
            Role::D(TdState(j / self.n), TdState(j % self.n))
        } else if i < 1 + 2 * self.n + self.n * self.n {
            Role::B1(TdState(i - 1 - self.n - self.n * self.n))
        } else {
            Role::B2(TdState(i - 1 - 2 * self.n - self.n * self.n))
        }
    }
}

/// Ordered pairs `(earlier, later)` of *distinct frontier positions* of
/// `rhs(q, a)`: `earlier` appears strictly before `later`. A swap is
/// witnessed when the run that continues from `earlier` reaches the
/// doc-*later* leaf `v₂` and the run from `later` reaches `v₁`.
fn swap_pairs(t: &Transducer, q: TdState, a: Symbol) -> Vec<(TdState, TdState)> {
    let Some(rhs) = t.rhs(q, a) else {
        return Vec::new();
    };
    let f = frontier_states(rhs);
    let mut out = Vec::new();
    for j in 0..f.len() {
        for j2 in (j + 1)..f.len() {
            let pair = (f[j], f[j2]);
            if !out.contains(&pair) {
                out.push(pair);
            }
        }
    }
    out
}

/// The Lemma 4.10 automaton: an NTA accepting exactly the trees on which
/// `t` rearranges (over all text trees; intersect with a schema to restrict).
pub fn rearranging_nta(t: &Transducer) -> Nta {
    try_rearranging_nta(t, &BudgetHandle::unlimited()).expect("unlimited budget")
}

/// Budgeted [`rearranging_nta`]: one fuel unit per content-NFA row set on
/// the automaton (the dominant cost — each row is a fresh horizontal NFA).
pub fn try_rearranging_nta(t: &Transducer, budget: &BudgetHandle) -> Result<Nta, BudgetExceeded> {
    let sp = RearrangeSpace {
        n: t.state_count() as u32,
    };
    let mut m = Nta::new(t.symbol_count());
    for _ in 0..sp.size() {
        m.add_state();
    }
    let all_states: Vec<State> = (0..sp.size() as u32).map(State).collect();

    // Helper building the content NFA `Any* · X · Any*` with X from a set of
    // single states, plus optional split words `Any* B1 Any* B2 Any*`.
    //
    // Don't-care positions loop on the single `Any` state rather than on
    // every state of the space: every schema subtree evaluates to `Any`
    // (its row below accepts every hedge over `Any`, including the empty
    // one), so the accepted tree language is unchanged while each row
    // stays O(|singles| + |splits|) instead of O(n²) transitions.
    let any = sp.any();
    let content = |singles: &[State], splits: &[(State, State)]| -> Nfa<State> {
        let mut nfa: Nfa<State> = Nfa::new();
        let s0 = nfa.add_state();
        let s1 = nfa.add_state();
        nfa.set_initial(s0);
        nfa.set_final(s1, true);
        nfa.add_transition(s0, any, s0);
        nfa.add_transition(s1, any, s1);
        for &x in singles {
            nfa.add_transition(s0, x, s1);
        }
        if !splits.is_empty() {
            let mid = nfa.add_state();
            nfa.add_transition(mid, any, mid);
            for &(x1, x2) in splits {
                nfa.add_transition(s0, x1, mid);
                nfa.add_transition(mid, x2, s1);
            }
        }
        nfa
    };

    for sym in 0..t.symbol_count() {
        let s = Symbol(sym as u32);
        // Any: accepts any children hedge — crucially including the *empty*
        // one, so an element leaf in a don't-care position still evaluates
        // to `Any`. (The previous `Any* · X · Any*`-shaped row demanded at
        // least one child here, so every witness containing an element leaf
        // outside the swap paths was silently missed.)
        budget.charge(1)?;
        let mut any_nfa: Nfa<State> = Nfa::new();
        let a0 = any_nfa.add_state();
        any_nfa.set_initial(a0);
        any_nfa.set_final(a0, true);
        any_nfa.add_transition(a0, any, a0);
        m.set_content(sp.any(), s, any_nfa);

        for q in t.states() {
            budget.charge(1)?;
            let Some(rhs) = t.rhs(q, s) else { continue };
            let ls = frontier_states(rhs);
            // S0(q): continue single run, or diverge.
            let mut singles: Vec<State> = Vec::new();
            for &q2 in &ls {
                singles.push(sp.s0(q2));
            }
            let mut splits: Vec<(State, State)> = Vec::new();
            for (earlier, later) in swap_pairs(t, q, s) {
                // Both runs descend into the same child: run1 = `later`
                // (reaches v₁), run2 = `earlier` (reaches v₂).
                singles.push(sp.d(later, earlier));
                // Runs split to different children c₁ < c₂: run1 into c₁.
                splits.push((sp.b1(later), sp.b2(earlier)));
            }
            m.set_content(sp.s0(q), s, content(&singles, &splits));

            // B1(q) / B2(q): continue a single run.
            let b1_singles: Vec<State> = ls.iter().map(|&p| sp.b1(p)).collect();
            m.set_content(sp.b1(q), s, content(&b1_singles, &[]));
            let b2_singles: Vec<State> = ls.iter().map(|&p| sp.b2(p)).collect();
            m.set_content(sp.b2(q), s, content(&b2_singles, &[]));
        }

        // D(q1, q2): continue both runs in the same child, or split with
        // run1 (towards v₁) into a strictly earlier child.
        for q1 in t.states() {
            for q2 in t.states() {
                budget.charge(1)?;
                let (Some(rhs1), Some(rhs2)) = (t.rhs(q1, s), t.rhs(q2, s)) else {
                    continue;
                };
                let ls1 = frontier_states(rhs1);
                let ls2 = frontier_states(rhs2);
                let mut singles = Vec::new();
                let mut splits = Vec::new();
                for &p1 in &ls1 {
                    for &p2 in &ls2 {
                        singles.push(sp.d(p1, p2));
                        splits.push((sp.b1(p1), sp.b2(p2)));
                    }
                }
                m.set_content(sp.d(q1, q2), s, content(&singles, &splits));
            }
        }
    }

    // Text acceptance.
    for st in &all_states {
        let ok = match sp.role(*st) {
            Role::Any => true,
            Role::B1(q) | Role::B2(q) => t.text_rule(q),
            Role::S0(_) | Role::D(_, _) => false,
        };
        m.set_text_ok(*st, ok);
    }
    m.add_root(sp.s0(t.initial()));
    m.try_trim(budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use crate::semantic;
    use tpx_schema::samples::recipe_dtd;
    use tpx_trees::samples::recipe_alphabet;
    use tpx_trees::Alphabet;

    fn recipe_setup() -> (Alphabet, Nta) {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        (al, nta)
    }

    #[test]
    fn example_4_2_is_text_preserving_over_recipe_dtd() {
        let (al, nta) = recipe_setup();
        let t = samples::example_4_2(&al);
        assert!(copying_witness(&t, &nta).is_none());
        assert!(rearranging_witness(&t, &nta).is_none());
        assert!(is_text_preserving(&t, &nta).is_preserving());
    }

    #[test]
    fn copying_example_detected_with_witness_path() {
        let (al, nta) = recipe_setup();
        let t = samples::copying_example(&al);
        let path = copying_witness(&t, &nta).expect("must be copying");
        // The witness path must end in text and be a real schema path on
        // which T has two runs / a doubling.
        assert_eq!(*path.last().unwrap(), PathSym::Text);
        let report = is_text_preserving(&t, &nta);
        assert!(matches!(report, CheckReport::Copying { .. }));
    }

    #[test]
    fn rearranging_example_detected_with_witness_tree() {
        let (al, nta) = recipe_setup();
        let t = samples::rearranging_example(&al);
        assert!(copying_witness(&t, &nta).is_none());
        let w = rearranging_witness(&t, &nta).expect("must be rearranging");
        // The witness is a schema tree on which the semantic oracle agrees.
        assert!(nta.accepts(&w));
        assert!(semantic::rearranging_on(&t, &w));
        assert!(!semantic::text_preserving_on(
            &t,
            &Tree::from_hedge(tpx_trees::make_value_unique(w.as_hedge())).unwrap()
        ));
    }

    #[test]
    fn doubling_within_one_rule_is_copying() {
        // (q0, a) → a(q q): q appears twice.
        let al = Alphabet::from_labels(["a"]);
        let mut b = crate::transducer::TransducerBuilder::new(&al, "q0");
        b.state("q");
        b.rule("q0", "a", "a(q q)");
        b.text_rule("q");
        let t = b.finish();
        // Schema: a with text children.
        let mut nb = tpx_treeauto::NtaBuilder::new(&al);
        nb.root("r");
        nb.rule("r", "a", "rt*");
        nb.text_rule("rt");
        let nta = nb.finish();
        assert!(copying_witness(&t, &nta).is_some());
    }

    #[test]
    fn two_runs_through_different_states_is_copying() {
        // (q0, a) → a(p r); both p and r copy text.
        let al = Alphabet::from_labels(["a"]);
        let mut b = crate::transducer::TransducerBuilder::new(&al, "q0");
        b.state("p");
        b.state("r");
        b.rule("q0", "a", "a(p r)");
        b.text_rule("p");
        b.text_rule("r");
        let t = b.finish();
        let mut nb = tpx_treeauto::NtaBuilder::new(&al);
        nb.root("s");
        nb.rule("s", "a", "st*");
        nb.text_rule("st");
        let nta = nb.finish();
        assert!(copying_witness(&t, &nta).is_some());
    }

    #[test]
    fn copying_outside_schema_is_ignored() {
        // T copies below b-nodes, but the schema has no b.
        let al = Alphabet::from_labels(["a", "b"]);
        let mut b = crate::transducer::TransducerBuilder::new(&al, "q0");
        b.state("q");
        b.rule("q0", "a", "a(q0)");
        b.rule("q0", "b", "b(q q)");
        b.text_rule("q0");
        b.text_rule("q");
        let t = b.finish();
        let mut nb = tpx_treeauto::NtaBuilder::new(&al);
        nb.root("s");
        nb.rule("s", "a", "(s | st)*");
        nb.text_rule("st");
        let nta = nb.finish();
        assert!(copying_witness(&t, &nta).is_none());
        assert!(is_text_preserving(&t, &nta).is_preserving());
    }

    #[test]
    fn swap_within_single_rule_is_rearranging() {
        // (q0, a) → a(p2 p1) where p1 handles the first child... actually a
        // swap needs occurrence order vs doc order: rule emits second-child
        // content before first-child content via two sibling subtrees:
        // (q0, a) → a(b(pb) c(pc)) cannot reorder;  instead classic swap:
        // (q0, a) → a(p p) is copying. True rearranging: route text of the
        // b-child after the c-child by separate states with swapped output
        // order.
        let al = Alphabet::from_labels(["root", "b", "c"]);
        let mut tb = crate::transducer::TransducerBuilder::new(&al, "q0");
        tb.state("pb");
        tb.state("pc");
        tb.state("q");
        // Output pc's result (c-subtree text) before pb's (b-subtree text).
        tb.rule("q0", "root", "root(pc pb)");
        tb.rule("pb", "b", "b(q)");
        tb.rule("pc", "c", "c(q)");
        tb.text_rule("q");
        let t = tb.finish();
        // Schema: root(b c), each with one text child.
        let mut nb = tpx_treeauto::NtaBuilder::new(&al);
        nb.root("s");
        nb.rule("s", "root", "sb sc");
        nb.rule("sb", "b", "st");
        nb.rule("sc", "c", "st");
        nb.text_rule("st");
        let nta = nb.finish();
        let w = rearranging_witness(&t, &nta).expect("swap must be found");
        assert!(nta.accepts(&w));
        assert!(semantic::rearranging_on(&t, &w));
        assert!(copying_witness(&t, &nta).is_none());
    }

    #[test]
    fn swap_with_element_leaf_sibling_is_detected() {
        // Regression: the `Any` row of the rearranging NTA used to demand
        // at least one child, so an *element leaf* (a σ-node with no
        // children) in a don't-care position derived no state at all and
        // every witness containing one was missed. Here the only schema
        // tree is root(b(text) c(text) d) — d is an element leaf the
        // transducer deletes — and the transducer swaps the b/c text.
        let al = Alphabet::from_labels(["root", "b", "c", "d"]);
        let mut tb = crate::transducer::TransducerBuilder::new(&al, "q0");
        tb.state("pb");
        tb.state("pc");
        tb.state("q");
        tb.rule("q0", "root", "root(pc pb)");
        tb.rule("pb", "b", "b(q)");
        tb.rule("pc", "c", "c(q)");
        tb.text_rule("q");
        let t = tb.finish();
        let mut nb = tpx_treeauto::NtaBuilder::new(&al);
        nb.root("s");
        nb.rule("s", "root", "sb sc sd");
        nb.rule("sb", "b", "st");
        nb.rule("sc", "c", "st");
        nb.rule("sd", "d", "%eps");
        nb.text_rule("st");
        let nta = nb.finish();
        let w = rearranging_witness(&t, &nta).expect("swap next to an element leaf must be found");
        assert!(nta.accepts(&w));
        assert!(semantic::rearranging_on(&t, &w));
        assert!(matches!(
            is_text_preserving(&t, &nta),
            CheckReport::Rearranging { .. }
        ));
    }

    #[test]
    fn deleting_one_side_is_not_rearranging() {
        // Same as above but pb never outputs text: no swap materializes.
        let al = Alphabet::from_labels(["root", "b", "c"]);
        let mut tb = crate::transducer::TransducerBuilder::new(&al, "q0");
        tb.state("pb");
        tb.state("pc");
        tb.state("q");
        tb.rule("q0", "root", "root(pc pb)");
        tb.rule("pb", "b", "b");
        tb.rule("pc", "c", "c(q)");
        tb.text_rule("q");
        let t = tb.finish();
        let mut nb = tpx_treeauto::NtaBuilder::new(&al);
        nb.root("s");
        nb.rule("s", "root", "sb sc");
        nb.rule("sb", "b", "st");
        nb.rule("sc", "c", "st");
        nb.text_rule("st");
        let nta = nb.finish();
        assert!(rearranging_witness(&t, &nta).is_none());
        assert!(is_text_preserving(&t, &nta).is_preserving());
    }

    #[test]
    fn swap_below_shared_path_is_detected() {
        // The divergence happens two levels above the text leaves, with a
        // shared-node double phase in between.
        let al = Alphabet::from_labels(["root", "mid", "b", "c"]);
        let mut tb = crate::transducer::TransducerBuilder::new(&al, "q0");
        for s in ["pb", "pc", "q"] {
            tb.state(s);
        }
        // Swap at the root rule: pc's region before pb's.
        tb.rule("q0", "root", "root(pc pb)");
        // Both runs traverse the same mid node.
        tb.rule("pb", "mid", "mid(pb)");
        tb.rule("pc", "mid", "mid(pc)");
        tb.rule("pb", "b", "b(q)");
        tb.rule("pc", "c", "c(q)");
        tb.text_rule("q");
        let t = tb.finish();
        // Schema: root(mid(b c)).
        let mut nb = tpx_treeauto::NtaBuilder::new(&al);
        nb.root("s");
        nb.rule("s", "root", "sm");
        nb.rule("sm", "mid", "sb sc");
        nb.rule("sb", "b", "st");
        nb.rule("sc", "c", "st");
        nb.text_rule("st");
        let nta = nb.finish();
        let w = rearranging_witness(&t, &nta).expect("deep swap must be found");
        assert!(semantic::rearranging_on(&t, &w));
    }
}
