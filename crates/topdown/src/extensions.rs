//! The conclusion's stronger tests: beyond text-preservation, require that
//! the transformation *never deletes* text values below nodes with selected
//! labels (the paper's example: never delete text under `instructions`).
//!
//! A text value at node `v` is output by `T` iff `T` has a path run on
//! `anc-str(v)` — i.e. iff `anc-str(v) ∈ L(A_T)`. So "`T` deletes some text
//! under a `σ`-node on some schema tree" reduces to non-emptiness of
//! `L(A_N) ∩ through-σ ∩ complement(L(A_T))`, entirely within the path
//! automata of Lemma 4.8. Rather than determinizing and complementing
//! `A_T` eagerly, the staged pipeline phrases the same question as an
//! inclusion — is `L(A_N ∩ through-σ) ⊆ L(A_T)`? — and answers it with
//! the word-level antichain procedure (`Nfa::try_inclusion_counterexample`,
//! the string twin of DESIGN.md §13's tree layer), whose breadth-first
//! counterexample is exactly a shortest deleted text path.
//!
//! The *text-retention* analysis of the engine layer
//! (`TextRetentionDecider`) is a thin governed wrapper around
//! [`try_deleted_text_under_with`]: the schema side reuses the cached
//! [`SchemaArtifacts`] (which carry the hoisted path alphabet), the
//! transducer side is just `A_T`.

use crate::decide::SchemaArtifacts;
use crate::paths::{path_automaton_transducer, PathSym};
use crate::transducer::Transducer;
use tpx_automata::Nfa;
use tpx_treeauto::Nta;
use tpx_trees::budget::{BudgetExceeded, BudgetHandle};
use tpx_trees::Symbol;

/// The transducer-side artifact of the text-retention analysis: the path
/// automaton `A_T` (Lemma 4.8(2)). Independent of the schema *and* of the
/// selected labels, so the engine layer caches it per transducer and
/// shares it across every retention query.
#[derive(Clone, Debug)]
pub struct RetentionArtifacts {
    /// `A_T`, the transducer path automaton.
    pub a_t: Nfa<PathSym>,
}

impl RetentionArtifacts {
    /// Total size of the compiled artifact (states + transitions).
    pub fn size(&self) -> usize {
        self.a_t.size()
    }
}

/// Compiles the transducer-side retention artifact.
pub fn compile_retention_artifacts(t: &Transducer) -> RetentionArtifacts {
    try_compile_retention_artifacts(t, &BudgetHandle::unlimited()).expect("unlimited budget")
}

/// Budgeted [`compile_retention_artifacts`]: charges one fuel unit per
/// state and transition of `A_T`.
pub fn try_compile_retention_artifacts(
    t: &Transducer,
    budget: &BudgetHandle,
) -> Result<RetentionArtifacts, BudgetExceeded> {
    budget.charge(1)?;
    let a_t = path_automaton_transducer(t);
    budget.charge(a_t.size() as u64)?;
    Ok(RetentionArtifacts { a_t })
}

/// The decision stage of the text-retention analysis, over precompiled
/// artifacts: a shortest text path of the schema passing through one of
/// `labels` whose value `T` deletes, or `None` when `T` keeps every such
/// value. The product and the antichain inclusion search both run under
/// the caller's budget.
pub fn try_deleted_text_under_with(
    schema: &SchemaArtifacts,
    retention: &RetentionArtifacts,
    labels: &[Symbol],
    budget: &BudgetHandle,
) -> Result<Option<Vec<PathSym>>, BudgetExceeded> {
    budget.charge(1)?;
    let through = through_labels(labels, &schema.path_alphabet);
    budget.charge(through.size() as u64)?;
    let constrained = schema.a_n.try_intersect(&through, budget)?;
    constrained.try_inclusion_counterexample(&retention.a_t, budget)
}

/// If some schema tree has a text node below a node labelled with one of
/// `labels` whose value `t` deletes, returns that text path as a witness.
/// `None` means `t` never deletes text under those labels, over `L(nta)`.
///
/// Convenience wrapper compiling both artifact sides eagerly; the engine's
/// `TextRetentionDecider` caches them instead.
pub fn deleted_text_under(t: &Transducer, nta: &Nta, labels: &[Symbol]) -> Option<Vec<PathSym>> {
    let unlimited = BudgetHandle::unlimited();
    let schema =
        crate::decide::try_compile_schema_artifacts(nta, &unlimited).expect("unlimited budget");
    let retention = compile_retention_artifacts(t);
    try_deleted_text_under_with(&schema, &retention, labels, &unlimited).expect("unlimited budget")
}

/// Whether `t` both is text-preserving over `L(nta)` and never deletes text
/// under the given labels — the paper's combined "more flexible test".
pub fn text_preserving_and_keeps(t: &Transducer, nta: &Nta, labels: &[Symbol]) -> bool {
    crate::decide::is_text_preserving(t, nta).is_preserving()
        && deleted_text_under(t, nta, labels).is_none()
}

/// NFA accepting path words that pass through one of `labels`.
fn through_labels(labels: &[Symbol], alphabet: &[PathSym]) -> Nfa<PathSym> {
    let mut nfa: Nfa<PathSym> = Nfa::new();
    let s0 = nfa.add_state();
    let s1 = nfa.add_state();
    nfa.set_initial(s0);
    nfa.set_final(s1, true);
    for a in alphabet {
        nfa.add_transition(s0, *a, s0);
        nfa.add_transition(s1, *a, s1);
    }
    for &l in labels {
        nfa.add_transition(s0, PathSym::Elem(l), s1);
    }
    nfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::path_automaton_nta;
    use crate::samples;
    use tpx_schema::samples::recipe_dtd;
    use tpx_trees::budget::{Budget, ExhaustReason};
    use tpx_trees::samples::recipe_alphabet;

    #[test]
    fn example_4_2_keeps_instructions_but_deletes_comments() {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        let t = samples::example_4_2(&al);
        // Never deletes under instructions (it only strips item markup).
        assert!(deleted_text_under(&t, &nta, &[al.sym("instructions")]).is_none());
        assert!(deleted_text_under(&t, &nta, &[al.sym("ingredients")]).is_none());
        // But deletes everything under comments.
        let w = deleted_text_under(&t, &nta, &[al.sym("comments")]).unwrap();
        assert_eq!(*w.last().unwrap(), PathSym::Text);
        assert!(w.contains(&PathSym::Elem(al.sym("comments"))));
        // Combined test.
        assert!(text_preserving_and_keeps(
            &t,
            &nta,
            &[al.sym("instructions")]
        ));
        assert!(!text_preserving_and_keeps(&t, &nta, &[al.sym("comments")]));
    }

    #[test]
    fn witness_is_a_real_schema_path() {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        let t = samples::example_4_2(&al);
        let w = deleted_text_under(&t, &nta, &[al.sym("comments")]).unwrap();
        assert!(path_automaton_nta(&nta).accepts(&w));
        assert!(!path_automaton_transducer(&t).accepts(&w));
    }

    #[test]
    fn staged_pipeline_matches_wrapper_and_respects_budget() {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        let t = samples::example_4_2(&al);
        let unlimited = BudgetHandle::unlimited();
        let schema = crate::decide::try_compile_schema_artifacts(&nta, &unlimited).unwrap();
        let retention = compile_retention_artifacts(&t);
        for label in ["instructions", "ingredients", "comments"] {
            let labels = [al.sym(label)];
            let staged =
                try_deleted_text_under_with(&schema, &retention, &labels, &unlimited).unwrap();
            let eager = deleted_text_under(&t, &nta, &labels);
            assert_eq!(staged.is_some(), eager.is_some(), "{label}");
        }
        // Fuel is actually charged, and a zero budget fails fast.
        let gen = Budget::default().with_fuel(1_000_000).start();
        try_deleted_text_under_with(&schema, &retention, &[al.sym("comments")], &gen).unwrap();
        assert!(gen.fuel_spent() > 0);
        let z = Budget::default().with_fuel(0).start();
        let err = try_deleted_text_under_with(&schema, &retention, &[al.sym("comments")], &z)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.reason, ExhaustReason::Fuel);
        let err = try_compile_retention_artifacts(&t, &z)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.reason, ExhaustReason::Fuel);
    }
}
