//! The conclusion's stronger tests: beyond text-preservation, require that
//! the transformation *never deletes* text values below nodes with selected
//! labels (the paper's example: never delete text under `instructions`).
//!
//! A text value at node `v` is output by `T` iff `T` has a path run on
//! `anc-str(v)` — i.e. iff `anc-str(v) ∈ L(A_T)`. So "`T` deletes some text
//! under a `σ`-node on some schema tree" reduces to non-emptiness of
//! `L(A_N) ∩ through-σ ∩ complement(L(A_T))`, entirely within the path
//! automata of Lemma 4.8.

use crate::paths::{path_automaton_nta, path_automaton_transducer, PathSym};
use crate::transducer::Transducer;
use tpx_automata::Nfa;
use tpx_treeauto::Nta;
use tpx_trees::Symbol;

/// If some schema tree has a text node below a node labelled with one of
/// `labels` whose value `t` deletes, returns that text path as a witness.
/// `None` means `t` never deletes text under those labels, over `L(nta)`.
pub fn deleted_text_under(t: &Transducer, nta: &Nta, labels: &[Symbol]) -> Option<Vec<PathSym>> {
    let a_n = path_automaton_nta(nta);
    let a_t = path_automaton_transducer(t);
    // Alphabet of path symbols for determinizing A_T.
    let mut alphabet: Vec<PathSym> = (0..nta.symbol_count() as u32)
        .map(|i| PathSym::Elem(Symbol(i)))
        .collect();
    alphabet.push(PathSym::Text);
    let not_a_t = a_t.determinize(&alphabet).complement().to_nfa();
    let through = through_labels(labels, &alphabet);
    a_n.intersect(&through).intersect(&not_a_t).shortest_word()
}

/// Whether `t` both is text-preserving over `L(nta)` and never deletes text
/// under the given labels — the paper's combined "more flexible test".
pub fn text_preserving_and_keeps(t: &Transducer, nta: &Nta, labels: &[Symbol]) -> bool {
    crate::decide::is_text_preserving(t, nta).is_preserving()
        && deleted_text_under(t, nta, labels).is_none()
}

/// NFA accepting path words that pass through one of `labels`.
fn through_labels(labels: &[Symbol], alphabet: &[PathSym]) -> Nfa<PathSym> {
    let mut nfa: Nfa<PathSym> = Nfa::new();
    let s0 = nfa.add_state();
    let s1 = nfa.add_state();
    nfa.set_initial(s0);
    nfa.set_final(s1, true);
    for a in alphabet {
        nfa.add_transition(s0, *a, s0);
        nfa.add_transition(s1, *a, s1);
    }
    for &l in labels {
        nfa.add_transition(s0, PathSym::Elem(l), s1);
    }
    nfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use tpx_schema::samples::recipe_dtd;
    use tpx_trees::samples::recipe_alphabet;

    #[test]
    fn example_4_2_keeps_instructions_but_deletes_comments() {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        let t = samples::example_4_2(&al);
        // Never deletes under instructions (it only strips item markup).
        assert!(deleted_text_under(&t, &nta, &[al.sym("instructions")]).is_none());
        assert!(deleted_text_under(&t, &nta, &[al.sym("ingredients")]).is_none());
        // But deletes everything under comments.
        let w = deleted_text_under(&t, &nta, &[al.sym("comments")]).unwrap();
        assert_eq!(*w.last().unwrap(), PathSym::Text);
        assert!(w.contains(&PathSym::Elem(al.sym("comments"))));
        // Combined test.
        assert!(text_preserving_and_keeps(
            &t,
            &nta,
            &[al.sym("instructions")]
        ));
        assert!(!text_preserving_and_keeps(&t, &nta, &[al.sym("comments")]));
    }

    #[test]
    fn witness_is_a_real_schema_path() {
        let al = recipe_alphabet();
        let nta = recipe_dtd(&al).to_nta();
        let t = samples::example_4_2(&al);
        let w = deleted_text_under(&t, &nta, &[al.sym("comments")]).unwrap();
        assert!(path_automaton_nta(&nta).accepts(&w));
        assert!(!path_automaton_transducer(&t).accepts(&w));
    }
}
