//! Randomized validation of the NBTA Boolean operations on seeded random
//! automata and random ranked trees — the operations every decider in the
//! workspace leans on.
//!
//! Formerly proptest-based; rewritten over the in-repo deterministic PRNG
//! so the suite runs in the offline build environment (`proptest` is not a
//! resolvable dependency there). Coverage is equivalent: each property is
//! exercised on a few hundred independently seeded (automaton, tree)
//! pairs, and failures print the offending seed for replay.

use tpx_treeauto::{Nbta, RankedTree, State};
use tpx_trees::rng::SplitMix64;

type T = RankedTree<char>;

fn leaf() -> T {
    RankedTree::Leaf('#')
}

/// Random binary tree over internal symbols {a, b}, depth ≤ 4.
fn random_tree(rng: &mut SplitMix64, depth: usize) -> T {
    if depth == 0 || rng.chance(0.3) {
        return leaf();
    }
    let l = if rng.chance(0.5) { 'a' } else { 'b' };
    RankedTree::node(l, random_tree(rng, depth - 1), random_tree(rng, depth - 1))
}

/// Random NBTA over leaf {#} and internal {a, b} with ≤ 4 states.
fn random_nbta(rng: &mut SplitMix64) -> Nbta<char> {
    let n = rng.range_inclusive(1, 4);
    let mut b = Nbta::new(vec!['#'], vec!['a', 'b']);
    for _ in 0..n {
        b.add_state();
    }
    for i in 0..n {
        if rng.chance(0.5) {
            b.add_leaf_rule('#', State(i as u32));
        }
    }
    for _ in 0..rng.below(14) {
        let l = if rng.chance(0.5) { 'a' } else { 'b' };
        b.add_rule(
            l,
            State(rng.below(n) as u32),
            State(rng.below(n) as u32),
            State(rng.below(n) as u32),
        );
    }
    for i in 0..n {
        b.set_final(State(i as u32), rng.chance(0.5));
    }
    b
}

fn pairs(cases: usize) -> impl Iterator<Item = (u64, Nbta<char>, T)> {
    (0..cases as u64).map(|seed| {
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let m = random_nbta(&mut rng);
        let t = random_tree(&mut rng, 4);
        (seed, m, t)
    })
}

/// Determinization preserves the language; the complement flips it.
#[test]
fn determinize_and_complement() {
    for (seed, m, t) in pairs(200) {
        let d = m.determinize();
        assert_eq!(d.accepts(&t), m.accepts(&t), "seed {seed}");
        assert_eq!(d.complement().accepts(&t), !m.accepts(&t), "seed {seed}");
        // Round trip through NBTA.
        assert_eq!(d.to_nbta().accepts(&t), m.accepts(&t), "seed {seed}");
    }
}

/// Minimization preserves the language and never grows.
#[test]
fn minimize_preserves() {
    for (seed, m, t) in pairs(200) {
        let d = m.determinize();
        let mini = d.minimize();
        assert!(mini.state_count() <= d.state_count(), "seed {seed}");
        assert_eq!(mini.accepts(&t), d.accepts(&t), "seed {seed}");
    }
}

/// Products and unions have Boolean semantics; trim is invisible.
#[test]
fn boolean_ops() {
    for (seed, m1, t) in pairs(200) {
        let mut rng = SplitMix64::new(seed.wrapping_add(0xB0B0));
        let m2 = random_nbta(&mut rng);
        let i = m1.intersect(&m2);
        assert_eq!(
            i.accepts(&t),
            m1.accepts(&t) && m2.accepts(&t),
            "seed {seed}"
        );
        let u = m1.union(&m2);
        assert_eq!(
            u.accepts(&t),
            m1.accepts(&t) || m2.accepts(&t),
            "seed {seed}"
        );
        assert_eq!(m1.trim().accepts(&t), m1.accepts(&t), "seed {seed}");
    }
}

/// Emptiness agrees with witness extraction, and witnesses are members.
#[test]
fn emptiness_and_witness() {
    for (seed, m, _) in pairs(300) {
        match m.witness() {
            Some(w) => {
                assert!(!m.is_empty(), "seed {seed}");
                assert!(m.accepts(&w), "seed {seed}");
            }
            None => assert!(m.is_empty(), "seed {seed}"),
        }
    }
}

/// De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B on random inputs.
#[test]
fn de_morgan() {
    for (seed, m1, t) in pairs(150) {
        let mut rng = SplitMix64::new(seed.wrapping_add(0xDEAD));
        let m2 = random_nbta(&mut rng);
        let lhs = m1.union(&m2).determinize().complement();
        let rhs = m1
            .determinize()
            .complement()
            .to_nbta()
            .intersect(&m2.determinize().complement().to_nbta());
        assert_eq!(lhs.accepts(&t), rhs.accepts(&t), "seed {seed}");
    }
}
