//! Property-based validation of the NBTA Boolean operations on random
//! automata and random ranked trees — the operations every decider in the
//! workspace leans on.

use proptest::prelude::*;
use tpx_treeauto::{Nbta, RankedTree, State};

type T = RankedTree<char>;

fn leaf() -> T {
    RankedTree::Leaf('#')
}

/// Random binary tree over internal symbols {a, b}.
fn arb_tree() -> impl Strategy<Value = T> {
    let leaf = Just(leaf());
    leaf.prop_recursive(4, 32, 2, |inner| {
        (prop_oneof![Just('a'), Just('b')], inner.clone(), inner)
            .prop_map(|(l, x, y)| RankedTree::node(l, x, y))
    })
}

/// Random NBTA over leaf {#} and internal {a, b} with ≤ 4 states.
fn arb_nbta() -> impl Strategy<Value = Nbta<char>> {
    (
        1usize..5,
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()), 0..14),
        proptest::collection::vec(any::<bool>(), 4),
        proptest::collection::vec(any::<bool>(), 4),
    )
        .prop_map(|(n, rules, leaves, finals)| {
            let mut b = Nbta::new(vec!['#'], vec!['a', 'b']);
            for _ in 0..n {
                b.add_state();
            }
            for (i, &put) in leaves.iter().take(n).enumerate() {
                if put {
                    b.add_leaf_rule('#', State(i as u32));
                }
            }
            for (q1, q2, q, which) in rules {
                let l = if which { 'a' } else { 'b' };
                b.add_rule(
                    l,
                    State((q1 % n as u8) as u32),
                    State((q2 % n as u8) as u32),
                    State((q % n as u8) as u32),
                );
            }
            for (i, &f) in finals.iter().take(n).enumerate() {
                b.set_final(State(i as u32), f);
            }
            b
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Determinization preserves the language; the complement flips it.
    #[test]
    fn determinize_and_complement(m in arb_nbta(), t in arb_tree()) {
        let d = m.determinize();
        prop_assert_eq!(d.accepts(&t), m.accepts(&t));
        prop_assert_eq!(d.complement().accepts(&t), !m.accepts(&t));
        // Round trip through NBTA.
        prop_assert_eq!(d.to_nbta().accepts(&t), m.accepts(&t));
    }

    /// Minimization preserves the language and never grows.
    #[test]
    fn minimize_preserves(m in arb_nbta(), t in arb_tree()) {
        let d = m.determinize();
        let mini = d.minimize();
        prop_assert!(mini.state_count() <= d.state_count());
        prop_assert_eq!(mini.accepts(&t), d.accepts(&t));
    }

    /// Products and unions have Boolean semantics; trim is invisible.
    #[test]
    fn boolean_ops(m1 in arb_nbta(), m2 in arb_nbta(), t in arb_tree()) {
        let i = m1.intersect(&m2);
        prop_assert_eq!(i.accepts(&t), m1.accepts(&t) && m2.accepts(&t));
        let u = m1.union(&m2);
        prop_assert_eq!(u.accepts(&t), m1.accepts(&t) || m2.accepts(&t));
        prop_assert_eq!(m1.trim().accepts(&t), m1.accepts(&t));
    }

    /// Emptiness agrees with witness extraction, and witnesses are members.
    #[test]
    fn emptiness_and_witness(m in arb_nbta()) {
        match m.witness() {
            Some(w) => {
                prop_assert!(!m.is_empty());
                prop_assert!(m.accepts(&w));
            }
            None => prop_assert!(m.is_empty()),
        }
    }

    /// De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B on random inputs.
    #[test]
    fn de_morgan(m1 in arb_nbta(), m2 in arb_nbta(), t in arb_tree()) {
        let lhs = m1.union(&m2).determinize().complement();
        let rhs = m1
            .determinize()
            .complement()
            .to_nbta()
            .intersect(&m2.determinize().complement().to_nbta());
        prop_assert_eq!(lhs.accepts(&t), rhs.accepts(&t));
    }
}
