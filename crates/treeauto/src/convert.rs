//! Translations between unranked NTAs and binary NBTAs over the
//! first-child/next-sibling encoding, and the derived Boolean operations on
//! unranked regular tree languages.
//!
//! The key semantic device: an NBTA state is a pair `(A, p)` of a content
//! model `A` of the NTA and one of its NFA states, meaning *"the hedge
//! encoded at this position can drive `A` from `p` to acceptance"*. Under
//! this reading the encoding `σ(ℓ, r)` of a node `v` followed by its right
//! siblings satisfies `(A, p)` iff `v` evaluates to some tree state `q`
//! (i.e. `ℓ` satisfies `(A_{q,σ}, init)`) and `r` satisfies `(A, p')` for
//! some `p' ∈ δ_A(p, q)` — which is exactly a binary bottom-up rule.
//!
//! Both translations are polynomial; together with NBTA determinization
//! they yield complementation of unranked regular languages — the engine
//! behind the "maximal sub-schema" results in the paper's conclusion.

use crate::nbta::Nbta;
use crate::nta::{Nta, State};
use crate::ranked::RankedTree;
use std::collections::HashMap;

use tpx_automata::Nfa;
use tpx_trees::budget::{BudgetExceeded, BudgetHandle};
use tpx_trees::{BinLabel, Symbol, Tree};

/// Symbols of encoded trees, with text values erased: element labels,
/// a single `text` placeholder, and the `⊥` padding leaf.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EncSym {
    /// An element label.
    Elem(Symbol),
    /// The `text` placeholder for text nodes.
    Text,
    /// The `⊥` padding leaf.
    Nil,
}

/// The internal alphabet `Σ ⊎ {text}` for encodings over `n_symbols` labels.
pub fn enc_internal_alphabet(n_symbols: usize) -> Vec<EncSym> {
    let mut v: Vec<EncSym> = (0..n_symbols as u32)
        .map(|i| EncSym::Elem(Symbol(i)))
        .collect();
    v.push(EncSym::Text);
    v
}

/// Converts a text tree into the ranked tree its automata run on.
pub fn encode_for_automata(t: &Tree) -> RankedTree<EncSym> {
    let bt = tpx_trees::encode_tree(t);
    crate::ranked::from_bintree(&bt, &mut |l| match l {
        BinLabel::Elem(s) => EncSym::Elem(*s),
        BinLabel::Text(_) => EncSym::Text,
        BinLabel::Nil => EncSym::Nil,
    })
}

/// Decodes a witness [`RankedTree<EncSym>`] back into a text tree, inventing
/// fresh text values `τ0, τ1, …` for text nodes. Returns `None` if the
/// ranked tree is not a valid encoding of a single tree.
pub fn decode_witness(rt: &RankedTree<EncSym>) -> Option<Tree> {
    let mut b = tpx_trees::HedgeBuilder::new();
    let mut counter = 0usize;
    decode_seq(rt, &mut b, &mut counter)?;
    Tree::from_hedge(b.finish())
}

fn decode_seq(
    rt: &RankedTree<EncSym>,
    b: &mut tpx_trees::HedgeBuilder,
    counter: &mut usize,
) -> Option<()> {
    match rt {
        RankedTree::Leaf(EncSym::Nil) => Some(()),
        RankedTree::Leaf(_) => None,
        RankedTree::Node(EncSym::Nil, _, _) => None,
        RankedTree::Node(EncSym::Text, l, r) => {
            if !matches!(**l, RankedTree::Leaf(EncSym::Nil)) {
                return None;
            }
            b.text(&format!("τ{}", *counter));
            *counter += 1;
            decode_seq(r, b, counter)
        }
        RankedTree::Node(EncSym::Elem(s), l, r) => {
            b.open(*s);
            decode_seq(l, b, counter)?;
            b.close();
            decode_seq(r, b, counter)
        }
    }
}

/// Identifier of a content model inside [`nta_to_nbta`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum AutId {
    /// `δ(q, σ)` for element symbol `σ`.
    Content(State, Symbol),
    /// The ε-automaton attached to a text-accepting state `q`.
    Text(State),
    /// The virtual root automaton accepting exactly one root-state symbol.
    Root,
}

/// Translates an NTA into an NBTA over encodings:
/// `L(result) = { enc(t) : t ∈ L(nta) }` restricted to valid encodings.
pub fn nta_to_nbta(nta: &Nta) -> Nbta<EncSym> {
    let n_symbols = nta.symbol_count();
    // Enumerate content automata and assign dense offsets.
    struct AutInfo<'a> {
        nfa: Option<&'a Nfa<State>>, // None = ε-automaton (1 state, final)
        offset: u32,
    }
    let mut auts: Vec<(AutId, AutInfo)> = Vec::new();
    let mut index: HashMap<AutId, usize> = HashMap::new();
    let mut offset = 0u32;
    for q in nta.states() {
        for sym in 0..n_symbols {
            let s = Symbol(sym as u32);
            if let Some(nfa) = nta.content(q, s) {
                index.insert(AutId::Content(q, s), auts.len());
                auts.push((
                    AutId::Content(q, s),
                    AutInfo {
                        nfa: Some(nfa),
                        offset,
                    },
                ));
                offset += nfa.state_count() as u32;
            }
        }
        if nta.text_ok(q) {
            index.insert(AutId::Text(q), auts.len());
            auts.push((AutId::Text(q), AutInfo { nfa: None, offset }));
            offset += 1;
        }
    }
    // Root automaton: states {0 = start, 1 = done}, transition on every root
    // state, 1 final.
    index.insert(AutId::Root, auts.len());
    auts.push((
        AutId::Root,
        AutInfo {
            nfa: None, // handled specially
            offset,
        },
    ));
    let root_offset = offset;
    offset += 2;

    let total_states = offset as usize;
    let mut out = Nbta::new(vec![EncSym::Nil], enc_internal_alphabet(n_symbols));
    for _ in 0..total_states {
        out.add_state();
    }

    // The "initial-state certificates" for each tree state and label: the
    // NBTA state the left child must carry for the node to evaluate to `q`.
    // (aut, local p) → global.
    let global = |info: &AutInfo, p: u32| State(info.offset + p);

    // Leaf rules: Nil derives (A, p) for every final p of every automaton.
    for (id, info) in &auts {
        match id {
            AutId::Content(_, _) => {
                let nfa = info.nfa.unwrap();
                for p in nfa.states() {
                    if nfa.is_final(p) {
                        out.add_leaf_rule(EncSym::Nil, global(info, p.0));
                    }
                }
            }
            AutId::Text(_) => {
                // ε-automaton: single state, final.
                out.add_leaf_rule(EncSym::Nil, global(info, 0));
            }
            AutId::Root => {
                // State 1 ("done") is final.
                out.add_leaf_rule(EncSym::Nil, global(info, 1));
            }
        }
    }

    // Internal rules. For each automaton A with a transition p --q--> p' and
    // each way a node can evaluate to tree state q:
    //  * label σ with content model A_{q,σ}: rule
    //      σ((A_{q,σ}, init), (A, p')) → (A, p)
    //  * text (if text_ok(q)): rule
    //      text((ε_q, 0), (A, p')) → (A, p)
    // Collect transitions (A-global p, q, A-global p') first.
    let mut transitions: Vec<(State, State, State)> = Vec::new();
    for (id, info) in &auts {
        match id {
            AutId::Content(_, _) => {
                let nfa = info.nfa.unwrap();
                for (p, q, p2) in nfa.transitions() {
                    transitions.push((global(info, p.0), *q, global(info, p2.0)));
                }
            }
            AutId::Text(_) => {}
            AutId::Root => {
                for &r in nta.roots() {
                    transitions.push((global(info, 0), r, global(info, 1)));
                }
            }
        }
    }
    // Certificates: for tree state q, the list of (label, left-child NBTA
    // state) pairs allowing a node to evaluate to q.
    let mut certificates: Vec<Vec<(EncSym, State)>> = vec![Vec::new(); nta.state_count()];
    for (id, info) in &auts {
        match id {
            AutId::Content(q, s) => {
                let nfa = info.nfa.unwrap();
                for &p in nfa.initial_states() {
                    certificates[q.index()].push((EncSym::Elem(*s), global(info, p.0)));
                }
            }
            AutId::Text(q) => {
                certificates[q.index()].push((EncSym::Text, global(info, 0)));
            }
            AutId::Root => {}
        }
    }
    for (gp, q, gp2) in transitions {
        for &(label, cert) in &certificates[q.index()] {
            out.add_rule(label, cert, gp2, gp);
        }
    }

    // Finals: (Root, 0) — the whole hedge `(t)` drives the root automaton
    // from start to done.
    out.set_final(State(root_offset), true);
    out
}

/// Translates an NBTA over encodings back into an NTA:
/// `L(result) = { t : enc(t) ∈ L(nbta) }`.
///
/// NTA states are triples `(λ, a, b)`: the node's label `λ`, the NBTA state
/// `a` derived at its encoding position, and the NBTA state `b` derived at
/// the encoding of its children hedge. Only triples justified by some NBTA
/// rule `λ(b, y) → a` are materialized.
pub fn nbta_to_nta(nbta: &Nbta<EncSym>, n_symbols: usize) -> Nta {
    let nil_states: Vec<State> = nbta.leaf_states(&EncSym::Nil).to_vec();
    let is_nil: Vec<bool> = {
        let mut v = vec![false; nbta.state_count()];
        for &q in &nil_states {
            v[q.index()] = true;
        }
        v
    };

    // Collect all rules with internal symbols as (λ, b, y, a).
    let mut rules: Vec<(EncSym, State, State, State)> = Vec::new();
    for l in nbta.internal_alphabet().to_vec() {
        for b in nbta.states() {
            for y in nbta.states() {
                for &a in nbta.rule_states(&l, b, y) {
                    rules.push((l, b, y, a));
                }
            }
        }
    }

    // Materialize NTA states (λ, a, b) from rules.
    let mut state_ids: HashMap<(EncSym, State, State), State> = HashMap::new();
    let mut triples: Vec<(EncSym, State, State)> = Vec::new();
    for &(l, b, _y, a) in &rules {
        state_ids.entry((l, a, b)).or_insert_with(|| {
            triples.push((l, a, b));
            State((triples.len() - 1) as u32)
        });
    }

    let mut out = Nta::new(n_symbols);
    for _ in 0..triples.len() {
        out.add_state();
    }

    // Shared chain-NFA prototype: NFA states = NBTA states; transition
    // a' --(λ', a', b')--> y for each rule λ'(b', y) → a'; finals = Nil
    // states. The content model of (σ, a, b) is this NFA started at b.
    let mut proto: Nfa<State> = Nfa::new();
    proto.add_states(nbta.state_count());
    for &(l, b, y, a) in &rules {
        let sym = state_ids[&(l, a, b)];
        proto.add_transition(tpx_automata::StateId(a.0), sym, tpx_automata::StateId(y.0));
    }
    for &q in &nil_states {
        proto.set_final(tpx_automata::StateId(q.0), true);
    }

    for (i, &(l, _a, b)) in triples.iter().enumerate() {
        let q = State(i as u32);
        match l {
            EncSym::Elem(s) => {
                let mut nfa = proto.clone();
                nfa.set_initial(tpx_automata::StateId(b.0));
                out.set_content(q, s, nfa.trim());
            }
            EncSym::Text => {
                out.set_text_ok(q, is_nil[b.index()]);
            }
            EncSym::Nil => unreachable!("Nil never appears in internal rules"),
        }
    }

    // Roots: (λ, a, b) with a final and a rule λ(b, r) → a for Nil-derivable r.
    for &(l, b, y, a) in &rules {
        if nbta.is_final(a) && is_nil[y.index()] {
            out.add_root(state_ids[&(l, a, b)]);
        }
    }
    out.trim()
}

/// The complement of `L(nta)` within all text trees over the same alphabet:
/// encode → determinize → flip → decode.
///
/// This is the one derived operation that genuinely needs the determinized
/// complement *as an automaton* (the result is returned to the caller), so
/// it keeps the eager subset construction; the decision procedures below
/// avoid it entirely via the lazy layer in [`crate::inclusion`].
pub fn complement_nta(nta: &Nta) -> Nta {
    try_complement_nta(nta, &BudgetHandle::unlimited()).expect("unlimited budget")
}

/// Budgeted [`complement_nta`], charging the shared [`BudgetHandle`]
/// through every encode/determinize/trim stage.
pub fn try_complement_nta(nta: &Nta, budget: &BudgetHandle) -> Result<Nta, BudgetExceeded> {
    let nbta = nta_to_nbta(nta).try_trim(budget)?;
    let comp = nbta
        .try_determinize(budget)?
        .complement()
        .to_nbta()
        .try_trim(budget)?;
    Ok(nbta_to_nta(&comp, nta.symbol_count()))
}

/// Whether `L(n1) ⊆ L(n2)` (both over the same alphabet size) — decided
/// lazily by [`Nbta::included_in`], never determinizing `n2`.
pub fn subset_nta(n1: &Nta, n2: &Nta) -> bool {
    try_subset_nta(n1, n2, &BudgetHandle::unlimited()).expect("unlimited budget")
}

/// Budgeted [`subset_nta`].
pub fn try_subset_nta(n1: &Nta, n2: &Nta, budget: &BudgetHandle) -> Result<bool, BudgetExceeded> {
    let a1 = nta_to_nbta(n1).try_trim(budget)?;
    let a2 = nta_to_nbta(n2).try_trim(budget)?;
    a1.try_included_in(&a2, budget)
}

/// Whether `L(n1) = L(n2)`.
pub fn language_equal(n1: &Nta, n2: &Nta) -> bool {
    try_language_equal(n1, n2, &BudgetHandle::unlimited()).expect("unlimited budget")
}

/// Budgeted [`language_equal`]: encodes and trims each automaton exactly
/// once and runs both antichain inclusion passes over the shared NBTAs
/// (the old route re-encoded and re-trimmed both sides per direction).
pub fn try_language_equal(
    n1: &Nta,
    n2: &Nta,
    budget: &BudgetHandle,
) -> Result<bool, BudgetExceeded> {
    let a1 = nta_to_nbta(n1).try_trim(budget)?;
    let a2 = nta_to_nbta(n2).try_trim(budget)?;
    Ok(a1.try_included_in(&a2, budget)? && a2.try_included_in(&a1, budget)?)
}

/// The difference `L(n1) ∖ L(n2)`.
pub fn difference_nta(n1: &Nta, n2: &Nta) -> Nta {
    try_difference_nta(n1, n2, &BudgetHandle::unlimited()).expect("unlimited budget")
}

/// Budgeted [`difference_nta`]. Like [`complement_nta`] this returns an
/// automaton, so the complement stays eager — but every stage charges the
/// budget.
pub fn try_difference_nta(
    n1: &Nta,
    n2: &Nta,
    budget: &BudgetHandle,
) -> Result<Nta, BudgetExceeded> {
    let not2 = try_complement_nta(n2, budget)?;
    n1.try_intersect(&not2, budget)?.try_trim(budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nta::NtaBuilder;
    use tpx_trees::term::parse_tree;
    use tpx_trees::Alphabet;

    fn alpha() -> Alphabet {
        Alphabet::from_labels(["a", "b"])
    }

    /// Root `a`, children `(b | text)*`, each `b` has exactly one text child.
    fn simple_nta(al: &Alphabet) -> Nta {
        let mut b = NtaBuilder::new(al);
        b.root("qa");
        b.rule("qa", "a", "(qb | qt)*");
        b.rule("qb", "b", "qt");
        b.text_rule("qt");
        b.finish()
    }

    const SAMPLES: [&str; 10] = [
        r#"a"#,
        r#"a("x")"#,
        r#"a(b("x"))"#,
        r#"a(b("x") "y" b("z"))"#,
        r#"a(b)"#,
        r#"a(b("x" "y"))"#,
        r#"b("x")"#,
        r#"a(a)"#,
        r#"b"#,
        r#"a(b(b("x")))"#,
    ];

    #[test]
    fn nta_to_nbta_agrees_on_samples() {
        let mut al = alpha();
        let nta = simple_nta(&al);
        let nbta = nta_to_nbta(&nta);
        for src in SAMPLES {
            let t = parse_tree(src, &mut al).unwrap();
            let enc = encode_for_automata(&t);
            assert_eq!(nbta.accepts(&enc), nta.accepts(&t), "{src}");
        }
    }

    #[test]
    fn round_trip_preserves_language() {
        let mut al = alpha();
        let nta = simple_nta(&al);
        let back = nbta_to_nta(&nta_to_nbta(&nta).trim(), al.len());
        for src in SAMPLES {
            let t = parse_tree(src, &mut al).unwrap();
            assert_eq!(back.accepts(&t), nta.accepts(&t), "{src}");
        }
    }

    #[test]
    fn complement_flips_membership() {
        let mut al = alpha();
        let nta = simple_nta(&al);
        let comp = complement_nta(&nta);
        for src in SAMPLES {
            let t = parse_tree(src, &mut al).unwrap();
            assert_eq!(comp.accepts(&t), !nta.accepts(&t), "{src}");
        }
    }

    #[test]
    fn complement_witness_is_a_counterexample() {
        let al = alpha();
        let nta = simple_nta(&al);
        let comp = complement_nta(&nta);
        let w = comp.witness().expect("complement is non-empty");
        assert!(!nta.accepts(&w));
    }

    #[test]
    fn difference_semantics() {
        let mut al = alpha();
        // L1: root a with text* children. L2: root a with exactly one child.
        let mut b1 = NtaBuilder::new(&al);
        b1.root("q0");
        b1.rule("q0", "a", "qt*");
        b1.text_rule("qt");
        let n1 = b1.finish();
        let mut b2 = NtaBuilder::new(&al);
        b2.root("p0");
        b2.rule("p0", "a", "pc");
        b2.rule("pc", "a", "pc*");
        b2.rule("pc", "b", "pc*");
        b2.text_rule("pc");
        let n2 = b2.finish();
        let d = difference_nta(&n1, &n2);
        // In L1\L2: a with 0 or ≥2 text children.
        assert!(d.accepts(&parse_tree(r#"a"#, &mut al).unwrap()));
        assert!(d.accepts(&parse_tree(r#"a("x" "y")"#, &mut al).unwrap()));
        assert!(!d.accepts(&parse_tree(r#"a("x")"#, &mut al).unwrap()));
        assert!(!d.accepts(&parse_tree(r#"a(b)"#, &mut al).unwrap()));
    }

    #[test]
    fn subset_and_equality() {
        let al = alpha();
        let full = simple_nta(&al);
        // Restriction: same schema but b-children forbidden.
        let mut b2 = NtaBuilder::new(&al);
        b2.root("qa");
        b2.rule("qa", "a", "qt*");
        b2.text_rule("qt");
        let restricted = b2.finish();
        assert!(subset_nta(&restricted, &full));
        assert!(!subset_nta(&full, &restricted));
        assert!(!language_equal(&full, &restricted));
        assert!(language_equal(&full, &full));
        // Round-tripping through the encoding preserves the language.
        let back = nbta_to_nta(&nta_to_nbta(&full).trim(), al.len());
        assert!(language_equal(&full, &back));
        // Double complement is the identity.
        let cc = complement_nta(&complement_nta(&full));
        assert!(language_equal(&full, &cc));
    }

    #[test]
    fn decode_witness_round_trip() {
        let mut al = alpha();
        let t = parse_tree(r#"a(b("x") "y")"#, &mut al).unwrap();
        let enc = encode_for_automata(&t);
        let back = decode_witness(&enc).unwrap();
        // Structure preserved; text values are regenerated placeholders.
        assert_eq!(back.node_count(), t.node_count());
        assert_eq!(back.text_content().len(), t.text_content().len());
    }

    #[test]
    fn empty_nta_complement_is_everything() {
        let al = alpha();
        let mut b = NtaBuilder::new(&al);
        b.root("q0");
        b.rule("q0", "a", "qdead");
        b.rule("qdead", "a", "qdead");
        let empty = b.finish();
        assert!(empty.is_empty());
        let comp = complement_nta(&empty);
        let mut al2 = alpha();
        for src in ["a", "b", r#"a(b "x")"#] {
            assert!(comp.accepts(&parse_tree(src, &mut al2).unwrap()), "{src}");
        }
    }

    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_term(depth: u32) -> impl Strategy<Value = String> {
            let leaf = prop_oneof![
                Just("a".to_owned()),
                Just("b".to_owned()),
                Just("\"t\"".to_owned()),
            ];
            leaf.prop_recursive(depth, 16, 3, |inner| {
                (
                    prop_oneof![Just("a"), Just("b")],
                    proptest::collection::vec(inner, 0..3),
                )
                    .prop_map(|(l, kids)| format!("{l}({})", kids.join(" ")))
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn encoding_route_agrees_with_direct_membership(src in arb_term(3)) {
                let mut al = alpha();
                let nta = simple_nta(&al);
                let nbta = nta_to_nbta(&nta);
                let comp = complement_nta(&nta);
                let t = parse_tree(&src, &mut al).unwrap();
                let direct = nta.accepts(&t);
                prop_assert_eq!(nbta.accepts(&encode_for_automata(&t)), direct);
                prop_assert_eq!(comp.accepts(&t), !direct);
            }
        }
    }
}
