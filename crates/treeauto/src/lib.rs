//! # `tpx-treeauto`: tree automata over unranked text trees
//!
//! Implements the automata backbone of the paper:
//!
//! * [`nta`] — nondeterministic unranked tree automata (NTAs) exactly as in
//!   Section 2: `δ : Q × (Σ ⊎ {text}) → REG(Q)` with content models given
//!   as NFAs; runs, PTIME membership, emptiness with witness extraction,
//!   intersection, union and trimming.
//! * [`nbta`] — nondeterministic bottom-up *binary* tree automata over
//!   ranked alphabets (arities 0 and 2), with determinization, completion,
//!   complement, product, union, relabelling and emptiness. These run on the
//!   first-child/next-sibling encodings from `tpx_trees::encode` and power
//!   both the MSO compiler and complementation of unranked languages.
//! * [`convert`] — the polynomial translations NTA → NBTA and NBTA → NTA
//!   over encodings, plus the derived Boolean operations on unranked
//!   regular tree languages (complement, difference) used for the maximal
//!   sub-schema constructions (paper conclusion).
//! * [`inclusion`] — the lazy decision layer: antichain-pruned inclusion
//!   `Nbta::included_in` and early-exit product witness
//!   `Nbta::intersect_witness` that never materialize the determinized
//!   complement (DESIGN.md §13).
//! * [`ranked`] — a small ranked-tree value type for NBTA witnesses.

pub mod convert;
pub mod inclusion;
pub mod nbta;
pub mod nta;
pub mod ranked;

pub use convert::{
    complement_nta, difference_nta, language_equal, nbta_to_nta, nta_to_nbta, subset_nta,
    try_complement_nta, try_difference_nta, try_language_equal, try_subset_nta, EncSym,
};
pub use nbta::{Dbta, Nbta};
pub use nta::{Nta, NtaBuilder, Run, State};
pub use ranked::RankedTree;
