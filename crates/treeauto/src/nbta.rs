//! Nondeterministic and deterministic bottom-up binary tree automata.
//!
//! These run on ranked trees with arities 0 and 2 — in this workspace,
//! always the first-child/next-sibling encodings of unranked hedges. The
//! alphabet is split into *leaf symbols* (arity 0, typically only the `⊥`
//! padding symbol) and *internal symbols* (arity 2); determinization and
//! complement are relative to those explicit alphabets, so Boolean closure
//! is available for the counter-example-language constructions of
//! Sections 4.3 and 5.3.

use crate::nta::State;
use crate::ranked::RankedTree;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;
use tpx_trees::budget::{BudgetExceeded, BudgetHandle};

/// Internal rules grouped by symbol: `(q₁, q₂, result states)` per `σ`.
type RulesBySymbol<'a, L> = HashMap<&'a L, Vec<(State, State, &'a Vec<State>)>>;

/// A nondeterministic bottom-up binary tree automaton over symbols `L`.
#[derive(Clone, Debug)]
pub struct Nbta<L> {
    leaf_alphabet: Vec<L>,
    internal_alphabet: Vec<L>,
    pub(crate) n_states: usize,
    finals: Vec<bool>,
    /// `leaf L → q`.
    pub(crate) leaf_rules: HashMap<L, Vec<State>>,
    /// `σ(q₁, q₂) → q`.
    pub(crate) rules: HashMap<(L, State, State), Vec<State>>,
}

impl<L: Clone + Eq + Hash> Nbta<L> {
    /// An automaton with the given alphabets and no states.
    pub fn new(leaf_alphabet: Vec<L>, internal_alphabet: Vec<L>) -> Self {
        Nbta {
            leaf_alphabet,
            internal_alphabet,
            n_states: 0,
            finals: Vec::new(),
            leaf_rules: HashMap::new(),
            rules: HashMap::new(),
        }
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> State {
        let q = State(self.n_states as u32);
        self.n_states += 1;
        self.finals.push(false);
        q
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.n_states
    }

    /// Number of rules (leaf + internal).
    pub fn rule_count(&self) -> usize {
        self.leaf_rules.values().map(Vec::len).sum::<usize>()
            + self.rules.values().map(Vec::len).sum::<usize>()
    }

    /// The leaf alphabet.
    pub fn leaf_alphabet(&self) -> &[L] {
        &self.leaf_alphabet
    }

    /// The internal alphabet.
    pub fn internal_alphabet(&self) -> &[L] {
        &self.internal_alphabet
    }

    /// Marks `q` final.
    pub fn set_final(&mut self, q: State, f: bool) {
        self.finals[q.index()] = f;
    }

    /// Whether `q` is final.
    pub fn is_final(&self, q: State) -> bool {
        self.finals[q.index()]
    }

    /// All states.
    pub fn states(&self) -> impl Iterator<Item = State> {
        (0..self.n_states as u32).map(State)
    }

    /// Adds the leaf rule `l → q`.
    pub fn add_leaf_rule(&mut self, l: L, q: State) {
        let row = self.leaf_rules.entry(l).or_default();
        if !row.contains(&q) {
            row.push(q);
        }
    }

    /// Adds the rule `σ(q₁, q₂) → q`.
    pub fn add_rule(&mut self, sigma: L, q1: State, q2: State, q: State) {
        let row = self.rules.entry((sigma, q1, q2)).or_default();
        if !row.contains(&q) {
            row.push(q);
        }
    }

    /// The states derivable at an `l`-leaf.
    pub fn leaf_states(&self, l: &L) -> &[State] {
        self.leaf_rules.get(l).map_or(&[], Vec::as_slice)
    }

    /// The states derivable by `σ(q₁, q₂)`.
    pub fn rule_states(&self, sigma: &L, q1: State, q2: State) -> &[State] {
        self.rules
            .get(&(sigma.clone(), q1, q2))
            .map_or(&[], Vec::as_slice)
    }

    /// Bottom-up evaluation: the set of states derivable at the root of `t`.
    pub fn eval(&self, t: &RankedTree<L>) -> Vec<State> {
        match t {
            RankedTree::Leaf(l) => self.leaf_states(l).to_vec(),
            RankedTree::Node(l, a, b) => {
                let sa = self.eval(a);
                let sb = self.eval(b);
                let mut out = Vec::new();
                let mut seen = vec![false; self.n_states];
                for &q1 in &sa {
                    for &q2 in &sb {
                        for &q in self.rule_states(l, q1, q2) {
                            if !seen[q.index()] {
                                seen[q.index()] = true;
                                out.push(q);
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// Whether the automaton accepts `t`.
    pub fn accepts(&self, t: &RankedTree<L>) -> bool {
        self.eval(t).iter().any(|&q| self.is_final(q))
    }

    /// States derivable by *some* tree.
    pub fn derivable_states(&self) -> Vec<bool> {
        self.try_derivable_states(&BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::derivable_states`]: charges one fuel unit per rule
    /// scanned per saturation round.
    pub fn try_derivable_states(&self, budget: &BudgetHandle) -> Result<Vec<bool>, BudgetExceeded> {
        let mut derivable = vec![false; self.n_states];
        let mut queue: VecDeque<State> = VecDeque::new();
        for states in self.leaf_rules.values() {
            for &q in states {
                if !derivable[q.index()] {
                    derivable[q.index()] = true;
                    queue.push_back(q);
                }
            }
        }
        // Saturate: a rule fires when both operands are derivable.
        loop {
            budget.charge(self.rules.len() as u64)?;
            let mut changed = false;
            for ((_, q1, q2), outs) in &self.rules {
                if derivable[q1.index()] && derivable[q2.index()] {
                    for &q in outs {
                        if !derivable[q.index()] {
                            derivable[q.index()] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return Ok(derivable);
            }
        }
    }

    /// Whether `L(B) = ∅`.
    pub fn is_empty(&self) -> bool {
        let derivable = self.derivable_states();
        !self
            .states()
            .any(|q| self.is_final(q) && derivable[q.index()])
    }

    /// Budgeted [`Self::is_empty`].
    pub fn try_is_empty(&self, budget: &BudgetHandle) -> Result<bool, BudgetExceeded> {
        let derivable = self.try_derivable_states(budget)?;
        Ok(!self
            .states()
            .any(|q| self.is_final(q) && derivable[q.index()]))
    }

    /// A witness tree, if the language is non-empty (small, not necessarily
    /// minimal).
    pub fn witness(&self) -> Option<RankedTree<L>> {
        self.try_witness(&BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::witness`]: charges one fuel unit per rule scanned
    /// per saturation round.
    pub fn try_witness(
        &self,
        budget: &BudgetHandle,
    ) -> Result<Option<RankedTree<L>>, BudgetExceeded> {
        #[derive(Clone)]
        enum Recipe<L> {
            Leaf(L),
            Node(L, State, State),
        }
        let mut recipe: Vec<Option<Recipe<L>>> = vec![None; self.n_states];
        for (l, states) in &self.leaf_rules {
            for &q in states {
                if recipe[q.index()].is_none() {
                    recipe[q.index()] = Some(Recipe::Leaf(l.clone()));
                }
            }
        }
        loop {
            budget.charge(self.rules.len() as u64)?;
            let mut changed = false;
            for ((l, q1, q2), outs) in &self.rules {
                if recipe[q1.index()].is_some() && recipe[q2.index()].is_some() {
                    for &q in outs {
                        if recipe[q.index()].is_none() {
                            recipe[q.index()] = Some(Recipe::Node(l.clone(), *q1, *q2));
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let Some(target) = self
            .states()
            .find(|&q| self.is_final(q) && recipe[q.index()].is_some())
        else {
            return Ok(None);
        };
        fn build<L: Clone>(recipe: &[Option<Recipe<L>>], q: State) -> RankedTree<L> {
            match recipe[q.index()].as_ref().expect("derivable") {
                Recipe::Leaf(l) => RankedTree::Leaf(l.clone()),
                Recipe::Node(l, a, b) => {
                    RankedTree::node(l.clone(), build(recipe, *a), build(recipe, *b))
                }
            }
        }
        Ok(Some(build(&recipe, target)))
    }

    /// Product automaton accepting `L(self) ∩ L(other)` (alphabets must
    /// match as sets; `self`'s ordering is kept).
    ///
    /// Built on the fly over *derivable* state pairs only, so the cost is
    /// bounded by the reachable product, not `|Q₁|·|Q₂|` — essential for
    /// the long intersection chains in the Section 5.3 deciders.
    pub fn intersect(&self, other: &Nbta<L>) -> Nbta<L> {
        self.try_intersect(other, &BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::intersect`]: charges one fuel unit per discovered
    /// product state and per product rule constructed.
    pub fn try_intersect(
        &self,
        other: &Nbta<L>,
        budget: &BudgetHandle,
    ) -> Result<Nbta<L>, BudgetExceeded> {
        let mut out = Nbta::new(self.leaf_alphabet.clone(), self.internal_alphabet.clone());
        let mut ids: HashMap<(State, State), State> = HashMap::new();
        let mut queue: VecDeque<(State, State)> = VecDeque::new();
        let intern = |a: State,
                      b: State,
                      out: &mut Nbta<L>,
                      ids: &mut HashMap<(State, State), State>,
                      queue: &mut VecDeque<(State, State)>|
         -> State {
            *ids.entry((a, b)).or_insert_with(|| {
                let q = out.add_state();
                out.set_final(q, self.is_final(a) && other.is_final(b));
                queue.push_back((a, b));
                q
            })
        };
        // Leaf rules seed the worklist.
        for l in &self.leaf_alphabet {
            let bs = other.leaf_states(l).to_vec();
            for &a in self.leaf_states(l) {
                for &b in &bs {
                    let q = intern(a, b, &mut out, &mut ids, &mut queue);
                    out.add_leaf_rule(l.clone(), q);
                }
            }
        }
        // Rule indexes by (symbol, operand).
        type Idx<'x, L> = HashMap<(&'x L, State), Vec<(State, &'x Vec<State>)>>;
        let mut idx1_first: Idx<'_, L> = HashMap::new();
        let mut idx1_second: Idx<'_, L> = HashMap::new();
        for ((l, a1, a2), outs) in &self.rules {
            idx1_first.entry((l, *a1)).or_default().push((*a2, outs));
            idx1_second.entry((l, *a2)).or_default().push((*a1, outs));
        }
        let mut idx2_first: Idx<'_, L> = HashMap::new();
        let mut idx2_second: Idx<'_, L> = HashMap::new();
        for ((l, b1, b2), outs) in &other.rules {
            idx2_first.entry((l, *b1)).or_default().push((*b2, outs));
            idx2_second.entry((l, *b2)).or_default().push((*b1, outs));
        }
        let symbols: Vec<&L> = self.internal_alphabet.iter().collect();
        while let Some((a, b)) = queue.pop_front() {
            budget.charge(1)?;
            let left_id = ids[&(a, b)];
            // The popped pair as LEFT operand: partner right pairs must
            // already be discovered.
            for &l in &symbols {
                let (Some(r1), Some(r2)) = (idx1_first.get(&(l, a)), idx2_first.get(&(l, b)))
                else {
                    continue;
                };
                // Clone partner lists to end borrows before interning.
                let joins: Vec<(State, &Vec<State>, State, &Vec<State>)> = r1
                    .iter()
                    .flat_map(|&(a2, o1)| r2.iter().map(move |&(b2, o2)| (a2, o1, b2, o2)))
                    .collect();
                for (a2, outs1, b2, outs2) in joins {
                    if let Some(&right_id) = ids.get(&(a2, b2)) {
                        for &oa in outs1 {
                            for &ob in outs2 {
                                budget.charge(1)?;
                                let oq = intern(oa, ob, &mut out, &mut ids, &mut queue);
                                out.add_rule(l.clone(), left_id, right_id, oq);
                            }
                        }
                    }
                }
            }
            // The popped pair as RIGHT operand.
            for &l in &symbols {
                let (Some(r1), Some(r2)) = (idx1_second.get(&(l, a)), idx2_second.get(&(l, b)))
                else {
                    continue;
                };
                let joins: Vec<(State, &Vec<State>, State, &Vec<State>)> = r1
                    .iter()
                    .flat_map(|&(a1, o1)| r2.iter().map(move |&(b1, o2)| (a1, o1, b1, o2)))
                    .collect();
                for (a1, outs1, b1, outs2) in joins {
                    if let Some(&left2_id) = ids.get(&(a1, b1)) {
                        for &oa in outs1 {
                            for &ob in outs2 {
                                budget.charge(1)?;
                                let oq = intern(oa, ob, &mut out, &mut ids, &mut queue);
                                out.add_rule(l.clone(), left2_id, ids[&(a, b)], oq);
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Disjoint union accepting `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Nbta<L>) -> Nbta<L> {
        let mut out = self.clone();
        let offset = out.n_states as u32;
        for _ in 0..other.n_states {
            out.add_state();
        }
        for q in other.states() {
            out.set_final(State(q.0 + offset), other.is_final(q));
        }
        for (l, states) in &other.leaf_rules {
            for &q in states {
                out.add_leaf_rule(l.clone(), State(q.0 + offset));
            }
        }
        for ((l, q1, q2), outs) in &other.rules {
            for &q in outs {
                out.add_rule(
                    l.clone(),
                    State(q1.0 + offset),
                    State(q2.0 + offset),
                    State(q.0 + offset),
                );
            }
        }
        out
    }

    /// Relabels symbols through `f` (used for MSO projection `∃X`: dropping
    /// a variable bit). The result is nondeterministic even if `self` was
    /// obtained from a DBTA.
    pub fn map_symbols<M: Clone + Eq + Hash>(&self, f: impl Fn(&L) -> M) -> Nbta<M> {
        let mut leaf_alpha = Vec::new();
        let mut seen = HashSet::new();
        for l in &self.leaf_alphabet {
            let m = f(l);
            if seen.insert(m.clone()) {
                leaf_alpha.push(m);
            }
        }
        let mut internal_alpha = Vec::new();
        let mut seen = HashSet::new();
        for l in &self.internal_alphabet {
            let m = f(l);
            if seen.insert(m.clone()) {
                internal_alpha.push(m);
            }
        }
        let mut out = Nbta::new(leaf_alpha, internal_alpha);
        for _ in 0..self.n_states {
            out.add_state();
        }
        for q in self.states() {
            out.set_final(q, self.is_final(q));
        }
        for (l, states) in &self.leaf_rules {
            for &q in states {
                out.add_leaf_rule(f(l), q);
            }
        }
        for ((l, q1, q2), outs) in &self.rules {
            for &q in outs {
                out.add_rule(f(l), *q1, *q2, q);
            }
        }
        out
    }

    /// Inverse relabelling (MSO cylindrification): builds an automaton over
    /// the new alphabets that treats each symbol `m` like `self` treats
    /// `g(m)`.
    pub fn inverse_map<M: Clone + Eq + Hash>(
        &self,
        leaf_alphabet: Vec<M>,
        internal_alphabet: Vec<M>,
        g: impl Fn(&M) -> L,
    ) -> Nbta<M> {
        let mut out = Nbta::new(leaf_alphabet.clone(), internal_alphabet.clone());
        for _ in 0..self.n_states {
            out.add_state();
        }
        for q in self.states() {
            out.set_final(q, self.is_final(q));
        }
        for m in &leaf_alphabet {
            let l = g(m);
            for &q in self.leaf_states(&l) {
                out.add_leaf_rule(m.clone(), q);
            }
        }
        for m in &internal_alphabet {
            let l = g(m);
            for ((rl, q1, q2), outs) in &self.rules {
                if *rl == l {
                    for &q in outs {
                        out.add_rule(m.clone(), *q1, *q2, q);
                    }
                }
            }
        }
        out
    }

    /// Removes states that are not derivable or cannot contribute to an
    /// accepting run. Language-preserving; crucial for keeping the MSO
    /// pipeline small.
    pub fn trim(&self) -> Nbta<L> {
        self.try_trim(&BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::trim`]: charges one fuel unit per rule scanned per
    /// saturation round plus one per surviving rule rebuilt.
    pub fn try_trim(&self, budget: &BudgetHandle) -> Result<Nbta<L>, BudgetExceeded> {
        let derivable = self.try_derivable_states(budget)?;
        // Co-derivability: q useful if final, or appears as operand of a rule
        // with useful output and derivable sibling.
        let mut useful: Vec<bool> = self
            .states()
            .map(|q| self.is_final(q) && derivable[q.index()])
            .collect();
        loop {
            budget.charge(self.rules.len() as u64)?;
            let mut changed = false;
            for ((_, q1, q2), outs) in &self.rules {
                if !derivable[q1.index()] || !derivable[q2.index()] {
                    continue;
                }
                if outs.iter().any(|q| useful[q.index()]) {
                    if !useful[q1.index()] {
                        useful[q1.index()] = true;
                        changed = true;
                    }
                    if !useful[q2.index()] {
                        useful[q2.index()] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let keep: Vec<State> = self
            .states()
            .filter(|q| derivable[q.index()] && useful[q.index()])
            .collect();
        let remap: HashMap<State, State> = keep
            .iter()
            .enumerate()
            .map(|(i, &q)| (q, State(i as u32)))
            .collect();
        let mut out = Nbta::new(self.leaf_alphabet.clone(), self.internal_alphabet.clone());
        for _ in 0..keep.len() {
            out.add_state();
        }
        for &q in &keep {
            out.set_final(remap[&q], self.is_final(q));
        }
        for (l, states) in &self.leaf_rules {
            for q in states {
                if let Some(&nq) = remap.get(q) {
                    out.add_leaf_rule(l.clone(), nq);
                }
            }
        }
        for ((l, q1, q2), outs) in &self.rules {
            let (Some(&n1), Some(&n2)) = (remap.get(q1), remap.get(q2)) else {
                continue;
            };
            for q in outs {
                if let Some(&nq) = remap.get(q) {
                    budget.charge(1)?;
                    out.add_rule(l.clone(), n1, n2, nq);
                }
            }
        }
        Ok(out)
    }

    /// Subset construction: a complete deterministic automaton over the same
    /// alphabets.
    pub fn determinize(&self) -> Dbta<L> {
        self.try_determinize(&BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::determinize`]: charges one fuel unit per transition
    /// of the subset automaton — the construction is the workspace's one
    /// truly exponential site, so this is where a budget matters most.
    pub fn try_determinize(&self, budget: &BudgetHandle) -> Result<Dbta<L>, BudgetExceeded> {
        // Group rules by symbol for the inner loop, and use bitsets for
        // class membership.
        let words = self.n_states.div_ceil(64).max(1);
        let mut by_symbol: RulesBySymbol<L> = HashMap::new();
        for ((l, q1, q2), outs) in &self.rules {
            by_symbol.entry(l).or_default().push((*q1, *q2, outs));
        }
        let to_bits = |set: &[State]| -> Vec<u64> {
            let mut bits = vec![0u64; words];
            for q in set {
                bits[q.index() / 64] |= 1 << (q.index() % 64);
            }
            bits
        };
        let has = |bits: &[u64], q: State| bits[q.index() / 64] & (1 << (q.index() % 64)) != 0;

        let mut class_ids: HashMap<Vec<State>, u32> = HashMap::new();
        let mut classes: Vec<Vec<State>> = Vec::new();
        let mut class_bits: Vec<Vec<u64>> = Vec::new();
        let mut queue: VecDeque<u32> = VecDeque::new();
        let intern = |set: Vec<State>,
                      classes: &mut Vec<Vec<State>>,
                      class_bits: &mut Vec<Vec<u64>>,
                      class_ids: &mut HashMap<Vec<State>, u32>,
                      queue: &mut VecDeque<u32>|
         -> u32 {
            if let Some(&id) = class_ids.get(&set) {
                return id;
            }
            let id = classes.len() as u32;
            class_bits.push(to_bits(&set));
            classes.push(set.clone());
            class_ids.insert(set, id);
            queue.push_back(id);
            id
        };
        let mut leaf_map: HashMap<L, u32> = HashMap::new();
        for l in &self.leaf_alphabet {
            let mut set = self.leaf_states(l).to_vec();
            set.sort_unstable();
            set.dedup();
            let id = intern(
                set,
                &mut classes,
                &mut class_bits,
                &mut class_ids,
                &mut queue,
            );
            leaf_map.insert(l.clone(), id);
        }
        // Make sure the empty class exists (needed as a sink).
        intern(
            Vec::new(),
            &mut classes,
            &mut class_bits,
            &mut class_ids,
            &mut queue,
        );

        // Worklist: when a class is popped, pair it with every already
        // paired class (and itself); each ordered pair is processed once.
        let mut trans: HashMap<(L, u32, u32), u32> = HashMap::new();
        let mut paired: Vec<u32> = Vec::new();
        let mut out_bits = vec![0u64; words];
        while let Some(c) = queue.pop_front() {
            paired.push(c);
            // All ordered pairs involving `c` and any previously paired class.
            let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(2 * paired.len());
            for &d in &paired {
                pairs.push((c, d));
                if d != c {
                    pairs.push((d, c));
                }
            }
            for (c1, c2) in pairs {
                for (l, rules) in &by_symbol {
                    budget.charge(1)?;
                    out_bits.iter_mut().for_each(|w| *w = 0);
                    let b1 = &class_bits[c1 as usize];
                    let b2 = &class_bits[c2 as usize];
                    let mut any = false;
                    for (q1, q2, outs) in rules {
                        if has(b1, *q1) && has(b2, *q2) {
                            for q in outs.iter() {
                                out_bits[q.index() / 64] |= 1 << (q.index() % 64);
                            }
                            any = true;
                        }
                    }
                    let set: Vec<State> = if any {
                        (0..self.n_states as u32)
                            .map(State)
                            .filter(|q| has(&out_bits, *q))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let id = intern(
                        set,
                        &mut classes,
                        &mut class_bits,
                        &mut class_ids,
                        &mut queue,
                    );
                    trans.insert(((*l).clone(), c1, c2), id);
                }
                // Symbols with no rules at all map every pair to ∅.
                for l in &self.internal_alphabet {
                    if !by_symbol.contains_key(l) {
                        let empty = class_ids[&Vec::new()];
                        trans.insert((l.clone(), c1, c2), empty);
                    }
                }
            }
        }
        let finals = classes
            .iter()
            .map(|set| set.iter().any(|&q| self.is_final(q)))
            .collect();
        Ok(Dbta {
            leaf_alphabet: self.leaf_alphabet.clone(),
            internal_alphabet: self.internal_alphabet.clone(),
            n_classes: classes.len(),
            leaf_map,
            trans,
            finals,
        })
    }
}

/// A complete deterministic bottom-up binary tree automaton.
#[derive(Clone, Debug)]
pub struct Dbta<L> {
    leaf_alphabet: Vec<L>,
    internal_alphabet: Vec<L>,
    n_classes: usize,
    leaf_map: HashMap<L, u32>,
    trans: HashMap<(L, u32, u32), u32>,
    finals: Vec<bool>,
}

impl<L: Clone + Eq + Hash> Dbta<L> {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.n_classes
    }

    /// Evaluates `t` to its unique state. Panics on symbols outside the
    /// alphabets.
    pub fn eval(&self, t: &RankedTree<L>) -> u32 {
        match t {
            RankedTree::Leaf(l) => *self
                .leaf_map
                .get(l)
                .expect("leaf symbol outside the automaton's alphabet"),
            RankedTree::Node(l, a, b) => {
                let ca = self.eval(a);
                let cb = self.eval(b);
                *self
                    .trans
                    .get(&(l.clone(), ca, cb))
                    .expect("internal symbol/state pair outside the automaton's table")
            }
        }
    }

    /// Whether the automaton accepts `t`.
    pub fn accepts(&self, t: &RankedTree<L>) -> bool {
        self.finals[self.eval(t) as usize]
    }

    /// Complement (final flags flipped; completeness makes this exact).
    pub fn complement(&self) -> Dbta<L> {
        Dbta {
            finals: self.finals.iter().map(|f| !f).collect(),
            ..self.clone()
        }
    }

    /// Converts back to a nondeterministic automaton.
    /// Moore-style minimization: merges language-equivalent states. The
    /// result is again complete and deterministic, restricted to states
    /// reachable from some tree.
    pub fn minimize(&self) -> Dbta<L> {
        // Reachable states (derivable by some tree).
        let mut reach: Vec<bool> = vec![false; self.n_classes];
        let mut order: Vec<u32> = Vec::new();
        for &c in self.leaf_map.values() {
            if !reach[c as usize] {
                reach[c as usize] = true;
                order.push(c);
            }
        }
        loop {
            let mut changed = false;
            for ((_, c1, c2), &c) in &self.trans {
                if reach[*c1 as usize] && reach[*c2 as usize] && !reach[c as usize] {
                    reach[c as usize] = true;
                    order.push(c);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Partition refinement over reachable states: signature = final flag
        // plus, per (symbol, partner, side), the partner's current class.
        let members: Vec<u32> = order;
        let mut part: HashMap<u32, u32> = members
            .iter()
            .map(|&c| (c, u32::from(self.finals[c as usize])))
            .collect();
        loop {
            let mut sigs: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut next: HashMap<u32, u32> = HashMap::new();
            for &c in &members {
                let mut sig: Vec<u32> = Vec::new();
                for l in &self.internal_alphabet {
                    for &d in &members {
                        let left = self.trans.get(&(l.clone(), c, d)).copied();
                        let right = self.trans.get(&(l.clone(), d, c)).copied();
                        sig.push(left.map_or(u32::MAX, |x| {
                            if reach[x as usize] {
                                part[&x]
                            } else {
                                u32::MAX
                            }
                        }));
                        sig.push(right.map_or(u32::MAX, |x| {
                            if reach[x as usize] {
                                part[&x]
                            } else {
                                u32::MAX
                            }
                        }));
                    }
                }
                let fresh = sigs.len() as u32;
                let id = *sigs.entry((part[&c], sig)).or_insert(fresh);
                next.insert(c, id);
            }
            if next == part {
                break;
            }
            part = next;
        }
        let n_new = part.values().copied().max().map_or(0, |m| m as usize + 1);
        let mut finals = vec![false; n_new];
        let mut leaf_map = HashMap::new();
        for (l, &c) in &self.leaf_map {
            leaf_map.insert(l.clone(), part[&c]);
        }
        let mut trans = HashMap::new();
        for &c in &members {
            finals[part[&c] as usize] = self.finals[c as usize];
            for l in &self.internal_alphabet {
                for &d in &members {
                    if let Some(&x) = self.trans.get(&(l.clone(), c, d)) {
                        if reach[x as usize] {
                            trans.insert((l.clone(), part[&c], part[&d]), part[&x]);
                        }
                    }
                }
            }
        }
        Dbta {
            leaf_alphabet: self.leaf_alphabet.clone(),
            internal_alphabet: self.internal_alphabet.clone(),
            n_classes: n_new,
            leaf_map,
            trans,
            finals,
        }
    }

    pub fn to_nbta(&self) -> Nbta<L> {
        let mut out = Nbta::new(self.leaf_alphabet.clone(), self.internal_alphabet.clone());
        for _ in 0..self.n_classes {
            out.add_state();
        }
        for (c, &f) in self.finals.iter().enumerate() {
            out.set_final(State(c as u32), f);
        }
        for (l, &c) in &self.leaf_map {
            out.add_leaf_rule(l.clone(), State(c));
        }
        for ((l, c1, c2), &c) in &self.trans {
            out.add_rule(l.clone(), State(*c1), State(*c2), State(c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type T = RankedTree<char>;

    fn leaf() -> T {
        RankedTree::Leaf('#')
    }

    fn node(l: char, a: T, b: T) -> T {
        RankedTree::node(l, a, b)
    }

    /// Accepts trees whose frontier-to-root path... simpler: accepts trees
    /// containing at least one 'a' internal node.
    fn contains_a() -> Nbta<char> {
        let mut b = Nbta::new(vec!['#'], vec!['a', 'b']);
        let q0 = b.add_state(); // no 'a' seen
        let q1 = b.add_state(); // 'a' seen
        b.set_final(q1, true);
        b.add_leaf_rule('#', q0);
        for (l, r, o) in [
            ('b', (q0, q0), q0),
            ('b', (q0, q1), q1),
            ('b', (q1, q0), q1),
            ('b', (q1, q1), q1),
            ('a', (q0, q0), q1),
            ('a', (q0, q1), q1),
            ('a', (q1, q0), q1),
            ('a', (q1, q1), q1),
        ]
        .map(|(l, (x, y), o)| (l, (x, y), o))
        {
            b.add_rule(l, r.0, r.1, o);
        }
        b
    }

    #[test]
    fn eval_and_accept() {
        let m = contains_a();
        assert!(!m.accepts(&leaf()));
        assert!(!m.accepts(&node('b', leaf(), leaf())));
        assert!(m.accepts(&node('a', leaf(), leaf())));
        assert!(m.accepts(&node('b', node('a', leaf(), leaf()), leaf())));
    }

    #[test]
    fn emptiness_and_witness() {
        let m = contains_a();
        assert!(!m.is_empty());
        let w = m.witness().unwrap();
        assert!(m.accepts(&w));

        let mut empty = Nbta::new(vec!['#'], vec!['a']);
        let q = empty.add_state();
        let f = empty.add_state();
        empty.set_final(f, true);
        empty.add_leaf_rule('#', q);
        // No rule ever produces f.
        assert!(empty.is_empty());
        assert!(empty.witness().is_none());
    }

    #[test]
    fn determinize_complement() {
        let m = contains_a();
        let d = m.determinize();
        let c = d.complement();
        let samples = [
            leaf(),
            node('a', leaf(), leaf()),
            node('b', leaf(), leaf()),
            node('b', node('b', leaf(), leaf()), node('a', leaf(), leaf())),
        ];
        for t in &samples {
            assert_eq!(d.accepts(t), m.accepts(t));
            assert_eq!(c.accepts(t), !m.accepts(t));
        }
        // Round trip through NBTA preserves language.
        let back = c.to_nbta();
        for t in &samples {
            assert_eq!(back.accepts(t), !m.accepts(t));
        }
    }

    #[test]
    fn intersection_union() {
        // L1: contains 'a'. L2: root is 'b'.
        let m1 = contains_a();
        let mut m2 = Nbta::new(vec!['#'], vec!['a', 'b']);
        let any = m2.add_state();
        let rootb = m2.add_state();
        m2.set_final(rootb, true);
        m2.add_leaf_rule('#', any);
        for l in ['a', 'b'] {
            m2.add_rule(l, any, any, any);
        }
        m2.add_rule('b', any, any, rootb);
        let i = m1.intersect(&m2);
        let u = m1.union(&m2);
        let t_yes = node('b', node('a', leaf(), leaf()), leaf());
        let t_only1 = node('a', leaf(), leaf());
        let t_only2 = node('b', leaf(), leaf());
        let t_no = leaf();
        assert!(i.accepts(&t_yes));
        assert!(!i.accepts(&t_only1));
        assert!(!i.accepts(&t_only2));
        assert!(u.accepts(&t_only1));
        assert!(u.accepts(&t_only2));
        assert!(!u.accepts(&t_no));
    }

    #[test]
    fn trim_preserves_language() {
        let mut m = contains_a();
        // Add junk states.
        let dead = m.add_state();
        m.add_rule('a', dead, dead, dead);
        let trimmed = m.trim();
        assert!(trimmed.state_count() <= 2);
        for t in [
            leaf(),
            node('a', leaf(), leaf()),
            node('b', node('a', leaf(), leaf()), leaf()),
        ] {
            assert_eq!(trimmed.accepts(&t), contains_a().accepts(&t));
        }
    }

    #[test]
    fn map_and_inverse_map() {
        let m = contains_a();
        // Project 'a' and 'b' to a single symbol 'x': language becomes
        // "some projected tree containing a"; since both map to 'x', the
        // projected automaton accepts any 'x'-tree with ≥ 1 internal node.
        let p = m.map_symbols(|&c| if c == '#' { '#' } else { 'x' });
        assert!(p.accepts(&node('x', RankedTree::Leaf('#'), RankedTree::Leaf('#'))));
        assert!(!p.accepts(&RankedTree::Leaf('#')));
        // Inverse map: interpret 'A' and 'a' both as 'a', 'B' as 'b'.
        let inv = m.inverse_map(vec!['#'], vec!['A', 'B', 'a', 'b'], |&c| {
            c.to_ascii_lowercase()
        });
        assert!(inv.accepts(&node('A', leaf(), leaf())));
        assert!(!inv.accepts(&node('B', leaf(), leaf())));
    }

    #[test]
    fn minimize_preserves_language_and_shrinks() {
        let m = contains_a();
        // Pad with redundant structure: union with itself.
        let padded = m.union(&contains_a());
        let d = padded.determinize();
        let mini = d.minimize();
        assert!(mini.state_count() <= d.state_count());
        for t in [
            leaf(),
            node('a', leaf(), leaf()),
            node('b', leaf(), leaf()),
            node('b', node('a', leaf(), leaf()), node('b', leaf(), leaf())),
        ] {
            assert_eq!(mini.accepts(&t), d.accepts(&t));
        }
        // `contains_a` needs exactly 2 reachable classes.
        assert_eq!(mini.state_count(), 2);
    }

    #[test]
    fn minimize_of_complement_is_minimal_too() {
        let d = contains_a().determinize();
        let c = d.complement().minimize();
        assert!(c.accepts(&leaf()));
        assert!(!c.accepts(&node('a', leaf(), leaf())));
        assert_eq!(c.state_count(), 2);
    }

    #[test]
    fn budgeted_ops_match_unbudgeted_and_fail_on_zero_fuel() {
        use tpx_trees::budget::{Budget, ExhaustReason};
        let m = contains_a();
        // Generous budget: identical results.
        let b = Budget::default().with_fuel(1_000_000).start();
        let i = m.try_intersect(&contains_a(), &b).unwrap();
        assert_eq!(i.state_count(), m.intersect(&contains_a()).state_count());
        let d = m.try_determinize(&b).unwrap();
        assert_eq!(d.state_count(), m.determinize().state_count());
        assert_eq!(m.try_is_empty(&b).unwrap(), m.is_empty());
        assert!(m.try_witness(&b).unwrap().is_some());
        assert!(b.fuel_spent() > 0, "the ops must charge fuel");
        // Zero fuel: every op fails fast with a Fuel exhaustion.
        let z = Budget::default().with_fuel(0).start();
        for err in [
            m.try_intersect(&contains_a(), &z).unwrap_err(),
            m.try_determinize(&z).map(|_| ()).unwrap_err(),
            m.try_trim(&z).map(|_| ()).unwrap_err(),
            m.try_is_empty(&z).map(|_| ()).unwrap_err(),
            m.try_witness(&z).map(|_| ()).unwrap_err(),
        ] {
            assert_eq!(err.reason, ExhaustReason::Fuel);
        }
    }

    #[test]
    fn determinize_is_complete_over_alphabet() {
        // Automaton with NO rules still evaluates every tree (to the empty
        // class) after determinization.
        let m: Nbta<char> = Nbta::new(vec!['#'], vec!['a']);
        let d = m.determinize();
        assert!(!d.accepts(&leaf()));
        assert!(!d.accepts(&node('a', leaf(), leaf())));
        // And its complement accepts everything.
        let c = d.complement();
        assert!(c.accepts(&leaf()));
        assert!(c.accepts(&node('a', node('a', leaf(), leaf()), leaf())));
    }
}
