//! Ranked trees (arities 0 and 2) — the value type NBTAs run on and produce
//! as witnesses.

use std::fmt;

/// A binary ranked tree: leaves (arity 0) and internal nodes (arity 2), all
/// labelled with `L`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum RankedTree<L> {
    /// A leaf.
    Leaf(L),
    /// An internal node with exactly two children.
    Node(L, Box<RankedTree<L>>, Box<RankedTree<L>>),
}

impl<L> RankedTree<L> {
    /// Convenience constructor for internal nodes.
    pub fn node(label: L, left: RankedTree<L>, right: RankedTree<L>) -> Self {
        RankedTree::Node(label, Box::new(left), Box::new(right))
    }

    /// The label at the root.
    pub fn label(&self) -> &L {
        match self {
            RankedTree::Leaf(l) | RankedTree::Node(l, _, _) => l,
        }
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        match self {
            RankedTree::Leaf(_) => 1,
            RankedTree::Node(_, a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Height (a leaf has height 1).
    pub fn height(&self) -> usize {
        match self {
            RankedTree::Leaf(_) => 1,
            RankedTree::Node(_, a, b) => 1 + a.height().max(b.height()),
        }
    }

    /// Maps labels through `f`.
    pub fn map<M>(&self, f: &mut impl FnMut(&L) -> M) -> RankedTree<M> {
        match self {
            RankedTree::Leaf(l) => RankedTree::Leaf(f(l)),
            RankedTree::Node(l, a, b) => RankedTree::node(f(l), a.map(f), b.map(f)),
        }
    }
}

impl<L: fmt::Debug> fmt::Debug for RankedTree<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankedTree::Leaf(l) => write!(f, "{l:?}"),
            RankedTree::Node(l, a, b) => write!(f, "{l:?}({a:?}, {b:?})"),
        }
    }
}

/// Converts a [`tpx_trees::BinTree`] into a `RankedTree`, relabelling through
/// `f` (typically erasing text values to a single `text` symbol).
pub fn from_bintree<L>(
    bt: &tpx_trees::BinTree,
    f: &mut impl FnMut(&tpx_trees::BinLabel) -> L,
) -> RankedTree<L> {
    build(bt, bt.root(), f)
}

fn build<L>(
    bt: &tpx_trees::BinTree,
    v: tpx_trees::BinNodeId,
    f: &mut impl FnMut(&tpx_trees::BinLabel) -> L,
) -> RankedTree<L> {
    match bt.kids(v) {
        None => RankedTree::Leaf(f(bt.label(v))),
        Some((l, r)) => RankedTree::node(f(bt.label(v)), build(bt, l, f), build(bt, r, f)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_height() {
        let t = RankedTree::node(
            "a",
            RankedTree::Leaf("x"),
            RankedTree::node("b", RankedTree::Leaf("y"), RankedTree::Leaf("z")),
        );
        assert_eq!(t.size(), 5);
        assert_eq!(t.height(), 3);
        assert_eq!(*t.label(), "a");
    }

    #[test]
    fn map_relabels() {
        let t = RankedTree::node("a", RankedTree::Leaf("x"), RankedTree::Leaf("y"));
        let m = t.map(&mut |l: &&str| l.len());
        assert_eq!(
            m,
            RankedTree::node(1, RankedTree::Leaf(1), RankedTree::Leaf(1))
        );
    }

    #[test]
    fn from_bintree_mirrors_encoding() {
        let mut al = tpx_trees::Alphabet::new();
        let h = tpx_trees::term::parse_hedge("a(b)", &mut al).unwrap();
        let bt = tpx_trees::encode_hedge(&h);
        let rt = from_bintree(&bt, &mut |l| match l {
            tpx_trees::BinLabel::Elem(s) => format!("e{}", s.index()),
            tpx_trees::BinLabel::Text(_) => "t".into(),
            tpx_trees::BinLabel::Nil => "#".into(),
        });
        // a(b(#,#),#) — 5 nodes total.
        assert_eq!(rt.size(), 5);
        assert_eq!(rt.label(), "e0");
    }
}
