//! Nondeterministic unranked tree automata (NTAs), Section 2 of the paper.
//!
//! An NTA is `(Q, Σ ⊎ {text}, δ, Q₀, F)` where `δ(q, σ)` is a regular
//! language over `Q` (represented as an NFA) constraining the child-state
//! sequence of a `σ`-node in state `q`, and `text` nodes are accepted in
//! state `q` iff the automaton allows it (`δ(q, text) = {ε}`).
//!
//! Deviation from the paper (without loss of generality): we allow a *set*
//! of root states instead of the single `q₀`. This makes unions trivial and
//! is needed by the NBTA → NTA translation; a single-root normal form is one
//! fresh state away.
//!
//! Acceptance of a `σ`-leaf in state `q` is `ε ∈ δ(q, σ)`, exactly as in the
//! paper.

use std::collections::HashMap;
use std::fmt;

use tpx_automata::{Nfa, StateId};
use tpx_trees::budget::{BudgetExceeded, BudgetHandle};
use tpx_trees::{Alphabet, Hedge, NodeId, NodeLabel, Symbol, Tree};

/// A tree-automaton state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct State(pub u32);

impl State {
    /// Dense index of this state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A nondeterministic unranked tree automaton over `Σ ⊎ {text}` where `Σ` is
/// identified with symbol indices `0..symbol_count`.
#[derive(Clone, Debug)]
pub struct Nta {
    n_symbols: usize,
    /// `delta[q][σ]`: content model over `Q`, or `None` (empty language).
    delta: Vec<Vec<Option<Nfa<State>>>>,
    /// Whether text leaves are accepted in each state.
    text_ok: Vec<bool>,
    /// Root states (the paper's `q₀`, generalized to a set).
    roots: Vec<State>,
}

impl Nta {
    /// An automaton over an alphabet of `n_symbols` element labels, with no
    /// states yet.
    pub fn new(n_symbols: usize) -> Self {
        Nta {
            n_symbols,
            delta: Vec::new(),
            text_ok: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> State {
        let q = State(u32::try_from(self.delta.len()).expect("too many states"));
        self.delta.push(vec![None; self.n_symbols]);
        self.text_ok.push(false);
        q
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.delta.len()
    }

    /// Number of element symbols (`|Σ|`).
    pub fn symbol_count(&self) -> usize {
        self.n_symbols
    }

    /// Marks `q` as a root state.
    pub fn add_root(&mut self, q: State) {
        if !self.roots.contains(&q) {
            self.roots.push(q);
        }
    }

    /// The root states.
    pub fn roots(&self) -> &[State] {
        &self.roots
    }

    /// Allows (or disallows) text leaves in state `q`.
    pub fn set_text_ok(&mut self, q: State, ok: bool) {
        self.text_ok[q.index()] = ok;
    }

    /// Whether text leaves are accepted in state `q`.
    pub fn text_ok(&self, q: State) -> bool {
        self.text_ok[q.index()]
    }

    /// Sets the content model `δ(q, σ)`.
    pub fn set_content(&mut self, q: State, sym: Symbol, content: Nfa<State>) {
        self.delta[q.index()][sym.index()] = Some(content);
    }

    /// The content model `δ(q, σ)`, if defined.
    pub fn content(&self, q: State, sym: Symbol) -> Option<&Nfa<State>> {
        self.delta[q.index()][sym.index()].as_ref()
    }

    /// The paper's `|N| = |Q| + |δ|` where `|δ|` sums content-model sizes.
    pub fn size(&self) -> usize {
        self.state_count()
            + self
                .delta
                .iter()
                .flatten()
                .flatten()
                .map(Nfa::size)
                .sum::<usize>()
    }

    /// All states.
    pub fn states(&self) -> impl Iterator<Item = State> {
        (0..self.delta.len() as u32).map(State)
    }

    /// Bottom-up state sets: for every node of `h`, the set of states in
    /// which the subtree rooted there is accepted. Runs in time polynomial in
    /// `|h| · |N|` (the PTIME membership of Section 2).
    pub fn accepting_states(&self, h: &Hedge) -> HashMap<NodeId, Vec<State>> {
        let mut acc: HashMap<NodeId, Vec<State>> = HashMap::new();
        let mut order = h.dfs();
        order.reverse(); // children before parents
        for v in order {
            let states = match h.label(v) {
                NodeLabel::Text(_) => self.states().filter(|&q| self.text_ok[q.index()]).collect(),
                NodeLabel::Elem(s) => {
                    let child_sets: Vec<&Vec<State>> =
                        h.children(v).iter().map(|c| &acc[c]).collect();
                    self.states()
                        .filter(|&q| {
                            self.content(q, *s)
                                .is_some_and(|nfa| nfa_accepts_sets(nfa, &child_sets))
                        })
                        .collect()
                }
            };
            acc.insert(v, states);
        }
        acc
    }

    /// Whether the automaton accepts `t`.
    pub fn accepts(&self, t: &Tree) -> bool {
        let acc = self.accepting_states(t.as_hedge());
        acc[&t.root()].iter().any(|q| self.roots.contains(q))
    }

    /// Constructs an accepting run, if one exists.
    pub fn run(&self, t: &Tree) -> Option<Run> {
        let acc = self.accepting_states(t.as_hedge());
        let root_state = *acc[&t.root()].iter().find(|q| self.roots.contains(q))?;
        let mut assignment = HashMap::new();
        self.build_run(t.as_hedge(), t.root(), root_state, &acc, &mut assignment);
        Some(Run { assignment })
    }

    fn build_run(
        &self,
        h: &Hedge,
        v: NodeId,
        q: State,
        acc: &HashMap<NodeId, Vec<State>>,
        out: &mut HashMap<NodeId, State>,
    ) {
        out.insert(v, q);
        let NodeLabel::Elem(s) = h.label(v) else {
            return;
        };
        let nfa = self
            .content(q, *s)
            .expect("state was accepting, content model must exist");
        let child_sets: Vec<&Vec<State>> = h.children(v).iter().map(|c| &acc[c]).collect();
        let word = nfa_find_word(nfa, &child_sets).expect("state was accepting, a word must exist");
        for (&c, qc) in h.children(v).iter().zip(word) {
            self.build_run(h, c, qc, acc, out);
        }
    }

    /// Whether `L(N) = ∅`.
    pub fn is_empty(&self) -> bool {
        let inhabited = self.inhabited_states();
        !self.roots.iter().any(|q| inhabited[q.index()])
    }

    /// Budgeted [`Self::is_empty`].
    pub fn try_is_empty(&self, budget: &BudgetHandle) -> Result<bool, BudgetExceeded> {
        let inhabited = self.try_inhabited_states(budget)?;
        Ok(!self.roots.iter().any(|q| inhabited[q.index()]))
    }

    /// The states `q` with a non-empty language (some tree evaluates to `q`).
    pub fn inhabited_states(&self) -> Vec<bool> {
        self.try_inhabited_states(&BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::inhabited_states`]: charges one fuel unit per state
    /// scanned per saturation round.
    pub fn try_inhabited_states(&self, budget: &BudgetHandle) -> Result<Vec<bool>, BudgetExceeded> {
        let n = self.state_count();
        let mut inhabited = vec![false; n];
        loop {
            budget.charge(n as u64)?;
            let mut changed = false;
            for q in 0..n {
                if inhabited[q] {
                    continue;
                }
                let ok = self.text_ok[q]
                    || self.delta[q]
                        .iter()
                        .flatten()
                        .any(|nfa| nfa_accepts_over(nfa, &inhabited));
                if ok {
                    inhabited[q] = true;
                    changed = true;
                }
            }
            if !changed {
                return Ok(inhabited);
            }
        }
    }

    /// A witness tree in `L(N)`, if the language is non-empty. Text leaves in
    /// the witness carry placeholder values (`τ0, τ1, …` left to right).
    pub fn witness(&self) -> Option<Tree> {
        self.try_witness(&BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::witness`]: charges one fuel unit per state scanned
    /// per saturation round.
    pub fn try_witness(&self, budget: &BudgetHandle) -> Result<Option<Tree>, BudgetExceeded> {
        let n = self.state_count();
        // recipe[q] = how to build a tree evaluating to q.
        let mut recipe: Vec<Option<Recipe>> = vec![None; n];
        loop {
            budget.charge(n as u64)?;
            let mut changed = false;
            let known: Vec<bool> = recipe.iter().map(Option::is_some).collect();
            for (q, slot) in recipe.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                if self.text_ok[q] {
                    *slot = Some(Recipe::Text);
                    changed = true;
                    continue;
                }
                for (sym, nfa) in self.delta[q].iter().enumerate() {
                    let Some(nfa) = nfa else { continue };
                    if let Some(word) = nfa_shortest_over(nfa, &known) {
                        *slot = Some(Recipe::Elem(Symbol(sym as u32), word));
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let Some(&q0) = self.roots.iter().find(|q| recipe[q.index()].is_some()) else {
            return Ok(None);
        };
        let mut b = tpx_trees::HedgeBuilder::new();
        let mut counter = 0usize;
        build_witness(&recipe, q0, &mut b, &mut counter);
        Ok(b.finish_tree())
    }

    /// Whether `δ(q, σ)` accepts some word over the states marked `true` in
    /// `allowed` (e.g. the inhabited states). Used by the path-automaton
    /// construction of Lemma 4.8.
    pub fn content_satisfiable(&self, q: State, s: Symbol, allowed: &[bool]) -> bool {
        self.content(q, s)
            .is_some_and(|nfa| nfa_accepts_over(nfa, allowed))
    }

    /// The states occurring on some accepting word of `δ(q, σ)` over
    /// `allowed` states — i.e. the child states realizable at a `σ`-node in
    /// state `q` within a completable tree.
    pub fn content_useful_children(&self, q: State, s: Symbol, allowed: &[bool]) -> Vec<State> {
        self.content(q, s)
            .map(|nfa| nfa_useful_symbols(nfa, allowed))
            .unwrap_or_default()
    }

    /// Product automaton accepting `L(self) ∩ L(other)`. Both automata must
    /// be over the same alphabet size.
    pub fn intersect(&self, other: &Nta) -> Nta {
        self.try_intersect(other, &BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::intersect`]: charges one fuel unit per product state
    /// constructed (the product is built over the full `|Q₁|·|Q₂|` grid).
    pub fn try_intersect(&self, other: &Nta, budget: &BudgetHandle) -> Result<Nta, BudgetExceeded> {
        assert_eq!(
            self.n_symbols, other.n_symbols,
            "intersection requires equal alphabets"
        );
        let n2 = other.state_count() as u32;
        let pair = |q1: State, q2: State| State(q1.0 * n2 + q2.0);
        let mut out = Nta::new(self.n_symbols);
        for _ in 0..(self.state_count() * other.state_count()) {
            out.add_state();
        }
        for q1 in self.states() {
            for q2 in other.states() {
                budget.charge(1)?;
                let q = pair(q1, q2);
                out.set_text_ok(q, self.text_ok(q1) && other.text_ok(q2));
                for sym in 0..self.n_symbols {
                    let s = Symbol(sym as u32);
                    if let (Some(a1), Some(a2)) = (self.content(q1, s), other.content(q2, s)) {
                        let prod = product_content(a1, a2, n2);
                        out.set_content(q, s, prod);
                    }
                }
            }
        }
        for &r1 in &self.roots {
            for &r2 in &other.roots {
                out.add_root(pair(r1, r2));
            }
        }
        Ok(out)
    }

    /// Disjoint union accepting `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Nta) -> Nta {
        assert_eq!(
            self.n_symbols, other.n_symbols,
            "union requires equal alphabets"
        );
        let mut out = self.clone();
        let offset = out.state_count() as u32;
        for _ in 0..other.state_count() {
            out.add_state();
        }
        for q in other.states() {
            let nq = State(q.0 + offset);
            out.text_ok[nq.index()] = other.text_ok(q);
            for sym in 0..self.n_symbols {
                let s = Symbol(sym as u32);
                if let Some(nfa) = other.content(q, s) {
                    out.set_content(nq, s, nfa.map_symbols(|r| State(r.0 + offset)));
                }
            }
        }
        for &r in &other.roots {
            out.add_root(State(r.0 + offset));
        }
        out
    }

    /// Removes states that are not inhabited or not reachable from a root,
    /// trimming content models accordingly. Language-preserving.
    pub fn trim(&self) -> Nta {
        self.try_trim(&BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::trim`]: charges through the inhabitation saturation
    /// plus one fuel unit per surviving state rebuilt.
    pub fn try_trim(&self, budget: &BudgetHandle) -> Result<Nta, BudgetExceeded> {
        let inhabited = self.try_inhabited_states(budget)?;
        // Top-down reachability over inhabited states.
        let n = self.state_count();
        let mut reach = vec![false; n];
        let mut stack: Vec<State> = Vec::new();
        for &r in &self.roots {
            if inhabited[r.index()] && !reach[r.index()] {
                reach[r.index()] = true;
                stack.push(r);
            }
        }
        while let Some(q) = stack.pop() {
            for nfa in self.delta[q.index()].iter().flatten() {
                for r in nfa_useful_symbols(nfa, &inhabited) {
                    if !reach[r.index()] {
                        reach[r.index()] = true;
                        stack.push(r);
                    }
                }
            }
        }
        let keep: Vec<State> = self
            .states()
            .filter(|q| reach[q.index()] && inhabited[q.index()])
            .collect();
        let remap: HashMap<State, State> = keep
            .iter()
            .enumerate()
            .map(|(i, &q)| (q, State(i as u32)))
            .collect();
        let mut out = Nta::new(self.n_symbols);
        for _ in 0..keep.len() {
            out.add_state();
        }
        for &q in &keep {
            budget.charge(1)?;
            let nq = remap[&q];
            out.text_ok[nq.index()] = self.text_ok(q);
            for sym in 0..self.n_symbols {
                let s = Symbol(sym as u32);
                if let Some(nfa) = self.content(q, s) {
                    // Drop transitions on removed states, then trim the NFA.
                    let filtered = filter_nfa_symbols(nfa, &remap);
                    let trimmed = filtered.trim();
                    if !trimmed.is_empty() || trimmed.accepts_empty() {
                        out.set_content(nq, s, trimmed);
                    }
                }
            }
        }
        for &r in &self.roots {
            if let Some(&nr) = remap.get(&r) {
                out.add_root(nr);
            }
        }
        Ok(out)
    }
}

impl Nta {
    /// Renders the automaton in a readable grammar-like form: one line per
    /// `(state, label)` transition with the content model extracted back to
    /// a regular expression over state names (`s0, s1, …`). Useful for
    /// inspecting computed automata such as maximal sub-schemas.
    pub fn display<'a>(&'a self, alpha: &'a tpx_trees::Alphabet) -> impl fmt::Display + 'a {
        DisplayNta { nta: self, alpha }
    }
}

struct DisplayNta<'a> {
    nta: &'a Nta,
    alpha: &'a tpx_trees::Alphabet,
}

impl fmt::Display for DisplayNta<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let roots: Vec<String> = self
            .nta
            .roots()
            .iter()
            .map(|q| format!("s{}", q.0))
            .collect();
        writeln!(f, "roots: {}", roots.join(" "))?;
        for q in self.nta.states() {
            for sym in 0..self.nta.symbol_count() {
                let s = Symbol(sym as u32);
                if let Some(nfa) = self.nta.content(q, s) {
                    let re = tpx_automata::nfa_to_regex(nfa);
                    writeln!(
                        f,
                        "δ(s{}, {}) = {}",
                        q.0,
                        self.alpha.name(s),
                        tpx_automata::regex_to_string(&re, &|st: &State| format!("s{}", st.0))
                    )?;
                }
            }
            if self.nta.text_ok(q) {
                writeln!(f, "δ(s{}, text) = ε", q.0)?;
            }
        }
        Ok(())
    }
}

impl tpx_trees::StableHash for State {
    fn stable_hash(&self, h: &mut tpx_trees::StableHasher) {
        h.write_u64(u64::from(self.0));
    }
}

/// Structural content hash over the full transition structure: two NTAs
/// built the same way hash the same, in every process — the engine layer
/// keys its schema-artifact cache on this.
impl tpx_trees::StableHash for Nta {
    fn stable_hash(&self, h: &mut tpx_trees::StableHasher) {
        h.write_usize(self.n_symbols);
        self.roots.as_slice().stable_hash(h);
        self.text_ok.stable_hash(h);
        h.write_usize(self.delta.len());
        for per_state in &self.delta {
            h.write_usize(per_state.len());
            for content in per_state {
                content.stable_hash(h);
            }
        }
    }
}

/// An accepting run: assignment of states to nodes.
#[derive(Clone, Debug)]
pub struct Run {
    /// The state assigned to each node.
    pub assignment: HashMap<NodeId, State>,
}

#[derive(Clone, Debug)]
enum Recipe {
    Text,
    Elem(Symbol, Vec<State>),
}

fn build_witness(
    recipe: &[Option<Recipe>],
    q: State,
    b: &mut tpx_trees::HedgeBuilder,
    counter: &mut usize,
) {
    match recipe[q.index()].as_ref().expect("inhabited state") {
        Recipe::Text => {
            b.text(&format!("τ{}", *counter));
            *counter += 1;
        }
        Recipe::Elem(sym, word) => {
            b.open(*sym);
            for &qc in word {
                build_witness(recipe, qc, b, counter);
            }
            b.close();
        }
    }
}

/// Whether `nfa` accepts some word `q₁ ⋯ qₙ` with `qᵢ ∈ setsᵢ`.
fn nfa_accepts_sets(nfa: &Nfa<State>, sets: &[&Vec<State>]) -> bool {
    let mut cur: Vec<StateId> = nfa.initial_states().to_vec();
    let mut seen = vec![false; nfa.state_count()];
    for &p in &cur {
        seen[p.index()] = true;
    }
    for set in sets {
        let mut next = Vec::new();
        let mut mark = vec![false; nfa.state_count()];
        for &p in &cur {
            for (a, r) in nfa.transitions_from(p) {
                if !mark[r.index()] && set.contains(a) {
                    mark[r.index()] = true;
                    next.push(*r);
                }
            }
        }
        cur = next;
        if cur.is_empty() {
            return false;
        }
        let _ = &mut seen;
    }
    cur.iter().any(|&p| nfa.is_final(p))
}

/// A word `q₁ ⋯ qₙ` accepted by `nfa` with `qᵢ ∈ setsᵢ`, if any.
fn nfa_find_word(nfa: &Nfa<State>, sets: &[&Vec<State>]) -> Option<Vec<State>> {
    // Forward layers of NFA states.
    let mut layers: Vec<Vec<StateId>> = vec![nfa.initial_states().to_vec()];
    for set in sets {
        let cur = layers.last().unwrap();
        let mut next = Vec::new();
        let mut mark = vec![false; nfa.state_count()];
        for &p in cur {
            for (a, r) in nfa.transitions_from(p) {
                if !mark[r.index()] && set.contains(a) {
                    mark[r.index()] = true;
                    next.push(*r);
                }
            }
        }
        layers.push(next);
    }
    // Backtrack from a final state.
    let mut target = *layers.last()?.iter().find(|&&p| nfa.is_final(p))?;
    let mut word: Vec<State> = Vec::with_capacity(sets.len());
    for i in (0..sets.len()).rev() {
        let prev = &layers[i];
        let mut found = None;
        'outer: for &p in prev {
            for (a, r) in nfa.transitions_from(p) {
                if *r == target && sets[i].contains(a) {
                    found = Some((p, *a));
                    break 'outer;
                }
            }
        }
        let (p, a) = found.expect("layered reachability guarantees a predecessor");
        word.push(a);
        target = p;
    }
    word.reverse();
    Some(word)
}

/// Whether `nfa` accepts some word over the states marked true in `allowed`.
fn nfa_accepts_over(nfa: &Nfa<State>, allowed: &[bool]) -> bool {
    nfa_shortest_over(nfa, allowed).is_some()
}

/// A shortest word over `allowed` states accepted by `nfa`.
fn nfa_shortest_over(nfa: &Nfa<State>, allowed: &[bool]) -> Option<Vec<State>> {
    use std::collections::VecDeque;
    let mut pred: Vec<Option<(StateId, State)>> = vec![None; nfa.state_count()];
    let mut visited = vec![false; nfa.state_count()];
    let mut queue = VecDeque::new();
    for &q in nfa.initial_states() {
        if !visited[q.index()] {
            visited[q.index()] = true;
            queue.push_back(q);
        }
    }
    while let Some(q) = queue.pop_front() {
        if nfa.is_final(q) {
            let mut w = Vec::new();
            let mut cur = q;
            while let Some((p, a)) = pred[cur.index()] {
                w.push(a);
                cur = p;
            }
            w.reverse();
            return Some(w);
        }
        for (a, r) in nfa.transitions_from(q) {
            if allowed[a.index()] && !visited[r.index()] {
                visited[r.index()] = true;
                pred[r.index()] = Some((q, *a));
                queue.push_back(*r);
            }
        }
    }
    None
}

/// States (symbols) used on some accepting path of `nfa` restricted to
/// `inhabited` symbols.
fn nfa_useful_symbols(nfa: &Nfa<State>, inhabited: &[bool]) -> Vec<State> {
    // Forward-reachable NFA states via inhabited symbols.
    let mut fwd = vec![false; nfa.state_count()];
    let mut stack: Vec<StateId> = nfa.initial_states().to_vec();
    for &p in &stack {
        fwd[p.index()] = true;
    }
    while let Some(p) = stack.pop() {
        for (a, r) in nfa.transitions_from(p) {
            if inhabited[a.index()] && !fwd[r.index()] {
                fwd[r.index()] = true;
                stack.push(*r);
            }
        }
    }
    // Backward-productive NFA states via inhabited symbols.
    let mut rev: Vec<Vec<(State, StateId)>> = vec![Vec::new(); nfa.state_count()];
    for (p, a, r) in nfa.transitions() {
        rev[r.index()].push((*a, p));
    }
    let mut bwd = vec![false; nfa.state_count()];
    let mut stack: Vec<StateId> = nfa.states().filter(|&p| nfa.is_final(p)).collect();
    for &p in &stack {
        bwd[p.index()] = true;
    }
    while let Some(p) = stack.pop() {
        for &(a, r) in &rev[p.index()] {
            if inhabited[a.index()] && !bwd[r.index()] {
                bwd[r.index()] = true;
                stack.push(r);
            }
        }
    }
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (p, a, r) in nfa.transitions() {
        if fwd[p.index()] && bwd[r.index()] && inhabited[a.index()] && seen.insert(*a) {
            out.push(*a);
        }
    }
    out
}

/// Product of content models: accepts `(r₁,s₁)⋯(rₙ,sₙ)` (encoded as
/// `r·n2 + s`) iff `r⃗ ∈ L(a1)` and `s⃗ ∈ L(a2)`.
fn product_content(a1: &Nfa<State>, a2: &Nfa<State>, n2: u32) -> Nfa<State> {
    let mut out = Nfa::new();
    let mut ids: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut stack = Vec::new();
    for &p in a1.initial_states() {
        for &q in a2.initial_states() {
            let id = *ids.entry((p, q)).or_insert_with(|| {
                stack.push((p, q));
                out.add_state()
            });
            out.set_initial(id);
        }
    }
    while let Some((p, q)) = stack.pop() {
        let id = ids[&(p, q)];
        out.set_final(id, a1.is_final(p) && a2.is_final(q));
        for (r, p2) in a1.transitions_from(p) {
            for (s, q2) in a2.transitions_from(q) {
                let sym = State(r.0 * n2 + s.0);
                let next = *ids.entry((*p2, *q2)).or_insert_with(|| {
                    stack.push((*p2, *q2));
                    out.add_state()
                });
                out.add_transition(id, sym, next);
            }
        }
    }
    out
}

/// Keeps only transitions whose symbol survives `remap`, relabelling them.
fn filter_nfa_symbols(nfa: &Nfa<State>, remap: &HashMap<State, State>) -> Nfa<State> {
    let mut out = Nfa::new();
    out.add_states(nfa.state_count());
    for (p, a, r) in nfa.transitions() {
        if let Some(&na) = remap.get(a) {
            out.add_transition(p, na, r);
        }
    }
    for p in nfa.states() {
        out.set_final(p, nfa.is_final(p));
    }
    for &p in nfa.initial_states() {
        out.set_initial(p);
    }
    out
}

/// Convenience builder for NTAs with named states and regex content models.
///
/// ```
/// use tpx_trees::Alphabet;
/// use tpx_treeauto::NtaBuilder;
/// let mut sigma = Alphabet::from_labels(["doc", "p"]);
/// let mut b = NtaBuilder::new(&sigma);
/// b.root("q0");
/// b.rule("q0", "doc", "qp*");
/// b.rule("qp", "p", "%eps");
/// b.text_rule("qp"); // p-nodes may instead hold text? no: qp itself accepts text leaves
/// let nta = b.finish();
/// assert_eq!(nta.state_count(), 2);
/// ```
pub struct NtaBuilder {
    n_symbols: usize,
    names: Vec<String>,
    ids: HashMap<String, State>,
    rules: Vec<(State, Symbol, tpx_automata::Regex<State>)>,
    text_rules: Vec<State>,
    roots: Vec<State>,
    sym_by_name: HashMap<String, Symbol>,
}

impl NtaBuilder {
    /// Starts building over the given alphabet.
    pub fn new(alpha: &Alphabet) -> Self {
        NtaBuilder {
            n_symbols: alpha.len(),
            names: Vec::new(),
            ids: HashMap::new(),
            rules: Vec::new(),
            text_rules: Vec::new(),
            roots: Vec::new(),
            sym_by_name: alpha.entries().map(|(s, n)| (n.to_owned(), s)).collect(),
        }
    }

    fn state(&mut self, name: &str) -> State {
        if let Some(&q) = self.ids.get(name) {
            return q;
        }
        let q = State(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), q);
        q
    }

    /// Declares `name` as a root state.
    pub fn root(&mut self, name: &str) -> &mut Self {
        let q = self.state(name);
        self.roots.push(q);
        self
    }

    /// Adds `δ(state, label) = content`, with `content` a regex over state
    /// names (syntax of [`tpx_automata::parse_regex`]).
    pub fn rule(&mut self, state: &str, label: &str, content: &str) -> &mut Self {
        let q = self.state(state);
        let sym = *self
            .sym_by_name
            .get(label)
            .unwrap_or_else(|| panic!("label {label:?} not in alphabet"));
        let re = tpx_automata::parse_regex(content, &mut |n: &str| self.state_helper(n))
            .unwrap_or_else(|e| panic!("bad content model {content:?}: {e}"));
        self.rules.push((q, sym, re));
        self
    }

    fn state_helper(&mut self, name: &str) -> State {
        // Same as `state`, split out so the closure in `rule` can borrow.
        if let Some(&q) = self.ids.get(name) {
            return q;
        }
        let q = State(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), q);
        q
    }

    /// Allows text leaves in `state`.
    pub fn text_rule(&mut self, state: &str) -> &mut Self {
        let q = self.state(state);
        self.text_rules.push(q);
        self
    }

    /// Finishes, producing the automaton. Multiple rules for the same
    /// `(state, label)` are united.
    pub fn finish(&self) -> Nta {
        let mut nta = Nta::new(self.n_symbols);
        for _ in 0..self.names.len() {
            nta.add_state();
        }
        let mut grouped: HashMap<(State, Symbol), Nfa<State>> = HashMap::new();
        for (q, sym, re) in &self.rules {
            let nfa = re.to_nfa();
            grouped
                .entry((*q, *sym))
                .and_modify(|acc| *acc = acc.union(&nfa))
                .or_insert(nfa);
        }
        for ((q, sym), nfa) in grouped {
            nta.set_content(q, sym, nfa);
        }
        for &q in &self.text_rules {
            nta.set_text_ok(q, true);
        }
        for &r in &self.roots {
            nta.add_root(r);
        }
        nta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpx_trees::term::parse_tree;

    /// Schema: root `a` with children `(b | text)*`, `b` has exactly one
    /// text child.
    fn simple_nta(alpha: &Alphabet) -> Nta {
        let mut b = NtaBuilder::new(alpha);
        b.root("qa");
        b.rule("qa", "a", "(qb | qt)*");
        b.rule("qb", "b", "qt");
        b.text_rule("qt");
        b.finish()
    }

    fn alpha() -> Alphabet {
        Alphabet::from_labels(["a", "b", "c"])
    }

    #[test]
    fn membership_basics() {
        let mut al = alpha();
        let nta = simple_nta(&al);
        for (src, expect) in [
            (r#"a"#, true),
            (r#"a("x")"#, true),
            (r#"a(b("x") "y" b("z"))"#, true),
            (r#"a(b)"#, false),          // b must have one text child
            (r#"a(b("x" "y"))"#, false), // exactly one
            (r#"b("x")"#, false),        // wrong root
            (r#"a(c)"#, false),          // no rule for c
            (r#"a(a)"#, false),
        ] {
            let t = parse_tree(src, &mut al).unwrap();
            assert_eq!(nta.accepts(&t), expect, "{src}");
        }
    }

    #[test]
    fn run_is_consistent() {
        let mut al = alpha();
        let nta = simple_nta(&al);
        let t = parse_tree(r#"a(b("x") "y")"#, &mut al).unwrap();
        let run = nta.run(&t).unwrap();
        assert_eq!(run.assignment.len(), t.node_count());
        assert!(nta.roots().contains(&run.assignment[&t.root()]));
        // Text nodes must be in text_ok states.
        for v in t.text_nodes() {
            assert!(nta.text_ok(run.assignment[&v]));
        }
    }

    #[test]
    fn no_run_when_rejected() {
        let mut al = alpha();
        let nta = simple_nta(&al);
        let t = parse_tree(r#"a(b)"#, &mut al).unwrap();
        assert!(nta.run(&t).is_none());
    }

    #[test]
    fn emptiness_and_witness() {
        let al = alpha();
        let nta = simple_nta(&al);
        assert!(!nta.is_empty());
        let w = nta.witness().unwrap();
        assert!(nta.accepts(&w));

        // An automaton whose only rule requires an uninhabited state.
        let mut b = NtaBuilder::new(&al);
        b.root("q0");
        b.rule("q0", "a", "qdead");
        b.rule("qdead", "b", "qdead");
        let empty = b.finish();
        assert!(empty.is_empty());
        assert!(empty.witness().is_none());
    }

    #[test]
    fn intersection_semantics() {
        let mut al = alpha();
        // L1: root a, any number of text children.
        let mut b1 = NtaBuilder::new(&al);
        b1.root("q0");
        b1.rule("q0", "a", "qt*");
        b1.text_rule("qt");
        let n1 = b1.finish();
        // L2: root a with exactly two children (text or b-leaf).
        let mut b2 = NtaBuilder::new(&al);
        b2.root("p0");
        b2.rule("p0", "a", "px px");
        b2.rule("px", "b", "%eps");
        b2.text_rule("px");
        let n2 = b2.finish();
        let i = n1.intersect(&n2);
        let yes = parse_tree(r#"a("x" "y")"#, &mut al).unwrap();
        let no1 = parse_tree(r#"a("x")"#, &mut al).unwrap();
        let no2 = parse_tree(r#"a(b b)"#, &mut al).unwrap();
        assert!(i.accepts(&yes));
        assert!(!i.accepts(&no1)); // fails L2
        assert!(!i.accepts(&no2)); // fails L1
        assert!(n2.accepts(&no2));
    }

    #[test]
    fn union_semantics() {
        let mut al = alpha();
        let mut b1 = NtaBuilder::new(&al);
        b1.root("q0");
        b1.rule("q0", "a", "%eps");
        let n1 = b1.finish();
        let mut b2 = NtaBuilder::new(&al);
        b2.root("p0");
        b2.rule("p0", "b", "%eps");
        let n2 = b2.finish();
        let u = n1.union(&n2);
        assert!(u.accepts(&parse_tree("a", &mut al).unwrap()));
        assert!(u.accepts(&parse_tree("b", &mut al).unwrap()));
        assert!(!u.accepts(&parse_tree("c", &mut al).unwrap()));
        assert!(!u.accepts(&parse_tree("a(b)", &mut al).unwrap()));
    }

    #[test]
    fn trim_preserves_language() {
        let mut al = alpha();
        let mut b = NtaBuilder::new(&al);
        b.root("q0");
        b.rule("q0", "a", "qt* | qdead");
        b.rule("qdead", "b", "qdead"); // uninhabited
        b.rule("qunreach", "c", "%eps"); // unreachable
        b.text_rule("qt");
        let nta = b.finish();
        let trimmed = nta.trim();
        assert!(trimmed.state_count() < nta.state_count());
        for src in [r#"a"#, r#"a("x" "y")"#, r#"a(b)"#, r#"c"#] {
            let t = parse_tree(src, &mut al).unwrap();
            assert_eq!(nta.accepts(&t), trimmed.accepts(&t), "{src}");
        }
    }

    #[test]
    fn size_counts_states_and_content_models() {
        let al = alpha();
        let nta = simple_nta(&al);
        assert!(nta.size() > nta.state_count());
    }

    #[test]
    fn display_renders_grammar_form() {
        let al = alpha();
        let nta = simple_nta(&al);
        let printed = format!("{}", nta.display(&al));
        assert!(printed.starts_with("roots: s0"));
        assert!(printed.contains("δ(s0, a) ="));
        assert!(printed.contains("text) = ε"));
    }

    #[test]
    fn leaf_acceptance_via_epsilon_in_content_model() {
        // Paper: a σ-leaf is accepted in q iff ε ∈ δ(q, σ).
        let mut al = alpha();
        let mut b = NtaBuilder::new(&al);
        b.root("q0");
        b.rule("q0", "a", "q1?");
        b.rule("q1", "b", "%eps");
        let nta = b.finish();
        assert!(nta.accepts(&parse_tree("a", &mut al).unwrap()));
        assert!(nta.accepts(&parse_tree("a(b)", &mut al).unwrap()));
        assert!(!nta.accepts(&parse_tree("a(b(b))", &mut al).unwrap()));
    }
}
