//! Lazy, antichain-pruned decision procedures on NBTAs.
//!
//! The eager Boolean route decides `L(A) ⊆ L(B)` by materializing the
//! determinized complement of `B` — the workspace's one truly exponential
//! construction — and testing the intersection for emptiness. The
//! procedures here never build that automaton. Instead they explore, on
//! the fly and bottom-up, only the *reachable* portion of the product of
//! `A` with the subset automaton of `B`: pairs `(a, S)` where `a` is an
//! `A`-state derivable by some tree `t` and `S` is the **exact** set of
//! `B`-states derivable at `t`. A pair with `a` final in `A` and
//! `S ∩ F_B = ∅` is a counterexample, and provenance tracking lets us
//! decode the concrete witness tree the moment one is interned.
//!
//! Two properties make this fast in practice (the antichain idea of the
//! typechecking / inclusion literature, see DESIGN.md §13):
//!
//! * **Reachability**: most of the `2^{|Q_B|}` subset space is never
//!   derivable by any tree, and the exploration simply never visits it.
//! * **Antichain pruning**: the macro-successor map is monotone
//!   (`S ⊆ S'` implies `step(σ, S, T) ⊆ step(σ, S', T)`) and rejection
//!   (`S ∩ F_B = ∅`) is downward closed, so a pair whose macro-state is a
//!   *superset* of an already-explored macro-state for the same `A`-state
//!   can never reach a counterexample the explored one cannot. We
//!   therefore keep only the ⊆-minimal macro-states per `A`-state — the
//!   complement-side view of the literature's ⊆-maximal antichains —
//!   and skip every dominated candidate.
//!
//! The same machinery yields an early-exit emptiness-of-product test
//! ([`Nbta::try_intersect_witness`]): explore derivable `(a, b)` pairs
//! with provenance and stop at the first final×final pair, without
//! constructing the product automaton that [`Nbta::intersect`] returns.

use crate::nbta::Nbta;
use crate::nta::State;
use crate::ranked::RankedTree;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use tpx_trees::budget::{BudgetExceeded, BudgetHandle};

/// How an explored pair was first derived, for witness decoding. Ids
/// index the exploration arena and always point at earlier entries.
enum Prov<L> {
    Leaf(L),
    Node(L, usize, usize),
}

fn bit_has(bits: &[u64], q: State) -> bool {
    bits[q.index() / 64] & (1 << (q.index() % 64)) != 0
}

fn bit_set(bits: &mut [u64], q: State) {
    bits[q.index() / 64] |= 1 << (q.index() % 64);
}

/// `a ⊆ b` on bitsets of equal length.
fn is_subset(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// An explored `(A-state, exact B-state-set)` pair.
struct Pair<L> {
    a: State,
    set: Vec<u64>,
    prov: Prov<L>,
}

fn decode<L: Clone>(pairs: &[Pair<L>], id: usize) -> RankedTree<L> {
    match &pairs[id].prov {
        Prov::Leaf(l) => RankedTree::Leaf(l.clone()),
        Prov::Node(l, p1, p2) => {
            RankedTree::node(l.clone(), decode(pairs, *p1), decode(pairs, *p2))
        }
    }
}

impl<L: Clone + Eq + Hash> Nbta<L> {
    /// Whether `L(self) ⊆ L(other)` — decided lazily, without ever
    /// determinizing `other`. Alphabets must match as sets.
    pub fn included_in(&self, other: &Nbta<L>) -> bool {
        self.try_included_in(other, &BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::included_in`]: charges one fuel unit per explored
    /// pair and per macro-successor join.
    pub fn try_included_in(
        &self,
        other: &Nbta<L>,
        budget: &BudgetHandle,
    ) -> Result<bool, BudgetExceeded> {
        Ok(self.try_inclusion_counterexample(other, budget)?.is_none())
    }

    /// A tree in `L(self) \ L(other)`, or `None` when `L(self) ⊆ L(other)`.
    pub fn inclusion_counterexample(&self, other: &Nbta<L>) -> Option<RankedTree<L>> {
        self.try_inclusion_counterexample(other, &BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::inclusion_counterexample`]. Explores `(a, S)`
    /// pairs bottom-up, prunes with a per-state antichain of ⊆-minimal
    /// macro-states, and early-exits with a decoded witness at the first
    /// rejecting pair.
    pub fn try_inclusion_counterexample(
        &self,
        other: &Nbta<L>,
        budget: &BudgetHandle,
    ) -> Result<Option<RankedTree<L>>, BudgetExceeded> {
        budget.charge(1)?;
        let words = other.n_states.div_ceil(64).max(1);
        let mut b_final_bits = vec![0u64; words];
        for q in other.states() {
            if other.is_final(q) {
                bit_set(&mut b_final_bits, q);
            }
        }
        // `other`'s rules grouped by symbol, for the macro-successor step.
        type BySymbol<'x, L> = HashMap<&'x L, Vec<(State, State, &'x Vec<State>)>>;
        let mut b_by_symbol: BySymbol<'_, L> = HashMap::new();
        for ((l, b1, b2), outs) in &other.rules {
            b_by_symbol.entry(l).or_default().push((*b1, *b2, outs));
        }
        // `self`'s rules indexed by (symbol, operand side), as in
        // `try_intersect`.
        type Idx<'x, L> = HashMap<(&'x L, State), Vec<(State, &'x Vec<State>)>>;
        let mut idx_first: Idx<'_, L> = HashMap::new();
        let mut idx_second: Idx<'_, L> = HashMap::new();
        for ((l, a1, a2), outs) in &self.rules {
            idx_first.entry((l, *a1)).or_default().push((*a2, outs));
            idx_second.entry((l, *a2)).or_default().push((*a1, outs));
        }

        // Arena of explored pairs. `antichain[a]` holds the ids whose
        // macro-state is ⊆-minimal among those interned for `a`; dominated
        // entries leave the antichain (so future domination checks stay
        // cheap) but remain valid join partners in the arena.
        let mut pairs: Vec<Pair<L>> = Vec::new();
        let mut antichain: HashMap<State, Vec<usize>> = HashMap::new();
        let mut by_astate: HashMap<State, Vec<usize>> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let rejects = |set: &[u64]| set.iter().zip(&b_final_bits).all(|(s, f)| s & f == 0);
        // Interns a candidate unless an explored macro-state for the same
        // `A`-state already rejects at least as much (domination).
        let intern = |a: State,
                      set: Vec<u64>,
                      prov: Prov<L>,
                      pairs: &mut Vec<Pair<L>>,
                      antichain: &mut HashMap<State, Vec<usize>>,
                      by_astate: &mut HashMap<State, Vec<usize>>,
                      queue: &mut VecDeque<usize>|
         -> Option<usize> {
            let chain = antichain.entry(a).or_default();
            if chain.iter().any(|&i| is_subset(&pairs[i].set, &set)) {
                return None;
            }
            chain.retain(|&i| !is_subset(&set, &pairs[i].set));
            let id = pairs.len();
            chain.push(id);
            pairs.push(Pair { a, set, prov });
            by_astate.entry(a).or_default().push(id);
            queue.push_back(id);
            Some(id)
        };

        // Leaf rules seed the worklist; every interned pair is checked for
        // rejection immediately, so a leaf-level counterexample exits here.
        for l in self.leaf_alphabet().to_vec() {
            let mut seed = vec![0u64; words];
            for &b in other.leaf_states(&l) {
                bit_set(&mut seed, b);
            }
            for &a in &self.leaf_states(&l).to_vec() {
                budget.charge(1)?;
                if let Some(id) = intern(
                    a,
                    seed.clone(),
                    Prov::Leaf(l.clone()),
                    &mut pairs,
                    &mut antichain,
                    &mut by_astate,
                    &mut queue,
                ) {
                    if self.is_final(a) && rejects(&pairs[id].set) {
                        return Ok(Some(decode(&pairs, id)));
                    }
                }
            }
        }

        let symbols: Vec<&L> = self.internal_alphabet().iter().collect();
        while let Some(p) = queue.pop_front() {
            budget.charge(1)?;
            let a = pairs[p].a;
            for &l in &symbols {
                // The macro-successor depends only on (σ, S₁, S₂), not on
                // the A-rule, so compute it once per partner per side.
                let mut succ_memo: HashMap<(usize, bool), Vec<u64>> = HashMap::new();
                let step = |s1: &[u64], s2: &[u64]| -> Vec<u64> {
                    let mut out = vec![0u64; words];
                    if let Some(rules) = b_by_symbol.get(l) {
                        for &(b1, b2, outs) in rules {
                            if bit_has(s1, b1) && bit_has(s2, b2) {
                                for &b in outs {
                                    bit_set(&mut out, b);
                                }
                            }
                        }
                    }
                    out
                };
                // Popped pair as LEFT and as RIGHT operand; partners must
                // already be interned (the later-popped side completes
                // every join, exactly as in `try_intersect`).
                for left in [true, false] {
                    let idx = if left { &idx_first } else { &idx_second };
                    let Some(rules_a) = idx.get(&(l, a)) else {
                        continue;
                    };
                    for &(a2, outs) in rules_a {
                        let partners = by_astate.get(&a2).cloned().unwrap_or_default();
                        for p2 in partners {
                            budget.charge(1)?;
                            let succ = succ_memo
                                .entry((p2, left))
                                .or_insert_with(|| {
                                    if left {
                                        step(&pairs[p].set, &pairs[p2].set)
                                    } else {
                                        step(&pairs[p2].set, &pairs[p].set)
                                    }
                                })
                                .clone();
                            let prov = |l: &L| {
                                if left {
                                    Prov::Node(l.clone(), p, p2)
                                } else {
                                    Prov::Node(l.clone(), p2, p)
                                }
                            };
                            for &oa in outs {
                                if let Some(id) = intern(
                                    oa,
                                    succ.clone(),
                                    prov(l),
                                    &mut pairs,
                                    &mut antichain,
                                    &mut by_astate,
                                    &mut queue,
                                ) {
                                    if self.is_final(oa) && rejects(&pairs[id].set) {
                                        return Ok(Some(decode(&pairs, id)));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(None)
    }

    /// A tree in `L(self) ∩ L(other)`, or `None` when the intersection is
    /// empty — found by exploring derivable `(a, b)` pairs with
    /// provenance and exiting at the first final×final pair, without
    /// building the product automaton.
    pub fn intersect_witness(&self, other: &Nbta<L>) -> Option<RankedTree<L>> {
        self.try_intersect_witness(other, &BudgetHandle::unlimited())
            .expect("unlimited budget")
    }

    /// Budgeted [`Self::intersect_witness`]: charges one fuel unit per
    /// discovered pair and per rule join, like [`Nbta::try_intersect`].
    pub fn try_intersect_witness(
        &self,
        other: &Nbta<L>,
        budget: &BudgetHandle,
    ) -> Result<Option<RankedTree<L>>, BudgetExceeded> {
        budget.charge(1)?;
        struct PairAb<L> {
            a: State,
            b: State,
            prov: Prov<L>,
        }
        let mut arena: Vec<PairAb<L>> = Vec::new();
        let mut ids: HashMap<(State, State), usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let intern = |a: State,
                      b: State,
                      prov: Prov<L>,
                      arena: &mut Vec<PairAb<L>>,
                      ids: &mut HashMap<(State, State), usize>,
                      queue: &mut VecDeque<usize>|
         -> (usize, bool) {
            if let Some(&id) = ids.get(&(a, b)) {
                return (id, false);
            }
            let id = arena.len();
            arena.push(PairAb { a, b, prov });
            ids.insert((a, b), id);
            queue.push_back(id);
            (id, true)
        };
        let accepting = |arena: &[PairAb<L>], id: usize| -> Option<RankedTree<L>> {
            let p = &arena[id];
            (self.is_final(p.a) && other.is_final(p.b)).then(|| {
                fn build<L: Clone>(arena: &[PairAb<L>], id: usize) -> RankedTree<L> {
                    match &arena[id].prov {
                        Prov::Leaf(l) => RankedTree::Leaf(l.clone()),
                        Prov::Node(l, p1, p2) => {
                            RankedTree::node(l.clone(), build(arena, *p1), build(arena, *p2))
                        }
                    }
                }
                build(arena, id)
            })
        };
        for l in self.leaf_alphabet().to_vec() {
            let bs = other.leaf_states(&l).to_vec();
            for &a in &self.leaf_states(&l).to_vec() {
                for &b in &bs {
                    budget.charge(1)?;
                    let (id, fresh) = intern(
                        a,
                        b,
                        Prov::Leaf(l.clone()),
                        &mut arena,
                        &mut ids,
                        &mut queue,
                    );
                    if fresh {
                        if let Some(w) = accepting(&arena, id) {
                            return Ok(Some(w));
                        }
                    }
                }
            }
        }
        type Idx<'x, L> = HashMap<(&'x L, State), Vec<(State, &'x Vec<State>)>>;
        let mut idx1_first: Idx<'_, L> = HashMap::new();
        let mut idx1_second: Idx<'_, L> = HashMap::new();
        for ((l, a1, a2), outs) in &self.rules {
            idx1_first.entry((l, *a1)).or_default().push((*a2, outs));
            idx1_second.entry((l, *a2)).or_default().push((*a1, outs));
        }
        let mut idx2_first: Idx<'_, L> = HashMap::new();
        let mut idx2_second: Idx<'_, L> = HashMap::new();
        for ((l, b1, b2), outs) in &other.rules {
            idx2_first.entry((l, *b1)).or_default().push((*b2, outs));
            idx2_second.entry((l, *b2)).or_default().push((*b1, outs));
        }
        let symbols: Vec<&L> = self.internal_alphabet().iter().collect();
        while let Some(p) = queue.pop_front() {
            budget.charge(1)?;
            let (a, b) = (arena[p].a, arena[p].b);
            for &l in &symbols {
                for left in [true, false] {
                    let (i1, i2) = if left {
                        (&idx1_first, &idx2_first)
                    } else {
                        (&idx1_second, &idx2_second)
                    };
                    let (Some(r1), Some(r2)) = (i1.get(&(l, a)), i2.get(&(l, b))) else {
                        continue;
                    };
                    let joins: Vec<(State, &Vec<State>, State, &Vec<State>)> = r1
                        .iter()
                        .flat_map(|&(a2, o1)| r2.iter().map(move |&(b2, o2)| (a2, o1, b2, o2)))
                        .collect();
                    for (a2, outs1, b2, outs2) in joins {
                        // The partner pair must already be discovered.
                        if !ids.contains_key(&(a2, b2)) {
                            continue;
                        }
                        let p2 = ids[&(a2, b2)];
                        for &oa in outs1 {
                            for &ob in outs2 {
                                budget.charge(1)?;
                                let prov = if left {
                                    Prov::Node(l.clone(), p, p2)
                                } else {
                                    Prov::Node(l.clone(), p2, p)
                                };
                                let (id, fresh) =
                                    intern(oa, ob, prov, &mut arena, &mut ids, &mut queue);
                                if fresh {
                                    if let Some(w) = accepting(&arena, id) {
                                        return Ok(Some(w));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Accepts trees containing at least one 'a' internal node.
    fn contains_a() -> Nbta<char> {
        let mut b = Nbta::new(vec!['#'], vec!['a', 'b']);
        let q0 = b.add_state();
        let q1 = b.add_state();
        b.set_final(q1, true);
        b.add_leaf_rule('#', q0);
        for (l, x, y, o) in [
            ('b', q0, q0, q0),
            ('b', q0, q1, q1),
            ('b', q1, q0, q1),
            ('b', q1, q1, q1),
            ('a', q0, q0, q1),
            ('a', q0, q1, q1),
            ('a', q1, q0, q1),
            ('a', q1, q1, q1),
        ] {
            b.add_rule(l, x, y, o);
        }
        b
    }

    /// Accepts every tree over {a, b}.
    fn universal() -> Nbta<char> {
        let mut b = Nbta::new(vec!['#'], vec!['a', 'b']);
        let q = b.add_state();
        b.set_final(q, true);
        b.add_leaf_rule('#', q);
        b.add_rule('a', q, q, q);
        b.add_rule('b', q, q, q);
        b
    }

    #[test]
    fn inclusion_verdicts() {
        let a = contains_a();
        let u = universal();
        assert!(a.included_in(&u));
        assert!(!u.included_in(&a));
        assert!(a.included_in(&a));
        assert!(u.included_in(&u));
    }

    #[test]
    fn counterexample_is_genuine() {
        let a = contains_a();
        let u = universal();
        let w = u.inclusion_counterexample(&a).expect("u ⊄ contains_a");
        assert!(u.accepts(&w));
        assert!(!a.accepts(&w));
        assert!(a.inclusion_counterexample(&u).is_none());
    }

    #[test]
    fn inclusion_agrees_with_eager_complement_route() {
        let a = contains_a();
        let u = universal();
        for (x, y) in [(&a, &u), (&u, &a), (&a, &a), (&u, &u)] {
            let eager = x
                .intersect(&y.determinize().complement().to_nbta().trim())
                .is_empty();
            assert_eq!(x.included_in(y), eager);
        }
    }

    #[test]
    fn inclusion_against_empty_language() {
        let mut empty = Nbta::new(vec!['#'], vec!['a', 'b']);
        let q = empty.add_state();
        empty.add_leaf_rule('#', q);
        // No final state: the language is empty.
        assert!(empty.included_in(&contains_a()));
        let w = contains_a()
            .inclusion_counterexample(&empty)
            .expect("nonempty ⊄ ∅");
        assert!(contains_a().accepts(&w));
    }

    #[test]
    fn intersect_witness_agrees_with_product() {
        let a = contains_a();
        let u = universal();
        let w = a.intersect_witness(&u).expect("intersection nonempty");
        assert!(a.accepts(&w) && u.accepts(&w));
        // Root-is-b automaton: intersection with contains_a is nonempty.
        let mut rb = Nbta::new(vec!['#'], vec!['a', 'b']);
        let any = rb.add_state();
        let rootb = rb.add_state();
        rb.set_final(rootb, true);
        rb.add_leaf_rule('#', any);
        for l in ['a', 'b'] {
            rb.add_rule(l, any, any, any);
        }
        rb.add_rule('b', any, any, rootb);
        let w = a.intersect_witness(&rb).expect("nonempty");
        assert!(a.accepts(&w) && rb.accepts(&w));
        assert_eq!(
            a.intersect_witness(&rb).is_some(),
            !a.intersect(&rb).is_empty()
        );
        // Empty intersection: contains_a ∩ complement(contains_a).
        let not_a = a.determinize().complement().to_nbta().trim();
        assert!(a.intersect_witness(&not_a).is_none());
        assert!(a.intersect(&not_a).is_empty());
    }

    #[test]
    fn budgeted_inclusion_matches_unbudgeted_and_fails_on_zero_fuel() {
        use tpx_trees::budget::{Budget, ExhaustReason};
        let a = contains_a();
        let u = universal();
        let gen = Budget::default().with_fuel(1_000_000).start();
        assert!(a.try_included_in(&u, &gen).unwrap());
        assert!(!u.try_included_in(&a, &gen).unwrap());
        assert!(a.try_intersect_witness(&u, &gen).unwrap().is_some());
        assert!(gen.fuel_spent() > 0, "the lazy ops must charge fuel");
        let z = Budget::default().with_fuel(0).start();
        for err in [
            a.try_included_in(&u, &z).map(|_| ()).unwrap_err(),
            a.try_inclusion_counterexample(&u, &z)
                .map(|_| ())
                .unwrap_err(),
            a.try_intersect_witness(&u, &z).map(|_| ()).unwrap_err(),
        ] {
            assert_eq!(err.reason, ExhaustReason::Fuel);
        }
    }
}
