//! The bounded-enumeration baseline: enumerate schema trees up to a size
//! bound and check the Lemma 5.4/5.5 conditions on each.
//!
//! Sound but incomplete (a counter-example may be larger than the bound) —
//! the exponential comparator for the crossover experiments (E4/E5) and a
//! cross-validation harness for the symbolic deciders.

use crate::config;
use crate::pattern::PatternLanguage;
use crate::transducer::{DtlError, DtlTransducer};
use tpx_treeauto::{Nta, State};
use tpx_trees::{Hedge, HedgeBuilder, Symbol, Tree};

/// Enumerates trees of `L(nta)` with at most `max_nodes` nodes (text leaves
/// carry a placeholder value). Stops after `limit` trees.
pub fn enumerate_schema_trees(nta: &Nta, max_nodes: usize, limit: usize) -> Vec<Tree> {
    let mut out = Vec::new();
    // trees_for(q, budget): all hedges consisting of a single tree rooted in
    // state q with ≤ budget nodes. Memoized per (state, budget).
    let mut memo: std::collections::HashMap<(State, usize), Vec<Hedge>> =
        std::collections::HashMap::new();
    for &root in nta.roots() {
        for h in trees_for(nta, root, max_nodes, &mut memo, limit) {
            if out.len() >= limit {
                return out;
            }
            if let Some(t) = Tree::from_hedge(h.clone()) {
                out.push(t);
            }
        }
    }
    out
}

fn trees_for(
    nta: &Nta,
    q: State,
    budget: usize,
    memo: &mut std::collections::HashMap<(State, usize), Vec<Hedge>>,
    limit: usize,
) -> Vec<Hedge> {
    if budget == 0 {
        return Vec::new();
    }
    if let Some(hit) = memo.get(&(q, budget)) {
        return hit.clone();
    }
    // Avoid infinite recursion through unproductive cycles: seed the memo
    // with the empty result.
    memo.insert((q, budget), Vec::new());
    let mut result = Vec::new();
    if nta.text_ok(q) {
        let mut b = HedgeBuilder::new();
        b.text("τ");
        result.push(b.finish());
    }
    for sym in 0..nta.symbol_count() {
        let s = Symbol(sym as u32);
        let Some(nfa) = nta.content(q, s) else {
            continue;
        };
        // Enumerate accepted child-state words with total size ≤ budget - 1,
        // then all combinations of child trees.
        let words = accepted_words(nfa, budget - 1);
        for word in words {
            let combos = child_combos(nta, &word, budget - 1, memo, limit);
            for combo in combos {
                if result.len() >= limit {
                    break;
                }
                let mut b = HedgeBuilder::new();
                b.open(s);
                for child in &combo {
                    b.hedge(child);
                }
                b.close();
                result.push(b.finish());
            }
        }
    }
    result.truncate(limit);
    memo.insert((q, budget), result.clone());
    result
}

/// Words accepted by the content NFA with length ≤ max_len.
fn accepted_words(nfa: &tpx_automata::Nfa<State>, max_len: usize) -> Vec<Vec<State>> {
    let mut out = Vec::new();
    let mut frontier: Vec<(tpx_automata::StateId, Vec<State>)> = nfa
        .initial_states()
        .iter()
        .map(|&p| (p, Vec::new()))
        .collect();
    for _ in 0..=max_len {
        let mut next = Vec::new();
        for (p, w) in frontier {
            if nfa.is_final(p) {
                out.push(w.clone());
            }
            if w.len() < max_len {
                for (a, r) in nfa.transitions_from(p) {
                    let mut w2 = w.clone();
                    w2.push(*a);
                    next.push((*r, w2));
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    out.sort();
    out.dedup();
    out
}

/// All combinations of child hedges for a state word within the budget.
fn child_combos(
    nta: &Nta,
    word: &[State],
    budget: usize,
    memo: &mut std::collections::HashMap<(State, usize), Vec<Hedge>>,
    limit: usize,
) -> Vec<Vec<Hedge>> {
    if word.is_empty() {
        return vec![Vec::new()];
    }
    let (first, rest) = word.split_first().map(|(f, r)| (*f, r)).unwrap();
    let mut out = Vec::new();
    // Reserve at least one node for each remaining sibling.
    let reserve = rest.len();
    if budget <= reserve {
        return out;
    }
    for first_tree in trees_for(nta, first, budget - reserve, memo, limit) {
        let used = first_tree.node_count();
        for mut tail in child_combos(nta, rest, budget - used, memo, limit) {
            if out.len() >= limit {
                return out;
            }
            let mut combo = vec![first_tree.clone()];
            combo.append(&mut tail);
            out.push(combo);
        }
    }
    out
}

/// The bounded decider: searches schema trees up to `max_nodes` nodes for a
/// copying or rearranging witness. `Ok(Some(tree))` is a genuine
/// counter-example; `Ok(None)` means none exists *within the bound*.
pub fn bounded_counterexample<P: PatternLanguage>(
    t: &DtlTransducer<P>,
    nta: &Nta,
    max_nodes: usize,
    limit: usize,
) -> Result<Option<Tree>, DtlError> {
    for tree in enumerate_schema_trees(nta, max_nodes, limit) {
        if config::copying_lemma_5_4(t, &tree)? || config::rearranging_lemma_5_5(t, &tree)? {
            return Ok(Some(tree));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpx_treeauto::NtaBuilder;
    use tpx_trees::Alphabet;

    fn alpha() -> Alphabet {
        Alphabet::from_labels(["a", "b"])
    }

    fn universal(al: &Alphabet) -> Nta {
        let mut b = NtaBuilder::new(al);
        b.root("u");
        b.rule("u", "a", "(u | ut)*");
        b.rule("u", "b", "(u | ut)*");
        b.text_rule("ut");
        b.finish()
    }

    #[test]
    fn enumeration_yields_valid_trees() {
        let al = alpha();
        let nta = universal(&al);
        let trees = enumerate_schema_trees(&nta, 4, 200);
        assert!(!trees.is_empty());
        for t in &trees {
            assert!(nta.accepts(t), "{t:?}");
            assert!(t.node_count() <= 4);
        }
        // All distinct.
        for (i, a) in trees.iter().enumerate() {
            for b in trees.iter().skip(i + 1) {
                assert!(a.as_hedge() != b.as_hedge());
            }
        }
    }

    #[test]
    fn enumeration_respects_content_models() {
        // Schema: root a with exactly two b-leaf children.
        let al = alpha();
        let mut b = NtaBuilder::new(&al);
        b.root("s");
        b.rule("s", "a", "sb sb");
        b.rule("sb", "b", "%eps");
        let nta = b.finish();
        let trees = enumerate_schema_trees(&nta, 10, 100);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].node_count(), 3);
    }

    #[test]
    fn bounded_decider_finds_doubling() {
        use crate::pattern::XPathPatterns;
        use crate::transducer::{DtlState, DtlTransducer, Rhs};
        let al = alpha();
        let mut t = DtlTransducer::new(XPathPatterns, 1, DtlState(0));
        let c1 = t.add_binary_pattern(tpx_xpath::PathExpr::Axis(tpx_xpath::Axis::Child));
        let c2 = t.add_binary_pattern(tpx_xpath::PathExpr::Axis(tpx_xpath::Axis::Child));
        t.add_rule(
            DtlState(0),
            tpx_xpath::NodeExpr::Label(al.sym("a")),
            vec![Rhs::Elem(
                al.sym("a"),
                vec![Rhs::Call(DtlState(0), c1), Rhs::Call(DtlState(0), c2)],
            )],
        );
        t.set_text_rule(DtlState(0), true);
        let nta = universal(&al);
        let w = bounded_counterexample(&t, &nta, 3, 500).unwrap();
        let w = w.expect("doubling witness within 3 nodes");
        assert!(crate::config::copying_on(&t, &w).unwrap());
    }

    #[test]
    fn bounded_decider_clears_identity() {
        use crate::transducer::DtlBuilder;
        let al = alpha();
        let mut b = DtlBuilder::new(&al, "q0");
        b.rule_simple("q0", "a", "a", "q0", "child");
        b.rule_simple("q0", "b", "b", "q0", "child");
        b.text_rule("q0");
        let t = b.finish();
        let nta = universal(&al);
        assert!(bounded_counterexample(&t, &nta, 4, 300).unwrap().is_none());
    }
}
