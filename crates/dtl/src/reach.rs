//! MSO-definable configuration reachability (the heart of Section 5.3).
//!
//! The paper represents `(q, v) ;* (q', v')` by tree-jumping automata and
//! proves their languages regular via the TJA → TWA → NTA chain
//! (Lemma 5.8). This crate realizes the *same* relation directly in MSO:
//! with one node-set variable `X_p` per transducer state,
//!
//! ```text
//! reach_{q,q'}(x, y) := ∀X₀ … ∀X_{n-1}
//!     ( x ∈ X_q ∧ Closed → y ∈ X_{q'} )
//! Closed := ⋀_{edges (p, φ, α, p')} ∀u ∀v
//!     ( u ∈ X_p ∧ φ(u) ∧ α(u, v) → v ∈ X_{p'} )
//! ```
//!
//! which says `y` is in every `;`-closed family of sets containing `x` —
//! the least-fixpoint characterization of reachability. Compiling this with
//! the Thatcher–Wright pipeline yields the regular languages of Theorem
//! 5.12; see DESIGN.md (substitution 1) for why the routes are equivalent.
//!
//! The same builder serves the DTL deciders and the tree-jumping automata
//! of [`crate::tja`] — both are "pattern-labelled transition systems".

use crate::pattern::MsoPatterns;
use tpx_mso::{Formula, SetVar, Var, VarGen};

/// A pattern-labelled transition system: states `0..n_states` with edges
/// guarded by a unary pattern (on the source node) and a binary step
/// pattern (source → target node).
///
/// Guard formulas use the free variable [`MsoPatterns::HOLE_X`]; step
/// formulas use [`MsoPatterns::HOLE_X`] (source) and
/// [`MsoPatterns::HOLE_Y`] (target).
pub struct ReachSystem {
    n_states: usize,
    edges: Vec<(usize, Formula, Formula, usize)>,
    set_vars: Vec<SetVar>,
    u: Var,
    v: Var,
}

impl ReachSystem {
    /// A system with `n_states` states; fresh closure variables are drawn
    /// from `gen` (which must already be reserved above all pattern
    /// variables).
    pub fn new(n_states: usize, gen: &mut VarGen) -> Self {
        let set_vars = (0..n_states).map(|_| gen.set_var()).collect();
        let u = gen.var();
        let v = gen.var();
        ReachSystem {
            n_states,
            edges: Vec::new(),
            set_vars,
            u,
            v,
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.n_states
    }

    /// Adds an edge `from --(guard, step)--> to`.
    pub fn add_edge(&mut self, from: usize, guard: Formula, step: Formula, to: usize) {
        assert!(from < self.n_states && to < self.n_states);
        self.edges.push((from, guard, step, to));
    }

    /// The `Closed` formula (free variables: the set variables).
    fn closed(&self) -> Formula {
        Formula::all(self.edges.iter().map(|(p, guard, step, p2)| {
            let g = guard.rename_fo(MsoPatterns::HOLE_X, self.u);
            let s = step
                .rename_fo(MsoPatterns::HOLE_X, self.u)
                .rename_fo(MsoPatterns::HOLE_Y, self.v);
            Formula::forall(
                self.u,
                Formula::forall(
                    self.v,
                    Formula::In(self.u, self.set_vars[*p])
                        .and(g)
                        .and(s)
                        .implies(Formula::In(self.v, self.set_vars[*p2])),
                ),
            )
        }))
    }

    /// The reachability formula `reach_{q,q'}(x, y)` — reflexive and
    /// transitive, anchored nowhere (compose with [`Formula::Root`] to
    /// anchor at the root).
    pub fn reach(&self, q: usize, q2: usize, x: Var, y: Var) -> Formula {
        assert!(q < self.n_states && q2 < self.n_states);
        let mut body = Formula::In(x, self.set_vars[q])
            .and(self.closed())
            .implies(Formula::In(y, self.set_vars[q2]));
        for &sv in self.set_vars.iter().rev() {
            body = Formula::forall_set(sv, body);
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpx_mso::{naive_eval, Assignment};
    use tpx_trees::term::parse_tree;
    use tpx_trees::Alphabet;

    /// A 1-state system stepping along the child relation: reach = the
    /// reflexive-transitive closure of child = descendant-or-self.
    #[test]
    fn reach_child_equals_descendant_or_self() {
        let mut gen = VarGen::new();
        gen.reserve(Var(1_000_002));
        let mut sys = ReachSystem::new(1, &mut gen);
        sys.add_edge(
            0,
            Formula::True,
            Formula::Child(MsoPatterns::HOLE_X, MsoPatterns::HOLE_Y),
            0,
        );
        let (x, y) = (gen.var(), gen.var());
        let reach = sys.reach(0, 0, x, y);
        let mut al = Alphabet::from_labels(["a", "b"]);
        let t = parse_tree(r#"a(b("s") a)"#, &mut al).unwrap();
        for &n1 in &t.dfs() {
            for &n2 in &t.dfs() {
                let asg = Assignment::new().bind(x, n1).bind(y, n2);
                let expect = n1 == n2 || t.is_ancestor(n1, n2, true);
                assert_eq!(naive_eval(&t, &reach, &asg), expect, "{n1:?} {n2:?}");
            }
        }
    }

    /// Two states alternating: 0 steps to 1 on child, 1 steps to 0 on
    /// child; reach(0, 0) = even-depth descendants.
    #[test]
    fn reach_respects_states() {
        let mut gen = VarGen::new();
        gen.reserve(Var(1_000_002));
        let mut sys = ReachSystem::new(2, &mut gen);
        let step = Formula::Child(MsoPatterns::HOLE_X, MsoPatterns::HOLE_Y);
        sys.add_edge(0, Formula::True, step.clone(), 1);
        sys.add_edge(1, Formula::True, step, 0);
        let (x, y) = (gen.var(), gen.var());
        let reach00 = sys.reach(0, 0, x, y);
        let reach01 = sys.reach(0, 1, x, y);
        let mut al = Alphabet::from_labels(["a"]);
        let t = parse_tree("a(a(a))", &mut al).unwrap();
        let nodes = t.dfs(); // depths 1, 2, 3
        let root = nodes[0];
        for (i, &n) in nodes.iter().enumerate() {
            let asg = Assignment::new().bind(x, root).bind(y, n);
            assert_eq!(
                naive_eval(&t, &reach00, &asg),
                i % 2 == 0,
                "depth {}",
                i + 1
            );
            assert_eq!(
                naive_eval(&t, &reach01, &asg),
                i % 2 == 1,
                "depth {}",
                i + 1
            );
        }
    }

    /// Guards restrict which nodes an edge can fire at.
    #[test]
    fn guards_restrict_steps() {
        let mut gen = VarGen::new();
        gen.reserve(Var(1_000_002));
        let mut al = Alphabet::from_labels(["a", "b"]);
        let mut sys = ReachSystem::new(1, &mut gen);
        // Only step below a-labelled nodes.
        sys.add_edge(
            0,
            Formula::Lab(al.sym("a"), MsoPatterns::HOLE_X),
            Formula::Child(MsoPatterns::HOLE_X, MsoPatterns::HOLE_Y),
            0,
        );
        let (x, y) = (gen.var(), gen.var());
        let reach = sys.reach(0, 0, x, y);
        let t = parse_tree("a(b(a))", &mut al).unwrap();
        let nodes = t.dfs();
        let (root, b, inner) = (nodes[0], nodes[1], nodes[2]);
        let ok = |n1, n2| naive_eval(&t, &reach, &Assignment::new().bind(x, n1).bind(y, n2));
        assert!(ok(root, b)); // one a-step
        assert!(!ok(root, inner)); // blocked at the b node
        assert!(ok(b, b)); // reflexive
    }
}
